open Pmi_isa
open Pmi_portmap
open Pmi_core
module Rat = Pmi_numeric.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* Uop_count (§3.1, §4.1.1)                                            *)
(* ------------------------------------------------------------------ *)

let zen = Catalog.zen_plus ()
let machine = Pmi_machine.Machine.create ~config:Pmi_machine.Machine.quiet_config zen
let harness = Pmi_measure.Harness.create machine

let first bucket = List.hd (Catalog.bucket zen bucket)

let test_memory_adjustment () =
  let check bucket expected =
    Alcotest.(check int) bucket expected
      (Uop_count.memory_uop_adjustment (first bucket))
  in
  check "blocking/alu" 0;
  check "regular/scalar-load" 1;   (* one ≤128-bit memory read *)
  check "regular/rmw" 1;           (* one read-written operand *)
  check "regular/ymm-load" 2;      (* 256-bit memory operand *)
  check "store/scalar" 1;          (* the paper's storing-mov correction *)
  check "blocking/load" 0;         (* loading movs excluded *)
  Alcotest.(check int) "lea excluded" 0
    (Uop_count.memory_uop_adjustment
       (List.find (fun s -> Scheme.is_lea s) (Catalog.bucket zen "blocking/alu")))

let test_postulated_uops () =
  let check bucket expected =
    Alcotest.(check int) bucket expected
      (Uop_count.postulated_uops harness (first bucket))
  in
  check "blocking/alu" 1;
  check "regular/scalar-load" 2;
  check "regular/ymm" 2;
  check "regular/ymm-load" 4;
  check "store/vec" 2

let test_uops_on_blocked_ports () =
  (* The §3.1 example: fma's u2 cannot evade the flooded port; with the
     Figure 2 mapping, 3 blocking muls measure 3 cycles alone and 4 with
     the fma. *)
  let vpslld = first "blocking/vec-shift" in
  let add = first "blocking/alu" in
  let imul = first "blocking/scalar-mul" in
  (* imul's µop lives on an ALU port: flooding all four ALU ports with adds
     must reveal one µop (the anomaly's phantom pressure adds another). *)
  let blocked = Experiment.replicate 16 add in
  let with_i = Experiment.add imul blocked in
  let uops =
    Uop_count.uops_on_blocked_ports harness ~blocked ~with_i ~port_set_size:4
  in
  Alcotest.(check bool) "imul leaves µops on the ALU cluster" true
    (Rat.compare uops Rat.one >= 0);
  (* A vector shift evades the ALU ports entirely. *)
  let with_shift = Experiment.add vpslld blocked in
  Alcotest.check rat "vpslld evades" Rat.zero
    (Uop_count.uops_on_blocked_ports harness ~blocked ~with_i:with_shift
       ~port_set_size:4)

let test_round_uops () =
  Alcotest.(check (option int)) "exact" (Some 2)
    (Uop_count.round_uops ~tolerance:0.1 (Rat.of_int 2));
  Alcotest.(check (option int)) "near" (Some 2)
    (Uop_count.round_uops ~tolerance:0.1 (Rat.of_ints 195 100));
  Alcotest.(check (option int)) "too far" None
    (Uop_count.round_uops ~tolerance:0.1 (Rat.of_ints 15 10));
  Alcotest.(check (option int)) "negative noise is zero" (Some 0)
    (Uop_count.round_uops ~tolerance:0.1 (Rat.of_ints (-2) 100))

(* ------------------------------------------------------------------ *)
(* Blocking: stage-1 classification (§4.1)                             *)
(* ------------------------------------------------------------------ *)

let noisy_machine = Pmi_machine.Machine.create zen
let noisy_harness = Pmi_measure.Harness.create noisy_machine

let test_classify_individual () =
  let classify bucket =
    Blocking.classify_individual noisy_harness (first bucket)
  in
  let check bucket expected = Alcotest.(check bool) bucket true (classify bucket = expected) in
  check "blocking/alu" (Blocking.Candidate 4);
  check "blocking/vec-int" (Blocking.Candidate 3);
  check "blocking/fp-add" (Blocking.Candidate 2);
  check "blocking/vec-shift" (Blocking.Candidate 1);
  check "blocking/scalar-mul" (Blocking.Candidate 1);
  check "blocking/vec-mul-hard" (Blocking.Candidate 1);
  check "excluded/zero-uop" Blocking.Zero_uop;
  check "regular/ymm" (Blocking.Multi_uop 2);
  check "microcoded" (Blocking.Multi_uop 8);
  (match classify "excluded/fp-slow" with
   | Blocking.Outside_model -> ()
   | Blocking.Hardwired | Blocking.Unreliable | Blocking.Zero_uop
   | Blocking.Candidate _ | Blocking.Multi_uop _ ->
     Alcotest.fail "divider should be outside the model");
  (match classify "excluded/mov64-imm" with
   | Blocking.Unreliable -> ()
   | Blocking.Hardwired | Blocking.Zero_uop | Blocking.Outside_model
   | Blocking.Candidate _ | Blocking.Multi_uop _ ->
     Alcotest.fail "mov64-imm should be unreliable");
  (match classify "excluded/high-byte" with
   | Blocking.Hardwired -> ()
   | Blocking.Unreliable | Blocking.Zero_uop | Blocking.Outside_model
   | Blocking.Candidate _ | Blocking.Multi_uop _ ->
     Alcotest.fail "high-byte operands cannot be measured dependency-free")

let test_additivity () =
  let vpslld = first "blocking/vec-shift" in
  let vroundps = first "blocking/fp-round" in
  let imul = first "blocking/scalar-mul" in
  let imul2 = List.nth (Catalog.bucket zen "blocking/scalar-mul") 1 in
  Alcotest.(check bool) "same class additive" true
    (Blocking.additive noisy_harness imul imul2);
  Alcotest.(check bool) "disjoint 1-port classes not additive" false
    (Blocking.additive noisy_harness vpslld vroundps);
  Alcotest.(check bool) "imul vs vpslld not additive" false
    (Blocking.additive noisy_harness imul vpslld)

let test_filter_candidates_small () =
  (* A reduced catalog keeps the pairing stage fast while retaining the
     class structure, the unstable cmovs and the contradictory fmas. *)
  let small = Catalog.reduced ~per_bucket:4 () in
  let m = Pmi_machine.Machine.create small in
  let h = Pmi_measure.Harness.create m in
  let candidates =
    Array.to_list (Catalog.schemes small)
    |> List.filter_map (fun s ->
        match Blocking.classify_individual h s with
        | Blocking.Candidate n -> Some (s, n)
        | Blocking.Hardwired | Blocking.Unreliable | Blocking.Zero_uop
        | Blocking.Outside_model | Blocking.Multi_uop _ -> None)
  in
  let result = Blocking.filter_candidates h candidates in
  (* 13 classes as in Table 1. *)
  Alcotest.(check int) "13 classes" 13 (List.length result.Blocking.classes);
  (* cmov and friends are dropped as unstable, fma as contradictory. *)
  Alcotest.(check bool) "cmov dropped" true
    (List.exists (fun s -> Scheme.quirk s = Some Iclass.Pair_unstable)
       result.Blocking.unstable);
  Alcotest.(check bool) "fma dropped as contradictory" true
    (result.Blocking.contradictory <> []
     && List.for_all (fun s -> Scheme.quirk s = Some Iclass.Fma_lines)
          result.Blocking.contradictory);
  (* Port counts per class follow Table 1's column. *)
  let counts =
    List.map (fun c -> c.Blocking.port_count) result.Blocking.classes
    |> List.sort compare
  in
  Alcotest.(check (list int)) "port counts"
    [ 1; 1; 1; 1; 1; 2; 2; 2; 2; 2; 3; 4; 4 ] counts;
  (* Every class must be quirk-homogeneous enough that its members share
     ground-truth structure. *)
  List.iter
    (fun c ->
       let repr_usage =
         Pmi_machine.Ground_truth.usage_of_structure
           (Scheme.klass c.Blocking.representative).Iclass.structure
       in
       List.iter
         (fun s ->
            let u =
              Pmi_machine.Ground_truth.usage_of_structure
                (Scheme.klass s).Iclass.structure
            in
            Alcotest.(check bool)
              (Printf.sprintf "class of %s is homogeneous"
                 (Scheme.name c.Blocking.representative))
              true
              (Mapping.equal_usage u repr_usage))
         c.Blocking.members)
    result.Blocking.classes

(* ------------------------------------------------------------------ *)
(* CEGIS on toy architectures (§3.3, Figure 4)                         *)
(* ------------------------------------------------------------------ *)

let toy_catalog n =
  Catalog.of_list
    (List.init n (fun i ->
         (Printf.sprintf "i%c" (Char.chr (Char.code 'A' + i)),
          [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu))))

let cegis_config num_ports =
  { Cegis.default_config with
    Cegis.num_ports;
    r_max = num_ports + 1;
    max_experiment_size = 4 }

(* Infer with perfect measurements from a hidden mapping and check the
   result is throughput-equivalent to the truth on all small experiments. *)
let run_cegis ?(num_ports = 2) truth_usage =
  let catalog = toy_catalog (List.length truth_usage) in
  let truth = Mapping.create ~num_ports in
  List.iteri
    (fun i usage -> Mapping.set truth (Catalog.find catalog i) usage)
    truth_usage;
  let config = cegis_config num_ports in
  let measure e = Cegis.modeled_inverse config truth e in
  let specs =
    List.mapi
      (fun i usage ->
         let ports =
           List.fold_left (fun acc (p, _) -> acc + Portset.cardinal p) 0 usage
         in
         (Catalog.find catalog i, Encoding.Proper ports))
      truth_usage
  in
  (truth, config, Cegis.infer ~config ~measure ~specs ())

let check_equivalent config truth inferred schemes =
  let exception Different of Experiment.t in
  let scheme_list = schemes in
  match
    List.iter
      (fun size ->
         let rec enum acc remaining size =
           match (remaining, size) with
           | _, 0 ->
             let e = Experiment.of_counts acc in
             if not (Experiment.is_empty e) then begin
               let t1 = Cegis.modeled_inverse config truth e in
               let t2 = Cegis.modeled_inverse config inferred e in
               if not (Rat.equal t1 t2) then raise (Different e)
             end
           | [], _ -> ()
           | s :: rest, _ ->
             for c = 0 to size do
               enum (if c = 0 then acc else (s, c) :: acc) rest (size - c)
             done
         in
         ignore (enum [] scheme_list size))
      [ 1; 2; 3; 4 ]
  with
  | () -> ()
  | exception Different e ->
    Alcotest.failf "inferred mapping differs from truth on %s"
      (Experiment.to_string e)

let test_cegis_figure4 () =
  (* Two 1-port instructions sharing a port: Figure 4(b).  The paper's
     distinguishing experiment for the competing hypothesis (disjoint
     ports, Figure 4(a)) is [iA, iB]. *)
  let p0 = Portset.singleton 0 in
  let truth, config, outcome = run_cegis [ [ (p0, 1) ]; [ (p0, 1) ] ] in
  match outcome with
  | Cegis.Converged (m, stats) ->
    check_equivalent config truth m
      (List.map fst (Mapping.schemes m |> List.map (fun s -> (s, ()))));
    Alcotest.(check bool) "needed a distinguishing experiment" true
      (List.length stats.Cegis.observations > 2)
  | Cegis.No_consistent_mapping _ -> Alcotest.fail "unexpected UNSAT"
  | Cegis.Iteration_limit _ -> Alcotest.fail "iteration limit"

let test_cegis_disjoint () =
  let p0 = Portset.singleton 0 and p1 = Portset.singleton 1 in
  let truth, config, outcome = run_cegis [ [ (p0, 1) ]; [ (p1, 1) ] ] in
  match outcome with
  | Cegis.Converged (m, _) ->
    check_equivalent config truth m (Mapping.schemes m)
  | Cegis.No_consistent_mapping _ -> Alcotest.fail "unexpected UNSAT"
  | Cegis.Iteration_limit _ -> Alcotest.fail "iteration limit"

let test_cegis_three_instructions () =
  (* A 3-port universe with overlapping sets. *)
  let s01 = Portset.of_list [ 0; 1 ] in
  let s12 = Portset.of_list [ 1; 2 ] in
  let s2 = Portset.singleton 2 in
  let truth, config, outcome =
    run_cegis ~num_ports:3 [ [ (s01, 1) ]; [ (s12, 1) ]; [ (s2, 1) ] ]
  in
  match outcome with
  | Cegis.Converged (m, _) -> check_equivalent config truth m (Mapping.schemes m)
  | Cegis.No_consistent_mapping _ -> Alcotest.fail "unexpected UNSAT"
  | Cegis.Iteration_limit _ -> Alcotest.fail "iteration limit"

let test_cegis_incremental_matches_fresh () =
  (* The incremental solver path (one persistent encoding, activation
     literals, memoized oracle) must converge on the 3-port toy exactly as
     the fresh-encoding-per-iteration path does. *)
  let s01 = Portset.of_list [ 0; 1 ] in
  let s12 = Portset.of_list [ 1; 2 ] in
  let s2 = Portset.singleton 2 in
  let truth_usage = [ [ (s01, 1) ]; [ (s12, 1) ]; [ (s2, 1) ] ] in
  let catalog = toy_catalog 3 in
  let truth = Mapping.create ~num_ports:3 in
  List.iteri
    (fun i usage -> Mapping.set truth (Catalog.find catalog i) usage)
    truth_usage;
  let base = cegis_config 3 in
  let measure e = Cegis.modeled_inverse base truth e in
  let specs =
    List.mapi
      (fun i usage ->
         let ports =
           List.fold_left (fun acc (p, _) -> acc + Portset.cardinal p) 0 usage
         in
         (Catalog.find catalog i, Encoding.Proper ports))
      truth_usage
  in
  let run label config =
    match Cegis.infer ~config ~measure ~specs () with
    | Cegis.Converged (m, _) -> m
    | Cegis.No_consistent_mapping _ -> Alcotest.failf "%s: unexpected UNSAT" label
    | Cegis.Iteration_limit _ -> Alcotest.failf "%s: iteration limit" label
  in
  let m_inc =
    run "incremental"
      { base with Cegis.incremental_sat = true; memoized_oracle = true }
  in
  let m_fresh =
    run "fresh"
      { base with Cegis.incremental_sat = false; memoized_oracle = false }
  in
  check_equivalent base truth m_inc (Mapping.schemes m_inc);
  check_equivalent base truth m_fresh (Mapping.schemes m_fresh);
  (* Same trajectory, same SAT models: the mappings agree scheme by
     scheme, not just up to throughput equivalence. *)
  List.iter
    (fun s ->
       Alcotest.(check bool) (Scheme.name s) true
         (Mapping.equal_usage (Mapping.usage m_inc s) (Mapping.usage m_fresh s)))
    (Mapping.schemes m_inc)

(* ------------------------------------------------------------------ *)
(* Delta mode: online incremental re-inference                         *)
(* ------------------------------------------------------------------ *)

let delta_toy () =
  (* 3 ports, 5 single-µop schemes: rich enough that every arrival
     interacts with several frozen rows. *)
  let usages =
    [ [ (Portset.of_list [ 0; 1 ], 1) ];
      [ (Portset.of_list [ 1; 2 ], 1) ];
      [ (Portset.singleton 2, 1) ];
      [ (Portset.of_list [ 0; 2 ], 1) ];
      [ (Portset.singleton 0, 1) ] ]
  in
  let catalog = toy_catalog (List.length usages) in
  let truth = Mapping.create ~num_ports:3 in
  List.iteri (fun i u -> Mapping.set truth (Catalog.find catalog i) u) usages;
  let specs =
    List.mapi
      (fun i u ->
         let ports =
           List.fold_left (fun a (p, _) -> a + Portset.cardinal p) 0 u
         in
         (Catalog.find catalog i, Encoding.Proper ports))
      usages
  in
  (truth, cegis_config 3, specs)

(* Infer a base mapping over all but the last [arrivals] specs, then feed
   the held-out specs through a delta session one flush at a time, in
   shuffled (here: reversed) arrival order. *)
let run_delta_stream ?(certify = false) ~arrivals () =
  let truth, config, specs = delta_toy () in
  let config = { config with Cegis.certify } in
  let measure e = Cegis.modeled_inverse config truth e in
  let n = List.length specs in
  let base = List.filteri (fun i _ -> i < n - arrivals) specs in
  let stream = List.rev (List.filteri (fun i _ -> i >= n - arrivals) specs) in
  let mapping =
    match Cegis.infer ~config ~measure ~specs:base () with
    | Cegis.Converged (m, _) -> m
    | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
      Alcotest.fail "base inference did not converge"
  in
  let session = Cegis.Delta.start ~config ~measure ~mapping ~specs:base () in
  List.iter
    (fun (s, spec) ->
       Cegis.Delta.enqueue session s spec;
       match Cegis.Delta.flush session with
       | Cegis.Delta_applied (Cegis.Converged _) -> ()
       | Cegis.Delta_fallback _ ->
         Alcotest.failf "unexpected fallback on %s" (Scheme.name s)
       | Cegis.Delta_applied _ ->
         Alcotest.failf "delta flush did not converge on %s" (Scheme.name s))
    stream;
  Alcotest.(check int) "no fallbacks" 0 (Cegis.Delta.fallbacks session);
  Alcotest.(check int) "one batch per arrival" arrivals
    (Cegis.Delta.batches session);
  (truth, config, Cegis.Delta.mapping session)

let test_delta_matches_full () =
  (* A shuffled arrival stream must converge to a mapping throughput-
     equivalent to both the hidden truth and a batch inference over the
     same final spec set: the delta path changes latency, never answers. *)
  let truth, config, m_delta = run_delta_stream ~arrivals:2 () in
  check_equivalent config truth m_delta (Mapping.schemes truth);
  let _, _, specs = delta_toy () in
  let measure e = Cegis.modeled_inverse config truth e in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.Converged (m_full, _) ->
    check_equivalent config m_full m_delta (Mapping.schemes truth)
  | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
    Alcotest.fail "batch inference did not converge"

let test_delta_certified () =
  (* Under [certify] every delta verdict carries a checked certificate:
     assumption-scoped UNSAT answers re-derive through the DRAT checker,
     SAT models replay against the CNF and the exact oracle.  Any
     certificate failure raises, so converging at all is the assertion. *)
  let truth, config, m_delta = run_delta_stream ~certify:true ~arrivals:1 () in
  check_equivalent config truth m_delta (Mapping.schemes truth)

let test_delta_changed_scheme () =
  (* The machine changes under the session: iB's usage moves to a
     different (smaller) port set.  Re-enqueueing iB retires its stale row
     and observations; the session re-converges on the new truth with iA
     and iC still frozen. *)
  let s01 = Portset.of_list [ 0; 1 ] in
  let s12 = Portset.of_list [ 1; 2 ] in
  let s2 = Portset.singleton 2 in
  let catalog = toy_catalog 3 in
  let scheme i = Catalog.find catalog i in
  let make usages =
    let m = Mapping.create ~num_ports:3 in
    List.iteri (fun i u -> Mapping.set m (scheme i) u) usages;
    m
  in
  let truth1 = make [ [ (s01, 1) ]; [ (s12, 1) ]; [ (s2, 1) ] ] in
  let truth2 =
    make [ [ (s01, 1) ]; [ (Portset.singleton 1, 1) ]; [ (s2, 1) ] ]
  in
  let config = cegis_config 3 in
  let current = ref truth1 in
  let measure e = Cegis.modeled_inverse config !current e in
  let specs =
    [ (scheme 0, Encoding.Proper 2); (scheme 1, Encoding.Proper 2);
      (scheme 2, Encoding.Proper 1) ]
  in
  let mapping =
    match Cegis.infer ~config ~measure ~specs () with
    | Cegis.Converged (m, _) -> m
    | _ -> Alcotest.fail "base inference did not converge"
  in
  let session = Cegis.Delta.start ~config ~measure ~mapping ~specs () in
  current := truth2;
  Cegis.Delta.enqueue session (scheme 1) (Encoding.Proper 1);
  (match Cegis.Delta.flush session with
   | Cegis.Delta_applied (Cegis.Converged _) -> ()
   | Cegis.Delta_fallback _ -> Alcotest.fail "unexpected fallback"
   | Cegis.Delta_applied _ -> Alcotest.fail "re-inference did not converge");
  check_equivalent config truth2 (Cegis.Delta.mapping session)
    (Mapping.schemes truth2)

let test_delta_fallback_on_inconsistency () =
  (* Measurements no port assignment can explain: iB floods to 1 CPI alone
     but a mixed experiment with frozen iA measures 3 cycles, far beyond
     any 2-port schedule.  The delta solve must go UNSAT against the
     frozen rows and fall back to full re-inference — which is equally
     unsatisfiable, so the session keeps its pre-flush mapping. *)
  let catalog = toy_catalog 2 in
  let ia = Catalog.find catalog 0 and ib = Catalog.find catalog 1 in
  let truth = Mapping.create ~num_ports:2 in
  Mapping.set truth ia [ (Portset.of_list [ 0; 1 ], 1) ];
  let config = cegis_config 2 in
  let measure e =
    let has s = List.exists (Scheme.equal s) (Experiment.schemes e) in
    if has ib && has ia then Rat.of_int 3
    else if has ib then Rat.one
    else Cegis.modeled_inverse config truth e
  in
  let specs = [ (ia, Encoding.Proper 2) ] in
  let mapping =
    match Cegis.infer ~config ~measure ~specs () with
    | Cegis.Converged (m, _) -> m
    | _ -> Alcotest.fail "base inference did not converge"
  in
  let session = Cegis.Delta.start ~config ~measure ~mapping ~specs () in
  Cegis.Delta.enqueue session ib (Encoding.Proper 1);
  (match Cegis.Delta.flush session with
   | Cegis.Delta_fallback (Cegis.No_consistent_mapping _) -> ()
   | Cegis.Delta_fallback _ -> Alcotest.fail "fallback unexpectedly converged"
   | Cegis.Delta_applied _ ->
     Alcotest.fail "expected a fallback to full re-inference");
  Alcotest.(check int) "one fallback" 1 (Cegis.Delta.fallbacks session);
  Alcotest.(check bool) "pre-flush mapping kept" true
    (Mapping.find_opt (Cegis.Delta.mapping session) ia <> None);
  Alcotest.(check bool) "failed arrival not accepted" true
    (Mapping.find_opt (Cegis.Delta.mapping session) ib = None)

let test_delta_rejects_improper () =
  let truth, config, specs = delta_toy () in
  let measure e = Cegis.modeled_inverse config truth e in
  let mapping =
    match Cegis.infer ~config ~measure ~specs () with
    | Cegis.Converged (m, _) -> m
    | _ -> Alcotest.fail "base inference did not converge"
  in
  let session = Cegis.Delta.start ~config ~measure ~mapping ~specs () in
  Alcotest.check_raises "improper enqueue rejected"
    (Invalid_argument
       "Cegis.Delta: improper (store-blocker) schemes are not streamable; \
        run full re-inference")
    (fun () ->
       Cegis.Delta.enqueue session (List.hd (List.map fst specs))
         (Encoding.Improper { own_ports = 1 }))

let test_cegis_portfolio_matches_sequential () =
  (* The SAT portfolio ([domains > 1]) and clause-database reduction may
     change which model the solver returns, but never whether inference
     converges or what throughputs the result predicts: every configuration
     must land on a mapping throughput-equivalent to the truth. *)
  let s01 = Portset.of_list [ 0; 1 ] in
  let s12 = Portset.of_list [ 1; 2 ] in
  let s2 = Portset.singleton 2 in
  let truth_usage = [ [ (s01, 1) ]; [ (s12, 1) ]; [ (s2, 1) ] ] in
  let catalog = toy_catalog 3 in
  let truth = Mapping.create ~num_ports:3 in
  List.iteri
    (fun i usage -> Mapping.set truth (Catalog.find catalog i) usage)
    truth_usage;
  let base = cegis_config 3 in
  let measure e = Cegis.modeled_inverse base truth e in
  let specs =
    List.mapi
      (fun i usage ->
         let ports =
           List.fold_left (fun acc (p, _) -> acc + Portset.cardinal p) 0 usage
         in
         (Catalog.find catalog i, Encoding.Proper ports))
      truth_usage
  in
  let run label config =
    match Cegis.infer ~config ~measure ~specs () with
    | Cegis.Converged (m, _) -> m
    | Cegis.No_consistent_mapping _ -> Alcotest.failf "%s: unexpected UNSAT" label
    | Cegis.Iteration_limit _ -> Alcotest.failf "%s: iteration limit" label
  in
  List.iter
    (fun (label, config) ->
       let m = run label config in
       check_equivalent base truth m (Mapping.schemes m))
    [ ("sequential, reduction on",
       { base with Cegis.domains = 1; clause_db_reduction = true });
      ("sequential, reduction off",
       { base with Cegis.domains = 1; clause_db_reduction = false });
      ("portfolio, reduction on",
       { base with Cegis.domains = 3; clause_db_reduction = true });
      ("portfolio, reduction off",
       { base with Cegis.domains = 3; clause_db_reduction = false }) ]

let test_cegis_unsat_on_anomaly () =
  (* Measurements that violate the port-mapping model (the §4.3 imul
     anomaly: 4 four-port adds plus a one-port imul at 1.5 cycles) must
     drive findMapping to UNSAT. *)
  let catalog = toy_catalog 2 in
  let i_add = Catalog.find catalog 0 in
  let i_mul = Catalog.find catalog 1 in
  (* Five ports keep "imul disjoint from add's ports" as a live hypothesis,
     so the CEGIS loop generates the 4-add-plus-imul experiment (size 5)
     that exposes the anomaly. *)
  let config =
    { (cegis_config 5) with Cegis.r_max = 6; max_experiment_size = 5 }
  in
  let measure e =
    let n_add = Experiment.count e i_add in
    let n_mul = Experiment.count e i_mul in
    if n_add = 4 && n_mul = 1 then Rat.of_ints 3 2
    else
      (* Otherwise behave like add on 4 ports, imul on 1 of them. *)
      Rat.max
        (Rat.of_ints (Experiment.length e) config.Cegis.r_max)
        (Rat.max (Rat.of_int n_mul) (Rat.of_ints (n_add + n_mul) 4))
  in
  let specs = [ (i_add, Encoding.Proper 4); (i_mul, Encoding.Proper 1) ] in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.No_consistent_mapping _ -> ()
  | Cegis.Converged (m, _) ->
    (* Acceptable only if the anomalous experiment was never generated;
       in that case the mapping must at least explain everything else.
       We treat this as failure to keep the reproduction honest. *)
    Alcotest.failf "expected UNSAT, converged to:\n%s"
      (Format.asprintf "%a" Mapping.pp m)
  | Cegis.Iteration_limit _ -> Alcotest.fail "iteration limit"

(* Soundness property: for random hidden mappings with perfect
   measurements, the inferred mapping is throughput-equivalent to the truth
   on every experiment up to the stratification bound. *)
let prop_cegis_sound =
  let gen =
    let open QCheck2.Gen in
    let num_ports = 3 in
    let portset =
      map
        (fun bits ->
           Portset.of_list
             (List.filter (fun p -> bits land (1 lsl p) <> 0)
                (List.init num_ports Fun.id)))
        (int_range 1 ((1 lsl num_ports) - 1))
    in
    list_size (int_range 2 4) portset
  in
  QCheck2.Test.make ~name:"CEGIS equivalent to hidden truth" ~count:15 gen
    (fun portsets ->
       let truth, config, outcome =
         run_cegis ~num_ports:3 (List.map (fun p -> [ (p, 1) ]) portsets)
       in
       match outcome with
       | Cegis.Converged (m, _) ->
         (try
            check_equivalent config truth m (Mapping.schemes m);
            true
          with Failure _ -> false)
       | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ -> false)

(* ------------------------------------------------------------------ *)
(* Relabel                                                             *)
(* ------------------------------------------------------------------ *)

let test_relabel_perfect () =
  let catalog = toy_catalog 3 in
  let s0 = Catalog.find catalog 0 in
  let s1 = Catalog.find catalog 1 in
  let s2 = Catalog.find catalog 2 in
  (* Truth uses ports {0},{0,1},{2}; inferred is the same up to the
     permutation 0->2, 1->0, 2->1. *)
  let docs =
    [ (s0, [ (Portset.singleton 0, 1) ]);
      (s1, [ (Portset.of_list [ 0; 1 ], 1) ]);
      (s2, [ (Portset.singleton 2, 1) ]) ]
  in
  let inferred = Mapping.create ~num_ports:3 in
  Mapping.set inferred s0 [ (Portset.singleton 2, 1) ];
  Mapping.set inferred s1 [ (Portset.of_list [ 2; 0 ], 1) ];
  Mapping.set inferred s2 [ (Portset.singleton 1, 1) ];
  match Relabel.align ~docs inferred with
  | None -> Alcotest.fail "alignment must exist"
  | Some a ->
    Alcotest.(check int) "nothing dropped" 0 (List.length a.Relabel.dropped);
    let renamed = Relabel.apply a.Relabel.permutation inferred in
    List.iter
      (fun (s, doc) ->
         Alcotest.(check bool) "matches docs" true
           (Mapping.equal_usage (Mapping.usage renamed s) doc))
      docs

let test_relabel_drops_ambiguous () =
  let catalog = toy_catalog 2 in
  let s0 = Catalog.find catalog 0 in
  let s1 = Catalog.find catalog 1 in
  (* The documented usage of s1 is impossible for the inferred structure
     (different cardinality), so it must be dropped while s0 aligns. *)
  let docs =
    [ (s0, [ (Portset.singleton 0, 1) ]);
      (s1, [ (Portset.of_list [ 0; 1 ], 1) ]) ]
  in
  let inferred = Mapping.create ~num_ports:2 in
  Mapping.set inferred s0 [ (Portset.singleton 1, 1) ];
  Mapping.set inferred s1 [ (Portset.singleton 1, 1) ];
  match Relabel.align ~docs inferred with
  | None -> Alcotest.fail "partial alignment must exist"
  | Some a ->
    Alcotest.(check int) "one dropped" 1 (List.length a.Relabel.dropped);
    Alcotest.(check bool) "s1 dropped" true
      (List.exists (Scheme.equal s1) a.Relabel.dropped);
    let renamed = Relabel.apply a.Relabel.permutation inferred in
    Alcotest.(check bool) "s0 aligned" true
      (Mapping.equal_usage (Mapping.usage renamed s0) [ (Portset.singleton 0, 1) ])

let test_relabel_improper_pairing () =
  (* Two-µop usages pair µops by cardinality, trying both orientations. *)
  let catalog = toy_catalog 1 in
  let s0 = Catalog.find catalog 0 in
  let docs =
    [ (s0, [ (Portset.singleton 0, 1); (Portset.of_list [ 1; 2 ], 1) ]) ]
  in
  let inferred = Mapping.create ~num_ports:3 in
  Mapping.set inferred s0
    [ (Portset.singleton 2, 1); (Portset.of_list [ 0; 1 ], 1) ];
  match Relabel.align ~docs inferred with
  | None -> Alcotest.fail "alignment must exist"
  | Some a ->
    let renamed = Relabel.apply a.Relabel.permutation inferred in
    Alcotest.(check bool) "two-µop usage aligned" true
      (Mapping.equal_usage (Mapping.usage renamed s0) (List.assoc s0 docs))

(* ------------------------------------------------------------------ *)
(* Port_usage (Algorithm 1 adapted)                                    *)
(* ------------------------------------------------------------------ *)

let test_blocking_count_formula () =
  (* k = min(100, max(10, |pu|·µops, 2·|pu|·max(1, ⌊tp⁻¹⌋))). *)
  let add = first "blocking/alu" in
  Alcotest.(check int) "1-µop scheme, small sets" 10
    (Port_usage.blocking_count harness ~port_set_size:1 add);
  let bsf = first "microcoded" in
  (* bsf: 8 postulated µops, tp⁻¹ = 4: max(10, 4*8, 2*4*4) = 32. *)
  Alcotest.(check int) "microcoded scheme" 32
    (Port_usage.blocking_count harness ~port_set_size:4 bsf)

let test_characterize_regular () =
  let add_load = first "regular/scalar-load" in
  let blockers =
    List.map
      (fun (bucket, ports) ->
         { Port_usage.scheme = first bucket; ports = Portset.of_list ports })
      [ ("blocking/alu", [ 6; 7; 8; 9 ]); ("blocking/load", [ 4; 5 ]);
        ("blocking/vec-shift", [ 2 ]) ]
  in
  match Port_usage.characterize harness ~blockers add_load with
  | Port_usage.Usage { usage; spurious; postulated; witnesses } ->
    Alcotest.(check bool) "one witness per blocker" true
      (List.length witnesses = 3);
    Alcotest.(check bool) "witness evidence renders" true
      (String.length
         (Format.asprintf "%a" Port_usage.pp_witnesses (add_load, witnesses))
       > 0);
    Alcotest.(check bool) "not spurious" false spurious;
    Alcotest.(check int) "postulate" 2 postulated;
    Alcotest.(check bool) "ALU + load µop" true
      (Mapping.equal_usage usage
         [ (Portset.of_list [ 6; 7; 8; 9 ], 1); (Portset.of_list [ 4; 5 ], 1) ])
  | Port_usage.Failed _ -> Alcotest.fail "characterisation failed"

(* ------------------------------------------------------------------ *)
(* Bottleneck (§3.4)                                                   *)
(* ------------------------------------------------------------------ *)

let test_bottleneck_gap () =
  Alcotest.(check bool) "Zen+ gap holds" true
    (Bottleneck.gap_ok ~r_max:5 ~max_port_set:4);
  Alcotest.(check bool) "no gap" false (Bottleneck.gap_ok ~r_max:4 ~max_port_set:4);
  Alcotest.check_raises "check raises"
    (Invalid_argument
       "Bottleneck.check: frontend rate 4 does not exceed the widest µop \
        port set 4; blocking-based counting would be unsound (§3.4)")
    (fun () -> Bottleneck.check ~r_max:4 ~max_port_set:4)

(* ------------------------------------------------------------------ *)
(* Encoding details                                                    *)
(* ------------------------------------------------------------------ *)

let test_encoding_cardinality () =
  let catalog = toy_catalog 2 in
  let specs =
    [ (Catalog.find catalog 0, Encoding.Proper 2);
      (Catalog.find catalog 1, Encoding.Proper 1) ]
  in
  let enc = Encoding.create ~num_ports:3 specs in
  match Pmi_smt.Sat.solve (Encoding.sat enc) with
  | Pmi_smt.Sat.Sat model ->
    let m = Encoding.decode enc model in
    Alcotest.(check int) "2 ports" 2
      (Portset.cardinal (fst (List.hd (Mapping.usage m (Catalog.find catalog 0)))));
    Alcotest.(check int) "1 port" 1
      (Portset.cardinal (fst (List.hd (Mapping.usage m (Catalog.find catalog 1)))))
  | Pmi_smt.Sat.Unsat -> Alcotest.fail "encoding should be satisfiable"

let test_encoding_improper () =
  let catalog = toy_catalog 2 in
  let proper = Catalog.find catalog 0 in
  let improper = Catalog.find catalog 1 in
  let specs =
    [ (proper, Encoding.Proper 2);
      (improper, Encoding.Improper { own_ports = 1 }) ]
  in
  let enc = Encoding.create ~num_ports:3 specs in
  match Pmi_smt.Sat.solve (Encoding.sat enc) with
  | Pmi_smt.Sat.Sat model ->
    let m = Encoding.decode enc model in
    let proper_ports = fst (List.hd (Mapping.usage m proper)) in
    let usage = Mapping.usage m improper in
    Alcotest.(check int) "two µops" 2 (Mapping.uop_count m improper);
    (* One of the improper µops equals the proper instruction's µop. *)
    Alcotest.(check bool) "shares the proper µop" true
      (List.exists (fun (p, _) -> Portset.equal p proper_ports) usage)
  | Pmi_smt.Sat.Unsat -> Alcotest.fail "improper encoding should be satisfiable"

let test_block_footprint_progress () =
  let catalog = toy_catalog 1 in
  let scheme = Catalog.find catalog 0 in
  let enc = Encoding.create ~num_ports:2 ~symmetry_breaking:false
      [ (scheme, Encoding.Proper 1) ] in
  let sat = Encoding.sat enc in
  (* Two models exist ({0} and {1}); blocking each in turn exhausts them. *)
  let rec count n =
    match Pmi_smt.Sat.solve sat with
    | Pmi_smt.Sat.Sat model ->
      Pmi_smt.Sat.add_clause sat (Encoding.block_model enc model);
      count (n + 1)
    | Pmi_smt.Sat.Unsat -> n
  in
  Alcotest.(check int) "exactly two 1-port mappings" 2 (count 0)

let test_symmetry_breaking_reduces_models () =
  let catalog = toy_catalog 1 in
  let scheme = Catalog.find catalog 0 in
  let count_models symmetry_breaking =
    let enc =
      Encoding.create ~num_ports:4 ~symmetry_breaking
        [ (scheme, Encoding.Proper 2) ]
    in
    let sat = Encoding.sat enc in
    let seen = Hashtbl.create 8 in
    let rec go () =
      match Pmi_smt.Sat.solve sat with
      | Pmi_smt.Sat.Sat model ->
        let m = Encoding.decode enc model in
        let key = Mapping.usage_to_string (Mapping.usage m scheme) in
        Hashtbl.replace seen key ();
        Pmi_smt.Sat.add_clause sat (Encoding.block_model enc model);
        go ()
      | Pmi_smt.Sat.Unsat -> Hashtbl.length seen
    in
    go ()
  in
  Alcotest.(check int) "without symmetry breaking: C(4,2)" 6 (count_models false);
  Alcotest.(check int) "with symmetry breaking: canonical only" 1
    (count_models true)

let () =
  Alcotest.run "core"
    [ ("uop-count",
       [ Alcotest.test_case "memory adjustment (§4.1.1)" `Quick test_memory_adjustment;
         Alcotest.test_case "postulated µops" `Quick test_postulated_uops;
         Alcotest.test_case "µops on blocked ports (§3.1)" `Quick
           test_uops_on_blocked_ports;
         Alcotest.test_case "rounding" `Quick test_round_uops ]);
      ("blocking",
       [ Alcotest.test_case "individual classification (§4.1)" `Quick
           test_classify_individual;
         Alcotest.test_case "additivity (§3.2)" `Quick test_additivity;
         Alcotest.test_case "candidate filtering (§4.2)" `Slow
           test_filter_candidates_small ]);
      ("encoding",
       [ Alcotest.test_case "cardinality" `Quick test_encoding_cardinality;
         Alcotest.test_case "improper blockers (§4.3)" `Quick test_encoding_improper;
         Alcotest.test_case "model blocking" `Quick test_block_footprint_progress;
         Alcotest.test_case "symmetry breaking" `Quick
           test_symmetry_breaking_reduces_models ]);
      ("cegis",
       [ Alcotest.test_case "Figure 4 example" `Quick test_cegis_figure4;
         Alcotest.test_case "disjoint ports" `Quick test_cegis_disjoint;
         Alcotest.test_case "three instructions" `Quick test_cegis_three_instructions;
         Alcotest.test_case "delta stream matches batch inference" `Quick
           test_delta_matches_full;
         Alcotest.test_case "delta under certification" `Slow
           test_delta_certified;
         Alcotest.test_case "delta re-infers a changed scheme" `Quick
           test_delta_changed_scheme;
         Alcotest.test_case "delta falls back on inconsistency" `Quick
           test_delta_fallback_on_inconsistency;
         Alcotest.test_case "delta rejects improper specs" `Quick
           test_delta_rejects_improper;
         Alcotest.test_case "incremental matches fresh encodings" `Quick
           test_cegis_incremental_matches_fresh;
         Alcotest.test_case "portfolio/reduction preserve convergence" `Slow
           test_cegis_portfolio_matches_sequential;
         Alcotest.test_case "UNSAT on the imul anomaly (§4.3)" `Quick
           test_cegis_unsat_on_anomaly;
         QCheck_alcotest.to_alcotest prop_cegis_sound ]);
      ("relabel",
       [ Alcotest.test_case "perfect alignment" `Quick test_relabel_perfect;
         Alcotest.test_case "drops ambiguous schemes" `Quick
           test_relabel_drops_ambiguous;
         Alcotest.test_case "two-µop pairing" `Quick test_relabel_improper_pairing ]);
      ("port-usage",
       [ Alcotest.test_case "k heuristic" `Quick test_blocking_count_formula;
         Alcotest.test_case "regular characterisation" `Quick
           test_characterize_regular ]);
      ("bottleneck",
       [ Alcotest.test_case "§3.4 gap requirement" `Quick test_bottleneck_gap ]) ]
