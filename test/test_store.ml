(* The durable store: journal framing and recovery (torn tails truncated,
   checksum-rejected records skipped without failing open), last-writer-wins
   semantics across compaction, byte-level idempotence of open/close and of
   repeated compaction, a QCheck round-trip against a reference table, and
   the harness's durable measurement tier (a second harness over the same
   store re-measures nothing).  This suite is also wired as
   `dune build @store`. *)

module Store = Pmi_store.Store
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness
open Pmi_isa

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let temp_dir () =
  let path = Filename.temp_file "pmi-test-store" "" in
  Sys.remove path;
  path

let journal dir = Filename.concat dir "journal.pmi"
let segment dir = Filename.concat dir "segment.pmi"

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let with_store ?auto_compact dir f =
  let s = Store.open_ ?auto_compact dir in
  Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)

let test_put_get_roundtrip () =
  let dir = temp_dir () in
  with_store dir (fun s ->
      Store.put s Store.Measurement ~key:"m1" "1:2:0:3";
      Store.put s Store.Certificate ~key:"c1" "digest";
      Store.put s Store.Bench_history ~key:"b1" "{}";
      Alcotest.(check (option string)) "measurement" (Some "1:2:0:3")
        (Store.get s Store.Measurement ~key:"m1");
      Alcotest.(check (option string)) "certificate" (Some "digest")
        (Store.get s Store.Certificate ~key:"c1");
      Alcotest.(check (option string)) "kinds are separate namespaces" None
        (Store.get s Store.Measurement ~key:"c1");
      Alcotest.(check bool) "mem" true (Store.mem s Store.Bench_history ~key:"b1"));
  (* Everything survives a close/reopen. *)
  with_store dir (fun s ->
      Alcotest.(check int) "measurements live" 1 (Store.live s Store.Measurement);
      Alcotest.(check (option string)) "value survives" (Some "1:2:0:3")
        (Store.get s Store.Measurement ~key:"m1");
      let st = Store.stats s in
      Alcotest.(check int) "no corruption" 0 st.Store.corrupt;
      Alcotest.(check int) "replayed all three" 3 st.Store.replayed)

let test_identical_reput_is_noop () =
  let dir = temp_dir () in
  with_store dir (fun s ->
      Store.put s Store.Measurement ~key:"k" "v";
      let before = (Store.stats s).Store.journal_records in
      Store.put s Store.Measurement ~key:"k" "v";
      Alcotest.(check int) "journal did not grow" before
        (Store.stats s).Store.journal_records;
      Store.put s Store.Measurement ~key:"k" "v2";
      Alcotest.(check int) "a new value does" (before + 1)
        (Store.stats s).Store.journal_records;
      Alcotest.(check (option string)) "last writer wins" (Some "v2")
        (Store.get s Store.Measurement ~key:"k"))

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let populate dir n =
  with_store dir (fun s ->
      for i = 0 to n - 1 do
        Store.put s Store.Measurement
          ~key:(Printf.sprintf "key-%02d" i)
          (Printf.sprintf "value-%02d" i)
      done)

let test_torn_tail_truncated () =
  (* Cut the journal at every byte offset of the final record: whatever
     the crash left behind, recovery must keep all complete records, see
     zero corruption, and leave the file appendable. *)
  let dir = temp_dir () in
  populate dir 4;
  let whole = read_file (journal dir) in
  let len = String.length whole in
  (* Locate the final record's start: records are identical in size here,
     so it is 3/4 of the file. *)
  let last = len * 3 / 4 in
  List.iter
    (fun cut ->
       write_file (journal dir) (String.sub whole 0 cut);
       let report = Store.verify dir in
       Alcotest.(check int)
         (Printf.sprintf "verify at cut %d: nothing corrupt" cut)
         0 report.Store.r_corrupt;
       with_store dir (fun s ->
           let st = Store.stats s in
           Alcotest.(check int)
             (Printf.sprintf "cut %d keeps the complete records" cut)
             3 (Store.live s Store.Measurement);
           Alcotest.(check int)
             (Printf.sprintf "cut %d reports no corruption" cut)
             0 st.Store.corrupt;
           Alcotest.(check int)
             (Printf.sprintf "cut %d truncates the tail" cut)
             (cut - last) st.Store.truncated_bytes;
           (* The store must stay writable on the recovered boundary. *)
           Store.put s Store.Measurement ~key:"after" "crash");
       with_store dir (fun s ->
           Alcotest.(check (option string))
             (Printf.sprintf "cut %d: post-recovery append survives" cut)
             (Some "crash")
             (Store.get s Store.Measurement ~key:"after")))
    [ last + 1; last + 11; last + 12; len - 1 ]

let test_bit_flip_rejected () =
  (* Flip one payload byte of the second record: that record is rejected
     by its checksum, every other record survives, and open does not
     fail. *)
  let dir = temp_dir () in
  populate dir 3;
  let whole = read_file (journal dir) in
  let record = String.length whole / 3 in
  let b = Bytes.of_string whole in
  let target = record + 14 (* a payload byte of record #2 *) in
  Bytes.set b target (Char.chr (Char.code (Bytes.get b target) lxor 0x01));
  write_file (journal dir) (Bytes.to_string b);
  let report = Store.verify dir in
  Alcotest.(check int) "verify counts one corrupt record" 1
    report.Store.r_corrupt;
  Alcotest.(check int) "verify sees no torn tail" 0 report.Store.r_torn_bytes;
  with_store dir (fun s ->
      let st = Store.stats s in
      Alcotest.(check int) "one record rejected" 1 st.Store.corrupt;
      Alcotest.(check int) "the others survive" 2
        (Store.live s Store.Measurement);
      Alcotest.(check (option string)) "record before the flip" (Some "value-00")
        (Store.get s Store.Measurement ~key:"key-00");
      Alcotest.(check (option string)) "record after the flip" (Some "value-02")
        (Store.get s Store.Measurement ~key:"key-02");
      Alcotest.(check (option string)) "the flipped record is gone" None
        (Store.get s Store.Measurement ~key:"key-01"))

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

let test_lww_after_compaction () =
  let dir = temp_dir () in
  with_store dir (fun s ->
      Store.put s Store.Measurement ~key:"k" "v1";
      Store.put s Store.Measurement ~key:"k" "v2";
      Store.put s Store.Measurement ~key:"other" "o";
      Store.put s Store.Measurement ~key:"k" "v3";
      Store.compact s;
      Alcotest.(check (option string)) "last writer wins" (Some "v3")
        (Store.get s Store.Measurement ~key:"k");
      let st = Store.stats s in
      Alcotest.(check int) "journal truncated" 0 st.Store.journal_records;
      Alcotest.(check int) "segment holds only live records" 2
        st.Store.segment_records);
  with_store dir (fun s ->
      Alcotest.(check (option string)) "winner survives reopen" (Some "v3")
        (Store.get s Store.Measurement ~key:"k");
      Alcotest.(check int) "still two live" 2 (Store.live s Store.Measurement))

let test_open_close_idempotent () =
  let dir = temp_dir () in
  populate dir 5;
  with_store dir (fun s -> Store.compact s);
  let jnl = read_file (journal dir) in
  let seg = read_file (segment dir) in
  (* A clean open/close sequence must not move a byte of either file, and
     re-compacting the identical live set must reproduce the segment
     exactly (deterministic record order). *)
  with_store dir (fun s -> ignore (Store.stats s));
  Alcotest.(check string) "journal untouched" jnl (read_file (journal dir));
  Alcotest.(check string) "segment untouched" seg (read_file (segment dir));
  with_store dir (fun s -> Store.compact s);
  Alcotest.(check string) "re-compaction is byte-identical" seg
    (read_file (segment dir))

let test_gc_drops_and_compacts () =
  let dir = temp_dir () in
  populate dir 6;
  with_store dir (fun s ->
      Store.put s Store.Certificate ~key:"keepme" "proof";
      let dropped =
        Store.gc s ~keep:(fun kind ~key _ ->
            match kind with
            | Store.Measurement -> key <= "key-02"
            | Store.Certificate | Store.Bench_history -> true)
      in
      Alcotest.(check int) "dropped half" 3 dropped;
      Alcotest.(check int) "survivors" 3 (Store.live s Store.Measurement);
      Alcotest.(check bool) "other kinds kept" true
        (Store.mem s Store.Certificate ~key:"keepme"));
  with_store dir (fun s ->
      Alcotest.(check int) "gc is durable" 3 (Store.live s Store.Measurement))

(* ------------------------------------------------------------------ *)
(* Randomised round-trip                                               *)

let prop_random_roundtrip =
  let open QCheck2 in
  let kind_of = function
    | 0 -> Store.Measurement
    | 1 -> Store.Certificate
    | _ -> Store.Bench_history
  in
  let op =
    Gen.(oneof
           [ map3
               (fun k key v -> `Put (kind_of k, Printf.sprintf "k%d" key, v))
               (int_range 0 2) (int_range 0 15)
               (string_size ~gen:printable (int_range 0 40));
             return `Compact ])
  in
  Test.make ~name:"random ops survive close/reopen" ~count:50
    Gen.(list_size (int_range 1 60) op)
    (fun ops ->
       let dir = temp_dir () in
       let reference = Hashtbl.create 64 in
       with_store ~auto_compact:7 dir (fun s ->
           List.iter
             (function
               | `Put (kind, key, v) ->
                 Hashtbl.replace reference (kind, key) v;
                 Store.put s kind ~key v
               | `Compact -> Store.compact s)
             ops);
       with_store dir (fun s ->
           Hashtbl.iter
             (fun (kind, key) v ->
                if Store.get s kind ~key <> Some v then
                  Test.fail_reportf "key %s lost or changed" key)
             reference;
           let live_total =
             Store.live s Store.Measurement
             + Store.live s Store.Certificate
             + Store.live s Store.Bench_history
           in
           Hashtbl.length reference = live_total
           && (Store.stats s).Store.corrupt = 0))

(* ------------------------------------------------------------------ *)
(* The harness's durable tier                                          *)

let test_harness_store_tier () =
  (* Two harnesses over distinct machine instances but one store: the
     second must answer every repeated experiment from the store and
     leave its machine untouched. *)
  let dir = temp_dir () in
  let machine () =
    Machine.create ~config:Machine.quiet_config
      ~profile:Pmi_machine.Profile.a64fx
      (Catalog.reduced ~per_bucket:1 ())
  in
  let experiments m =
    List.filteri (fun i _ -> i < 3)
      (Array.to_list (Catalog.schemes (Machine.catalog m)))
    |> List.map Pmi_portmap.Experiment.singleton
  in
  let first =
    with_store dir (fun store ->
        let m = machine () in
        let h = Harness.create ~reps:3 ~store m in
        let cs = List.map (Harness.cycles h) (experiments m) in
        Alcotest.(check bool) "first run measures" true
          (Machine.measurement_count m > 0);
        cs)
  in
  with_store dir (fun store ->
      let m = machine () in
      let h = Harness.create ~reps:3 ~store m in
      let second = List.map (Harness.cycles h) (experiments m) in
      Alcotest.(check int) "second run measures nothing" 0
        (Machine.measurement_count m);
      Alcotest.(check int) "no store misses" 0 (Harness.store_misses h);
      Alcotest.(check int) "every probe hit the store" (List.length second)
        (Harness.store_hits h);
      List.iter2
        (fun a b ->
           Alcotest.(check bool) "identical cycles" true
             (Pmi_numeric.Rat.equal a b))
        first second;
      Alcotest.(check int) "observations round-trip" (List.length second)
        (List.length (Harness.stored_observations h)))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "store"
    [ ("basics",
       [ Alcotest.test_case "put/get round-trip" `Quick test_put_get_roundtrip;
         Alcotest.test_case "identical re-put is a no-op" `Quick
           test_identical_reput_is_noop ]);
      ("recovery",
       [ Alcotest.test_case "torn tail truncated" `Quick
           test_torn_tail_truncated;
         Alcotest.test_case "bit flip rejected" `Quick test_bit_flip_rejected ]);
      ("compaction",
       [ Alcotest.test_case "last writer wins" `Quick test_lww_after_compaction;
         Alcotest.test_case "open/close and re-compaction idempotent" `Quick
           test_open_close_idempotent;
         Alcotest.test_case "gc drops and compacts" `Quick
           test_gc_drops_and_compacts ]);
      ("random", qsuite [ prop_random_roundtrip ]);
      ("harness",
       [ Alcotest.test_case "durable measurement tier" `Quick
           test_harness_store_tier ]) ]
