(* The telemetry layer: span nesting and containment, counter
   monotonicity, Chrome-trace well-formedness (checked with the library's
   own JSON parser), the disabled-mode zero-allocation guarantee, the
   merged per-domain export under schedule replay with the race detector
   watching, and the bench-regression gate against a fixture history.
   This suite is also wired as `dune build @obs`. *)

module Obs = Pmi_obs.Obs
module Json = Pmi_obs.Json
module Gate = Pmi_obs.Gate
module Race = Pmi_diag.Race
module Pool = Pmi_parallel.Pool

(* Run [f] with telemetry on, switch it off again, and return the
   retained events. *)
let with_obs f =
  Obs.enable ();
  (match f () with
   | () -> ()
   | exception e -> Obs.disable (); raise e);
  Obs.disable ();
  Obs.events ()

let span_named name evs =
  List.filter (fun (e : Obs.event) -> e.Obs.kind = Obs.Span && e.Obs.name = name) evs

let the_span name evs =
  match span_named name evs with
  | [ e ] -> e
  | es -> Alcotest.failf "expected exactly one %s span, got %d" name (List.length es)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_nesting () =
  let evs =
    with_obs (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 0));
            Obs.instant "mark"))
  in
  let outer = the_span "outer" evs in
  let inner = the_span "inner" evs in
  Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
  Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
  Alcotest.(check string) "outer path" "outer" outer.Obs.path;
  Alcotest.(check string) "inner path" "outer/inner" inner.Obs.path;
  (* Containment: the child's interval lies inside the parent's. *)
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Obs.ts_ns >= outer.Obs.ts_ns);
  Alcotest.(check bool) "inner ends before outer" true
    (inner.Obs.ts_ns + inner.Obs.dur_ns
     <= outer.Obs.ts_ns + outer.Obs.dur_ns);
  (* The instant inherits the nesting context. *)
  (match List.filter (fun (e : Obs.event) -> e.Obs.kind = Obs.Instant) evs with
   | [ mark ] ->
     Alcotest.(check string) "instant path" "outer/mark" mark.Obs.path;
     Alcotest.(check int) "instant duration" 0 mark.Obs.dur_ns
   | es -> Alcotest.failf "expected one instant, got %d" (List.length es));
  (* Events come out sorted by start time. *)
  let ts = List.map (fun (e : Obs.event) -> e.Obs.ts_ns) evs in
  Alcotest.(check (list int)) "sorted by ts" (List.sort compare ts) ts

let test_span_exception_recorded () =
  let evs =
    with_obs (fun () ->
        try Obs.span "throws" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  let s = the_span "throws" evs in
  match List.assoc_opt "exn" s.Obs.args with
  | Some (Obs.Str msg) ->
    Alcotest.(check bool) "exception text recorded" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "escaping exception not recorded as an arg"

let test_leave_args_appended () =
  let evs =
    with_obs (fun () ->
        let frame = Obs.enter ~args:[ ("in", Obs.Int 1) ] "both" in
        Obs.leave ~args:[ ("out", Obs.Int 2) ] frame)
  in
  let s = the_span "both" evs in
  Alcotest.(check bool) "enter arg kept" true
    (List.mem_assoc "in" s.Obs.args);
  Alcotest.(check bool) "leave arg appended" true
    (List.mem_assoc "out" s.Obs.args)

let test_open_spans_not_exported () =
  Obs.enable ();
  let _leaked = Obs.enter "never-closed" in
  Obs.span "closed" (fun () -> ());
  Obs.disable ();
  let evs = Obs.events () in
  Alcotest.(check int) "closed span exported" 1
    (List.length (span_named "closed" evs));
  Alcotest.(check int) "open span withheld" 0
    (List.length (span_named "never-closed" evs))

let test_ring_bounded () =
  Obs.set_ring_capacity 64;
  Obs.enable ();
  for i = 1 to 500 do
    Obs.span ~args:[ ("i", Obs.Int i) ] "ring-filler" (fun () -> ())
  done;
  Obs.disable ();
  let evs = Obs.events () in
  Obs.set_ring_capacity 65536;
  Alcotest.(check bool) "ring stays bounded" true (List.length evs <= 64);
  Alcotest.(check bool) "drops counted" true (Obs.dropped () >= 436);
  (* The ring keeps the newest events. *)
  match List.rev evs with
  | last :: _ ->
    (match List.assoc_opt "i" last.Obs.args with
     | Some (Obs.Int 500) -> ()
     | _ -> Alcotest.fail "newest event missing after overwrite")
  | [] -> Alcotest.fail "ring is empty"

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

let test_counter_monotone () =
  let c = Obs.counter "obs-test.counter" in
  Obs.enable ();
  Alcotest.(check int) "reset by enable" 0 (Obs.value c);
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "accumulates" 42 (Obs.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs.add: counter obs-test.counter is monotone")
    (fun () -> Obs.add c (-1));
  Alcotest.(check int) "unchanged after rejection" 42 (Obs.value c);
  (* Interning: a second handle with the same name is the same counter. *)
  Obs.incr (Obs.counter "obs-test.counter");
  Alcotest.(check int) "interned by name" 43 (Obs.value c);
  Obs.disable ();
  Obs.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 43 (Obs.value c);
  Alcotest.(check bool) "listed with its value" true
    (List.mem ("obs-test.counter", 43) (Obs.counters ()))

let test_gauges () =
  Obs.enable ();
  Obs.set_gauge "obs-test.gauge" 1.5;
  Obs.set_gauge "obs-test.gauge" 2.5;
  Obs.disable ();
  Alcotest.(check bool) "latest value wins" true
    (List.mem ("obs-test.gauge", 2.5) (Obs.gauges ()));
  let samples =
    List.filter
      (fun (e : Obs.event) -> e.Obs.kind = Obs.Counter_sample)
      (Obs.events ())
  in
  Alcotest.(check bool) "each set_gauge samples the ring" true
    (List.length samples >= 2)

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)

let test_disabled_allocates_nothing () =
  Obs.disable ();
  let c = Obs.counter "obs-test.disabled" in
  let body () = ignore (Sys.opaque_identity 1) in
  (* Warm up so the closure and counter exist before measuring. *)
  Obs.span "warm" body;
  Obs.incr c;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.span "off" body;
    Obs.incr c;
    Obs.instant "off"
  done;
  let words = Gc.minor_words () -. before in
  (* 100k iterations of span+incr+instant: a strict zero is hostage to
     compiler versions, but anything beyond noise means a box or closure
     crept onto the disabled path. *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation when disabled (%.0f words)" words)
    true (words < 1024.);
  Alcotest.(check int) "counter untouched" 0 (Obs.value c)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let test_chrome_trace_well_formed () =
  Obs.enable ();
  Obs.span ~args:[ ("n", Obs.Int 3); ("tag", Obs.Str "a\"b\\c") ] "chrome"
    (fun () -> Obs.instant "tick");
  Obs.incr (Obs.counter "obs-test.chrome");
  Obs.set_gauge "obs-test.chrome-gauge" 0.25;
  Obs.disable ();
  match Json.parse (Obs.chrome_trace ()) with
  | Error msg -> Alcotest.failf "chrome trace does not parse: %s" msg
  | Ok j ->
    let events =
      match Json.member "traceEvents" j with
      | Some (Json.List evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array"
    in
    Alcotest.(check bool) "has events" true (List.length events > 3);
    let phases =
      List.filter_map
        (fun e ->
           (* Every event carries a name, a phase and the shared pid. *)
           (match Json.member "name" e with
            | Some (Json.Str _) -> ()
            | _ -> Alcotest.fail "event without name");
           (match Json.member "pid" e with
            | Some (Json.Num 1.) -> ()
            | _ -> Alcotest.fail "event without pid 1");
           match Json.member "ph" e with
           | Some (Json.Str ph) -> Some ph
           | _ -> Alcotest.fail "event without ph")
        events
    in
    let has ph = List.mem ph phases in
    Alcotest.(check bool) "complete spans" true (has "X");
    Alcotest.(check bool) "instants" true (has "i");
    Alcotest.(check bool) "counter samples" true (has "C");
    Alcotest.(check bool) "thread metadata" true (has "M");
    (* X events carry microsecond ts/dur numbers. *)
    List.iter
      (fun e ->
         match Json.member "ph" e with
         | Some (Json.Str "X") ->
           (match (Json.member "ts" e, Json.member "dur" e) with
            | Some (Json.Num ts), Some (Json.Num dur) ->
              Alcotest.(check bool) "non-negative interval" true
                (ts >= 0. && dur >= 0.)
            | _ -> Alcotest.fail "X event without ts/dur")
         | _ -> ())
      events

let test_json_roundtrip () =
  let j =
    Json.Obj
      [ ("s", Json.Str "esc \"quotes\" \\ and \ncontrol");
        ("n", Json.Num 3.125);
        ("i", Json.Num 42.);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Str "x" ]) ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Parallel recording                                                  *)

let test_parallel_merged_and_race_free () =
  Obs.enable ();
  Race.enable ();
  let finish () =
    Pool.set_schedule Pool.Os;
    Race.disable ();
    Obs.disable ()
  in
  (match
     (* Deterministic replay first — every item is its own logical thread,
        so the detector checks the recording paths schedule by schedule —
        then real domains, so the export genuinely merges several rings. *)
     List.iter
       (fun seed ->
          Pool.set_schedule (Pool.Replay seed);
          Pool.parallel_for ~domains:3 ~n:6 (fun i ->
              Obs.span ~args:[ ("i", Obs.Int i) ] "obs-test.replayed"
                (fun () -> Obs.incr (Obs.counter "obs-test.items"))))
       [ 0; 1; 2 ];
     Pool.set_schedule Pool.Os;
     Pool.parallel_for ~domains:4 ~n:40 (fun _ ->
         Obs.span "obs-test.os" (fun () ->
             Obs.incr (Obs.counter "obs-test.items")))
   with
   | () -> finish ()
   | exception e -> finish (); raise e);
  (match Race.reports () with
   | [] -> ()
   | r :: _ ->
     Alcotest.failf "telemetry recording raced: %s"
       (Pmi_diag.Diag.to_string (List.hd (Race.to_diags [ r ]))));
  let evs = Obs.events () in
  Alcotest.(check int) "replayed spans all retained" 18
    (List.length (span_named "obs-test.replayed" evs));
  Alcotest.(check int) "parallel spans all retained" 40
    (List.length (span_named "obs-test.os" evs));
  Alcotest.(check int) "counter saw every item" 58
    (Obs.value (Obs.counter "obs-test.items"));
  (* The merge is globally ts-sorted even across per-domain rings. *)
  let ts = List.map (fun (e : Obs.event) -> e.Obs.ts_ns) evs in
  Alcotest.(check (list int)) "merged sort" (List.sort compare ts) ts;
  (* And the exporter emits one thread-name record per recording domain. *)
  match Json.parse (Obs.chrome_trace ()) with
  | Error msg -> Alcotest.failf "merged trace does not parse: %s" msg
  | Ok j ->
    let tids =
      List.sort_uniq compare
        (List.map (fun (e : Obs.event) -> e.Obs.tid) evs)
    in
    let names =
      match Json.member "traceEvents" j with
      | Some (Json.List events) ->
        List.filter
          (fun e -> Json.member "name" e = Some (Json.Str "thread_name"))
          events
      | _ -> []
    in
    Alcotest.(check bool) "a thread_name record per domain" true
      (List.length names >= List.length tids)

(* ------------------------------------------------------------------ *)
(* The bench-regression gate                                           *)

let fixture_history = "fixtures/bench_history.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let timing name ns = { Gate.name; ns_per_run = Some ns; count = None }

let current records = { Gate.version = Some Gate.schema_version; records }

let test_gate_latest_entry () =
  match Gate.latest_history_entry (read_file fixture_history) with
  | Error msg -> Alcotest.failf "fixture did not parse: %s" msg
  | Ok run ->
    Alcotest.(check (option int)) "schema version"
      (Some Gate.schema_version) run.Gate.version;
    (* Newest-last: the baseline entry, not the older one. *)
    (match
       List.find_opt
         (fun r -> r.Gate.name = "sat/random-3sat")
         run.Gate.records
     with
     | Some { Gate.ns_per_run = Some ns; _ } ->
       Alcotest.(check (float 0.01)) "newest entry wins" 100000. ns
     | _ -> Alcotest.fail "timing record missing from fixture")

let test_gate_flags_slowdown () =
  let baseline =
    match Gate.latest_history_entry (read_file fixture_history) with
    | Ok run -> run
    | Error msg -> Alcotest.failf "fixture did not parse: %s" msg
  in
  (* A synthetic 2x slowdown on one bench must be flagged; 1.1x must not
     be; benches unknown to the baseline are skipped. *)
  let cur =
    current
      [ timing "sat/random-3sat" 200000.;
        timing "oracle/zen-block" 55000.;
        timing "brand-new-bench" 1. ]
  in
  (match Gate.compare_runs ~baseline ~current:cur () with
   | Error msg -> Alcotest.failf "comparable runs rejected: %s" msg
   | Ok verdicts ->
     Alcotest.(check int) "only shared benches compared" 2
       (List.length verdicts);
     (match Gate.regressions verdicts with
      | [ v ] ->
        Alcotest.(check string) "the slowdown" "sat/random-3sat" v.Gate.bench;
        Alcotest.(check (float 0.01)) "ratio" 2.0 v.Gate.ratio;
        Alcotest.(check bool) "report names it" true
          (let report = Gate.report verdicts in
           let contains hay needle =
             let nh = String.length hay and nn = String.length needle in
             let rec at i =
               i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
             in
             at 0
           in
           contains report "REGRESSED")
      | vs -> Alcotest.failf "expected one regression, got %d" (List.length vs)));
  (* Within threshold: clean. *)
  match
    Gate.compare_runs ~baseline ~current:(current [ timing "sat/random-3sat" 120000. ]) ()
  with
  | Ok verdicts ->
    Alcotest.(check int) "no regression at 1.2x" 0
      (List.length (Gate.regressions verdicts))
  | Error msg -> Alcotest.failf "comparable runs rejected: %s" msg

let test_gate_rejects_incomparable () =
  let baseline =
    match Gate.latest_history_entry (read_file fixture_history) with
    | Ok run -> run
    | Error msg -> Alcotest.failf "fixture did not parse: %s" msg
  in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted as comparable" what
  in
  (* Legacy bare-array records carry no schema version. *)
  (match Gate.parse_run {|[ { "name": "sat/random-3sat", "ns_per_run": 1.0 } ]|} with
   | Ok legacy ->
     Alcotest.(check (option int)) "legacy has no version" None
       legacy.Gate.version;
     expect_error "legacy record"
       (Gate.compare_runs ~baseline ~current:legacy ())
   | Error msg -> Alcotest.failf "legacy record did not parse: %s" msg);
  (* And a future schema version must not be misread. *)
  expect_error "schema-version mismatch"
    (Gate.compare_runs ~baseline
       ~current:{ (current [ timing "sat/random-3sat" 1. ]) with
                  Gate.version = Some (Gate.schema_version + 1) }
       ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [ ("spans",
       [ Alcotest.test_case "nesting and containment" `Quick
           test_span_nesting;
         Alcotest.test_case "exception recorded" `Quick
           test_span_exception_recorded;
         Alcotest.test_case "leave args appended" `Quick
           test_leave_args_appended;
         Alcotest.test_case "open spans withheld" `Quick
           test_open_spans_not_exported;
         Alcotest.test_case "ring bounded" `Quick test_ring_bounded ]);
      ("counters",
       [ Alcotest.test_case "monotone" `Quick test_counter_monotone;
         Alcotest.test_case "gauges" `Quick test_gauges ]);
      ("disabled",
       [ Alcotest.test_case "zero allocations" `Quick
           test_disabled_allocates_nothing ]);
      ("export",
       [ Alcotest.test_case "chrome trace well-formed" `Quick
           test_chrome_trace_well_formed;
         Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "parallel merge race-free" `Quick
           test_parallel_merged_and_race_free ]);
      ("gate",
       [ Alcotest.test_case "latest history entry" `Quick
           test_gate_latest_entry;
         Alcotest.test_case "flags 2x slowdown" `Quick
           test_gate_flags_slowdown;
         Alcotest.test_case "rejects incomparable" `Quick
           test_gate_rejects_incomparable ]) ]
