(* The @lint gate: everything the repo ships — machine profiles, the full
   Zen+ catalog, every profile's ground-truth mapping, and the example
   mapping files — must produce no error-severity diagnostics, so a bad
   profile or fixture edit fails `dune runtest` (and `dune build @lint`)
   rather than silently skewing the inference. *)

module Lint = Pmi_analysis.Lint
module Catalog = Pmi_isa.Catalog
module Mapping = Pmi_portmap.Mapping
module Mapping_io = Pmi_portmap.Mapping_io
module Profile = Pmi_machine.Profile
module Ground_truth = Pmi_machine.Ground_truth

let fixture = "../examples/mappings/zenplus_excerpt.pmap"

let show diags = String.concat "\n" (List.map Lint.to_string diags)

let check_no_errors label diags =
  match Lint.errors diags with
  | [] -> ()
  | errors -> Alcotest.failf "%s:\n%s" label (show errors)

let full_catalog = lazy (Catalog.zen_plus ())

let test_builtin_clean () =
  let diags = Lint.builtin ~catalog:(Lazy.force full_catalog) () in
  check_no_errors "shipped profiles/catalog/ground truth" diags;
  (* Surface the advisory findings in the test log without failing. *)
  List.iter (fun d -> Printf.printf "%s\n" (Lint.to_string d)) diags

let read_fixture () =
  let ic = open_in fixture in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let test_example_mapping_clean () =
  let catalog = Lazy.force full_catalog in
  match
    Mapping_io.of_string ~resolve:(Mapping_io.resolver catalog) (read_fixture ())
  with
  | Error e ->
    Alcotest.failf "%s:%d: %s" fixture e.Mapping_io.line e.Mapping_io.message
  | Ok m ->
    Alcotest.(check bool) "fixture is non-trivial" true (Mapping.size m > 50);
    let reference = Ground_truth.mapping_for Profile.zen_plus catalog in
    let diags = Lint.lint_mapping ~reference ~subject:fixture m in
    check_no_errors "example mapping" diags;
    (* The fixture is an excerpt of the ground truth itself, so even the
       advisory µop-count cross-check must stay silent. *)
    Alcotest.(check (list string)) "no µop-count drift" []
      (List.filter_map
         (fun d ->
            if d.Lint.rule = "uop-count-mismatch" then Some (Lint.to_string d)
            else None)
         diags)

let test_corrupted_fixture_rejected () =
  let catalog = Lazy.force full_catalog in
  let resolve = Mapping_io.resolver catalog in
  let reject label text =
    match Mapping_io.of_string ~resolve text with
    | Error (_ : Mapping_io.error) -> ()
    | Ok _ -> Alcotest.failf "%s: corrupted mapping accepted" label
  in
  let text = read_fixture () in
  reject "out-of-range port"
    (text ^ "scheme \"vdivss <XMM>, <XMM>, <XMM>\" 1x[99]\n");
  reject "zero multiplicity"
    (text ^ "scheme \"vdivss <XMM>, <XMM>, <XMM>\" 0x[3]\n");
  reject "unknown scheme" (text ^ "scheme \"frobnicate <ZMM>\" 1x[0]\n");
  reject "empty port set"
    (text ^ "scheme \"vdivss <XMM>, <XMM>, <XMM>\" 1x[]\n")

let () =
  Alcotest.run "lint"
    [ ("shipped",
       [ Alcotest.test_case "profiles, catalog, ground truth" `Quick
           test_builtin_clean;
         Alcotest.test_case "example mapping" `Quick test_example_mapping_clean;
         Alcotest.test_case "corrupted fixtures rejected" `Quick
           test_corrupted_fixture_rejected ]) ]
