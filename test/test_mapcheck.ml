(* The @mapcheck gate: the abstract interpreter over partial port mappings
   must be sound (every completion's exact throughput lies in the computed
   interval), exact on determined mappings, loud on seeded corruption, and
   silent on everything the repo ships.  The CEGIS hook must be a pure
   optimisation: --mapcheck never changes the inferred mapping, only the
   number of harness measurements paid for it. *)

open Pmi_isa
open Pmi_portmap
module Rat = Pmi_numeric.Rat
module Mapcheck = Pmi_analysis.Mapcheck
module Bounds = Oracle.Bounds
module Cegis = Pmi_core.Cegis
module Encoding = Pmi_core.Encoding

let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let toy_catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let add = Catalog.find toy_catalog 0
let mul = Catalog.find toy_catalog 1
let fma = Catalog.find toy_catalog 2

let toy_r_max = 4

let toy_truth () =
  let m = Mapping.create ~num_ports:3 in
  Mapping.set m add [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set m mul [ (Portset.of_list [ 1; 2 ], 1) ];
  Mapping.set m fma [ (Portset.singleton 2, 1) ];
  m

let toy_specs =
  [ (add, Encoding.Proper 2); (mul, Encoding.Proper 2);
    (fma, Encoding.Proper 1) ]

let toy_config ?(mapcheck = false) ?(certify = false) () =
  { Cegis.default_config with
    Cegis.num_ports = 3; r_max = toy_r_max; max_experiment_size = 4;
    symmetry_breaking = true; mapcheck; certify }

(* ------------------------------------------------------------------ *)
(* Interval soundness (QCheck)                                         *)
(* ------------------------------------------------------------------ *)

let num_random_schemes = 3
let random_ports = 3

let random_catalog =
  Catalog.of_list
    (List.init num_random_schemes (fun i ->
         (Printf.sprintf "i%d" i, [ Operand.gpr 32 ],
          Iclass.plain (Iclass.Single Iclass.Alu))))

let scheme i = Catalog.find random_catalog i

(* (candidate lists, experiment counts, r_max): each scheme ranges over
   1-3 candidate usages of 1-2 µops each, over 3 ports. *)
let partial_gen =
  let open QCheck2.Gen in
  let portset =
    map
      (fun bits ->
         Portset.of_list
           (List.filter (fun p -> bits land (1 lsl p) <> 0)
              (List.init random_ports Fun.id)))
      (int_range 1 ((1 lsl random_ports) - 1))
  in
  let usage = list_size (int_range 1 2) (pair portset (int_range 1 2)) in
  let candidates = list_size (int_range 1 3) usage in
  triple
    (list_repeat num_random_schemes candidates)
    (list_repeat num_random_schemes (int_range 0 3))
    (int_range 1 5)

let build_bounds candidate_lists =
  let b = Bounds.create ~num_ports:random_ports in
  List.iteri (fun i cands -> Bounds.set_candidates b (scheme i) cands)
    candidate_lists;
  b

let build_experiment counts =
  Experiment.of_counts (List.mapi (fun i n -> (scheme i, n)) counts)

(* Every completion: one candidate per scheme, as a concrete mapping. *)
let completions candidate_lists =
  List.fold_left
    (fun acc (i, cands) ->
       List.concat_map
         (fun partial -> List.map (fun c -> (i, c) :: partial) cands)
         acc)
    [ [] ]
    (List.mapi (fun i c -> (i, c)) candidate_lists)
  |> List.map (fun rows ->
      let m = Mapping.create ~num_ports:random_ports in
      List.iter (fun (i, usage) -> Mapping.set m (scheme i) usage) rows;
      m)

let prop_interval_sound =
  QCheck2.Test.make
    ~name:"every completion's exact tp lies in the interval" ~count:200
    partial_gen
    (fun (candidate_lists, counts, r_max) ->
       let e = build_experiment counts in
       QCheck2.assume (not (Experiment.is_empty e));
       let b = build_bounds candidate_lists in
       let iv = Bounds.inverse_bounded ~r_max b e in
       Rat.compare iv.Bounds.lo iv.Bounds.hi <= 0
       && List.for_all
            (fun m ->
               let v = Throughput.inverse_bounded ~r_max m e in
               Rat.compare iv.Bounds.lo v <= 0
               && Rat.compare v iv.Bounds.hi <= 0)
            (completions candidate_lists))

let prop_point_equals_exact =
  QCheck2.Test.make
    ~name:"singleton candidates give the exact oracle as a point" ~count:200
    partial_gen
    (fun (candidate_lists, counts, r_max) ->
       let e = build_experiment counts in
       QCheck2.assume (not (Experiment.is_empty e));
       let m = Mapping.create ~num_ports:random_ports in
       List.iteri (fun i cands -> Mapping.set m (scheme i) (List.hd cands))
         candidate_lists;
       let iv = Bounds.inverse_bounded ~r_max (Bounds.of_mapping m) e in
       Bounds.is_point iv
       && Rat.equal iv.Bounds.lo (Throughput.inverse_bounded ~r_max m e))

let prop_matches_naive_reference =
  QCheck2.Test.make
    ~name:"memoized interval = naive subset-enumeration interval" ~count:200
    partial_gen
    (fun (candidate_lists, counts, _) ->
       let e = build_experiment counts in
       QCheck2.assume (not (Experiment.is_empty e));
       let b = build_bounds candidate_lists in
       let iv = Bounds.inverse b e in
       let candidates s =
         let rec find i =
           if i >= num_random_schemes then raise Not_found
           else if Scheme.equal (scheme i) s then List.nth candidate_lists i
           else find (i + 1)
         in
         find 0
       in
       let lo, hi = Throughput.inverse_interval ~candidates e in
       Rat.equal iv.Bounds.lo lo && Rat.equal iv.Bounds.hi hi)

(* ------------------------------------------------------------------ *)
(* Refuter                                                             *)
(* ------------------------------------------------------------------ *)

let toy_refuter () =
  Mapcheck.Refuter.create ~num_ports:3 ~r_max:toy_r_max
    (List.map
       (fun (s, spec) ->
          match spec with
          | Encoding.Proper c ->
            (s, Mapcheck.proper_candidates ~num_ports:3 c)
          | Encoding.Improper _ -> assert false)
       toy_specs)

let test_statically_determined () =
  let r = toy_refuter () in
  (* Every c-port candidate of a Proper-c singleton benchmark gives the
     same 1/c, so the measurement is statically determined... *)
  Alcotest.(check (option rat)) "add singleton" (Some (Rat.of_ints 1 2))
    (Mapcheck.Refuter.statically_determined r (Experiment.singleton add));
  Alcotest.(check (option rat)) "fma singleton" (Some (Rat.of_int 1))
    (Mapcheck.Refuter.statically_determined r (Experiment.singleton fma));
  (* ... while a pair depends on whether the two port sets overlap. *)
  Alcotest.(check (option rat)) "pair undetermined" None
    (Mapcheck.Refuter.statically_determined r
       (Experiment.of_list [ add; mul ]))

let test_observe_refutes_soundly () =
  let truth = toy_truth () in
  let config = toy_config () in
  let r = toy_refuter () in
  let observe e =
    ignore (Mapcheck.Refuter.observe r e (Cegis.modeled_inverse config truth e))
  in
  observe (Experiment.of_counts [ (add, 2); (fma, 1) ]);
  observe (Experiment.of_list [ add; mul ]);
  observe (Experiment.of_counts [ (mul, 2); (fma, 1) ]);
  (* Whatever was refuted, the ground-truth rows must survive. *)
  List.iter
    (fun s ->
       match Mapcheck.Refuter.surviving r s with
       | None -> Alcotest.failf "%s lost all candidates" (Scheme.name s)
       | Some cands ->
         Alcotest.(check bool)
           (Scheme.name s ^ " truth survives")
           true
           (List.exists
              (fun u -> Mapping.equal_usage u (Mapping.usage truth s))
              cands))
    [ add; mul; fma ]

let test_observe_refutes_determined () =
  (* With both schemes free the intervals stay wide and nothing is
     refutable; once add and mul are pinned (as in a delta session, where
     the frozen rows are known), an observation of [2 fma + 4 mul] = 3
     pins fma off port 0: fma={0} yields exactly 2 there. *)
  let truth = toy_truth () in
  let r =
    Mapcheck.Refuter.create ~num_ports:3 ~r_max:toy_r_max
      [ (add, [ Mapping.usage truth add ]); (mul, [ Mapping.usage truth mul ]);
        (fma, Mapcheck.proper_candidates ~num_ports:3 1) ]
  in
  let e = Experiment.of_counts [ (fma, 2); (mul, 4) ] in
  let v = Throughput.inverse_bounded ~r_max:toy_r_max truth e in
  Alcotest.check rat "observed value" (Rat.of_int 3) v;
  let refuted = Mapcheck.Refuter.observe r e v in
  Alcotest.(check bool) "fma={0} refuted" true
    (List.exists
       (fun (s, u) ->
          Scheme.equal s fma
          && Mapping.equal_usage u [ (Portset.singleton 0, 1) ])
       refuted);
  Alcotest.(check int) "refuted count" 1 (Mapcheck.Refuter.refuted_count r);
  match Mapcheck.Refuter.surviving r fma with
  | Some cands ->
    Alcotest.(check int) "two fma candidates left" 2 (List.length cands);
    Alcotest.(check bool) "truth survives" true
      (List.exists
         (fun u -> Mapping.equal_usage u (Mapping.usage truth fma))
         cands)
  | None -> Alcotest.fail "fma untracked"

(* ------------------------------------------------------------------ *)
(* Auditor                                                             *)
(* ------------------------------------------------------------------ *)

let show diags =
  String.concat "\n" (List.map Pmi_diag.Diag.to_string diags)

let check_no_errors label diags =
  match Mapcheck.errors diags with
  | [] -> ()
  | errors -> Alcotest.failf "%s:\n%s" label (show errors)

let test_builtin_clean () =
  let diags = Mapcheck.builtin () in
  check_no_errors "shipped ground-truth mappings" diags;
  List.iter (fun d -> Printf.printf "%s\n" (Pmi_diag.Diag.to_string d)) diags

(* Observations of the true mapping over singletons and weighted pairs —
   rich enough that each seeded mutation below shifts at least one
   value beyond the ε tolerance. *)
let truth_observations truth =
  let schemes = [ add; mul; fma ] in
  let experiments =
    List.concat_map
      (fun s ->
         [ Experiment.singleton s; Experiment.of_counts [ (s, 2) ];
           Experiment.of_counts [ (s, 4) ] ])
      schemes
    @ List.concat_map
        (fun a ->
           List.concat_map
             (fun b ->
                if Scheme.id a < Scheme.id b then
                  [ Experiment.of_list [ a; b ];
                    Experiment.of_counts [ (a, 2); (b, 1) ];
                    Experiment.of_counts [ (a, 1); (b, 2) ] ]
                else [])
             schemes)
        schemes
  in
  List.map
    (fun e -> (e, Throughput.inverse_bounded ~r_max:toy_r_max truth e))
    experiments

let audit_against observations m =
  Mapcheck.audit_mapping ~against:observations ~r_max:toy_r_max
    ~subject:"mutant" m

let test_truth_consistent () =
  let truth = toy_truth () in
  check_no_errors "truth vs its own observations"
    (audit_against (truth_observations truth) truth)

let test_mutations_flagged () =
  let truth = toy_truth () in
  let observations = truth_observations truth in
  let mutate label scheme usage =
    let m = toy_truth () in
    Mapping.set m scheme usage;
    let diags = audit_against observations m in
    if
      not
        (List.exists
           (fun d -> d.Mapcheck.rule = "counter-inconsistent")
           (Mapcheck.errors diags))
    then
      Alcotest.failf "mutation %s not flagged as counter-inconsistent:\n%s"
        label (show diags)
  in
  (* Port identity: fma on the wrong (but same-arity) port. *)
  mutate "fma {2}->{0}" fma [ (Portset.singleton 0, 1) ];
  (* Cardinality: add loses a port. *)
  mutate "add {0,1}->{0}" add [ (Portset.singleton 0, 1) ];
  (* Multiplicity: fma doubles its µop. *)
  mutate "fma x1->x2" fma [ (Portset.singleton 2, 2) ];
  (* Port-set shift that is not a permutation of the whole mapping. *)
  mutate "mul {1,2}->{0,1}" mul [ (Portset.of_list [ 0; 1 ], 1) ]

let test_dominance () =
  let truth = toy_truth () in
  Alcotest.(check (list (pair int int))) "toy has no interchangeable pair"
    [] (Mapcheck.interchangeable_ports truth);
  let m = Mapping.create ~num_ports:4 in
  Mapping.set m add [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set m mul [ (Portset.of_list [ 0; 1 ], 1) ];
  Alcotest.(check (list (pair int int))) "unconstrained pairs"
    [ (0, 1); (2, 3) ]
    (Mapcheck.interchangeable_ports m);
  (* fma confined to port 1 while add spans {0,1}: port 1's µops always
     admit port 1... dominance is about confinement: everything that can
     run confined to 0 can also run on 1 and not conversely. *)
  let d = Mapping.create ~num_ports:2 in
  Mapping.set d add [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set d fma [ (Portset.singleton 1, 1) ];
  Alcotest.(check (list (pair int int))) "dominated pair" [ (0, 1) ]
    (Mapcheck.dominated_ports d)

(* ------------------------------------------------------------------ *)
(* CEGIS equivalence: --mapcheck is a pure optimisation                *)
(* ------------------------------------------------------------------ *)

let infer_toy config =
  let truth = toy_truth () in
  let measure e = Cegis.modeled_inverse config truth e in
  match Cegis.infer ~config ~measure ~specs:toy_specs () with
  | Cegis.Converged (m, stats) -> (m, stats)
  | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
    Alcotest.fail "toy CEGIS failed to converge"

let check_same_mapping label m1 m2 =
  List.iter
    (fun s ->
       Alcotest.(check string)
         (Printf.sprintf "%s: %s" label (Scheme.name s))
         (Mapping.usage_to_string (Mapping.usage m1 s))
         (Mapping.usage_to_string (Mapping.usage m2 s)))
    [ add; mul; fma ]

let test_cegis_equivalence () =
  let m_off, s_off = infer_toy (toy_config ()) in
  let m_on, s_on = infer_toy (toy_config ~mapcheck:true ()) in
  check_same_mapping "plain" m_off m_on;
  let n_off = List.length s_off.Cegis.observations in
  let n_on = List.length s_on.Cegis.observations in
  if n_on >= n_off then
    Alcotest.failf "mapcheck did not save measurements: %d -> %d" n_off n_on;
  Alcotest.(check bool) "episodes counted" true (s_on.Cegis.sat_episodes > 0)

let test_cegis_equivalence_certified () =
  let m_off, _ = infer_toy (toy_config ~certify:true ()) in
  let m_on, s_on = infer_toy (toy_config ~mapcheck:true ~certify:true ()) in
  check_same_mapping "certified" m_off m_on;
  Alcotest.(check bool) "still saves measurements" true
    (List.length s_on.Cegis.observations > 0)

let test_delta_equivalence () =
  let truth = toy_truth () in
  let base = [ (add, Encoding.Proper 2); (mul, Encoding.Proper 2) ] in
  let run mapcheck =
    let config =
      { (toy_config ~mapcheck ()) with Cegis.symmetry_breaking = false }
    in
    let measure e = Cegis.modeled_inverse config truth e in
    let base_mapping =
      match Cegis.infer ~config ~measure ~specs:base () with
      | Cegis.Converged (m, _) -> m
      | _ -> Alcotest.fail "delta base inference failed"
    in
    match
      Cegis.infer_delta ~config ~measure ~mapping:base_mapping ~specs:base
        ~updates:[ (fma, Encoding.Proper 1) ]
        ()
    with
    | Cegis.Delta_applied (Cegis.Converged (m, stats)) -> (m, stats)
    | _ -> Alcotest.fail "delta flush failed to converge"
  in
  let m_off, _ = run false in
  let m_on, _ = run true in
  check_same_mapping "delta" m_off m_on

let test_delta_symmetry_facts () =
  (* A 4-port base whose frozen rows admit the (0,1) and (2,3) swaps:
     with --mapcheck the pairs are re-fed as ordering facts over the
     batch row, so the indistinguishable fma ∈ {0} vs {1} ambiguity
     resolves deterministically to the lex-smaller port 0. *)
  let truth = Mapping.create ~num_ports:4 in
  Mapping.set truth add [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set truth mul [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set truth fma [ (Portset.singleton 0, 1) ];
  let config =
    { Cegis.default_config with
      Cegis.num_ports = 4; r_max = 5; max_experiment_size = 4;
      symmetry_breaking = false; mapcheck = true }
  in
  let measure e = Cegis.modeled_inverse config truth e in
  let base = [ (add, Encoding.Proper 2); (mul, Encoding.Proper 2) ] in
  let base_mapping = Mapping.create ~num_ports:4 in
  Mapping.set base_mapping add (Mapping.usage truth add);
  Mapping.set base_mapping mul (Mapping.usage truth mul);
  match
    Cegis.infer_delta ~config ~measure ~mapping:base_mapping ~specs:base
      ~updates:[ (fma, Encoding.Proper 1) ]
      ()
  with
  | Cegis.Delta_applied (Cegis.Converged (m, _)) ->
    Alcotest.(check string) "fma pinned to the lex-smaller port" "[0]"
      (Mapping.usage_to_string (Mapping.usage m fma))
  | _ -> Alcotest.fail "symmetric delta flush failed to converge"

(* ------------------------------------------------------------------ *)
(* Hardening pins: Mapping_io and Diff                                 *)
(* ------------------------------------------------------------------ *)

let test_duplicate_row_rejected () =
  let resolve = Mapping_io.resolver toy_catalog in
  let text =
    "ports 3\n\
     scheme \"add <GPR[64]>, <GPR[64]>\" 1x[0,1]\n\
     scheme \"add <GPR[64]>, <GPR[64]>\" 1x[2]\n"
  in
  match Mapping_io.of_string ~resolve text with
  | Error e ->
    Alcotest.(check int) "points at the second row" 3 e.Mapping_io.line
  | Ok _ -> Alcotest.fail "duplicate scheme row accepted"

let test_out_of_range_port_is_error () =
  let resolve = Mapping_io.resolver toy_catalog in
  let text = "ports 3\nscheme \"add <GPR[64]>, <GPR[64]>\" 1x[7]\n" in
  match Mapping_io.of_string ~resolve text with
  | Error (_ : Mapping_io.error) -> ()
  | Ok _ -> Alcotest.fail "out-of-range port accepted"

let test_diff_empty_agreement () =
  let empty () = Mapping.create ~num_ports:3 in
  let d = Diff.compute ~left:(empty ()) ~right:(empty ()) in
  Alcotest.(check (float 0.0)) "vacuous agreement is total" 1.0
    (Diff.agreement_ratio d)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mapcheck"
    [ ("intervals",
       qsuite
         [ prop_interval_sound; prop_point_equals_exact;
           prop_matches_naive_reference ]);
      ("refuter",
       [ Alcotest.test_case "statically determined singletons" `Quick
           test_statically_determined;
         Alcotest.test_case "observe refutes soundly" `Quick
           test_observe_refutes_soundly;
         Alcotest.test_case "observe refutes in determined context" `Quick
           test_observe_refutes_determined ]);
      ("auditor",
       [ Alcotest.test_case "shipped mappings clean" `Quick test_builtin_clean;
         Alcotest.test_case "truth consistent with itself" `Quick
           test_truth_consistent;
         Alcotest.test_case "seeded mutations flagged" `Quick
           test_mutations_flagged;
         Alcotest.test_case "dominance analysis" `Quick test_dominance ]);
      ("cegis",
       [ Alcotest.test_case "mapcheck preserves the mapping" `Quick
           test_cegis_equivalence;
         Alcotest.test_case "certified run unchanged" `Quick
           test_cegis_equivalence_certified;
         Alcotest.test_case "delta equivalence" `Quick test_delta_equivalence;
         Alcotest.test_case "delta symmetry facts" `Quick
           test_delta_symmetry_facts ]);
      ("hardening",
       [ Alcotest.test_case "duplicate scheme row rejected" `Quick
           test_duplicate_row_rejected;
         Alcotest.test_case "out-of-range port is a parse error" `Quick
           test_out_of_range_port_is_error;
         Alcotest.test_case "empty diff agreement ratio" `Quick
           test_diff_empty_agreement ]) ]
