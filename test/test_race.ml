(* The concurrency sanitizer: detector soundness on planted races,
   cleanliness of the instrumented primitives under every small schedule
   permutation, the portfolio solve with learnt-import racing, and the
   shared diagnostics schema.

   Every test runs with the detector enabled and (mostly) in deterministic
   replay mode: the pool serializes tasks in seeded permutation order while
   the vector clocks see only fork/join structure, so races are found — or
   proven absent — schedule by schedule, without trusting the OS
   scheduler.  This suite is also wired as `dune build @sanitize`. *)

module Race = Pmi_diag.Race
module Diag = Pmi_diag.Diag
module Pool = Pmi_parallel.Pool
module Sat = Pmi_smt.Sat
module Lit = Pmi_smt.Lit
module Solver = Pmi_smt.Solver
module Harness = Pmi_measure.Harness
module Machine = Pmi_machine.Machine
module Catalog = Pmi_isa.Catalog
module Operand = Pmi_isa.Operand
module Iclass = Pmi_isa.Iclass
module Experiment = Pmi_portmap.Experiment

(* Run [f] with the detector on and the given replay schedule, restore
   everything, and return the reports it accumulated. *)
let with_detector ?schedule f =
  Race.enable ();
  (match schedule with
   | Some seed -> Pool.set_schedule (Pool.Replay seed)
   | None -> Pool.set_schedule Pool.Os);
  let finish () =
    Pool.set_schedule Pool.Os;
    Race.disable ()
  in
  (match f () with
   | () -> ()
   | exception e -> finish (); raise e);
  finish ();
  Race.reports ()

let expect_clean label reports =
  if reports <> [] then
    Alcotest.failf "%s: unexpected race: %s" label
      (Diag.to_string (List.hd (Race.to_diags reports)))

(* ------------------------------------------------------------------ *)
(* Permutation machinery                                               *)

let test_permutations () =
  Alcotest.(check int) "3! schedules" 6 (Pool.permutations 3);
  let seen = Hashtbl.create 16 in
  for seed = 0 to 5 do
    let p = Pool.permutation ~seed 3 in
    Alcotest.(check int) "length" 3 (Array.length p);
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is a permutation" [| 0; 1; 2 |] sorted;
    Hashtbl.replace seen (Array.to_list p) ()
  done;
  Alcotest.(check int) "all 6 orders distinct" 6 (Hashtbl.length seen);
  (* The shuffle branch for unenumerable task counts still permutes. *)
  let big = Pool.permutation ~seed:3 25 in
  let sorted = Array.copy big in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "25-element permutation"
    (Array.init 25 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Detector soundness: planted races must be reported                  *)

let test_planted_write_write () =
  (* Every schedule of the two writers must report: vector clocks make the
     verdict order-independent. *)
  for seed = 0 to 1 do
    let reports =
      with_detector ~schedule:seed (fun () ->
          let cell = Race.tracked_ref ~name:"planted.cell" 0 in
          Pool.parallel_for ~domains:2 ~n:2 (fun i -> Race.write cell i))
    in
    match reports with
    | [ r ] ->
      Alcotest.(check string) "kind" "write-write"
        (Race.kind_to_string r.Race.kind);
      Alcotest.(check bool) "not lockset-saved" false r.Race.lockset_saved;
      (match Race.to_diags reports with
       | [ d ] ->
         Alcotest.(check bool) "error severity" true
           (d.Diag.severity = Diag.Error);
         Alcotest.(check string) "rule" "data-race" d.Diag.rule
       | ds -> Alcotest.failf "expected one diag, got %d" (List.length ds))
    | rs ->
      Alcotest.failf "schedule %d: expected exactly one report, got %d" seed
        (List.length rs)
  done

let test_planted_read_write () =
  let reports =
    with_detector ~schedule:0 (fun () ->
        let cell = Race.tracked_ref ~name:"planted.rw" 0 in
        Pool.parallel_for ~domains:2 ~n:2 (fun i ->
            if i = 0 then ignore (Race.read cell) else Race.write cell 1))
  in
  Alcotest.(check int) "one report" 1 (List.length reports)

let test_report_dedup () =
  (* A racy counter bumped many times reports once per (location, kind). *)
  let reports =
    with_detector ~schedule:0 (fun () ->
        let cell = Race.tracked_ref ~name:"planted.loop" 0 in
        Pool.parallel_for ~domains:4 ~n:4 (fun _ ->
            for _ = 1 to 25 do
              Race.write cell (Race.read cell + 1)
            done))
  in
  Alcotest.(check bool) "at most one report per kind" true
    (List.length reports <= 3 && reports <> [])

(* ------------------------------------------------------------------ *)
(* Synchronization must silence the detector                           *)

let test_with_lock_clean () =
  for seed = 0 to 1 do
    expect_clean "locked counter"
      (with_detector ~schedule:seed (fun () ->
           let l = Race.create_lock "test.lock" in
           let cell = Race.tracked_ref ~name:"locked.cell" 0 in
           Pool.parallel_for ~domains:2 ~n:2 (fun _ ->
               Race.with_lock l (fun () ->
                   Race.write cell (Race.read cell + 1)))))
  done

let test_tracked_atomic_clean () =
  for seed = 0 to 5 do
    let counter = ref None in
    expect_clean "atomic counter"
      (with_detector ~schedule:seed (fun () ->
           let c = Race.tracked_atomic ~name:"atomic.counter" 0 in
           counter := Some c;
           Pool.parallel_for ~domains:3 ~n:3 (fun _ ->
               ignore (Race.afetch_add c 1))));
    match !counter with
    | Some c -> Alcotest.(check int) "no lost updates" 3 (Race.aget c)
    | None -> assert false
  done

let test_disjoint_slots_clean () =
  expect_clean "disjoint map_array"
    (with_detector ~schedule:2 (fun () ->
         let out = Pool.map_array ~domains:4 (fun x -> x * x) (Array.init 8 Fun.id) in
         Alcotest.(check (array int)) "squares"
           (Array.init 8 (fun i -> i * i)) out))

let test_lockset_fallback_warning () =
  (* Synchronization outside the detector's view: [holding] declares the
     lockset without a happens-before edge, so the pair downgrades to a
     discipline warning instead of a race error. *)
  let reports =
    with_detector ~schedule:0 (fun () ->
        let l = Race.create_lock "external.lock" in
        let cell = Race.tracked_ref ~name:"disciplined.cell" 0 in
        Pool.parallel_for ~domains:2 ~n:2 (fun i ->
            Race.holding l (fun () -> Race.write cell i)))
  in
  match reports with
  | [ r ] ->
    Alcotest.(check bool) "lockset saved" true r.Race.lockset_saved;
    (match Race.to_diags reports with
     | [ d ] ->
       Alcotest.(check string) "rule" "lock-discipline" d.Diag.rule;
       Alcotest.(check bool) "warning severity" true
         (d.Diag.severity = Diag.Warning)
     | _ -> Alcotest.fail "expected one diag")
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Schedule sensitivity: replay finds order-dependent races            *)

let test_fence_order_dependent () =
  (* fence() only orders fence-before-fence: writer-then-reader is clean,
     reader-then-writer races.  This is exactly the class of bug replay
     exists for — one schedule is fine, the other is not. *)
  let run seed =
    with_detector ~schedule:seed (fun () ->
        let cell = Race.tracked_ref ~name:"fenced.cell" 0 in
        let tasks =
          [| (fun () -> Race.write cell 1; Race.fence ());
             (fun () -> Race.fence (); ignore (Race.read cell)) |]
        in
        Pool.parallel_for ~domains:2 ~n:2 (fun i -> tasks.(i) ()))
  in
  expect_clean "writer scheduled first" (run 0);
  Alcotest.(check int) "reader scheduled first races" 1
    (List.length (run 1))

(* ------------------------------------------------------------------ *)
(* Pool primitives under all small permutations                        *)

let test_race_winner_stable () =
  (* All tasks produce a value; the winner must be the first task in
     permutation order, losers must not overwrite the slot, and the
     winner-slot protocol must be race-free.  Tasks deliberately ignore
     [stop] to act as worst-case late losers. *)
  for seed = 0 to Pool.permutations 3 - 1 do
    let order = Pool.permutation ~seed 3 in
    let result = ref None in
    expect_clean "race slot"
      (with_detector ~schedule:seed (fun () ->
           let tasks = Array.init 3 (fun i -> fun _stop -> Some i) in
           result := Pool.race ~domains:3 tasks));
    Alcotest.(check (option int))
      (Printf.sprintf "winner is permutation head (seed %d)" seed)
      (Some order.(0)) !result
  done

let test_race_stop_polled () =
  (* A loser that *does* poll [stop] must exit promptly: under replay the
     losers are invoked with an always-true predicate, so a polling task
     never reaches its body. *)
  let body_runs = Atomic.make 0 in
  let result = ref None in
  expect_clean "stopping race"
    (with_detector ~schedule:0 (fun () ->
         let tasks =
           Array.init 3 (fun i ->
               fun stop ->
                 if stop () then None
                 else begin
                   Atomic.incr body_runs;
                   Some i
                 end)
         in
         result := Pool.race ~domains:3 tasks));
  Alcotest.(check (option int)) "first wins" (Some 0) !result;
  Alcotest.(check int) "losers never ran their body" 1 (Atomic.get body_runs)

let test_find_first_index_minimal () =
  (* 4 elements, hits at 1 and 3: every one of the 24 schedules must agree
     on the minimal index, with a clean best-slot protocol. *)
  let arr = [| 10; 7; 12; 7 |] in
  for seed = 0 to Pool.permutations 4 - 1 do
    let result = ref None in
    expect_clean "find_first_index"
      (with_detector ~schedule:seed (fun () ->
           result := Pool.find_first_index ~domains:4 (fun x -> x = 7) arr));
    Alcotest.(check (option int)) "minimal index" (Some 1) !result
  done

let test_parallel_for_exception () =
  (* Exceptions propagate out of replay mode like they do from domains. *)
  Race.enable ();
  Pool.set_schedule (Pool.Replay 1);
  let raised =
    match Pool.parallel_for ~domains:2 ~n:2 (fun i ->
        if i = 0 then failwith "boom")
    with
    | () -> false
    | exception Failure m -> m = "boom"
  in
  Pool.set_schedule Pool.Os;
  Race.disable ();
  Alcotest.(check bool) "exception propagated" true raised

(* ------------------------------------------------------------------ *)
(* The portfolio under replay                                          *)

let random_clauses ~vars ~clauses ~state =
  let state = ref state in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  List.init clauses (fun _ ->
      let rec pick acc =
        if List.length acc = 3 then acc
        else
          let v = next vars in
          if List.exists (fun l -> Lit.var l = v) acc then pick acc
          else pick (Lit.make v (next 2 = 0) :: acc)
      in
      pick [])

let test_portfolio_replay () =
  let clauses = random_clauses ~vars:50 ~clauses:205 ~state:0xBEEF in
  let solve () =
    let s = Sat.create () in
    for _ = 1 to 50 do
      ignore (Sat.fresh_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    match Solver.solve_portfolio ~domains:4 ~check:(fun _ -> []) s with
    | Solver.Sat _ -> true
    | Solver.Unsat -> false
  in
  let reference = solve () in
  (* Diversified clones racing + learnt import into the parent, across
     six schedules: verdicts agree, and neither the winner slot nor the
     parent solver is written by a late loser. *)
  for seed = 0 to 5 do
    let verdict = ref reference in
    expect_clean "portfolio"
      (with_detector ~schedule:seed (fun () -> verdict := solve ()));
    Alcotest.(check bool)
      (Printf.sprintf "verdict stable (seed %d)" seed)
      reference !verdict
  done

let test_cubes_replay () =
  (* Cube-and-conquer adds two more pieces of shared state on top of the
     portfolio: the work-stealing cube queue and the cross-worker clause
     pool, both lock-protected.  A small conflict budget forces re-splits,
     so the queue sees concurrent pushes as well as pops.  Verdicts must
     be schedule-independent and every schedule race-free. *)
  let clauses = random_clauses ~vars:50 ~clauses:205 ~state:0xCAFE in
  let solve () =
    let s = Sat.create () in
    for _ = 1 to 50 do
      ignore (Sat.fresh_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    match
      Solver.solve_cubes ~domains:4 ~cubes:2 ~conflict_budget:64
        ~check:(fun _ -> [])
        s
    with
    | Solver.Sat _ -> true
    | Solver.Unsat -> false
  in
  let reference = solve () in
  for seed = 0 to 5 do
    let verdict = ref reference in
    expect_clean "cube-and-conquer"
      (with_detector ~schedule:seed (fun () -> verdict := solve ()));
    Alcotest.(check bool)
      (Printf.sprintf "verdict stable (seed %d)" seed)
      reference !verdict
  done

(* ------------------------------------------------------------------ *)
(* Harness and CEGIS shared state                                      *)

let toy_catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let test_harness_parallel_sweep () =
  (* The harness cache is lock-protected shared state: a 4-way sweep with
     repeated experiments must be race-free with exact counters. *)
  for seed = 0 to 2 do
    let stats = ref (0, 0, 0) in
    expect_clean "harness sweep"
      (with_detector ~schedule:seed (fun () ->
           let harness = Harness.create (Machine.create toy_catalog) in
           let schemes = Catalog.schemes toy_catalog in
           let exps =
             List.init 12 (fun i ->
                 Experiment.singleton schemes.(i mod Array.length schemes))
           in
           ignore (Pool.map_list ~domains:4 (Harness.cycles harness) exps);
           stats :=
             ( Harness.cache_hits harness,
               Harness.cache_misses harness,
               Harness.benchmarks_run harness )));
    let hits, misses, distinct = !stats in
    Alcotest.(check int) "queries accounted" 12 (hits + misses);
    Alcotest.(check int) "misses = distinct benchmarks" distinct misses;
    Alcotest.(check int) "three distinct experiments" 3 distinct
  done

let test_cegis_replay_clean () =
  let open Pmi_core in
  let add = Catalog.find toy_catalog 0
  and mul = Catalog.find toy_catalog 1
  and fma = Catalog.find toy_catalog 2 in
  let truth = Pmi_portmap.Mapping.create ~num_ports:3 in
  let both = Pmi_portmap.Portset.of_list in
  Pmi_portmap.Mapping.set truth add [ (both [ 0; 1 ], 1) ];
  Pmi_portmap.Mapping.set truth mul [ (both [ 1; 2 ], 1) ];
  Pmi_portmap.Mapping.set truth fma [ (Pmi_portmap.Portset.singleton 2, 1) ];
  let config =
    { Cegis.default_config with
      Cegis.num_ports = 3; r_max = 4; max_experiment_size = 3;
      symmetry_breaking = true; domains = 2 }
  in
  let measure e = Cegis.modeled_inverse config truth e in
  let specs =
    [ (add, Encoding.Proper 2); (mul, Encoding.Proper 2);
      (fma, Encoding.Proper 1) ]
  in
  for seed = 0 to 1 do
    expect_clean "parallel CEGIS"
      (with_detector ~schedule:seed (fun () ->
           match Cegis.infer ~config ~measure ~specs () with
           | Cegis.Converged _ -> ()
           | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
             Alcotest.fail "toy CEGIS did not converge"))
  done

let test_delta_replay_clean () =
  (* A parallel delta batch: the flush's validation sweep and SAT
     portfolio fan out over the pool while the session mutates the shared
     observation vector and lemma pool between sweeps — the delta-mode
     analogue of the plain CEGIS check above, run under deterministic
     schedule replay. *)
  let open Pmi_core in
  let add = Catalog.find toy_catalog 0
  and mul = Catalog.find toy_catalog 1
  and fma = Catalog.find toy_catalog 2 in
  let truth = Pmi_portmap.Mapping.create ~num_ports:3 in
  let both = Pmi_portmap.Portset.of_list in
  Pmi_portmap.Mapping.set truth add [ (both [ 0; 1 ], 1) ];
  Pmi_portmap.Mapping.set truth mul [ (both [ 1; 2 ], 1) ];
  Pmi_portmap.Mapping.set truth fma [ (Pmi_portmap.Portset.singleton 2, 1) ];
  let config =
    { Cegis.default_config with
      Cegis.num_ports = 3; r_max = 4; max_experiment_size = 3;
      symmetry_breaking = false; domains = 2 }
  in
  let measure e = Cegis.modeled_inverse config truth e in
  let base = [ (add, Encoding.Proper 2); (mul, Encoding.Proper 2) ] in
  for seed = 0 to 1 do
    expect_clean "parallel delta batch"
      (with_detector ~schedule:seed (fun () ->
           let mapping =
             match Cegis.infer ~config ~measure ~specs:base () with
             | Cegis.Converged (m, _) -> m
             | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
               Alcotest.fail "base inference did not converge"
           in
           match
             Cegis.infer_delta ~config ~measure ~mapping ~specs:base
               ~updates:[ (fma, Encoding.Proper 1) ]
               ()
           with
           | Cegis.Delta_applied (Cegis.Converged _) -> ()
           | Cegis.Delta_applied _ | Cegis.Delta_fallback _ ->
             Alcotest.fail "delta flush did not converge"))
  done

(* ------------------------------------------------------------------ *)
(* Off-mode and the shared diagnostics schema                          *)

let test_disabled_is_noop () =
  (* With the detector off nothing is recorded and the primitives behave
     like their plain counterparts. *)
  Race.clear_reports ();
  Alcotest.(check bool) "disabled" false (Race.enabled ());
  let cell = Race.tracked_ref ~name:"off.cell" 0 in
  Race.write cell 7;
  Alcotest.(check int) "ref" 7 (Race.read cell);
  let a = Race.tracked_atomic ~name:"off.atomic" 1 in
  ignore (Race.afetch_add a 2);
  Alcotest.(check int) "atomic" 3 (Race.aget a);
  Pool.parallel_for ~domains:2 ~n:4 (fun _ -> ());
  Alcotest.(check int) "no reports" 0 (List.length (Race.reports ()))

let test_diag_schema_shared () =
  (* The lint and race passes render through one module: same record type,
     same JSON schema. *)
  let d =
    Diag.make "data-race" Pmi_analysis.Lint.Error "x" "write-write race"
  in
  Alcotest.(check string) "lint renders via Diag" (Diag.to_json d)
    (Pmi_analysis.Lint.to_json d);
  let reports =
    with_detector ~schedule:0 (fun () ->
        let cell = Race.tracked_ref ~name:"x" 0 in
        Pool.parallel_for ~domains:2 ~n:2 (fun i -> Race.write cell i))
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Race.to_diags reports with
  | [ r ] ->
    let json = Diag.to_json r in
    List.iter
      (fun k ->
         Alcotest.(check bool) (k ^ " field present") true
           (contains json (Printf.sprintf "\"%s\":" k)))
      [ "rule"; "severity"; "subject"; "message" ];
    Alcotest.(check string) "summary line" "sanitize: 1 error(s), 0 warning(s)"
      (Diag.summary ~pass:"sanitize" [ r ])
  | _ -> Alcotest.fail "expected one diag"

let () =
  Alcotest.run "race"
    [ ("schedule",
       [ Alcotest.test_case "permutation decode" `Quick test_permutations;
         Alcotest.test_case "exception propagation" `Quick
           test_parallel_for_exception ]);
      ("detector",
       [ Alcotest.test_case "planted write-write" `Quick
           test_planted_write_write;
         Alcotest.test_case "planted read-write" `Quick
           test_planted_read_write;
         Alcotest.test_case "report dedup" `Quick test_report_dedup;
         Alcotest.test_case "with_lock clean" `Quick test_with_lock_clean;
         Alcotest.test_case "tracked atomic clean" `Quick
           test_tracked_atomic_clean;
         Alcotest.test_case "disjoint slots clean" `Quick
           test_disjoint_slots_clean;
         Alcotest.test_case "lockset fallback" `Quick
           test_lockset_fallback_warning;
         Alcotest.test_case "fence order-dependence" `Quick
           test_fence_order_dependent;
         Alcotest.test_case "disabled is a no-op" `Quick
           test_disabled_is_noop ]);
      ("pool",
       [ Alcotest.test_case "race winner stable" `Quick
           test_race_winner_stable;
         Alcotest.test_case "race losers stop" `Quick test_race_stop_polled;
         Alcotest.test_case "find_first_index minimal" `Quick
           test_find_first_index_minimal ]);
      ("stack",
       [ Alcotest.test_case "portfolio replay" `Quick test_portfolio_replay;
         Alcotest.test_case "cube-and-conquer replay" `Quick test_cubes_replay;
         Alcotest.test_case "harness sweep" `Quick
           test_harness_parallel_sweep;
         Alcotest.test_case "parallel CEGIS" `Slow test_cegis_replay_clean;
         Alcotest.test_case "parallel delta batch" `Slow
           test_delta_replay_clean;
         Alcotest.test_case "diag schema shared" `Quick
           test_diag_schema_shared ]) ]
