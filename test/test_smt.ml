open Pmi_smt

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let test_lit_encoding () =
  let l = Lit.pos 5 in
  Alcotest.(check int) "var" 5 (Lit.var l);
  Alcotest.(check bool) "pos" true (Lit.is_pos l);
  let n = Lit.negate l in
  Alcotest.(check int) "neg var" 5 (Lit.var n);
  Alcotest.(check bool) "neg polarity" false (Lit.is_pos n);
  Alcotest.(check int) "double negate" l (Lit.negate n);
  Alcotest.(check int) "make" (Lit.neg_of_var 3) (Lit.make 3 false)

(* ------------------------------------------------------------------ *)
(* SAT solver unit tests                                               *)
(* ------------------------------------------------------------------ *)

let is_sat = function Sat.Sat _ -> true | Sat.Unsat -> false

let test_sat_trivial () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a ];
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "a true" true model.(a)
   | Sat.Unsat -> Alcotest.fail "unexpected unsat")

let test_sat_contradiction () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a ];
  Sat.add_clause s [ Lit.neg_of_var a ];
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  Alcotest.(check bool) "not okay" false (Sat.okay s)

let test_sat_implication_chain () =
  (* a & (a -> b) & (b -> c) & (c -> d): all forced true. *)
  let s = Sat.create () in
  let vars = Array.init 4 (fun _ -> Sat.fresh_var s) in
  Sat.add_clause s [ Lit.pos vars.(0) ];
  for i = 0 to 2 do
    Sat.add_clause s [ Lit.neg_of_var vars.(i); Lit.pos vars.(i + 1) ]
  done;
  match Sat.solve s with
  | Sat.Sat model ->
    Array.iter (fun v -> Alcotest.(check bool) "forced" true model.(v)) vars
  | Sat.Unsat -> Alcotest.fail "unexpected unsat"

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. *)
  let s = Sat.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.fresh_var s)) in
  for p = 0 to 2 do
    Sat.add_clause s [ Lit.pos v.(p).(0); Lit.pos v.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Sat.add_clause s [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s))

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.neg_of_var a; Lit.pos b ];
  (match Sat.solve ~assumptions:[ Lit.pos a; Lit.neg_of_var b ] s with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "assumptions should conflict");
  (* The solver must remain usable and satisfiable without assumptions. *)
  Alcotest.(check bool) "still sat" true (is_sat (Sat.solve s));
  match Sat.solve ~assumptions:[ Lit.pos a ] s with
  | Sat.Sat model -> Alcotest.(check bool) "b forced" true model.(b)
  | Sat.Unsat -> Alcotest.fail "should be sat under a"

let test_sat_incremental () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.(check bool) "sat" true (is_sat (Sat.solve s));
  Sat.add_clause s [ Lit.neg_of_var a ];
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "b" true model.(b)
   | Sat.Unsat -> Alcotest.fail "unexpected unsat");
  Sat.add_clause s [ Lit.neg_of_var b ];
  Alcotest.(check bool) "unsat after both" false (is_sat (Sat.solve s))

(* Property: agreement with brute force on random small CNFs. *)

let brute_force_sat num_vars clauses =
  let rec go assignment v =
    if v = num_vars then
      List.for_all
        (fun clause ->
           List.exists
             (fun l ->
                let value = assignment.(Lit.var l) in
                if Lit.is_pos l then value else not value)
             clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make num_vars false) 0

let cnf_gen =
  let open QCheck2.Gen in
  let num_vars = int_range 1 8 in
  num_vars >>= fun n ->
  let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
  let clause = list_size (int_range 1 4) lit in
  map (fun clauses -> (n, clauses)) (list_size (int_range 1 25) clause)

let prop_sat_matches_brute_force =
  QCheck2.Test.make ~name:"CDCL matches brute force" ~count:300 cnf_gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       let expected = brute_force_sat n clauses in
       match Sat.solve s with
       | Sat.Sat model ->
         (* The model must actually satisfy all clauses. *)
         expected
         && List.for_all
              (List.exists (fun l ->
                   if Lit.is_pos l then model.(Lit.var l)
                   else not model.(Lit.var l)))
              clauses
       | Sat.Unsat -> not expected)

(* Stress: random 3-SAT near the phase transition.  Whatever the verdict,
   a returned model must satisfy every clause, and the solver must finish
   (no watched-literal corruption, no lost clauses across restarts). *)
let prop_sat_3sat_stress =
  let gen =
    let open QCheck2.Gen in
    let n = 40 in
    let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
    let clause =
      map (fun (a, b, c) -> [ a; b; c ]) (triple lit lit lit)
    in
    map (fun clauses -> (n, clauses)) (list_repeat 170 clause)
  in
  QCheck2.Test.make ~name:"3-SAT stress: models verify" ~count:50 gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       match Sat.solve s with
       | Sat.Sat model ->
         List.for_all
           (List.exists (fun l ->
                if Lit.is_pos l then model.(Lit.var l) else not model.(Lit.var l)))
           clauses
       | Sat.Unsat -> true)

let pigeonhole s ~pigeons ~holes =
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.fresh_var s))
  in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done

let test_sat_pigeonhole_6_5 () =
  (* A harder UNSAT instance exercising clause learning and restarts. *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:6 ~holes:5;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  Alcotest.(check bool) "learned something" true (Sat.num_conflicts s > 0)

let test_sat_pigeonhole_family () =
  (* n+1 pigeons never fit n holes; n pigeons always do.  The UNSAT side
     scales exponentially for resolution, so this walks the engine through
     progressively heavier clause learning. *)
  for holes = 2 to 6 do
    let u = Sat.create () in
    pigeonhole u ~pigeons:(holes + 1) ~holes;
    Alcotest.(check bool)
      (Printf.sprintf "php %d/%d unsat" (holes + 1) holes)
      false (is_sat (Sat.solve u));
    let f = Sat.create () in
    pigeonhole f ~pigeons:holes ~holes;
    Alcotest.(check bool)
      (Printf.sprintf "php %d/%d sat" holes holes)
      true (is_sat (Sat.solve f))
  done

let test_sat_reduction_parity_pigeonhole () =
  (* php 8/7 crosses the first clause-database-reduction budget, so learnt
     clauses really are deleted; the verdict must not change. *)
  let run reduce =
    let s = Sat.create () in
    Sat.set_reduce_enabled s reduce;
    pigeonhole s ~pigeons:8 ~holes:7;
    let verdict = is_sat (Sat.solve s) in
    (verdict, Sat.stats s)
  in
  let verdict_on, stats_on = run true in
  let verdict_off, stats_off = run false in
  Alcotest.(check bool) "unsat with reduction" false verdict_on;
  Alcotest.(check bool) "unsat without reduction" false verdict_off;
  Alcotest.(check bool) "reduction fired" true (stats_on.Sat.deleted > 0);
  Alcotest.(check int) "no deletions when disabled" 0 stats_off.Sat.deleted

let test_sat_stats () =
  let s = Sat.create () in
  pigeonhole s ~pigeons:5 ~holes:4;
  ignore (Sat.solve s);
  let st = Sat.stats s in
  Alcotest.(check bool) "decisions" true (st.Sat.decisions > 0);
  Alcotest.(check bool) "propagations" true (st.Sat.propagations > 0);
  Alcotest.(check bool) "conflicts" true (st.Sat.conflicts > 0);
  Alcotest.(check bool) "learned" true (st.Sat.learned > 0);
  Alcotest.(check bool) "glue recorded" true (st.Sat.max_lbd > 0);
  Alcotest.(check int) "num_conflicts agrees" st.Sat.conflicts
    (Sat.num_conflicts s);
  Alcotest.(check bool) "zero is neutral" true
    (Sat.add_stats Sat.zero_stats st = st);
  let doubled = Sat.add_stats st st in
  Alcotest.(check int) "sums conflicts" (2 * st.Sat.conflicts)
    doubled.Sat.conflicts;
  Alcotest.(check int) "maxes glue" st.Sat.max_lbd doubled.Sat.max_lbd

(* Reference DPLL (unit propagation + splitting) for differential fuzzing
   on instances too large to enumerate. *)

let dpll_assign l clauses =
  let neg = Lit.negate l in
  List.filter_map
    (fun c ->
       if List.mem l c then None
       else Some (List.filter (fun l' -> l' <> neg) c))
    clauses

let rec dpll clauses =
  if List.exists (( = ) []) clauses then false
  else
    match List.find_opt (fun c -> List.compare_length_with c 1 = 0) clauses with
    | Some [ l ] -> dpll (dpll_assign l clauses)
    | Some _ -> assert false
    | None ->
      (match clauses with
       | [] -> true
       | (l :: _) :: _ ->
         dpll (dpll_assign l clauses) || dpll (dpll_assign (Lit.negate l) clauses)
       | [] :: _ -> assert false)

let prop_sat_matches_dpll =
  let gen =
    let open QCheck2.Gen in
    let n = 20 in
    let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
    let clause = map (fun (a, b, c) -> [ a; b; c ]) (triple lit lit lit) in
    (* ~4.3 clauses per variable sits at the random-3-SAT phase transition,
       where both verdicts occur and the search is hardest. *)
    map (fun clauses -> (n, clauses)) (list_repeat 86 clause)
  in
  QCheck2.Test.make ~name:"CDCL matches reference DPLL on random 3-SAT"
    ~count:40 gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       let expected = dpll clauses in
       match Sat.solve s with
       | Sat.Sat model ->
         expected
         && List.for_all
              (List.exists (fun l ->
                   if Lit.is_pos l then model.(Lit.var l)
                   else not model.(Lit.var l)))
              clauses
       | Sat.Unsat -> not expected)

(* Property: incremental sequences of add_clause / solve ~assumptions give
   the same verdicts whether clause-database reduction is on or off, and
   whether solving goes through [Sat.solve] or the domain-parallel
   portfolio. *)

let script_gen =
  let open QCheck2.Gen in
  int_range 6 12 >>= fun n ->
  let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  let step =
    pair (list_size (int_range 0 6) clause) (list_size (int_range 0 2) lit)
  in
  map (fun steps -> (n, steps)) (list_size (int_range 2 5) step)

let prop_reduction_portfolio_parity =
  QCheck2.Test.make
    ~name:"reduction/portfolio never change incremental verdicts" ~count:40
    script_gen
    (fun (n, steps) ->
       let mk reduce =
         let s = Sat.create () in
         Sat.set_reduce_enabled s reduce;
         for _ = 1 to n do
           ignore (Sat.fresh_var s)
         done;
         s
       in
       let with_reduction = mk true in
       let without_reduction = mk false in
       let via_portfolio = mk true in
       let all_clauses = ref [] in
       List.for_all
         (fun (clauses, assumptions) ->
            List.iter
              (fun c ->
                 all_clauses := c :: !all_clauses;
                 Sat.add_clause with_reduction c;
                 Sat.add_clause without_reduction c;
                 Sat.add_clause via_portfolio c)
              clauses;
            let va = is_sat (Sat.solve ~assumptions with_reduction) in
            let vb = is_sat (Sat.solve ~assumptions without_reduction) in
            let vc =
              match
                Solver.solve_portfolio ~assumptions ~domains:3
                  ~check:(fun _ -> [])
                  via_portfolio
              with
              | Solver.Sat model ->
                (* A portfolio model must satisfy every clause added so
                   far (assumptions aside, which only constrain further). *)
                List.for_all
                  (List.exists (fun l ->
                       if Lit.is_pos l then model.(Lit.var l)
                       else not model.(Lit.var l)))
                  !all_clauses
                || QCheck2.Test.fail_report "portfolio model violates a clause"
              | Solver.Unsat -> false
            in
            va = vb && vb = vc)
         steps)

let test_portfolio_pigeonhole () =
  (* The portfolio must agree with the sequential solver on an UNSAT
     instance hard enough that members genuinely race. *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:7 ~holes:6;
  match
    Solver.solve_portfolio ~domains:4 ~check:(fun _ -> []) s
  with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "php 7/6 is unsat"

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer                                                    *)
(* ------------------------------------------------------------------ *)

module Drat = Pmi_analysis.Drat

let satisfies model clause =
  List.exists
    (fun l -> if Lit.is_pos l then model.(Lit.var l) else not model.(Lit.var l))
    clause

let test_cube_cover () =
  (* The cover must be an exhaustive, pairwise-disjoint case split: every
     total assignment of the split variables is consistent with exactly one
     cube. *)
  let s = Sat.create () in
  let v = Array.init 6 (fun _ -> Sat.fresh_var s) in
  Sat.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Sat.add_clause s [ Lit.neg_of_var v.(1); Lit.pos v.(2) ];
  Sat.add_clause s [ Lit.pos v.(2); Lit.pos v.(3); Lit.pos v.(4) ];
  let k = 3 in
  let cover = Solver.cube_cover ~k s in
  Alcotest.(check int) "2^k cubes" (1 lsl k) (List.length cover);
  let split = List.map Lit.var (List.hd cover) in
  List.iter
    (fun c ->
       Alcotest.(check (list int)) "same split variables" split
         (List.map Lit.var c))
    cover;
  let n = List.length split in
  for bits = 0 to (1 lsl n) - 1 do
    let value var =
      let i = ref 0 in
      List.iteri (fun j v' -> if v' = var then i := j) split;
      bits land (1 lsl !i) <> 0
    in
    let agreeing =
      List.filter
        (List.for_all (fun l -> value (Lit.var l) = Lit.is_pos l))
        cover
    in
    Alcotest.(check int)
      (Printf.sprintf "assignment %d hits exactly one cube" bits)
      1
      (List.length agreeing)
  done

let test_cube_cover_hint () =
  (* Hinted variables are split first, in hint order; variables already
     fixed at the root are skipped. *)
  let s = Sat.create () in
  let v = Array.init 5 (fun _ -> Sat.fresh_var s) in
  Sat.add_clause s [ Lit.pos v.(0) ];
  (match Sat.solve s with
   | Sat.Sat _ -> ()
   | Sat.Unsat -> Alcotest.fail "one unit clause is sat");
  let cover = Solver.cube_cover ~hint:[ v.(0); v.(3); v.(1) ] ~k:2 s in
  Alcotest.(check int) "4 cubes" 4 (List.length cover);
  Alcotest.(check (list int)) "hint order, root-fixed skipped"
    [ v.(3); v.(1) ]
    (List.map Lit.var (List.hd cover))

let test_cube_cover_assumptions () =
  (* Assumption variables must never be split on: delta-mode CEGIS pins
     frozen rows and activation literals through assumptions, and a split
     on one would yield a dead half-cube.  The cover skips them and tops
     itself up with free variables instead. *)
  let s = Sat.create () in
  let v = Array.init 6 (fun _ -> Sat.fresh_var s) in
  Sat.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Sat.add_clause s [ Lit.neg_of_var v.(0); Lit.pos v.(1) ];
  Sat.add_clause s [ Lit.pos v.(2); Lit.pos v.(3) ];
  Sat.add_clause s [ Lit.pos v.(4); Lit.pos v.(5) ];
  let assumptions = [ Lit.pos v.(0); Lit.neg_of_var v.(1) ] in
  let cover =
    Solver.cube_cover ~hint:[ v.(0); v.(1); v.(2); v.(3) ] ~assumptions ~k:2 s
  in
  Alcotest.(check int) "4 cubes" 4 (List.length cover);
  Alcotest.(check (list int)) "hinted vars minus assumption vars"
    [ v.(2); v.(3) ]
    (List.map Lit.var (List.hd cover));
  (* Same without a hint: the most-constrained top-up must also skip the
     assumption variables. *)
  let cover' = Solver.cube_cover ~assumptions ~k:2 s in
  List.iter
    (fun c ->
       List.iter
         (fun l ->
            List.iter
              (fun a ->
                 Alcotest.(check bool) "assumption var not split" false
                   (Lit.var a = Lit.var l))
              assumptions)
         c)
    cover'

let test_cubes_pigeonhole () =
  (* UNSAT through the cube race, with a conflict budget small enough that
     hard cubes are re-split and re-queued. *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:7 ~holes:6;
  match
    Solver.solve_cubes ~domains:4 ~cubes:2 ~conflict_budget:200
      ~check:(fun _ -> [])
      s
  with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "php 7/6 is unsat"

let test_cubes_sat () =
  (* A SAT cube short-circuits the race and its model is a model of the
     whole problem. *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:5 ~holes:5;
  let n = Sat.num_vars s in
  match
    Solver.solve_cubes ~domains:4 ~cubes:3 ~check:(fun _ -> []) s
  with
  | Solver.Unsat -> Alcotest.fail "php 5/5 is sat"
  | Solver.Sat model ->
    Alcotest.(check int) "model covers all vars" n (Array.length model);
    (* Spot-check: every pigeon sits somewhere (the long clauses). *)
    match Sat.solve s with
    | Sat.Unsat -> Alcotest.fail "parent disagrees"
    | Sat.Sat _ -> ()

let test_cubes_certificate () =
  (* The stitched multi-worker certificate — merged learnt logs, one
     [goal ∨ ¬cube] clause per refuted leaf, and the split tautology
     resolved to the goal — must pass the independent DRAT checker, and a
     trace stripped of its derivations must not. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  pigeonhole s ~pigeons:6 ~holes:5;
  (match
     Solver.solve_cubes ~domains:4 ~cubes:2 ~conflict_budget:100
       ~check:(fun _ -> [])
       s
   with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "php 6/5 is unsat");
  let proof = Sat.proof s in
  (match Drat.check proof with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "stitched certificate rejected: %s"
       (Format.asprintf "%a" Drat.pp_error e));
  let inputs_only =
    List.filter (function Sat.Input _ -> true | _ -> false) proof
  in
  match Drat.check inputs_only with
  | Ok () -> Alcotest.fail "mutated certificate accepted"
  | Error (_ : Drat.error) -> ()

let test_cubes_assumption_certificate () =
  (* UNSAT under assumptions: the stitched certificate must make the
     negated-assumption goal clause RUP. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  let v = Array.init 8 (fun _ -> Sat.fresh_var s) in
  for i = 0 to 6 do
    Sat.add_clause s [ Lit.neg_of_var v.(i); Lit.pos v.(i + 1) ]
  done;
  let assumptions = [ Lit.pos v.(0); Lit.neg_of_var v.(7) ] in
  (match
     Solver.solve_cubes ~assumptions ~domains:3 ~cubes:2
       ~check:(fun _ -> [])
       s
   with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "implication chain conflicts");
  match Drat.check ~goal:(List.map Lit.negate assumptions) (Sat.proof s) with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "assumption certificate rejected: %s"
      (Format.asprintf "%a" Drat.pp_error e)

let prop_cube_parity =
  QCheck2.Test.make
    ~name:"cube-and-conquer never changes incremental verdicts" ~count:30
    script_gen
    (fun (n, steps) ->
       let mk () =
         let s = Sat.create () in
         for _ = 1 to n do
           ignore (Sat.fresh_var s)
         done;
         s
       in
       let sequential = mk () in
       let via_cubes = mk () in
       let all_clauses = ref [] in
       List.for_all
         (fun (clauses, assumptions) ->
            List.iter
              (fun c ->
                 all_clauses := c :: !all_clauses;
                 Sat.add_clause sequential c;
                 Sat.add_clause via_cubes c)
              clauses;
            let va = is_sat (Sat.solve ~assumptions sequential) in
            let vb =
              (* A tiny conflict budget forces the re-split path. *)
              match
                Solver.solve_cubes ~assumptions ~domains:3 ~cubes:2
                  ~conflict_budget:4
                  ~check:(fun _ -> [])
                  via_cubes
              with
              | Solver.Sat model ->
                List.for_all (satisfies model) !all_clauses
                || QCheck2.Test.fail_report "cube model violates a clause"
              | Solver.Unsat -> false
            in
            va = vb)
         steps)

(* ------------------------------------------------------------------ *)
(* DIMACS export                                                       *)
(* ------------------------------------------------------------------ *)

let parse_dimacs text =
  let header = ref None in
  let clauses = ref [] in
  List.iter
    (fun line ->
       let line = String.trim line in
       if line = "" || line.[0] = 'c' then ()
       else if line.[0] = 'p' then
         match List.filter (( <> ) "") (String.split_on_char ' ' line) with
         | [ "p"; "cnf"; v; c ] ->
           header := Some (int_of_string v, int_of_string c)
         | _ -> Alcotest.failf "bad DIMACS header: %s" line
       else
         let ints =
           List.map int_of_string
             (List.filter (( <> ) "") (String.split_on_char ' ' line))
         in
         match List.rev ints with
         | 0 :: rev_lits -> clauses := List.rev rev_lits :: !clauses
         | _ -> Alcotest.failf "clause not 0-terminated: %s" line)
    (String.split_on_char '\n' text);
  match !header with
  | None -> Alcotest.fail "no DIMACS header"
  | Some (v, c) -> (v, c, List.rev !clauses)

let test_dimacs_export () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  let c = Sat.fresh_var s in
  let d = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a; Lit.neg_of_var b ];
  Sat.add_clause s [ Lit.pos b; Lit.pos c; Lit.neg_of_var d ];
  Sat.add_clause s [ Lit.neg_of_var a ];
  let num_vars, num_clauses, clauses = parse_dimacs (Sat.dimacs s) in
  Alcotest.(check int) "header vars" (Sat.num_vars s) num_vars;
  Alcotest.(check int) "header clause count" (List.length clauses) num_clauses;
  List.iter
    (List.iter (fun l ->
         Alcotest.(check bool) "lit in range" true
           (l <> 0 && abs l <= num_vars)))
    clauses;
  (* The export is equisatisfiable with the live solver: check via the
     reference DPLL on the re-parsed clauses. *)
  let as_lits = List.map (List.map (fun l -> Lit.make (abs l - 1) (l > 0))) in
  Alcotest.(check bool) "same verdict" (is_sat (Sat.solve s))
    (dpll (as_lits clauses))

let test_dimacs_unsat_export () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a ];
  Sat.add_clause s [ Lit.neg_of_var a ];
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  let _, num_clauses, clauses = parse_dimacs (Sat.dimacs s) in
  Alcotest.(check int) "header count" (List.length clauses) num_clauses;
  (* A dead solver's export must be trivially refutable. *)
  Alcotest.(check bool) "contains the empty clause" true
    (List.mem [] clauses)

let test_dimacs_var_names () =
  (* Named variables come back out of the export as [c var <id> <name>]
     comment lines, DIMACS ids being 1-based. *)
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  let c = Sat.fresh_var s in
  Sat.name_var s a "own(iA,p0)";
  Sat.name_var s c "select(iB,iA)";
  Sat.add_clause s [ Lit.pos a; Lit.pos b; Lit.pos c ];
  Alcotest.(check (option string)) "var_name set" (Some "own(iA,p0)")
    (Sat.var_name s a);
  Alcotest.(check (option string)) "var_name unset" None (Sat.var_name s b);
  let parsed = ref [] in
  List.iter
    (fun line ->
       match String.split_on_char ' ' (String.trim line) with
       | "c" :: "var" :: id :: rest ->
         parsed := (int_of_string id - 1, String.concat " " rest) :: !parsed
       | _ -> ())
    (String.split_on_char '\n' (Sat.dimacs s));
  let names = List.sort compare !parsed in
  Alcotest.(check (list (pair int string)))
    "names round-trip"
    [ (a, "own(iA,p0)"); (c, "select(iB,iA)") ]
    names;
  (* The comment lines must not confuse the DIMACS parser. *)
  let num_vars, _, clauses = parse_dimacs (Sat.dimacs s) in
  Alcotest.(check int) "vars" 3 num_vars;
  Alcotest.(check int) "clauses" 1 (List.length clauses)

(* ------------------------------------------------------------------ *)
(* CDCL invariant sanitizer                                            *)
(* ------------------------------------------------------------------ *)

let test_sanitize_pigeonhole () =
  (* Walk the engine through learning, restarts and clause-database
     reduction with the internal invariant checks enabled: any watcher,
     trail, reason or heap corruption raises [Invariant_violation]. *)
  let s = Sat.create () in
  Sat.set_sanitize s true;
  pigeonhole s ~pigeons:6 ~holes:5;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  match Sat.Invariants.check s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated after solve: %s" msg

let prop_sanitize_random =
  QCheck2.Test.make ~name:"sanitizer accepts random solving" ~count:120
    cnf_gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       Sat.set_sanitize s true;
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       let verdict = is_sat (Sat.solve s) in
       (match Sat.Invariants.check s with
        | Ok () -> ()
        | Error msg -> QCheck2.Test.fail_reportf "invariant: %s" msg);
       verdict = brute_force_sat n clauses)

(* ------------------------------------------------------------------ *)
(* Cardinality constraints                                             *)
(* ------------------------------------------------------------------ *)

let count_true model vars =
  List.length (List.filter (fun v -> model.(v)) vars)

let solve_card build =
  let s = Sat.create () in
  let vars = List.init 6 (fun _ -> Sat.fresh_var s) in
  build s (List.map Lit.pos vars);
  (s, vars)

let test_card_at_most () =
  let s, vars = solve_card (fun s lits -> ignore (Card.at_most s lits 2)) in
  (* Force three variables true: must be unsat. *)
  (match
     Sat.solve
       ~assumptions:(List.map Lit.pos [ List.nth vars 0; List.nth vars 1; List.nth vars 2 ])
       s
   with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "3 > 2 should conflict");
  match Sat.solve ~assumptions:(List.map Lit.pos [ List.nth vars 0; List.nth vars 4 ]) s with
  | Sat.Sat model ->
    Alcotest.(check bool) "≤ 2 true" true (count_true model vars <= 2)
  | Sat.Unsat -> Alcotest.fail "2 ≤ 2 should be sat"

let test_card_at_least () =
  let s, vars = solve_card (fun s lits -> ignore (Card.at_least s lits 4)) in
  match Sat.solve s with
  | Sat.Sat model ->
    Alcotest.(check bool) "≥ 4 true" true (count_true model vars >= 4)
  | Sat.Unsat -> Alcotest.fail "at_least 4 of 6 is satisfiable"

let test_card_exactly () =
  let s, vars = solve_card (fun s lits -> ignore (Card.exactly s lits 3)) in
  match Sat.solve s with
  | Sat.Sat model -> Alcotest.(check int) "exactly 3" 3 (count_true model vars)
  | Sat.Unsat -> Alcotest.fail "exactly 3 of 6 is satisfiable"

let test_card_edge_cases () =
  (* k = 0 forbids everything. *)
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  ignore (Card.at_most s [ Lit.pos a ] 0);
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "a false" false model.(a)
   | Sat.Unsat -> Alcotest.fail "sat expected");
  (* k = n is vacuous. *)
  let s2 = Sat.create () in
  let b = Sat.fresh_var s2 in
  ignore (Card.at_most s2 [ Lit.pos b ] 1);
  Alcotest.(check bool) "vacuous" true
    (match Sat.solve s2 with Sat.Sat _ -> true | Sat.Unsat -> false);
  (* at_least more than available is unsat. *)
  let s3 = Sat.create () in
  let c = Sat.fresh_var s3 in
  ignore (Card.at_least s3 [ Lit.pos c ] 2);
  Alcotest.(check bool) "impossible at_least" false
    (match Sat.solve s3 with Sat.Sat _ -> true | Sat.Unsat -> false)

let test_card_exactly_shares_registers () =
  (* [exactly] builds one shared Sinz counter chain: (n-1)·k auxiliary
     registers, not a separate chain per bound. *)
  let s = Sat.create () in
  let vars = List.init 6 (fun _ -> Sat.fresh_var s) in
  ignore (Card.exactly s (List.map Lit.pos vars) 2);
  Alcotest.(check int) "aux registers" (6 + (5 * 2)) (Sat.num_vars s)

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

let test_card_exactly_exhaustive () =
  (* Soundness and completeness in one sweep: under every full assignment
     of the base variables (forced via assumptions), the encoding is
     satisfiable iff exactly k of them are true. *)
  for n = 1 to 5 do
    for k = 0 to n do
      let s = Sat.create () in
      let vars = List.init n (fun _ -> Sat.fresh_var s) in
      ignore (Card.exactly s (List.map Lit.pos vars) k);
      for mask = 0 to (1 lsl n) - 1 do
        let assumptions =
          List.mapi (fun i v -> Lit.make v (mask land (1 lsl i) <> 0)) vars
        in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d k=%d mask=%d" n k mask)
          (popcount mask = k)
          (is_sat (Sat.solve ~assumptions s))
      done
    done
  done

let prop_card_exactly_counts =
  QCheck2.Test.make ~name:"exactly-k models have k true vars" ~count:100
    QCheck2.Gen.(pair (int_range 1 7) (int_range 0 7))
    (fun (n, k) ->
       QCheck2.assume (k <= n);
       let s = Sat.create () in
       let vars = List.init n (fun _ -> Sat.fresh_var s) in
       ignore (Card.exactly s (List.map Lit.pos vars) k);
       match Sat.solve s with
       | Sat.Sat model -> count_true model vars = k
       | Sat.Unsat -> false)

(* Guarded networks (the delta-row contract of [Encoding.append_row]):
   the guard literal is prepended to every emitted clause, so a true
   guard satisfies the whole network vacuously — any input count goes —
   while a false guard leaves exactly the unguarded constraint. *)
let guarded_card_case s ~which ~guard lits k =
  match which with
  | 0 -> Card.at_most ~guard s lits k
  | 1 -> Card.at_least ~guard s lits k
  | _ -> Card.exactly ~guard s lits k

let guarded_card_meets ~which count k =
  match which with 0 -> count <= k | 1 -> count >= k | _ -> count = k

let prop_card_guard_vacuous =
  QCheck2.Test.make
    ~name:"guard true satisfies the network under any input count"
    ~count:100
    QCheck2.Gen.(triple (int_range 1 5) (int_range 0 5) (int_range 0 2))
    (fun (n, k, which) ->
       QCheck2.assume (k <= n);
       let s = Sat.create () in
       let g = Sat.fresh_var s in
       let vars = List.init n (fun _ -> Sat.fresh_var s) in
       ignore
         (guarded_card_case s ~which ~guard:(Lit.pos g)
            (List.map Lit.pos vars) k);
       List.for_all
         (fun mask ->
            let assumptions =
              Lit.pos g
              :: List.mapi
                   (fun i v -> Lit.make v (mask land (1 lsl i) <> 0))
                   vars
            in
            is_sat (Sat.solve ~assumptions s))
         (List.init (1 lsl n) (fun m -> m)))

let prop_card_guard_enforces =
  QCheck2.Test.make
    ~name:"guard false enforces exactly the declared bound"
    ~count:100
    QCheck2.Gen.(triple (int_range 1 5) (int_range 0 5) (int_range 0 2))
    (fun (n, k, which) ->
       QCheck2.assume (k <= n);
       let s = Sat.create () in
       let g = Sat.fresh_var s in
       let vars = List.init n (fun _ -> Sat.fresh_var s) in
       ignore
         (guarded_card_case s ~which ~guard:(Lit.pos g)
            (List.map Lit.pos vars) k);
       List.for_all
         (fun mask ->
            let assumptions =
              Lit.neg_of_var g
              :: List.mapi
                   (fun i v -> Lit.make v (mask land (1 lsl i) <> 0))
                   vars
            in
            is_sat (Sat.solve ~assumptions s)
            = guarded_card_meets ~which (popcount mask) k)
         (List.init (1 lsl n) (fun m -> m)))

let test_card_network_metadata () =
  (* The recorder hands back what it built: inputs in call order, the
     guard, the declared kind/bound, fresh auxiliaries, and every clause
     carrying the guard literal. *)
  let s = Sat.create () in
  let g = Sat.fresh_var s in
  let vars = List.init 4 (fun _ -> Sat.fresh_var s) in
  let lits = List.map Lit.pos vars in
  let net = Card.exactly ~guard:(Lit.pos g) s lits 2 in
  Alcotest.(check bool) "kind" true (net.Card.kind = Card.Exactly);
  Alcotest.(check int) "bound" 2 net.Card.bound;
  Alcotest.(check bool) "inputs" true (net.Card.inputs = lits);
  Alcotest.(check bool) "guard" true (net.Card.guard = Some (Lit.pos g));
  Alcotest.(check bool) "aux allocated" true (net.Card.aux <> []);
  Alcotest.(check bool) "guard on every clause" true
    (List.for_all (fun c -> List.mem (Lit.pos g) c) net.Card.clauses);
  Alcotest.(check bool) "guard var marked" true (Sat.is_guard s g)

(* ------------------------------------------------------------------ *)
(* Expr: formulas and Tseitin transformation                           *)
(* ------------------------------------------------------------------ *)

let test_expr_smart_constructors () =
  let x = Expr.var 0 and y = Expr.var 1 in
  Alcotest.(check bool) "neg neg" true (Expr.neg (Expr.neg x) = x);
  Alcotest.(check bool) "conj true unit" true (Expr.conj [ Expr.tt; x ] = x);
  Alcotest.(check bool) "conj false" true
    (Expr.conj [ x; Expr.ff; y ] = Expr.ff);
  Alcotest.(check bool) "disj false unit" true (Expr.disj [ Expr.ff; y ] = y);
  Alcotest.(check bool) "imp from false" true (Expr.imp Expr.ff x = Expr.tt);
  Alcotest.(check bool) "iff with true" true (Expr.iff Expr.tt x = x);
  Alcotest.(check (list int)) "vars" [ 0; 1 ]
    (Expr.vars (Expr.conj [ x; Expr.neg y; x ]))

let expr_gen =
  let open QCheck2.Gen in
  let num_vars = 5 in
  sized_size (int_range 0 4) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ map Expr.var (int_range 0 (num_vars - 1));
            return Expr.tt; return Expr.ff ]
      else
        oneof
          [ map Expr.var (int_range 0 (num_vars - 1));
            map Expr.neg (self (n - 1));
            map2 (fun a b -> Expr.conj [ a; b ]) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Expr.disj [ a; b ]) (self (n / 2)) (self (n / 2));
            map2 Expr.imp (self (n / 2)) (self (n / 2));
            map2 Expr.iff (self (n / 2)) (self (n / 2)) ])

let brute_force_expr e =
  let rec go env = function
    | [] -> Expr.eval (fun v -> List.assoc v env) e
    | v :: rest -> go ((v, true) :: env) rest || go ((v, false) :: env) rest
  in
  go [] (List.init 5 Fun.id)

let prop_tseitin_equisatisfiable =
  QCheck2.Test.make ~name:"Tseitin preserves satisfiability" ~count:300 expr_gen
    (fun e ->
       let s = Sat.create () in
       for _ = 1 to 5 do
         ignore (Sat.fresh_var s)
       done;
       Expr.assert_in s e;
       match Sat.solve s with
       | Sat.Sat model -> Expr.eval (fun v -> model.(v)) e
       | Sat.Unsat -> not (brute_force_expr e))

let prop_expr_eval_neg =
  QCheck2.Test.make ~name:"eval of negation flips" ~count:200 expr_gen
    (fun e ->
       let env v = v mod 2 = 0 in
       Expr.eval env (Expr.neg e) = not (Expr.eval env e))

(* ------------------------------------------------------------------ *)
(* Theory (CEGAR) driver                                               *)
(* ------------------------------------------------------------------ *)

let test_theory_loop () =
  (* Boolean skeleton: any subset of 4 vars.  Theory: "exactly the set
     {1,3} is allowed", communicated only through refutation lemmas. *)
  let s = Sat.create () in
  let vars = Array.init 4 (fun _ -> Sat.fresh_var s) in
  let target = [ false; true; false; true ] in
  let check model =
    let lemmas = ref [] in
    List.iteri
      (fun i want ->
         if model.(vars.(i)) <> want then
           lemmas := [ Lit.make vars.(i) want ] :: !lemmas)
      target;
    !lemmas
  in
  match Solver.solve ~check s with
  | Solver.Sat model ->
    List.iteri
      (fun i want -> Alcotest.(check bool) "theory model" want model.(vars.(i)))
      target
  | Solver.Unsat -> Alcotest.fail "theory-consistent model exists"

let test_theory_unsat () =
  (* The theory rejects every model of a 1-variable skeleton. *)
  let s = Sat.create () in
  let v = Sat.fresh_var s in
  let check model =
    [ [ Lit.make v (not model.(v)) ] ]
  in
  match Solver.solve ~check s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "theory rejects everything"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "smt"
    [ ("lit", [ Alcotest.test_case "encoding" `Quick test_lit_encoding ]);
      ("sat",
       [ Alcotest.test_case "trivial" `Quick test_sat_trivial;
         Alcotest.test_case "contradiction" `Quick test_sat_contradiction;
         Alcotest.test_case "implication chain" `Quick test_sat_implication_chain;
         Alcotest.test_case "pigeonhole 3/2" `Quick test_sat_pigeonhole_3_2;
         Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
         Alcotest.test_case "incremental" `Quick test_sat_incremental;
         Alcotest.test_case "pigeonhole 6/5" `Slow test_sat_pigeonhole_6_5;
         Alcotest.test_case "pigeonhole family" `Slow test_sat_pigeonhole_family;
         Alcotest.test_case "reduction parity on pigeonhole 8/7" `Slow
           test_sat_reduction_parity_pigeonhole;
         Alcotest.test_case "solver statistics" `Quick test_sat_stats;
         Alcotest.test_case "portfolio on pigeonhole 7/6" `Slow
           test_portfolio_pigeonhole;
         Alcotest.test_case "sanitizer on pigeonhole 6/5" `Slow
           test_sanitize_pigeonhole ]
       @ qsuite
           [ prop_sat_matches_brute_force; prop_sat_3sat_stress;
             prop_sat_matches_dpll; prop_reduction_portfolio_parity;
             prop_sanitize_random ]);
      ("cubes",
       [ Alcotest.test_case "cover is exhaustive and disjoint" `Quick
           test_cube_cover;
         Alcotest.test_case "cover honours hints" `Quick test_cube_cover_hint;
         Alcotest.test_case "cover skips assumption variables" `Quick
           test_cube_cover_assumptions;
         Alcotest.test_case "re-split on pigeonhole 7/6" `Slow
           test_cubes_pigeonhole;
         Alcotest.test_case "sat short-circuit" `Quick test_cubes_sat;
         Alcotest.test_case "stitched certificate" `Slow
           test_cubes_certificate;
         Alcotest.test_case "assumption certificate" `Quick
           test_cubes_assumption_certificate ]
       @ qsuite [ prop_cube_parity ]);
      ("dimacs",
       [ Alcotest.test_case "export round-trips" `Quick test_dimacs_export;
         Alcotest.test_case "unsat export" `Quick test_dimacs_unsat_export;
         Alcotest.test_case "variable names" `Quick test_dimacs_var_names ]);
      ("card",
       [ Alcotest.test_case "at_most" `Quick test_card_at_most;
         Alcotest.test_case "at_least" `Quick test_card_at_least;
         Alcotest.test_case "exactly" `Quick test_card_exactly;
         Alcotest.test_case "edge cases" `Quick test_card_edge_cases;
         Alcotest.test_case "shared registers" `Quick
           test_card_exactly_shares_registers;
         Alcotest.test_case "exactly is exact (exhaustive)" `Slow
           test_card_exactly_exhaustive;
         Alcotest.test_case "network metadata" `Quick
           test_card_network_metadata ]
       @ qsuite
           [ prop_card_exactly_counts; prop_card_guard_vacuous;
             prop_card_guard_enforces ]);
      ("expr",
       [ Alcotest.test_case "smart constructors" `Quick test_expr_smart_constructors ]
       @ qsuite [ prop_tseitin_equisatisfiable; prop_expr_eval_neg ]);
      ("theory",
       [ Alcotest.test_case "cegar loop" `Quick test_theory_loop;
         Alcotest.test_case "theory unsat" `Quick test_theory_unsat ]) ]
