(* The trust-but-verify layer: the independent DRAT checker against the
   CDCL engine's proof traces, SAT-model validation, certified CEGIS runs,
   and the lint pass on deliberately broken data. *)

open Pmi_smt
module Drat = Pmi_analysis.Drat
module Lint = Pmi_analysis.Lint
module Cegis = Pmi_core.Cegis
module Encoding = Pmi_core.Encoding
module Catalog = Pmi_isa.Catalog
module Operand = Pmi_isa.Operand
module Iclass = Pmi_isa.Iclass
module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Profile = Pmi_machine.Profile
module Rat = Pmi_numeric.Rat

let is_sat = function Sat.Sat _ -> true | Sat.Unsat -> false

let check_ok label = function
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s: certificate rejected: %s" label
      (Format.asprintf "%a" Drat.pp_error e)

let expect_reject label = function
  | Ok () -> Alcotest.failf "%s: bogus certificate accepted" label
  | Error (_ : Drat.error) -> ()

let pigeonhole s ~pigeons ~holes =
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.fresh_var s))
  in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* DRAT certificates for solver verdicts                               *)
(* ------------------------------------------------------------------ *)

let test_drat_pigeonhole () =
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  pigeonhole s ~pigeons:5 ~holes:4;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  let proof = Sat.proof s in
  Alcotest.(check bool) "trace has derivations" true
    (List.exists (function Sat.Derive _ -> true | _ -> false) proof);
  check_ok "php 5/4" (Drat.check proof)

let test_drat_assumptions () =
  (* UNSAT under assumptions: the goal clause is the negated assumption
     set, and the same trace later certifies an unconditional SAT model. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.neg_of_var a; Lit.pos b ];
  let assumptions = [ Lit.pos a; Lit.neg_of_var b ] in
  (match Sat.solve ~assumptions s with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "assumptions should conflict");
  check_ok "assumption goal"
    (Drat.check ~goal:(List.map Lit.negate assumptions) (Sat.proof s));
  match Sat.solve s with
  | Sat.Sat model ->
    check_ok "model validates" (Drat.validate_model ~model (Sat.proof s))
  | Sat.Unsat -> Alcotest.fail "should be sat without assumptions"

let test_drat_rejects_stripped_proof () =
  (* The pigeonhole axioms alone have no unit clauses, so without the
     learnt derivations nothing propagates and the empty clause is not
     RUP: a trace with every [Derive] removed must be rejected. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  pigeonhole s ~pigeons:5 ~holes:4;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  let inputs_only =
    List.filter (function Sat.Input _ -> true | _ -> false) (Sat.proof s)
  in
  expect_reject "inputs alone" (Drat.check inputs_only)

let test_drat_rejects_non_rup () =
  (* a -> b -> c constrains nothing about ¬c: deriving [¬c] is not RUP. *)
  let a = Lit.pos 0 and b = Lit.pos 1 and c = Lit.pos 2 in
  let steps =
    [ Sat.Input [ Lit.negate a; b ];
      Sat.Input [ Lit.negate b; c ];
      Sat.Derive [ Lit.negate c ] ]
  in
  (match Drat.check steps with
   | Ok () -> Alcotest.fail "non-RUP derivation accepted"
   | Error e -> Alcotest.(check int) "offending step" 2 e.Drat.step);
  (* A derivation over a completely unconstrained literal. *)
  expect_reject "unconstrained literal"
    (Drat.check [ Sat.Input [ a; b ]; Sat.Derive [ c ] ])

let test_drat_deletions () =
  let a = Lit.pos 0 and b = Lit.pos 1 in
  (* Deletion of a clause the rest of the proof no longer needs, plus an
     unmatched deletion (ignored, drat-trim style). *)
  let steps =
    [ Sat.Input [ a; b ];
      Sat.Input [ Lit.negate a; b ];
      Sat.Input [ a; Lit.negate b ];
      Sat.Derive [ b ];
      Sat.Delete [ a; b ];
      Sat.Delete [ Lit.negate a; Lit.negate b ];  (* never added *)
      Sat.Derive [ a ] ]
  in
  check_ok "delete then derive" (Drat.check ~goal:[ a ] steps);
  (* Deleting the only clause that powers a later derivation must make
     that derivation fail. *)
  (match
     Drat.check [ Sat.Input [ a; b ]; Sat.Delete [ a; b ]; Sat.Derive [ b ] ]
   with
   | Ok () -> Alcotest.fail "derivation from a deleted clause accepted"
   | Error e -> Alcotest.(check int) "offending step" 2 e.Drat.step)

let test_drat_model_rejects_violation () =
  let a = Lit.pos 0 and b = Lit.pos 1 in
  let steps = [ Sat.Input [ a; b ]; Sat.Input [ Lit.negate a; b ] ] in
  check_ok "good model" (Drat.validate_model ~model:[| false; true |] steps);
  expect_reject "bad model" (Drat.validate_model ~model:[| true; false |] steps);
  (* Variables beyond the model are false. *)
  expect_reject "short model" (Drat.validate_model ~model:[| true |] steps)

(* Property: on random 3-SAT, every verdict the engine produces is
   independently certifiable — UNSAT traces pass the DRAT check, SAT
   models satisfy every input clause — including across incremental
   solves and under the domain-parallel portfolio. *)

let cnf3_gen =
  let open QCheck2.Gen in
  int_range 6 14 >>= fun n ->
  let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
  let clause = map (fun (a, b, c) -> [ a; b; c ]) (triple lit lit lit) in
  int_range 20 70 >>= fun m ->
  map (fun clauses -> (n, clauses)) (list_repeat m clause)

let certify_verdict label s = function
  | Sat.Sat model ->
    (match Drat.validate_model ~model (Sat.proof s) with
     | Ok () -> true
     | Error e ->
       QCheck2.Test.fail_reportf "%s: model rejected: %s" label
         (Format.asprintf "%a" Drat.pp_error e))
  | Sat.Unsat ->
    (match Drat.check (Sat.proof s) with
     | Ok () -> true
     | Error e ->
       QCheck2.Test.fail_reportf "%s: proof rejected: %s" label
         (Format.asprintf "%a" Drat.pp_error e))

let prop_drat_random =
  QCheck2.Test.make ~name:"random 3-SAT verdicts are certifiable" ~count:80
    cnf3_gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       Sat.set_proof_logging s true;
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       let half = List.length clauses / 2 in
       List.iteri (fun i c -> if i < half then Sat.add_clause s c) clauses;
       let first = certify_verdict "first solve" s (Sat.solve s) in
       (* Incremental continuation: the trace keeps growing and must still
          certify the second verdict. *)
       if Sat.okay s then
         List.iteri (fun i c -> if i >= half then Sat.add_clause s c) clauses;
       first && certify_verdict "second solve" s (Sat.solve s))

let prop_drat_portfolio =
  QCheck2.Test.make ~name:"portfolio verdicts are certifiable" ~count:25
    cnf3_gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       Sat.set_proof_logging s true;
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       match Solver.solve_portfolio ~domains:3 ~check:(fun _ -> []) s with
       | Solver.Sat model ->
         (match Drat.validate_model ~model (Sat.proof s) with
          | Ok () -> true
          | Error e ->
            QCheck2.Test.fail_reportf "portfolio model rejected: %s"
              (Format.asprintf "%a" Drat.pp_error e))
       | Solver.Unsat ->
         (match Drat.check (Sat.proof s) with
          | Ok () -> true
          | Error e ->
            QCheck2.Test.fail_reportf "portfolio proof rejected: %s"
              (Format.asprintf "%a" Drat.pp_error e)))

(* ------------------------------------------------------------------ *)
(* Certified CEGIS                                                     *)
(* ------------------------------------------------------------------ *)

let toy_catalog n =
  Catalog.of_list
    (List.init n (fun i ->
         (Printf.sprintf "i%c" (Char.chr (Char.code 'A' + i)),
          [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu))))

let certified_config ?(domains = 1) ?(cube_conquer = 0) ?(incremental = true)
    num_ports =
  { Cegis.default_config with
    Cegis.num_ports;
    r_max = num_ports + 1;
    max_experiment_size = 4;
    certify = true;
    domains;
    cube_conquer;
    incremental_sat = incremental }

(* Infer from perfect measurements of a hidden mapping with [certify] on:
   every UNSAT along the way must check as DRAT, every model must
   validate, or [Certification_failure] aborts the run. *)
let certified_cegis ?domains ?cube_conquer ?incremental truth_usage =
  let catalog = toy_catalog (List.length truth_usage) in
  let num_ports = 2 in
  let truth = Mapping.create ~num_ports in
  List.iteri
    (fun i usage -> Mapping.set truth (Catalog.find catalog i) usage)
    truth_usage;
  let config = certified_config ?domains ?cube_conquer ?incremental num_ports in
  let measure e = Cegis.modeled_inverse config truth e in
  let specs =
    List.mapi
      (fun i usage ->
         let ports =
           List.fold_left (fun acc (p, _) -> acc + Portset.cardinal p) 0 usage
         in
         (Catalog.find catalog i, Encoding.Proper ports))
      truth_usage
  in
  Cegis.infer ~config ~measure ~specs ()

let figure4b =
  let p0 = Portset.singleton 0 in
  [ [ (p0, 1) ]; [ (p0, 1) ] ]

let expect_converged label = function
  | Cegis.Converged (_, _) -> ()
  | Cegis.No_consistent_mapping _ -> Alcotest.failf "%s: unexpected UNSAT" label
  | Cegis.Iteration_limit _ -> Alcotest.failf "%s: iteration limit" label

let test_certified_cegis_incremental () =
  expect_converged "incremental" (certified_cegis figure4b)

let test_certified_cegis_fresh () =
  expect_converged "fresh" (certified_cegis ~incremental:false figure4b)

let test_certified_cegis_portfolio () =
  expect_converged "portfolio" (certified_cegis ~domains:2 figure4b)

let test_certified_cegis_cubes () =
  (* Cube-and-conquer with certification: every UNSAT verdict along the
     way is a stitched multi-worker certificate (merged learnt logs, one
     clause per refuted cube, split tautology) that the independent
     checker must accept. *)
  expect_converged "cubes"
    (certified_cegis ~domains:2 ~cube_conquer:2 figure4b)

let test_certified_explain_unsat () =
  (* A single 1-port instruction cannot take 10 cycles: the certified
     find_mapping call must reach a checker-accepted UNSAT and report no
     consistent mapping rather than raise. *)
  let catalog = toy_catalog 1 in
  let config = certified_config 1 in
  let scheme = Catalog.find catalog 0 in
  let specs = [ (scheme, Encoding.Proper 1) ] in
  let observations =
    [ { Cegis.experiment = Experiment.singleton scheme;
        cycles = Rat.of_int 10 } ]
  in
  match Cegis.explain ~config ~specs ~observations () with
  | None -> ()
  | Some _ -> Alcotest.fail "no mapping can explain 10 cycles"

(* ------------------------------------------------------------------ *)
(* Lint on seeded-bad data                                             *)
(* ------------------------------------------------------------------ *)

let rules diags = List.map (fun d -> d.Lint.rule) diags

let test_lint_bad_usage () =
  let diags =
    Lint.lint_usage ~num_ports:4 ~subject:"seeded"
      [ (Portset.empty, 1);
        (Portset.singleton 5, 0);
        (Portset.singleton 1, 1);
        (Portset.singleton 1, 2) ]
  in
  let rs = rules diags in
  List.iter
    (fun r -> Alcotest.(check bool) r true (List.mem r rs))
    [ "empty-port-set"; "port-out-of-range"; "non-positive-multiplicity";
      "duplicate-port-set" ];
  Alcotest.(check int) "errors" 3 (List.length (Lint.errors diags))

let test_lint_clean_usage () =
  Alcotest.(check int) "no diagnostics" 0
    (List.length
       (Lint.lint_usage ~num_ports:4 ~subject:"ok"
          [ (Portset.of_list [ 0; 1 ], 1); (Portset.singleton 3, 2) ]))

let test_lint_bad_profile () =
  let gap = { Profile.zen_plus with Profile.name = "seeded-gap"; r_max = 1 } in
  Alcotest.(check bool) "throughput gap flagged" true
    (List.mem "profile-throughput-gap" (rules (Lint.errors (Lint.lint_profile gap))));
  let neg =
    { Profile.zen_plus with Profile.name = "seeded-neg"; div_occupancy = 0 }
  in
  Alcotest.(check bool) "non-positive constant flagged" true
    (List.mem "profile-nonpositive-constant"
       (rules (Lint.errors (Lint.lint_profile neg))));
  List.iter
    (fun p ->
       Alcotest.(check int)
         (Printf.sprintf "shipped profile %s lints clean" p.Profile.name)
         0
         (List.length (Lint.lint_profile p)))
    Profile.all

let test_lint_mapping_negatives () =
  let catalog = toy_catalog 2 in
  let m = Mapping.create ~num_ports:4 in
  Mapping.set m (Catalog.find catalog 0) [ (Portset.singleton 0, 1) ];
  Mapping.set m (Catalog.find catalog 1) [ (Portset.singleton 0, 2) ];
  let reference = Mapping.create ~num_ports:4 in
  Mapping.set reference (Catalog.find catalog 0)
    [ (Portset.singleton 0, 1); (Portset.singleton 1, 1) ];
  let diags = Lint.lint_mapping ~reference ~subject:"seeded" m in
  let rs = rules diags in
  Alcotest.(check bool) "uop-count-mismatch" true
    (List.mem "uop-count-mismatch" rs);
  Alcotest.(check bool) "unreachable-port" true
    (List.mem "unreachable-port" rs);
  (* Both findings are advisory: the mapping is still usable. *)
  Alcotest.(check int) "no errors" 0 (List.length (Lint.errors diags))

let test_lint_catalog_toy () =
  Alcotest.(check int) "toy catalog lints clean" 0
    (List.length (Lint.errors (Lint.lint_catalog (toy_catalog 4))))

let test_lint_json () =
  let d =
    { Lint.rule = "demo"; severity = Lint.Error; subject = {|scheme "add"|};
      message = "line\nbreak" }
  in
  Alcotest.(check string) "json escaping"
    {|{"rule": "demo", "severity": "error", "subject": "scheme \"add\"", "message": "line\nbreak"}|}
    (Lint.to_json d);
  Alcotest.(check string) "text rendering"
    "error[demo] scheme \"add\": line\nbreak" (Lint.to_string d)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "analysis"
    [ ("drat",
       [ Alcotest.test_case "pigeonhole certificate" `Quick test_drat_pigeonhole;
         Alcotest.test_case "assumption goal" `Quick test_drat_assumptions;
         Alcotest.test_case "rejects stripped proof" `Quick
           test_drat_rejects_stripped_proof;
         Alcotest.test_case "rejects non-RUP derivation" `Quick
           test_drat_rejects_non_rup;
         Alcotest.test_case "deletions" `Quick test_drat_deletions;
         Alcotest.test_case "model validation" `Quick
           test_drat_model_rejects_violation ]
       @ qsuite [ prop_drat_random; prop_drat_portfolio ]);
      ("certified-cegis",
       [ Alcotest.test_case "incremental" `Quick test_certified_cegis_incremental;
         Alcotest.test_case "fresh encodings" `Quick test_certified_cegis_fresh;
         Alcotest.test_case "portfolio" `Slow test_certified_cegis_portfolio;
         Alcotest.test_case "cube-and-conquer" `Slow
           test_certified_cegis_cubes;
         Alcotest.test_case "certified UNSAT" `Quick
           test_certified_explain_unsat ]);
      ("lint",
       [ Alcotest.test_case "bad usage" `Quick test_lint_bad_usage;
         Alcotest.test_case "clean usage" `Quick test_lint_clean_usage;
         Alcotest.test_case "bad profile" `Quick test_lint_bad_profile;
         Alcotest.test_case "mapping negatives" `Quick
           test_lint_mapping_negatives;
         Alcotest.test_case "toy catalog" `Quick test_lint_catalog_toy;
         Alcotest.test_case "json rendering" `Quick test_lint_json ]) ]
