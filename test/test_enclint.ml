(* EncLint: the solver-off static analyzer over CEGIS encodings.

   Three families of tests:
   - clean built-in encodings (creation-time, delta append/retire) must
     produce zero findings — no false positives;
   - seeded mutations (dropped guard, wrong cardinality bound, unguarded
     delta row, duplicate clause, dead split hints, reachable retired
     rows) must each be flagged with the right rule;
   - the certified simplification must leave proof traces the independent
     DRAT checker still accepts, for UNSAT certificates and SAT model
     replays alike, including a full certified CEGIS run with the
     analyzer and simplifier gating every solver episode. *)

open Pmi_smt
module Enclint = Pmi_analysis.Enclint
module Drat = Pmi_analysis.Drat
module Diag = Pmi_diag.Diag
module Cegis = Pmi_core.Cegis
module Encoding = Pmi_core.Encoding
module Catalog = Pmi_isa.Catalog
module Operand = Pmi_isa.Operand
module Iclass = Pmi_isa.Iclass
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping

let is_sat = function Sat.Sat _ -> true | Sat.Unsat -> false
let has_rule rule diags = List.exists (fun d -> d.Diag.rule = rule) diags

let show diags = String.concat "; " (List.map Diag.to_string diags)

let check_clean label diags =
  if diags <> [] then
    Alcotest.failf "%s: expected no findings, got %s" label (show diags)

let expect_error rule diags =
  if not (List.exists (fun d -> d.Diag.rule = rule) (Diag.errors diags)) then
    Alcotest.failf "expected an %s error, got %s" rule (show diags)

let toy_catalog n =
  Catalog.of_list
    (List.init n (fun i ->
         (Printf.sprintf "i%c" (Char.chr (Char.code 'A' + i)),
          [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu))))

(* ------------------------------------------------------------------ *)
(* Clean encodings: no false positives                                 *)
(* ------------------------------------------------------------------ *)

let test_clean_creation () =
  let catalog = toy_catalog 3 in
  let encoding =
    Encoding.create ~num_ports:3 ~symmetry_breaking:true
      [ (Catalog.find catalog 0, Encoding.Proper 2);
        (Catalog.find catalog 1, Encoding.Proper 2);
        (Catalog.find catalog 2, Encoding.Proper 1) ]
  in
  check_clean "creation"
    (Enclint.analyze (Encoding.sat encoding) (Encoding.enclint_view encoding))

let test_clean_improper () =
  (* Store-blocker machinery: shared µops and selector networks. *)
  let catalog = toy_catalog 3 in
  let encoding =
    Encoding.create ~num_ports:3 ~symmetry_breaking:true
      [ (Catalog.find catalog 0, Encoding.Proper 2);
        (Catalog.find catalog 1, Encoding.Proper 1);
        (Catalog.find catalog 2, Encoding.Improper { own_ports = 1 }) ]
  in
  check_clean "improper"
    (Enclint.analyze (Encoding.sat encoding) (Encoding.enclint_view encoding))

let delta_encoding () =
  let catalog = toy_catalog 3 in
  let encoding = Encoding.create ~num_ports:3 ~symmetry_breaking:false [] in
  Encoding.append_row encoding (Catalog.find catalog 0) (Encoding.Proper 2);
  Encoding.append_row encoding (Catalog.find catalog 1) (Encoding.Proper 2);
  Encoding.append_row encoding (Catalog.find catalog 2) (Encoding.Proper 1);
  (catalog, encoding)

let test_clean_delta () =
  let catalog, encoding = delta_encoding () in
  Encoding.retire_row encoding (Catalog.find catalog 1);
  Encoding.append_row encoding (Catalog.find catalog 1) (Encoding.Proper 3);
  check_clean "delta"
    (Enclint.analyze (Encoding.sat encoding)
       (Encoding.enclint_view
          ~frozen:(Encoding.row_assumptions encoding)
          encoding))

(* ------------------------------------------------------------------ *)
(* Seeded mutations                                                    *)
(* ------------------------------------------------------------------ *)

let row ?(subject = "row mut") ?(act = -1) ?(live = true) ~vars networks =
  { Enclint.subject; vars; act; live; networks }

let view ?(rows = []) ?(hint = []) () =
  { Enclint.empty_view with Enclint.rows; hint }

let test_flags_dropped_guard () =
  (* The row claims activation variable [act], but its network was built
     without the guard: both the metadata check and the per-clause ¬act
     scan must fire. *)
  let s = Sat.create () in
  let act = Sat.fresh_var s in
  Sat.mark_guard s act;
  let vars = List.init 3 (fun _ -> Sat.fresh_var s) in
  let net = Card.exactly s (List.map Lit.pos vars) 1 in
  let diags =
    Enclint.analyze s (view ~rows:[ row ~act ~vars [ (1, net) ] ] ())
  in
  expect_error "missing-guard" diags

let test_flags_dropped_guard_semantic () =
  (* The subtler bug: the network records a guard, but some clause lost
     the literal — with the guard satisfied the network must be vacuously
     satisfiable, and a stripped clause can still bind.  Caught by the
     exhaustive vacuity sweep, not by metadata. *)
  let s = Sat.create () in
  let act = Sat.fresh_var s in
  Sat.mark_guard s act;
  let g = Lit.neg_of_var act in
  let vars = List.init 3 (fun _ -> Sat.fresh_var s) in
  let net = Card.exactly ~guard:g s (List.map Lit.pos vars) 1 in
  let forged =
    { net with
      Card.clauses = List.map (List.filter (fun l -> l <> g)) net.Card.clauses }
  in
  let diags =
    Enclint.analyze s (view ~rows:[ row ~act ~vars [ (1, forged) ] ] ())
  in
  expect_error "card-guard" diags

let test_flags_wrong_bound () =
  (* Declared bound 2, encoded bound 1: the record disagrees with what the
     encoding asked for (bound-mismatch), and forging the record to agree
     still trips the exhaustive enumeration (card-bound). *)
  let s = Sat.create () in
  let vars = List.init 4 (fun _ -> Sat.fresh_var s) in
  let net = Card.exactly s (List.map Lit.pos vars) 1 in
  expect_error "bound-mismatch"
    (Enclint.analyze s (view ~rows:[ row ~vars [ (2, net) ] ] ()));
  let forged = { net with Card.bound = 2 } in
  expect_error "card-bound"
    (Enclint.analyze s (view ~rows:[ row ~vars [ (2, forged) ] ] ()))

let test_flags_unguarded_row () =
  (* A live row without an activation literal in an encoding where other
     rows are guarded can never be retired. *)
  let s = Sat.create () in
  let act = Sat.fresh_var s in
  Sat.mark_guard s act;
  let g = Lit.neg_of_var act in
  let vars1 = List.init 2 (fun _ -> Sat.fresh_var s) in
  let net1 = Card.exactly ~guard:g s (List.map Lit.pos vars1) 1 in
  let vars2 = List.init 2 (fun _ -> Sat.fresh_var s) in
  let net2 = Card.exactly s (List.map Lit.pos vars2) 1 in
  let diags =
    Enclint.analyze s
      (view
         ~rows:
           [ row ~subject:"guarded" ~act ~vars:vars1 [ (1, net1) ];
             row ~subject:"unguarded" ~vars:vars2 [ (1, net2) ] ]
         ())
  in
  expect_error "unguarded-row" diags

let test_flags_duplicate_clause () =
  let s = Sat.create () in
  let vars = List.init 3 (fun _ -> Sat.fresh_var s) in
  let c = List.map Lit.pos vars in
  Sat.add_clause s c;
  Sat.add_clause s c;
  let diags = Enclint.analyze s Enclint.empty_view in
  Alcotest.(check bool) "duplicate flagged" true
    (has_rule "duplicate-clause" diags)

let test_flags_retired_reachable () =
  (* A retired row whose activation was never unit-negated is still in
     force, and so is any live clause that mentions its variables. *)
  let s = Sat.create () in
  let act = Sat.fresh_var s in
  Sat.mark_guard s act;
  let g = Lit.neg_of_var act in
  let vars = List.init 2 (fun _ -> Sat.fresh_var s) in
  let net = Card.exactly ~guard:g s (List.map Lit.pos vars) 1 in
  let outside = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos (List.hd vars); Lit.pos outside ];
  let diags =
    Enclint.analyze s
      (view ~rows:[ row ~act ~live:false ~vars [ (1, net) ] ] ())
  in
  expect_error "retired-reachable" diags

let test_flags_split_dead () =
  (* Cube-split hints over a root-assigned or retired variable waste the
     whole cube. *)
  let s = Sat.create () in
  let v = Sat.fresh_var s in
  let w = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos v ];
  Sat.add_clause s [ Lit.pos w; Lit.neg_of_var v ];
  (match Sat.solve s with
   | Sat.Sat _ -> ()
   | Sat.Unsat -> Alcotest.fail "trivially sat");
  expect_error "split-dead" (Enclint.analyze s (view ~hint:[ v ] ()))

let test_split_hint_excludes_dead () =
  (* The encoding-side fix the reachability check motivated: retired and
     root-assigned variables never appear in [split_hint]. *)
  let catalog, encoding = delta_encoding () in
  let retired_scheme = Catalog.find catalog 1 in
  let before = Encoding.split_hint encoding in
  Alcotest.(check bool) "hint nonempty" true (before <> []);
  Encoding.retire_row encoding retired_scheme;
  (match Sat.solve
           ~assumptions:(Encoding.row_assumptions encoding)
           (Encoding.sat encoding)
   with
   | Sat.Sat _ -> ()
   | Sat.Unsat -> Alcotest.fail "delta encoding satisfiable");
  let sat = Encoding.sat encoding in
  let hint = Encoding.split_hint encoding in
  Alcotest.(check bool) "hint survives retirement" true (hint <> []);
  List.iter
    (fun v ->
       if Sat.root_value sat v <> 0 then
         Alcotest.failf "hint proposes root-assigned var %d" v)
    hint;
  (* No split-dead finding on the fixed hint. *)
  let diags =
    Enclint.analyze sat
      (Encoding.enclint_view
         ~frozen:(Encoding.row_assumptions encoding)
         encoding)
  in
  Alcotest.(check bool) "no split-dead" false (has_rule "split-dead" diags)

let test_flags_frozen_unused () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a; Lit.pos b ];
  let diags =
    Enclint.analyze s
      { Enclint.empty_view with Enclint.frozen = [ Lit.pos b ] }
  in
  (* [b] occurs in a live clause, so the freeze is meaningful. *)
  Alcotest.(check bool) "b occurs" false (has_rule "frozen-unused" diags);
  let s2 = Sat.create () in
  let c = Sat.fresh_var s2 in
  let diags2 =
    Enclint.analyze s2
      { Enclint.empty_view with Enclint.frozen = [ Lit.pos c ] }
  in
  Alcotest.(check bool) "unused flagged" true (has_rule "frozen-unused" diags2)

(* ------------------------------------------------------------------ *)
(* Certified simplification                                            *)
(* ------------------------------------------------------------------ *)

let check_ok label = function
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s: certificate rejected: %s" label
      (Format.asprintf "%a" Drat.pp_error e)

let pigeonhole s ~pigeons ~holes =
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.fresh_var s))
  in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s
          [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done;
  v

let test_simplify_unsat_certified () =
  (* Simplify a pigeonhole instance padded with removable clauses, then
     solve: the UNSAT certificate must still replay through the
     independent checker even though the trace now interleaves the
     simplifier's derivations and deletions. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  let v = pigeonhole s ~pigeons:5 ~holes:4 in
  (* A duplicate pigeon clause and a weaker (superset) one: subsumption
     fodder. *)
  let pigeon0 = Array.to_list (Array.map Lit.pos v.(0)) in
  Sat.add_clause s pigeon0;
  Sat.add_clause s (Lit.pos v.(1).(0) :: pigeon0);
  let stats = Enclint.simplify s in
  Alcotest.(check bool) "simplifier did work" true (Enclint.total stats > 0);
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  check_ok "simplified php 5/4" (Drat.check (Sat.proof s))

let test_simplify_sat_model_validates () =
  (* Blocked-clause elimination removes Input clauses the DRAT model
     validator still checks, so the solver must reconstruct models that
     satisfy them.  Protect the "real" variables the way the encoding
     does; the Sinz registers are fair game. *)
  let s = Sat.create () in
  Sat.set_proof_logging s true;
  let vars = List.init 6 (fun _ -> Sat.fresh_var s) in
  ignore (Card.exactly s (List.map Lit.pos vars) 2);
  (* A hand-built blocked clause: every resolvent on [x] is tautological,
     so BCE drops [x ∨ a ∨ b] — but the validator still checks it. *)
  let x = Sat.fresh_var s in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos x; Lit.pos a; Lit.pos b ];
  Sat.add_clause s [ Lit.neg_of_var x; Lit.neg_of_var a ];
  Sat.add_clause s [ Lit.neg_of_var x; Lit.neg_of_var b ];
  let stats = Enclint.simplify ~protect:vars s in
  Alcotest.(check bool) "bce removed clauses" true
    (stats.Enclint.blocked_removed > 0);
  match Sat.solve s with
  | Sat.Unsat -> Alcotest.fail "exactly-2 of 6 is satisfiable"
  | Sat.Sat model ->
    check_ok "reconstructed model" (Drat.validate_model ~model (Sat.proof s));
    let count = List.length (List.filter (fun v -> model.(v)) vars) in
    Alcotest.(check int) "bound kept" 2 count

let test_simplify_preserves_verdicts () =
  (* Parity sweep: random-ish small CNFs solved with and without
     simplification must agree, and simplified runs must keep their
     certificates checkable. *)
  let mk seed =
    let s = Sat.create () in
    Sat.set_proof_logging s true;
    let n = 8 in
    for _ = 1 to n do
      ignore (Sat.fresh_var s)
    done;
    let state = ref (seed * 2654435761) in
    let next bound =
      state := (!state * 1103515245) + 12345;
      abs (!state / 65536) mod bound
    in
    for _ = 1 to 24 do
      let len = 2 + next 3 in
      let c =
        List.init len (fun _ -> Lit.make (next n) (next 2 = 0))
        |> List.sort_uniq compare
      in
      Sat.add_clause s c
    done;
    s
  in
  for seed = 1 to 20 do
    let plain = mk seed in
    let simplified = mk seed in
    ignore (Enclint.simplify simplified);
    let a = is_sat (Sat.solve plain) in
    let b =
      match Sat.solve simplified with
      | Sat.Sat model ->
        check_ok
          (Printf.sprintf "seed %d model" seed)
          (Drat.validate_model ~model (Sat.proof simplified));
        true
      | Sat.Unsat ->
        check_ok
          (Printf.sprintf "seed %d unsat" seed)
          (Drat.check (Sat.proof simplified));
        false
    in
    if a <> b then Alcotest.failf "seed %d: verdict changed" seed
  done

(* ------------------------------------------------------------------ *)
(* The CEGIS gate                                                      *)
(* ------------------------------------------------------------------ *)

let gated_config num_ports =
  { Cegis.default_config with
    Cegis.num_ports;
    r_max = num_ports + 1;
    max_experiment_size = 4;
    certify = true;
    enclint = true;
    enclint_simplify = true }

let test_cegis_gated_certified () =
  (* The acceptance bar: a --certify run with the analyzer and the
     simplifier gating every episode still converges, meaning every
     certificate over the simplified encodings was checker-accepted. *)
  let catalog = toy_catalog 2 in
  let num_ports = 2 in
  let truth = Mapping.create ~num_ports in
  let p0 = Portset.singleton 0 in
  Mapping.set truth (Catalog.find catalog 0) [ (p0, 1) ];
  Mapping.set truth (Catalog.find catalog 1) [ (p0, 1) ];
  let config = gated_config num_ports in
  let measure e = Cegis.modeled_inverse config truth e in
  let specs =
    [ (Catalog.find catalog 0, Encoding.Proper 1);
      (Catalog.find catalog 1, Encoding.Proper 1) ]
  in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.Converged _ -> ()
  | Cegis.No_consistent_mapping _ -> Alcotest.fail "unexpected UNSAT"
  | Cegis.Iteration_limit _ -> Alcotest.fail "iteration limit"

let test_cegis_gated_delta () =
  let catalog = toy_catalog 3 in
  let num_ports = 3 in
  let truth = Mapping.create ~num_ports in
  Mapping.set truth (Catalog.find catalog 0)
    [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set truth (Catalog.find catalog 1)
    [ (Portset.of_list [ 1; 2 ], 1) ];
  Mapping.set truth (Catalog.find catalog 2) [ (Portset.singleton 2, 1) ];
  let config = { (gated_config num_ports) with Cegis.max_experiment_size = 3 } in
  let measure e = Cegis.modeled_inverse config truth e in
  let base =
    [ (Catalog.find catalog 0, Encoding.Proper 2);
      (Catalog.find catalog 1, Encoding.Proper 2) ]
  in
  let base_mapping =
    match Cegis.infer ~config ~measure ~specs:base () with
    | Cegis.Converged (m, _) -> m
    | _ -> Alcotest.fail "base inference failed"
  in
  match
    Cegis.infer_delta ~config ~measure ~mapping:base_mapping ~specs:base
      ~updates:[ (Catalog.find catalog 2, Encoding.Proper 1) ]
      ()
  with
  | Cegis.Delta_applied (Cegis.Converged _) -> ()
  | _ -> Alcotest.fail "gated delta flush failed to converge"

let () =
  Alcotest.run "enclint"
    [ ("clean",
       [ Alcotest.test_case "creation-time encoding" `Quick
           test_clean_creation;
         Alcotest.test_case "improper (store-blocker) encoding" `Quick
           test_clean_improper;
         Alcotest.test_case "delta append/retire" `Quick test_clean_delta ]);
      ("mutations",
       [ Alcotest.test_case "dropped guard (metadata)" `Quick
           test_flags_dropped_guard;
         Alcotest.test_case "dropped guard (semantic)" `Quick
           test_flags_dropped_guard_semantic;
         Alcotest.test_case "wrong cardinality bound" `Quick
           test_flags_wrong_bound;
         Alcotest.test_case "unguarded delta row" `Quick
           test_flags_unguarded_row;
         Alcotest.test_case "duplicate clause" `Quick
           test_flags_duplicate_clause;
         Alcotest.test_case "reachable retired row" `Quick
           test_flags_retired_reachable;
         Alcotest.test_case "dead split hint" `Quick test_flags_split_dead;
         Alcotest.test_case "split_hint excludes dead vars" `Quick
           test_split_hint_excludes_dead;
         Alcotest.test_case "frozen literal unused" `Quick
           test_flags_frozen_unused ]);
      ("simplify",
       [ Alcotest.test_case "UNSAT certificate survives" `Quick
           test_simplify_unsat_certified;
         Alcotest.test_case "SAT model reconstructs" `Quick
           test_simplify_sat_model_validates;
         Alcotest.test_case "verdict parity + certificates" `Quick
           test_simplify_preserves_verdicts ]);
      ("cegis-gate",
       [ Alcotest.test_case "certified run with gate + simplify" `Quick
           test_cegis_gated_certified;
         Alcotest.test_case "gated delta flush" `Quick
           test_cegis_gated_delta ]) ]
