open Pmi_numeric

let bigint = Alcotest.testable Bigint.pp Bigint.equal
let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_roundtrip () =
  List.iter
    (fun i ->
       Alcotest.(check int) (string_of_int i) i Bigint.(to_int (of_int i)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1 lsl 40; -(1 lsl 40);
      max_int; min_int; min_int + 1 ]

let test_bigint_strings () =
  let check s = Alcotest.(check string) s s Bigint.(to_string (of_string s)) in
  List.iter check
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999"; "10000000000000000000000000000001" ];
  Alcotest.check bigint "of_int vs of_string"
    (Bigint.of_int 123456789) (Bigint.of_string "123456789")

let test_bigint_arith_large () =
  let a = Bigint.of_string "123456789123456789123456789" in
  let b = Bigint.of_string "987654321987654321" in
  Alcotest.(check string) "mul"
    "121932631356500531469135800347203169112635269"
    Bigint.(to_string (mul a b));
  Alcotest.(check string) "add" "123456790111111111111111110"
    Bigint.(to_string (add a b));
  let q, r = Bigint.divmod a b in
  Alcotest.check bigint "divmod reconstructs" a Bigint.(add (mul q b) r)

let test_bigint_division_signs () =
  let check a b =
    let q, r = Bigint.(divmod (of_int a) (of_int b)) in
    Alcotest.(check int) (Printf.sprintf "%d / %d" a b) (a / b) (Bigint.to_int q);
    Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) (Bigint.to_int r)
  in
  List.iter (fun (a, b) -> check a b)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (12345678, 347); (-1, 3) ]

let test_bigint_gcd () =
  Alcotest.check bigint "gcd 12 18" (Bigint.of_int 6)
    Bigint.(gcd (of_int 12) (of_int 18));
  Alcotest.check bigint "gcd 0 0" Bigint.zero Bigint.(gcd zero zero);
  Alcotest.check bigint "gcd -4 6" (Bigint.of_int 2)
    Bigint.(gcd (of_int (-4)) (of_int 6))

let test_bigint_to_int_overflow () =
  let big = Bigint.(mul (of_int max_int) (of_int 2)) in
  Alcotest.(check (option int)) "overflow" None (Bigint.to_int_opt big);
  Alcotest.(check (option int)) "min_int fits" (Some min_int)
    (Bigint.to_int_opt (Bigint.of_int min_int))

(* Property tests: Bigint agrees with native ints where both apply. *)
let gen_small = QCheck2.Gen.int_range (-1_000_000) 1_000_000

let prop_bigint_matches_int =
  QCheck2.Test.make ~name:"bigint add/sub/mul match int" ~count:500
    QCheck2.Gen.(pair gen_small gen_small)
    (fun (a, b) ->
       let open Bigint in
       to_int (add (of_int a) (of_int b)) = a + b
       && to_int (sub (of_int a) (of_int b)) = a - b
       && to_int (mul (of_int a) (of_int b)) = a * b
       && compare (of_int a) (of_int b) = Stdlib.compare a b)

let prop_bigint_divmod =
  QCheck2.Test.make ~name:"bigint divmod matches int" ~count:500
    QCheck2.Gen.(pair gen_small gen_small)
    (fun (a, b) ->
       QCheck2.assume (b <> 0);
       let q, r = Bigint.(divmod (of_int a) (of_int b)) in
       Bigint.to_int q = a / b && Bigint.to_int r = a mod b)

let prop_bigint_string_roundtrip =
  QCheck2.Test.make ~name:"bigint string roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 9))
    (fun digits ->
       let s = String.concat "" (List.map string_of_int digits) in
       let normalised =
         let s' = Bigint.(to_string (of_string s)) in
         s'
       in
       (* to_string drops leading zeros; compare numerically. *)
       Bigint.(equal (of_string s) (of_string normalised)))

(* Large-operand stress: generate numerals digit by digit and verify the
   ring laws that native ints cannot check. *)
let big_gen =
  QCheck2.Gen.(
    map2
      (fun neg digits ->
         let s = String.concat "" (List.map string_of_int digits) in
         let s = if s = "" then "0" else s in
         Bigint.of_string (if neg then "-" ^ s else s))
      bool
      (list_size (int_range 1 40) (int_range 0 9)))

let prop_big_divmod_reconstructs =
  QCheck2.Test.make ~name:"big divmod reconstructs" ~count:300
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) ->
       QCheck2.assume (not (Bigint.is_zero b));
       let q, r = Bigint.divmod a b in
       Bigint.equal a (Bigint.add (Bigint.mul q b) r)
       && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
       && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_big_gcd_divides =
  QCheck2.Test.make ~name:"big gcd divides both" ~count:300
    QCheck2.Gen.(pair big_gen big_gen)
    (fun (a, b) ->
       let g = Bigint.gcd a b in
       if Bigint.is_zero g then Bigint.is_zero a && Bigint.is_zero b
       else
         Bigint.is_zero (Bigint.rem a g)
         && Bigint.is_zero (Bigint.rem b g)
         && Bigint.sign g > 0)

let prop_big_string_roundtrip =
  QCheck2.Test.make ~name:"big to_string/of_string roundtrip" ~count:300
    big_gen
    (fun a -> Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let prop_big_mul_distributes =
  QCheck2.Test.make ~name:"big multiplication distributes" ~count:200
    QCheck2.Gen.(triple big_gen big_gen big_gen)
    (fun (a, b, c) ->
       Bigint.equal
         (Bigint.mul a (Bigint.add b c))
         (Bigint.add (Bigint.mul a b) (Bigint.mul a c)))

(* ------------------------------------------------------------------ *)
(* Rat unit and property tests                                         *)
(* ------------------------------------------------------------------ *)

let test_rat_canonical () =
  Alcotest.check rat "2/4 = 1/2" (Rat.of_ints 1 2) (Rat.of_ints 2 4);
  Alcotest.check rat "neg den" (Rat.of_ints (-1) 2) (Rat.of_ints 1 (-2));
  Alcotest.(check string) "print" "5/4" (Rat.to_string (Rat.of_ints 10 8));
  Alcotest.(check string) "int print" "3" (Rat.to_string (Rat.of_ints 9 3))

let test_rat_arith () =
  let open Rat.Infix in
  Alcotest.check rat "1/2 + 1/3" (Rat.of_ints 5 6)
    (Rat.of_ints 1 2 + Rat.of_ints 1 3);
  Alcotest.check rat "3/4 * 2/3" (Rat.of_ints 1 2)
    (Rat.of_ints 3 4 * Rat.of_ints 2 3);
  Alcotest.check rat "div" (Rat.of_ints 9 8) (Rat.of_ints 3 4 / Rat.of_ints 2 3);
  Alcotest.(check bool) "lt" true (Rat.of_ints 1 3 < Rat.of_ints 1 2)

let test_rat_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 Bigint.(to_int (Rat.floor (Rat.of_ints 7 2)));
  Alcotest.(check int) "floor -7/2" (-4)
    Bigint.(to_int (Rat.floor (Rat.of_ints (-7) 2)));
  Alcotest.(check int) "ceil 7/2" 4 Bigint.(to_int (Rat.ceil (Rat.of_ints 7 2)));
  Alcotest.(check int) "ceil -7/2" (-3)
    Bigint.(to_int (Rat.ceil (Rat.of_ints (-7) 2)))

let rat_gen =
  QCheck2.Gen.(
    map2 (fun n d -> Rat.of_ints n d)
      (int_range (-1000) 1000)
      (map (fun d -> if d = 0 then 1 else d) (int_range (-50) 50)))

let prop_rat_field_laws =
  QCheck2.Test.make ~name:"rat ring laws" ~count:500
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
       let open Rat in
       equal (add a b) (add b a)
       && equal (mul a b) (mul b a)
       && equal (add (add a b) c) (add a (add b c))
       && equal (mul (mul a b) c) (mul a (mul b c))
       && equal (mul a (add b c)) (add (mul a b) (mul a c))
       && equal (sub a a) zero)

let prop_rat_order_total =
  QCheck2.Test.make ~name:"rat order consistent with subtraction" ~count:500
    QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) -> Rat.compare a b = Rat.sign (Rat.sub a b))

let prop_rat_to_float =
  QCheck2.Test.make ~name:"rat to_float is close" ~count:500 rat_gen
    (fun a ->
       let f = Rat.to_float a in
       let n = float_of_string (Bigint.to_string (Rat.num a)) in
       let d = float_of_string (Bigint.to_string (Rat.den a)) in
       Float.abs (f -. (n /. d)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Simplex tests                                                       *)
(* ------------------------------------------------------------------ *)

let solve_expect name problem expected =
  match Simplex.solve problem with
  | Simplex.Optimal { objective_value; _ } ->
    Alcotest.check rat name expected objective_value
  | Simplex.Infeasible -> Alcotest.failf "%s: infeasible" name
  | Simplex.Unbounded -> Alcotest.failf "%s: unbounded" name

let r = Rat.of_int

let test_simplex_basic_max () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic; opt 36). *)
  let problem =
    { Simplex.num_vars = 2;
      constraints =
        [ { Simplex.coeffs = [| r 1; r 0 |]; relation = Simplex.Le; rhs = r 4 };
          { Simplex.coeffs = [| r 0; r 2 |]; relation = Simplex.Le; rhs = r 12 };
          { Simplex.coeffs = [| r 3; r 2 |]; relation = Simplex.Le; rhs = r 18 } ];
      objective = Simplex.Maximize [| r 3; r 5 |] }
  in
  solve_expect "classic max" problem (r 36)

let test_simplex_min_with_ge () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6; optimum at (8/5, 6/5) = 14/5. *)
  let problem =
    { Simplex.num_vars = 2;
      constraints =
        [ { Simplex.coeffs = [| r 1; r 2 |]; relation = Simplex.Ge; rhs = r 4 };
          { Simplex.coeffs = [| r 3; r 1 |]; relation = Simplex.Ge; rhs = r 6 } ];
      objective = Simplex.Minimize [| r 1; r 1 |] }
  in
  solve_expect "min with >=" problem (Rat.of_ints 14 5)

let test_simplex_equality () =
  (* min 2x + y s.t. x + y = 3, x <= 1; optimum x=0, y=3 -> 3. *)
  let problem =
    { Simplex.num_vars = 2;
      constraints =
        [ { Simplex.coeffs = [| r 1; r 1 |]; relation = Simplex.Eq; rhs = r 3 };
          { Simplex.coeffs = [| r 1; r 0 |]; relation = Simplex.Le; rhs = r 1 } ];
      objective = Simplex.Minimize [| r 2; r 1 |] }
  in
  solve_expect "equality" problem (r 3)

let test_simplex_infeasible () =
  let problem =
    { Simplex.num_vars = 1;
      constraints =
        [ { Simplex.coeffs = [| r 1 |]; relation = Simplex.Le; rhs = r 1 };
          { Simplex.coeffs = [| r 1 |]; relation = Simplex.Ge; rhs = r 2 } ];
      objective = Simplex.Minimize [| r 1 |] }
  in
  match Simplex.solve problem with
  | Simplex.Infeasible -> ()
  | Simplex.Optimal _ | Simplex.Unbounded ->
    Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let problem =
    { Simplex.num_vars = 1;
      constraints =
        [ { Simplex.coeffs = [| r 1 |]; relation = Simplex.Ge; rhs = r 1 } ];
      objective = Simplex.Maximize [| r 1 |] }
  in
  match Simplex.solve problem with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal _ | Simplex.Infeasible -> Alcotest.fail "expected unbounded"

let test_simplex_degenerate () =
  (* Degenerate vertex (x+y <= 0 and y+z <= 0 pin all three variables to
     zero): Bland's rule must still terminate and report 0. *)
  let problem =
    { Simplex.num_vars = 3;
      constraints =
        [ { Simplex.coeffs = [| r 1; r 1; r 0 |]; relation = Simplex.Le; rhs = r 0 };
          { Simplex.coeffs = [| r 0; r 1; r 1 |]; relation = Simplex.Le; rhs = r 0 };
          { Simplex.coeffs = [| r 1; r 0; r 1 |]; relation = Simplex.Le; rhs = r 2 } ];
      objective = Simplex.Maximize [| r 1; r 1; r 1 |] }
  in
  solve_expect "degenerate" problem (r 0)

let test_simplex_assignment () =
  let problem =
    { Simplex.num_vars = 2;
      constraints =
        [ { Simplex.coeffs = [| r 1; r 1 |]; relation = Simplex.Le; rhs = r 10 } ];
      objective = Simplex.Maximize [| r 2; r 1 |] }
  in
  match Simplex.solve problem with
  | Simplex.Optimal { assignment; objective_value } ->
    Alcotest.check rat "value" (r 20) objective_value;
    Alcotest.check rat "x" (r 10) assignment.(0);
    Alcotest.check rat "y" (r 0) assignment.(1)
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimal"

(* Random feasibility property: the optimum of a min problem with rhs >= 0
   and Le constraints is 0 (all-zero is feasible and the objective is
   non-negative). *)
let prop_simplex_trivial_optimum =
  QCheck2.Test.make ~name:"simplex: all-zero optimal when feasible" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 4) (int_range 0 9)))
    (fun rows ->
       QCheck2.assume (rows <> []);
       let width = List.length (List.hd rows) in
       QCheck2.assume (List.for_all (fun r' -> List.length r' = width) rows);
       let constraints =
         List.map
           (fun row ->
              { Simplex.coeffs = Array.of_list (List.map Rat.of_int row);
                relation = Simplex.Le;
                rhs = Rat.of_int 5 })
           rows
       in
       let objective = Simplex.Minimize (Array.make width Rat.one) in
       match Simplex.solve { Simplex.num_vars = width; constraints; objective } with
       | Simplex.Optimal { objective_value; _ } -> Rat.is_zero objective_value
       | Simplex.Infeasible | Simplex.Unbounded -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "numeric"
    [ ("bigint",
       [ Alcotest.test_case "roundtrip" `Quick test_bigint_roundtrip;
         Alcotest.test_case "strings" `Quick test_bigint_strings;
         Alcotest.test_case "large arithmetic" `Quick test_bigint_arith_large;
         Alcotest.test_case "division signs" `Quick test_bigint_division_signs;
         Alcotest.test_case "gcd" `Quick test_bigint_gcd;
         Alcotest.test_case "to_int overflow" `Quick test_bigint_to_int_overflow ]
       @ qsuite
           [ prop_bigint_matches_int; prop_bigint_divmod;
             prop_bigint_string_roundtrip; prop_big_divmod_reconstructs;
             prop_big_gcd_divides; prop_big_string_roundtrip;
             prop_big_mul_distributes ]);
      ("rat",
       [ Alcotest.test_case "canonical form" `Quick test_rat_canonical;
         Alcotest.test_case "arithmetic" `Quick test_rat_arith;
         Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil ]
       @ qsuite [ prop_rat_field_laws; prop_rat_order_total; prop_rat_to_float ]);
      ("simplex",
       [ Alcotest.test_case "classic max" `Quick test_simplex_basic_max;
         Alcotest.test_case "min with >=" `Quick test_simplex_min_with_ge;
         Alcotest.test_case "equality" `Quick test_simplex_equality;
         Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
         Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
         Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
         Alcotest.test_case "assignment" `Quick test_simplex_assignment ]
       @ qsuite [ prop_simplex_trivial_optimum ]) ]
