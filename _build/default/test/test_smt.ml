open Pmi_smt

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let test_lit_encoding () =
  let l = Lit.pos 5 in
  Alcotest.(check int) "var" 5 (Lit.var l);
  Alcotest.(check bool) "pos" true (Lit.is_pos l);
  let n = Lit.negate l in
  Alcotest.(check int) "neg var" 5 (Lit.var n);
  Alcotest.(check bool) "neg polarity" false (Lit.is_pos n);
  Alcotest.(check int) "double negate" l (Lit.negate n);
  Alcotest.(check int) "make" (Lit.neg_of_var 3) (Lit.make 3 false)

(* ------------------------------------------------------------------ *)
(* SAT solver unit tests                                               *)
(* ------------------------------------------------------------------ *)

let is_sat = function Sat.Sat _ -> true | Sat.Unsat -> false

let test_sat_trivial () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a ];
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "a true" true model.(a)
   | Sat.Unsat -> Alcotest.fail "unexpected unsat")

let test_sat_contradiction () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a ];
  Sat.add_clause s [ Lit.neg_of_var a ];
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  Alcotest.(check bool) "not okay" false (Sat.okay s)

let test_sat_implication_chain () =
  (* a & (a -> b) & (b -> c) & (c -> d): all forced true. *)
  let s = Sat.create () in
  let vars = Array.init 4 (fun _ -> Sat.fresh_var s) in
  Sat.add_clause s [ Lit.pos vars.(0) ];
  for i = 0 to 2 do
    Sat.add_clause s [ Lit.neg_of_var vars.(i); Lit.pos vars.(i + 1) ]
  done;
  match Sat.solve s with
  | Sat.Sat model ->
    Array.iter (fun v -> Alcotest.(check bool) "forced" true model.(v)) vars
  | Sat.Unsat -> Alcotest.fail "unexpected unsat"

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. *)
  let s = Sat.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.fresh_var s)) in
  for p = 0 to 2 do
    Sat.add_clause s [ Lit.pos v.(p).(0); Lit.pos v.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Sat.add_clause s [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s))

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.neg_of_var a; Lit.pos b ];
  (match Sat.solve ~assumptions:[ Lit.pos a; Lit.neg_of_var b ] s with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "assumptions should conflict");
  (* The solver must remain usable and satisfiable without assumptions. *)
  Alcotest.(check bool) "still sat" true (is_sat (Sat.solve s));
  match Sat.solve ~assumptions:[ Lit.pos a ] s with
  | Sat.Sat model -> Alcotest.(check bool) "b forced" true model.(b)
  | Sat.Unsat -> Alcotest.fail "should be sat under a"

let test_sat_incremental () =
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  let b = Sat.fresh_var s in
  Sat.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.(check bool) "sat" true (is_sat (Sat.solve s));
  Sat.add_clause s [ Lit.neg_of_var a ];
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "b" true model.(b)
   | Sat.Unsat -> Alcotest.fail "unexpected unsat");
  Sat.add_clause s [ Lit.neg_of_var b ];
  Alcotest.(check bool) "unsat after both" false (is_sat (Sat.solve s))

(* Property: agreement with brute force on random small CNFs. *)

let brute_force_sat num_vars clauses =
  let rec go assignment v =
    if v = num_vars then
      List.for_all
        (fun clause ->
           List.exists
             (fun l ->
                let value = assignment.(Lit.var l) in
                if Lit.is_pos l then value else not value)
             clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make num_vars false) 0

let cnf_gen =
  let open QCheck2.Gen in
  let num_vars = int_range 1 8 in
  num_vars >>= fun n ->
  let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
  let clause = list_size (int_range 1 4) lit in
  map (fun clauses -> (n, clauses)) (list_size (int_range 1 25) clause)

let prop_sat_matches_brute_force =
  QCheck2.Test.make ~name:"CDCL matches brute force" ~count:300 cnf_gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       let expected = brute_force_sat n clauses in
       match Sat.solve s with
       | Sat.Sat model ->
         (* The model must actually satisfy all clauses. *)
         expected
         && List.for_all
              (List.exists (fun l ->
                   if Lit.is_pos l then model.(Lit.var l)
                   else not model.(Lit.var l)))
              clauses
       | Sat.Unsat -> not expected)

(* Stress: random 3-SAT near the phase transition.  Whatever the verdict,
   a returned model must satisfy every clause, and the solver must finish
   (no watched-literal corruption, no lost clauses across restarts). *)
let prop_sat_3sat_stress =
  let gen =
    let open QCheck2.Gen in
    let n = 40 in
    let lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (n - 1)) bool in
    let clause =
      map (fun (a, b, c) -> [ a; b; c ]) (triple lit lit lit)
    in
    map (fun clauses -> (n, clauses)) (list_repeat 170 clause)
  in
  QCheck2.Test.make ~name:"3-SAT stress: models verify" ~count:50 gen
    (fun (n, clauses) ->
       let s = Sat.create () in
       for _ = 1 to n do
         ignore (Sat.fresh_var s)
       done;
       List.iter (Sat.add_clause s) clauses;
       match Sat.solve s with
       | Sat.Sat model ->
         List.for_all
           (List.exists (fun l ->
                if Lit.is_pos l then model.(Lit.var l) else not model.(Lit.var l)))
           clauses
       | Sat.Unsat -> true)

let test_sat_pigeonhole_6_5 () =
  (* A harder UNSAT instance exercising clause learning and restarts. *)
  let s = Sat.create () in
  let v = Array.init 6 (fun _ -> Array.init 5 (fun _ -> Sat.fresh_var s)) in
  for p = 0 to 5 do
    Sat.add_clause s (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to 4 do
    for p1 = 0 to 5 do
      for p2 = p1 + 1 to 5 do
        Sat.add_clause s [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s));
  Alcotest.(check bool) "learned something" true (Sat.num_conflicts s > 0)

(* ------------------------------------------------------------------ *)
(* Cardinality constraints                                             *)
(* ------------------------------------------------------------------ *)

let count_true model vars =
  List.length (List.filter (fun v -> model.(v)) vars)

let solve_card build =
  let s = Sat.create () in
  let vars = List.init 6 (fun _ -> Sat.fresh_var s) in
  build s (List.map Lit.pos vars);
  (s, vars)

let test_card_at_most () =
  let s, vars = solve_card (fun s lits -> Card.at_most s lits 2) in
  (* Force three variables true: must be unsat. *)
  (match
     Sat.solve
       ~assumptions:(List.map Lit.pos [ List.nth vars 0; List.nth vars 1; List.nth vars 2 ])
       s
   with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "3 > 2 should conflict");
  match Sat.solve ~assumptions:(List.map Lit.pos [ List.nth vars 0; List.nth vars 4 ]) s with
  | Sat.Sat model ->
    Alcotest.(check bool) "≤ 2 true" true (count_true model vars <= 2)
  | Sat.Unsat -> Alcotest.fail "2 ≤ 2 should be sat"

let test_card_at_least () =
  let s, vars = solve_card (fun s lits -> Card.at_least s lits 4) in
  match Sat.solve s with
  | Sat.Sat model ->
    Alcotest.(check bool) "≥ 4 true" true (count_true model vars >= 4)
  | Sat.Unsat -> Alcotest.fail "at_least 4 of 6 is satisfiable"

let test_card_exactly () =
  let s, vars = solve_card (fun s lits -> Card.exactly s lits 3) in
  match Sat.solve s with
  | Sat.Sat model -> Alcotest.(check int) "exactly 3" 3 (count_true model vars)
  | Sat.Unsat -> Alcotest.fail "exactly 3 of 6 is satisfiable"

let test_card_edge_cases () =
  (* k = 0 forbids everything. *)
  let s = Sat.create () in
  let a = Sat.fresh_var s in
  Card.at_most s [ Lit.pos a ] 0;
  (match Sat.solve s with
   | Sat.Sat model -> Alcotest.(check bool) "a false" false model.(a)
   | Sat.Unsat -> Alcotest.fail "sat expected");
  (* k = n is vacuous. *)
  let s2 = Sat.create () in
  let b = Sat.fresh_var s2 in
  Card.at_most s2 [ Lit.pos b ] 1;
  Alcotest.(check bool) "vacuous" true
    (match Sat.solve s2 with Sat.Sat _ -> true | Sat.Unsat -> false);
  (* at_least more than available is unsat. *)
  let s3 = Sat.create () in
  let c = Sat.fresh_var s3 in
  Card.at_least s3 [ Lit.pos c ] 2;
  Alcotest.(check bool) "impossible at_least" false
    (match Sat.solve s3 with Sat.Sat _ -> true | Sat.Unsat -> false)

let prop_card_exactly_counts =
  QCheck2.Test.make ~name:"exactly-k models have k true vars" ~count:100
    QCheck2.Gen.(pair (int_range 1 7) (int_range 0 7))
    (fun (n, k) ->
       QCheck2.assume (k <= n);
       let s = Sat.create () in
       let vars = List.init n (fun _ -> Sat.fresh_var s) in
       Card.exactly s (List.map Lit.pos vars) k;
       match Sat.solve s with
       | Sat.Sat model -> count_true model vars = k
       | Sat.Unsat -> false)

(* ------------------------------------------------------------------ *)
(* Expr: formulas and Tseitin transformation                           *)
(* ------------------------------------------------------------------ *)

let test_expr_smart_constructors () =
  let x = Expr.var 0 and y = Expr.var 1 in
  Alcotest.(check bool) "neg neg" true (Expr.neg (Expr.neg x) = x);
  Alcotest.(check bool) "conj true unit" true (Expr.conj [ Expr.tt; x ] = x);
  Alcotest.(check bool) "conj false" true
    (Expr.conj [ x; Expr.ff; y ] = Expr.ff);
  Alcotest.(check bool) "disj false unit" true (Expr.disj [ Expr.ff; y ] = y);
  Alcotest.(check bool) "imp from false" true (Expr.imp Expr.ff x = Expr.tt);
  Alcotest.(check bool) "iff with true" true (Expr.iff Expr.tt x = x);
  Alcotest.(check (list int)) "vars" [ 0; 1 ]
    (Expr.vars (Expr.conj [ x; Expr.neg y; x ]))

let expr_gen =
  let open QCheck2.Gen in
  let num_vars = 5 in
  sized_size (int_range 0 4) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ map Expr.var (int_range 0 (num_vars - 1));
            return Expr.tt; return Expr.ff ]
      else
        oneof
          [ map Expr.var (int_range 0 (num_vars - 1));
            map Expr.neg (self (n - 1));
            map2 (fun a b -> Expr.conj [ a; b ]) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Expr.disj [ a; b ]) (self (n / 2)) (self (n / 2));
            map2 Expr.imp (self (n / 2)) (self (n / 2));
            map2 Expr.iff (self (n / 2)) (self (n / 2)) ])

let brute_force_expr e =
  let rec go env = function
    | [] -> Expr.eval (fun v -> List.assoc v env) e
    | v :: rest -> go ((v, true) :: env) rest || go ((v, false) :: env) rest
  in
  go [] (List.init 5 Fun.id)

let prop_tseitin_equisatisfiable =
  QCheck2.Test.make ~name:"Tseitin preserves satisfiability" ~count:300 expr_gen
    (fun e ->
       let s = Sat.create () in
       for _ = 1 to 5 do
         ignore (Sat.fresh_var s)
       done;
       Expr.assert_in s e;
       match Sat.solve s with
       | Sat.Sat model -> Expr.eval (fun v -> model.(v)) e
       | Sat.Unsat -> not (brute_force_expr e))

let prop_expr_eval_neg =
  QCheck2.Test.make ~name:"eval of negation flips" ~count:200 expr_gen
    (fun e ->
       let env v = v mod 2 = 0 in
       Expr.eval env (Expr.neg e) = not (Expr.eval env e))

(* ------------------------------------------------------------------ *)
(* Theory (CEGAR) driver                                               *)
(* ------------------------------------------------------------------ *)

let test_theory_loop () =
  (* Boolean skeleton: any subset of 4 vars.  Theory: "exactly the set
     {1,3} is allowed", communicated only through refutation lemmas. *)
  let s = Sat.create () in
  let vars = Array.init 4 (fun _ -> Sat.fresh_var s) in
  let target = [ false; true; false; true ] in
  let check model =
    let lemmas = ref [] in
    List.iteri
      (fun i want ->
         if model.(vars.(i)) <> want then
           lemmas := [ Lit.make vars.(i) want ] :: !lemmas)
      target;
    !lemmas
  in
  match Solver.solve ~check s with
  | Solver.Sat model ->
    List.iteri
      (fun i want -> Alcotest.(check bool) "theory model" want model.(vars.(i)))
      target
  | Solver.Unsat -> Alcotest.fail "theory-consistent model exists"

let test_theory_unsat () =
  (* The theory rejects every model of a 1-variable skeleton. *)
  let s = Sat.create () in
  let v = Sat.fresh_var s in
  let check model =
    [ [ Lit.make v (not model.(v)) ] ]
  in
  match Solver.solve ~check s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "theory rejects everything"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "smt"
    [ ("lit", [ Alcotest.test_case "encoding" `Quick test_lit_encoding ]);
      ("sat",
       [ Alcotest.test_case "trivial" `Quick test_sat_trivial;
         Alcotest.test_case "contradiction" `Quick test_sat_contradiction;
         Alcotest.test_case "implication chain" `Quick test_sat_implication_chain;
         Alcotest.test_case "pigeonhole 3/2" `Quick test_sat_pigeonhole_3_2;
         Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
         Alcotest.test_case "incremental" `Quick test_sat_incremental;
         Alcotest.test_case "pigeonhole 6/5" `Slow test_sat_pigeonhole_6_5 ]
       @ qsuite [ prop_sat_matches_brute_force; prop_sat_3sat_stress ]);
      ("card",
       [ Alcotest.test_case "at_most" `Quick test_card_at_most;
         Alcotest.test_case "at_least" `Quick test_card_at_least;
         Alcotest.test_case "exactly" `Quick test_card_exactly;
         Alcotest.test_case "edge cases" `Quick test_card_edge_cases ]
       @ qsuite [ prop_card_exactly_counts ]);
      ("expr",
       [ Alcotest.test_case "smart constructors" `Quick test_expr_smart_constructors ]
       @ qsuite [ prop_tseitin_equisatisfiable; prop_expr_eval_neg ]);
      ("theory",
       [ Alcotest.test_case "cegar loop" `Quick test_theory_loop;
         Alcotest.test_case "theory unsat" `Quick test_theory_unsat ]) ]
