open Pmi_isa
open Pmi_portmap
open Pmi_baselines
module Rat = Pmi_numeric.Rat
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    let f = Rng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:2 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let prop_rng_uniformish =
  QCheck2.Test.make ~name:"rng roughly uniform" ~count:20
    (QCheck2.Gen.int_range 1 1000)
    (fun seed ->
       let rng = Rng.create ~seed in
       let buckets = Array.make 4 0 in
       for _ = 1 to 400 do
         let v = Rng.int rng 4 in
         buckets.(v) <- buckets.(v) + 1
       done;
       Array.for_all (fun c -> c > 40) buckets)

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let catalog = Catalog.reduced ~per_bucket:3 ()
let machine = Machine.create catalog
let harness = Harness.create machine

let schemes =
  List.concat_map (Catalog.bucket catalog)
    [ "blocking/alu"; "blocking/vec-logic"; "blocking/fp-add";
      "blocking/shuffle"; "blocking/vec-shift"; "blocking/load" ]

(* ------------------------------------------------------------------ *)
(* PMEvo                                                               *)
(* ------------------------------------------------------------------ *)

let test_pmevo_training_set () =
  let training = Pmevo.training_set ~pairs:30 ~blocks:10 harness schemes in
  Alcotest.(check bool) "contains all singletons" true
    (List.for_all
       (fun s ->
          List.exists
            (fun b -> Experiment.equal b.Pmevo.experiment (Experiment.singleton s))
            training)
       schemes);
  Alcotest.(check bool) "cycles positive" true
    (List.for_all (fun b -> Rat.sign b.Pmevo.cycles > 0) training)

let test_pmevo_learns_singletons () =
  let config =
    { Pmevo.default_config with Pmevo.population = 16; generations = 15 }
  in
  let training = Pmevo.training_set ~pairs:40 ~blocks:20 harness schemes in
  let mapping = Pmevo.infer ~config training schemes in
  (* Every scheme must be mapped and most singleton predictions should be
     within 30% (the seeded population nails them at generation zero). *)
  Alcotest.(check bool) "all mapped" true
    (List.for_all (Mapping.supports mapping) schemes);
  let close =
    List.filter
      (fun s ->
         let e = Experiment.singleton s in
         let predicted = Rat.to_float (Throughput.inverse mapping e) in
         let measured = Rat.to_float (Harness.cycles harness e) in
         Float.abs (predicted -. measured) /. measured < 0.3)
      schemes
  in
  Alcotest.(check bool) "most singletons close" true
    (2 * List.length close >= List.length schemes)

let test_pmevo_deterministic () =
  let config =
    { Pmevo.default_config with Pmevo.population = 8; generations = 3 }
  in
  let training = Pmevo.training_set ~pairs:10 ~blocks:5 harness schemes in
  let m1 = Pmevo.infer ~config training schemes in
  let m2 = Pmevo.infer ~config training schemes in
  List.iter
    (fun s ->
       Alcotest.(check bool) "same usage" true
         (Mapping.equal_usage (Mapping.usage m1 s) (Mapping.usage m2 s)))
    schemes

let test_pmevo_fitness_perfect_mapping () =
  (* The machine's own ground truth must score better than a random one. *)
  let truth = Machine.ground_truth machine in
  let training = Pmevo.training_set ~pairs:40 ~blocks:20 harness schemes in
  let truth_fitness = Pmevo.fitness ~num_ports:10 ~r_max:5 truth training in
  let random = Mapping.create ~num_ports:10 in
  List.iter
    (fun s -> Mapping.set random s [ (Portset.singleton 9, 1) ])
    schemes;
  let random_fitness = Pmevo.fitness ~num_ports:10 ~r_max:5 random training in
  Alcotest.(check bool) "truth beats everything-on-one-port" true
    (truth_fitness < random_fitness);
  Alcotest.(check bool) "truth error small" true (truth_fitness < 10.0)

(* ------------------------------------------------------------------ *)
(* Palmed                                                              *)
(* ------------------------------------------------------------------ *)

let unbiased = { Palmed.default_config with Palmed.measurement_bias = 0.0 }

let test_palmed_resources_discovered () =
  let model = Palmed.infer ~config:unbiased harness schemes in
  (* The scheme set spans several throughput classes; at least a handful of
     abstract resources must emerge. *)
  Alcotest.(check bool) "several resources" true (Palmed.resources model >= 3);
  Alcotest.(check bool) "supports all" true
    (List.for_all (Palmed.supports model) schemes)

let test_palmed_singleton_accuracy () =
  let model = Palmed.infer ~config:unbiased harness schemes in
  List.iter
    (fun s ->
       let e = Experiment.singleton s in
       let predicted = Rat.to_float (Palmed.predict model e) in
       let measured = Rat.to_float (Harness.cycles harness e) in
       Alcotest.(check bool)
         (Printf.sprintf "singleton %s" (Scheme.name s))
         true
         (Float.abs (predicted -. measured) /. measured < 0.1))
    schemes

let test_palmed_conjunctive_monotone () =
  let model = Palmed.infer ~config:unbiased harness schemes in
  let s1 = List.nth schemes 0 and s2 = List.nth schemes 4 in
  let small = Experiment.of_list [ s1 ] in
  let large = Experiment.of_counts [ (s1, 2); (s2, 1) ] in
  Alcotest.(check bool) "monotone" true
    (Rat.compare (Palmed.predict model large) (Palmed.predict model small) >= 0)

let test_palmed_bias_slows_predictions () =
  let fair = Palmed.infer ~config:unbiased harness schemes in
  let biased =
    Palmed.infer ~config:{ unbiased with Palmed.measurement_bias = 1.0 }
      harness schemes
  in
  let e = Experiment.of_list [ List.nth schemes 0; List.nth schemes 5 ] in
  Alcotest.(check bool) "bias predicts slower" true
    (Rat.compare (Palmed.predict biased e) (Palmed.predict fair e) >= 0)

let test_palmed_unknown_scheme () =
  let model = Palmed.infer ~config:unbiased harness [ List.hd schemes ] in
  let foreign = List.hd (Catalog.bucket catalog "blocking/fp-mul-cmp") in
  Alcotest.check_raises "unknown scheme" Not_found (fun () ->
      ignore (Palmed.predict model (Experiment.singleton foreign)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "baselines"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes ]
       @ qsuite [ prop_rng_uniformish ]);
      ("pmevo",
       [ Alcotest.test_case "training set" `Quick test_pmevo_training_set;
         Alcotest.test_case "learns singletons" `Slow test_pmevo_learns_singletons;
         Alcotest.test_case "deterministic" `Quick test_pmevo_deterministic;
         Alcotest.test_case "fitness sanity" `Quick test_pmevo_fitness_perfect_mapping ]);
      ("palmed",
       [ Alcotest.test_case "resource discovery" `Quick test_palmed_resources_discovered;
         Alcotest.test_case "singleton accuracy" `Quick test_palmed_singleton_accuracy;
         Alcotest.test_case "conjunctive monotonicity" `Quick
           test_palmed_conjunctive_monotone;
         Alcotest.test_case "infrastructure bias" `Quick
           test_palmed_bias_slows_predictions;
         Alcotest.test_case "unknown scheme" `Quick test_palmed_unknown_scheme ]) ]
