open Pmi_isa
open Pmi_portmap
module Rat = Pmi_numeric.Rat
module Pool = Pmi_parallel.Pool

let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* Fixtures: the Figure 2 toy plus a randomised 6-port catalog         *)
(* ------------------------------------------------------------------ *)

let toy_catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let add = Catalog.find toy_catalog 0
let mul = Catalog.find toy_catalog 1
let fma = Catalog.find toy_catalog 2

let toy_mapping () =
  let both = Portset.of_list [ 0; 1 ] in
  let p2 = Portset.singleton 1 in
  let m = Mapping.create ~num_ports:2 in
  Mapping.set m add [ (both, 1) ];
  Mapping.set m mul [ (p2, 1) ];
  Mapping.set m fma [ (both, 2); (p2, 1) ];
  m

let num_random_schemes = 6
let random_ports = 6

let random_catalog =
  Catalog.of_list
    (List.init num_random_schemes (fun i ->
         (Printf.sprintf "i%d" i, [ Operand.gpr 32 ],
          Iclass.plain (Iclass.Single Iclass.Alu))))

(* Generates (usages, counts): a full random mapping over [random_ports]
   ports and an experiment over the same schemes. *)
let mapping_experiment_gen =
  let open QCheck2.Gen in
  let portset =
    map
      (fun bits ->
         Portset.of_list
           (List.filter (fun p -> bits land (1 lsl p) <> 0)
              (List.init random_ports Fun.id)))
      (int_range 1 ((1 lsl random_ports) - 1))
  in
  let usage = list_size (int_range 1 3) (pair portset (int_range 1 3)) in
  let usages = list_repeat num_random_schemes usage in
  let counts = list_repeat num_random_schemes (int_range 0 4) in
  pair usages counts

let build_mapping usages =
  let m = Mapping.create ~num_ports:random_ports in
  List.iteri
    (fun i usage -> Mapping.set m (Catalog.find random_catalog i) usage)
    usages;
  m

let build_experiment counts =
  Experiment.of_counts
    (List.mapi (fun i n -> (Catalog.find random_catalog i, n)) counts)

(* ------------------------------------------------------------------ *)
(* Known values on the toy                                             *)
(* ------------------------------------------------------------------ *)

let test_toy_known_values () =
  let m = toy_mapping () in
  let o = Oracle.create m in
  let e = Experiment.of_counts [ (mul, 2); (fma, 1) ] in
  Alcotest.check rat "Figure 2" (Rat.of_int 3) (Oracle.inverse o e);
  Alcotest.(check (list int)) "bottleneck p2" [ 1 ]
    (Portset.to_list (Oracle.bottleneck_set o e));
  Alcotest.check rat "Figure 3(b)" (Rat.of_ints 9 2)
    (Oracle.inverse o (Experiment.of_counts [ (add, 6); (fma, 1) ]));
  Alcotest.check rat "empty" Rat.zero (Oracle.inverse o Experiment.empty);
  Alcotest.(check bool) "empty bottleneck" true
    (Portset.is_empty (Oracle.bottleneck_set o Experiment.empty));
  (* Frontend bound: 8 adds over 2 ports. *)
  let e8 = Experiment.replicate 8 add in
  Alcotest.check rat "unbounded" (Rat.of_int 4)
    (Oracle.inverse_bounded ~r_max:5 o e8);
  Alcotest.check rat "bounded" (Rat.of_int 8)
    (Oracle.inverse_bounded ~r_max:1 o e8)

let test_unsupported () =
  let m = Mapping.create ~num_ports:2 in
  let o = Oracle.create m in
  Alcotest.check_raises "unsupported scheme" (Throughput.Unsupported add)
    (fun () -> ignore (Oracle.inverse o (Experiment.singleton add)));
  Alcotest.check_raises "unsupported in prepare" (Throughput.Unsupported add)
    (fun () -> Oracle.prepare o [ add ])

let test_port_limit () =
  Alcotest.check_raises "too many ports"
    (Invalid_argument "Oracle.create: unsupported port count")
    (fun () -> ignore (Oracle.create (Mapping.create ~num_ports:21)))

(* ------------------------------------------------------------------ *)
(* Exact agreement with the naive oracle                               *)
(* ------------------------------------------------------------------ *)

let prop_inverse_agrees =
  QCheck2.Test.make ~name:"memoized inverse = naive inverse (exact)" ~count:300
    mapping_experiment_gen
    (fun (usages, counts) ->
       let m = build_mapping usages in
       let e = build_experiment counts in
       Rat.equal (Oracle.inverse (Oracle.create m) e) (Throughput.inverse m e))

let prop_inverse_bounded_agrees =
  QCheck2.Test.make
    ~name:"memoized inverse_bounded = naive inverse_bounded (exact)" ~count:300
    QCheck2.Gen.(pair mapping_experiment_gen (int_range 1 6))
    (fun ((usages, counts), r_max) ->
       let m = build_mapping usages in
       let e = build_experiment counts in
       Rat.equal
         (Oracle.inverse_bounded ~r_max (Oracle.create m) e)
         (Throughput.inverse_bounded ~r_max m e))

let prop_bottleneck_optimal =
  QCheck2.Test.make ~name:"bottleneck_set attains the optimum" ~count:300
    mapping_experiment_gen
    (fun (usages, counts) ->
       let m = build_mapping usages in
       let e = build_experiment counts in
       QCheck2.assume (not (Experiment.is_empty e));
       let o = Oracle.create m in
       let q = Oracle.bottleneck_set o e in
       let mass =
         List.fold_left
           (fun acc (ports, n) ->
              if Portset.subset ports q then acc + n else acc)
           0 (Throughput.uop_masses m e)
       in
       (not (Portset.is_empty q))
       && Rat.equal (Oracle.inverse o e)
            (Rat.of_ints mass (Portset.cardinal q)))

(* The accumulator must agree with the naive oracle after any add/remove
   walk.  Each scheme is added in unit steps plus [extra] copies that are
   removed again, exercising both table-update directions. *)
let prop_acc_agrees =
  QCheck2.Test.make ~name:"Acc add/remove path = naive on the result" ~count:300
    QCheck2.Gen.(
      triple mapping_experiment_gen
        (list_repeat num_random_schemes (int_range 0 2))
        (int_range 1 6))
    (fun ((usages, counts), extras, r_max) ->
       let m = build_mapping usages in
       let e = build_experiment counts in
       let acc = Oracle.Acc.create (Oracle.create m) in
       List.iteri
         (fun i n ->
            let s = Catalog.find random_catalog i in
            let extra = List.nth extras i in
            Oracle.Acc.add acc s extra;
            for _ = 1 to n do Oracle.Acc.add acc s 1 done;
            Oracle.Acc.remove acc s extra)
         counts;
       Oracle.Acc.length acc = Experiment.length e
       && Rat.equal (Oracle.Acc.inverse acc) (Throughput.inverse m e)
       && Rat.equal
            (Oracle.Acc.inverse_bounded ~r_max acc)
            (Throughput.inverse_bounded ~r_max m e))

let test_acc_reset () =
  let m = toy_mapping () in
  let acc = Oracle.Acc.create (Oracle.create m) in
  Oracle.Acc.add acc fma 3;
  Oracle.Acc.reset acc;
  Alcotest.(check int) "length" 0 (Oracle.Acc.length acc);
  Alcotest.check rat "inverse" Rat.zero (Oracle.Acc.inverse acc)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_parallel_for () =
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for ~domains:4 ~n (fun i -> Atomic.incr hits.(i));
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun a -> Atomic.get a = 1) hits);
  (* n = 0 is a no-op, not an error. *)
  Pool.parallel_for ~domains:4 ~n:0 (fun _ -> assert false)

let test_pool_map_order () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int)) "map_list preserves order"
    (List.map (fun x -> x * x) xs)
    (Pool.map_list ~domains:4 (fun x -> x * x) xs);
  let arr = Array.init 500 Fun.id in
  Alcotest.(check (array int)) "map_array preserves order"
    (Array.map succ arr)
    (Pool.map_array ~domains:4 succ arr)

let test_pool_exception () =
  Alcotest.check_raises "first exception re-raised" (Failure "boom")
    (fun () ->
       Pool.parallel_for ~domains:4 ~n:100 (fun i ->
           if i = 57 then failwith "boom"))

let prop_pool_find_first_minimal =
  QCheck2.Test.make ~name:"find_first_index returns the minimal hit" ~count:100
    QCheck2.Gen.(list_size (int_range 0 200) bool)
    (fun bits ->
       let arr = Array.of_list bits in
       let expected =
         let rec scan i =
           if i >= Array.length arr then None
           else if arr.(i) then Some i
           else scan (i + 1)
         in
         scan 0
       in
       Pool.find_first_index ~domains:4 Fun.id arr = expected)

let test_pool_oracle_sweep () =
  (* The validate-style fan-out: one prepared oracle shared by domains. *)
  let m = toy_mapping () in
  let o = Oracle.create m in
  Oracle.prepare o [ add; mul; fma ];
  let blocks =
    Array.init 64 (fun i ->
        Experiment.of_counts [ (add, (i mod 5) + 1); (mul, i mod 3); (fma, 1) ])
  in
  let par = Pool.map_array ~domains:4 (Oracle.inverse o) blocks in
  Array.iteri
    (fun i e ->
       Alcotest.check rat
         (Printf.sprintf "block %d" i)
         (Throughput.inverse m e) par.(i))
    blocks

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "oracle"
    [ ("oracle",
       [ Alcotest.test_case "toy known values" `Quick test_toy_known_values;
         Alcotest.test_case "unsupported scheme" `Quick test_unsupported;
         Alcotest.test_case "port limit" `Quick test_port_limit ]
       @ qsuite
           [ prop_inverse_agrees; prop_inverse_bounded_agrees;
             prop_bottleneck_optimal ]);
      ("acc",
       [ Alcotest.test_case "reset" `Quick test_acc_reset ]
       @ qsuite [ prop_acc_agrees ]);
      ("pool",
       [ Alcotest.test_case "parallel_for covers indices" `Quick
           test_pool_parallel_for;
         Alcotest.test_case "map order" `Quick test_pool_map_order;
         Alcotest.test_case "exception propagation" `Quick test_pool_exception;
         Alcotest.test_case "shared oracle sweep" `Quick test_pool_oracle_sweep ]
       @ qsuite [ prop_pool_find_first_minimal ]) ]
