(* End-to-end pipeline integration tests on a reduced catalog: the §4 case
   study in miniature, with assertions against the simulated ground truth
   that the algorithm itself never sees. *)

open Pmi_isa
open Pmi_portmap
open Pmi_core
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness

let catalog = Catalog.reduced ~per_bucket:3 ()
let machine = Machine.create catalog
let harness = Harness.create machine
let result = Pipeline.run harness
let truth = Machine.ground_truth machine

let test_thirteen_classes () =
  Alcotest.(check int) "Table 1: 13 classes" 13
    (List.length result.Pipeline.filtering.Blocking.classes)

let test_culprits () =
  (* Exactly the paper's three anomalies are excluded during CEGIS. *)
  let culprit_mnemonics =
    List.map
      (fun k -> Scheme.mnemonic k.Blocking.representative)
      result.Pipeline.removed_classes
    |> List.sort compare
  in
  Alcotest.(check (list string)) "§4.3 culprits"
    [ "imul"; "vmovd"; "vpmuldq" ] culprit_mnemonics

let test_blocker_mapping_matches_truth () =
  (* Table 2: every surviving blocking class (and the improper store
     blockers) must match the documented = ground-truth port usage after
     renaming; the frontend-masked add ambiguity is resolved towards the
     documentation, as in the paper. *)
  List.iter
    (fun k ->
       let rep = k.Blocking.representative in
       if
         not
           (List.exists
              (fun r -> Scheme.equal r.Blocking.representative rep)
              result.Pipeline.removed_classes)
       then begin
         let inferred = Mapping.usage result.Pipeline.blocker_mapping rep in
         let documented = Mapping.usage truth rep in
         Alcotest.(check bool)
           (Printf.sprintf "Table 2 row: %s" (Scheme.name rep))
           true
           (Mapping.equal_usage inferred documented)
       end)
    result.Pipeline.filtering.Blocking.classes;
  List.iter
    (fun s ->
       let inferred = Mapping.usage result.Pipeline.blocker_mapping s in
       let documented = Mapping.usage truth s in
       Alcotest.(check bool)
         (Printf.sprintf "improper blocker: %s" (Scheme.name s))
         true
         (Mapping.equal_usage inferred documented))
    result.Pipeline.improper

let test_class_members_correct () =
  (* Every class member's true usage equals its representative's. *)
  List.iter
    (fun k ->
       let rep_usage = Mapping.usage truth k.Blocking.representative in
       List.iter
         (fun s ->
            Alcotest.(check bool)
              (Printf.sprintf "class member %s" (Scheme.name s))
              true
              (Mapping.equal_usage (Mapping.usage truth s) rep_usage))
         k.Blocking.members)
    result.Pipeline.filtering.Blocking.classes

let test_characterized_against_truth () =
  (* Algorithm 1's results for regular multi-µop schemes must equal the
     ground truth exactly (quiet quirk-free schemes). *)
  let check_bucket bucket =
    List.iter
      (fun s ->
         match Pipeline.verdict result s with
         | Pipeline.Characterized { usage; spurious } ->
           Alcotest.(check bool)
             (Printf.sprintf "%s not spurious" (Scheme.name s))
             false spurious;
           Alcotest.(check bool)
             (Printf.sprintf "usage of %s" (Scheme.name s))
             true
             (Mapping.equal_usage usage (Mapping.usage truth s))
         | Pipeline.Excluded_individual _ | Pipeline.Excluded_pairing
         | Pipeline.Excluded_mnemonic | Pipeline.Blocking_class _
         | Pipeline.Unstable_result _ ->
           Alcotest.failf "%s should have been characterised" (Scheme.name s))
      (Catalog.bucket catalog bucket)
  in
  List.iter check_bucket
    [ "regular/ymm"; "regular/vec-load"; "regular/ymm-load";
      "regular/scalar-load"; "regular/rmw"; "store/vec" ]

let test_microcoded_flagged () =
  List.iter
    (fun s ->
       match Pipeline.verdict result s with
       | Pipeline.Characterized { spurious; _ } ->
         Alcotest.(check bool)
           (Printf.sprintf "%s flagged spurious" (Scheme.name s))
           true spurious
       | Pipeline.Unstable_result _ -> ()
       | Pipeline.Excluded_individual _ | Pipeline.Excluded_pairing
       | Pipeline.Excluded_mnemonic | Pipeline.Blocking_class _ ->
         Alcotest.failf "%s: unexpected verdict" (Scheme.name s))
    (Catalog.bucket catalog "microcoded")

let test_unstable_flagged () =
  List.iter
    (fun s ->
       match Pipeline.verdict result s with
       | Pipeline.Unstable_result _ -> ()
       | Pipeline.Characterized _ | Pipeline.Excluded_individual _
       | Pipeline.Excluded_pairing | Pipeline.Excluded_mnemonic
       | Pipeline.Blocking_class _ ->
         Alcotest.failf "%s should be unstable" (Scheme.name s))
    (Catalog.bucket catalog "unstable-tp")

let test_funnel_consistency () =
  let f = result.Pipeline.funnel in
  Alcotest.(check int) "total" (Catalog.size catalog) f.Pipeline.total;
  Alcotest.(check int) "stage-1 split" f.Pipeline.total
    (f.Pipeline.excluded_individual + f.Pipeline.after_stage1);
  Alcotest.(check int) "stage-2 split" f.Pipeline.after_stage1
    (f.Pipeline.excluded_pairing + f.Pipeline.after_stage2);
  Alcotest.(check int) "considered split" f.Pipeline.after_stage2
    (f.Pipeline.excluded_mnemonic + f.Pipeline.considered);
  Alcotest.(check int) "inferred + unstable = considered" f.Pipeline.considered
    (f.Pipeline.inferred + f.Pipeline.unstable);
  Alcotest.(check bool) "inferred mapping size" true
    (Mapping.size result.Pipeline.mapping = f.Pipeline.inferred)

let test_counter_free_matches_uops_info () =
  (* The paper's central claim, checked experimentally: on schemes inside
     the port-mapping model, the counter-free characterisation equals what
     the original uops.info algorithm reads off per-port µop counters. *)
  let quirk_free s = Scheme.quirk s = None in
  let blocker_pool =
    List.concat_map (Catalog.bucket catalog)
      [ "blocking/alu"; "blocking/vec-logic"; "blocking/vec-int";
        "blocking/fp-mul-cmp"; "blocking/shuffle"; "blocking/vec-sat";
        "blocking/fp-add"; "blocking/load"; "blocking/vec-shift";
        "blocking/fp-round" ]
    |> List.filter quirk_free
  in
  let blockers =
    (* Like the paper (and uops.info on Intel), the store µop has no proper
       blocking instruction: add the storing mov manually. *)
    Uops_info.blocking_instructions machine blocker_pool
    @ [ (List.find
           (fun s ->
              Scheme.mnemonic s = "mov" && Scheme.memory_writes s = [ 32 ]
              && Scheme.memory_reads s = [])
           (Array.to_list (Catalog.schemes catalog)),
         Portset.singleton 5) ]
  in
  (* Every ground-truth port set of the pool must be discovered. *)
  List.iter
    (fun s ->
       let expected = fst (List.hd (Mapping.usage truth s)) in
       Alcotest.(check bool)
         (Printf.sprintf "port set of %s discovered" (Scheme.name s))
         true
         (List.exists (fun (_, pu) -> Portset.equal pu expected) blockers))
    blocker_pool;
  (* Characterisations agree with the counter-free pipeline (and with the
     ground truth) on regular multi-µop schemes. *)
  List.iter
    (fun bucket ->
       List.iter
         (fun s ->
            let reference = Uops_info.characterize machine ~blockers s in
            Alcotest.(check bool)
              (Printf.sprintf "uops.info reference for %s" (Scheme.name s))
              true
              (Mapping.equal_usage reference (Mapping.usage truth s));
            match Pipeline.verdict result s with
            | Pipeline.Characterized { usage; _ } ->
              Alcotest.(check bool)
                (Printf.sprintf "counter-free agrees for %s" (Scheme.name s))
                true
                (Mapping.equal_usage usage reference)
            | Pipeline.Excluded_individual _ | Pipeline.Excluded_pairing
            | Pipeline.Excluded_mnemonic | Pipeline.Blocking_class _
            | Pipeline.Unstable_result _ ->
              Alcotest.failf "%s not characterised" (Scheme.name s))
         (Catalog.bucket catalog bucket))
    [ "regular/vec-load"; "regular/ymm"; "regular/rmw"; "store/vec" ]

let test_prediction_quality_of_result () =
  (* The final mapping must predict mixed blocks of inferred schemes well
     (this is what Figure 5 quantifies at scale). *)
  let covered =
    List.filter
      (Mapping.supports result.Pipeline.mapping)
      (Array.to_list (Catalog.schemes catalog))
  in
  let blocks = Pmi_eval.Blocks.generate ~count:60 ~block_size:4 covered in
  let pairs =
    List.map
      (fun e ->
         let measured =
           Pmi_numeric.Rat.to_float (Harness.cycles harness e)
         in
         let predicted =
           Pmi_numeric.Rat.to_float
             (Throughput.inverse_bounded ~r_max:5 result.Pipeline.mapping e)
         in
         (predicted, measured))
      blocks
  in
  let mape = Pmi_eval.Metrics.mape pairs in
  Alcotest.(check bool)
    (Printf.sprintf "MAPE %.1f%% below 12%%" mape)
    true (mape < 12.0)

let test_markdown_report () =
  let text = Pmi_eval.Report.render ~harness result in
  let contains fragment =
    let n = String.length text and m = String.length fragment in
    let rec go i =
      if i + m > n then false
      else if String.sub text i m = fragment then true
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "has funnel section" true (contains "## Case-study funnel");
  Alcotest.(check bool) "has Table 1" true
    (contains "## Blocking-instruction classes");
  Alcotest.(check bool) "has Table 2" true (contains "(Table 2)");
  Alcotest.(check bool) "has diff section" true
    (contains "## Agreement with the documented mapping");
  Alcotest.(check bool) "mentions the culprits" true (contains "`imul");
  Alcotest.(check bool) "renders class rows" true (contains "| 4 | `add")

let () =
  Alcotest.run "integration"
    [ ("pipeline",
       [ Alcotest.test_case "13 blocking classes" `Quick test_thirteen_classes;
         Alcotest.test_case "§4.3 culprits" `Quick test_culprits;
         Alcotest.test_case "Table 2 vs ground truth" `Quick
           test_blocker_mapping_matches_truth;
         Alcotest.test_case "class members homogeneous" `Quick
           test_class_members_correct;
         Alcotest.test_case "Algorithm 1 vs ground truth" `Quick
           test_characterized_against_truth;
         Alcotest.test_case "microcoded flagged spurious" `Quick
           test_microcoded_flagged;
         Alcotest.test_case "variable shifts unstable" `Quick
           test_unstable_flagged;
         Alcotest.test_case "funnel arithmetic" `Quick test_funnel_consistency;
         Alcotest.test_case "counter-free = uops.info reference" `Quick
           test_counter_free_matches_uops_info;
         Alcotest.test_case "prediction quality" `Quick
           test_prediction_quality_of_result;
         Alcotest.test_case "markdown report" `Quick test_markdown_report ]) ]
