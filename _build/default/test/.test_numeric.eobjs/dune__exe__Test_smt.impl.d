test/test_smt.ml: Alcotest Array Card Expr Fun List Lit Pmi_smt Printf QCheck2 QCheck_alcotest Sat Solver String
