test/test_smt.ml: Alcotest Array Card Expr Fun List Lit Pmi_smt QCheck2 QCheck_alcotest Sat Solver
