test/test_profiles.ml: Alcotest Blocking Catalog Lazy List Mapping Pipeline Pmi_core Pmi_isa Pmi_machine Pmi_measure Pmi_portmap Printf Scheme
