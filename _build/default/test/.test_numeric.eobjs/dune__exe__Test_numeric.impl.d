test/test_numeric.ml: Alcotest Array Bigint Float List Pmi_numeric Printf QCheck2 QCheck_alcotest Rat Simplex Stdlib String
