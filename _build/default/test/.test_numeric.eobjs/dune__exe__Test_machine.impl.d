test/test_machine.ml: Alcotest Array Catalog Experiment Float List Machine Pmi_isa Pmi_machine Pmi_measure Pmi_numeric Pmi_portmap Printf QCheck2 QCheck_alcotest Scheme
