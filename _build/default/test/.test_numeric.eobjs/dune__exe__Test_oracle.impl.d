test/test_oracle.ml: Alcotest Array Atomic Catalog Experiment Fun Iclass List Mapping Operand Oracle Pmi_isa Pmi_numeric Pmi_parallel Pmi_portmap Portset Printf QCheck2 QCheck_alcotest Throughput
