test/test_eval.ml: Alcotest Array Blocks Figure5 Float Heatmap List Metrics Pmi_eval Pmi_isa Pmi_machine Pmi_measure Pmi_portmap QCheck2 QCheck_alcotest String
