test/test_isa.ml: Alcotest Array Catalog Hashtbl Iclass List Operand Pmi_isa QCheck2 QCheck_alcotest Scheme String
