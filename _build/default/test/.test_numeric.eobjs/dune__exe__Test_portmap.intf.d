test/test_portmap.mli:
