open Pmi_eval

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_mape () =
  Alcotest.check feq "perfect" 0.0 (Metrics.mape [ (1.0, 1.0); (2.0, 2.0) ]);
  Alcotest.check feq "50% off" 50.0 (Metrics.mape [ (1.5, 1.0) ]);
  Alcotest.check feq "mixed" 25.0 (Metrics.mape [ (1.5, 1.0); (2.0, 2.0) ]);
  Alcotest.check feq "zero measured skipped" 50.0
    (Metrics.mape [ (1.5, 1.0); (3.0, 0.0) ]);
  Alcotest.check feq "empty" 0.0 (Metrics.mape [])

let test_pearson () =
  Alcotest.check feq "perfect linear" 1.0
    (Metrics.pearson [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ]);
  Alcotest.check feq "anti-correlated" (-1.0)
    (Metrics.pearson [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ]);
  Alcotest.check feq "constant series" 0.0
    (Metrics.pearson [ (1.0, 2.0); (1.0, 4.0); (1.0, 6.0) ]);
  Alcotest.check feq "too short" 0.0 (Metrics.pearson [ (1.0, 1.0) ])

let test_kendall () =
  Alcotest.check feq "concordant" 1.0
    (Metrics.kendall_tau [ (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ]);
  Alcotest.check feq "discordant" (-1.0)
    (Metrics.kendall_tau [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ]);
  let mixed = Metrics.kendall_tau [ (1.0, 1.0); (2.0, 3.0); (3.0, 2.0) ] in
  Alcotest.check feq "one swap" (1.0 /. 3.0) mixed

let prop_pearson_bounded =
  QCheck2.Test.make ~name:"pearson in [-1,1]" ~count:200
    QCheck2.Gen.(list_size (int_range 2 20)
                   (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)))
    (fun pairs ->
       let r = Metrics.pearson pairs in
       r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let prop_kendall_bounded =
  QCheck2.Test.make ~name:"kendall in [-1,1]" ~count:200
    QCheck2.Gen.(list_size (int_range 2 15)
                   (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)))
    (fun pairs ->
       let t = Metrics.kendall_tau pairs in
       t >= -1.0 -. 1e-9 && t <= 1.0 +. 1e-9)

let prop_mape_scale_invariant =
  QCheck2.Test.make ~name:"mape invariant under scaling" ~count:100
    QCheck2.Gen.(pair
                   (list_size (int_range 1 10)
                      (pair (float_range 0.1 10.0) (float_range 0.1 10.0)))
                   (float_range 0.5 4.0))
    (fun (pairs, k) ->
       let scaled = List.map (fun (p, m) -> (k *. p, k *. m)) pairs in
       Float.abs (Metrics.mape pairs -. Metrics.mape scaled) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)
(* ------------------------------------------------------------------ *)

let catalog = Pmi_isa.Catalog.reduced ~per_bucket:3 ()
let schemes = Array.to_list (Pmi_isa.Catalog.schemes catalog)

let test_spec_subset () =
  let sub = Blocks.spec_subset ~size:10 schemes in
  Alcotest.(check int) "size" 10 (List.length sub);
  Alcotest.(check bool) "members of the input" true
    (List.for_all (fun s -> List.memq s schemes) sub);
  let again = Blocks.spec_subset ~size:10 schemes in
  Alcotest.(check bool) "deterministic" true
    (List.equal Pmi_isa.Scheme.equal sub again);
  let all = Blocks.spec_subset ~size:100000 schemes in
  Alcotest.(check int) "capped at input size" (List.length schemes)
    (List.length all)

let test_generate_blocks () =
  let blocks = Blocks.generate ~count:25 ~block_size:5 schemes in
  Alcotest.(check int) "count" 25 (List.length blocks);
  List.iter
    (fun b ->
       Alcotest.(check int) "block size" 5 (Pmi_portmap.Experiment.length b))
    blocks;
  let again = Blocks.generate ~count:25 ~block_size:5 schemes in
  Alcotest.(check bool) "deterministic" true
    (List.equal Pmi_portmap.Experiment.equal blocks again)

(* ------------------------------------------------------------------ *)
(* Heatmap                                                             *)
(* ------------------------------------------------------------------ *)

let test_heatmap_renders () =
  let pairs = [ (1.0, 1.0); (2.5, 2.4); (4.9, 4.9); (7.0, 4.0) ] in
  let h = Heatmap.make pairs in
  let s = Heatmap.render h in
  Alcotest.(check bool) "mentions axes" true
    (String.length s > 0
     && String.index_opt s '|' <> None
     && String.index_opt s '[' <> None);
  (* The 7-IPC overshoot forces rows beyond the measured range. *)
  Alcotest.(check bool) "tall enough for overshoot" true
    (List.length (String.split_on_char '\n' s) > 12)

let test_heatmap_counts_preserved () =
  let pairs = List.init 50 (fun i -> (float_of_int (i mod 5), 2.0)) in
  let h = Heatmap.make pairs in
  let rendered = Heatmap.render h in
  (* Everything lands in one measured column: the column separator count
     stays constant, and no exception occurred. *)
  Alcotest.(check bool) "rendered" true (String.length rendered > 100)

(* ------------------------------------------------------------------ *)
(* Figure 5 end-to-end (reduced)                                       *)
(* ------------------------------------------------------------------ *)

let test_figure5_shape () =
  let machine = Pmi_machine.Machine.create catalog in
  let harness = Pmi_measure.Harness.create machine in
  (* Use the ground truth as "our" mapping: the evaluation pipeline itself
     is under test here, not the inference. *)
  let mapping = Pmi_machine.Machine.ground_truth machine in
  let options =
    { Figure5.quick_options with
      Figure5.scheme_subset = 30; block_count = 120 }
  in
  let fig = Figure5.run ~options harness ~mapping in
  Alcotest.(check int) "blocks" 120 fig.Figure5.blocks_used;
  Alcotest.(check bool) "ours beats PMEvo" true
    (fig.Figure5.ours.Figure5.summary.Metrics.mape
     < fig.Figure5.pmevo.Figure5.summary.Metrics.mape);
  Alcotest.(check bool) "ours beats Palmed" true
    (fig.Figure5.ours.Figure5.summary.Metrics.mape
     < fig.Figure5.palmed.Figure5.summary.Metrics.mape);
  Alcotest.(check bool) "ours strongly correlated" true
    (fig.Figure5.ours.Figure5.summary.Metrics.pearson > 0.9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "eval"
    [ ("metrics",
       [ Alcotest.test_case "mape" `Quick test_mape;
         Alcotest.test_case "pearson" `Quick test_pearson;
         Alcotest.test_case "kendall" `Quick test_kendall ]
       @ qsuite [ prop_pearson_bounded; prop_kendall_bounded;
                  prop_mape_scale_invariant ]);
      ("blocks",
       [ Alcotest.test_case "spec subset" `Quick test_spec_subset;
         Alcotest.test_case "generation" `Quick test_generate_blocks ]);
      ("heatmap",
       [ Alcotest.test_case "renders" `Quick test_heatmap_renders;
         Alcotest.test_case "dense column" `Quick test_heatmap_counts_preserved ]);
      ("figure5",
       [ Alcotest.test_case "end-to-end shape" `Slow test_figure5_shape ]) ]
