open Pmi_isa
open Pmi_portmap
module Rat = Pmi_numeric.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

(* The Figure 2 toy architecture: add = 1×u1 on {p1,p2}, mul = 1×u2 on {p2},
   fma = 2×u1 + 1×u2. *)
let toy_catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let add = Catalog.find toy_catalog 0
let mul = Catalog.find toy_catalog 1
let fma = Catalog.find toy_catalog 2

let both = Portset.of_list [ 0; 1 ]
let p2 = Portset.singleton 1

let toy_mapping () =
  let m = Mapping.create ~num_ports:2 in
  Mapping.set m add [ (both, 1) ];
  Mapping.set m mul [ (p2, 1) ];
  Mapping.set m fma [ (both, 2); (p2, 1) ];
  m

(* ------------------------------------------------------------------ *)
(* Portset                                                             *)
(* ------------------------------------------------------------------ *)

let test_portset_basic () =
  let s = Portset.of_list [ 0; 5; 3 ] in
  Alcotest.(check (list int)) "sorted" [ 0; 3; 5 ] (Portset.to_list s);
  Alcotest.(check int) "cardinal" 3 (Portset.cardinal s);
  Alcotest.(check bool) "mem" true (Portset.mem 5 s);
  Alcotest.(check bool) "not mem" false (Portset.mem 4 s);
  Alcotest.(check string) "render" "[0,3,5]" (Portset.to_string s);
  Alcotest.(check bool) "subset" true
    (Portset.subset (Portset.of_list [ 0; 3 ]) s);
  Alcotest.(check bool) "proper" true
    (Portset.proper_subset (Portset.of_list [ 0; 3 ]) s);
  Alcotest.(check bool) "not proper of itself" false (Portset.proper_subset s s)

let test_portset_subset_enum () =
  let s = Portset.of_list [ 1; 4 ] in
  let seen = ref [] in
  Portset.iter_subsets s (fun q -> seen := Portset.to_list q :: !seen);
  let sorted = List.sort compare !seen in
  Alcotest.(check (list (list int))) "all subsets"
    [ []; [ 1 ]; [ 1; 4 ]; [ 4 ] ] sorted

let prop_portset_ops =
  QCheck2.Test.make ~name:"portset mirrors int-set ops" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 8) (int_range 0 9))
                   (list_size (int_range 0 8) (int_range 0 9)))
    (fun (xs, ys) ->
       let module IS = Set.Make (Int) in
       let a = Portset.of_list xs and b = Portset.of_list ys in
       let sa = IS.of_list xs and sb = IS.of_list ys in
       Portset.to_list (Portset.union a b) = IS.elements (IS.union sa sb)
       && Portset.to_list (Portset.inter a b) = IS.elements (IS.inter sa sb)
       && Portset.to_list (Portset.diff a b) = IS.elements (IS.diff sa sb)
       && Portset.subset a b = IS.subset sa sb
       && Portset.cardinal a = IS.cardinal sa)

(* ------------------------------------------------------------------ *)
(* Experiment                                                          *)
(* ------------------------------------------------------------------ *)

let test_experiment_multiset () =
  let e = Experiment.of_list [ mul; fma; mul ] in
  Alcotest.(check int) "length" 3 (Experiment.length e);
  Alcotest.(check int) "distinct" 2 (Experiment.distinct e);
  Alcotest.(check int) "count mul" 2 (Experiment.count e mul);
  Alcotest.(check int) "count add" 0 (Experiment.count e add);
  let e' = Experiment.of_counts [ (fma, 1); (mul, 2) ] in
  Alcotest.(check bool) "order-insensitive equality" true (Experiment.equal e e')

let test_experiment_union_add () =
  let e = Experiment.add ~count:3 add (Experiment.singleton mul) in
  Alcotest.(check int) "after add" 4 (Experiment.length e);
  let u = Experiment.union e (Experiment.replicate 2 mul) in
  Alcotest.(check int) "union count" 3 (Experiment.count u mul);
  Alcotest.(check bool) "drop non-positive" true
    (Experiment.is_empty (Experiment.of_counts [ (add, 0); (mul, -2) ]))

(* ------------------------------------------------------------------ *)
(* Throughput: the paper's running examples                            *)
(* ------------------------------------------------------------------ *)

let test_figure2_throughput () =
  let m = toy_mapping () in
  (* Figure 2(b): [mul, mul, fma] has inverse throughput 3. *)
  let e = Experiment.of_counts [ (mul, 2); (fma, 1) ] in
  Alcotest.check rat "tp⁻¹ [2×mul, fma]" (Rat.of_int 3) (Throughput.inverse m e);
  Alcotest.(check (list int)) "bottleneck is p2" [ 1 ]
    (Portset.to_list (Throughput.bottleneck_set m e))

let test_figure3_throughputs () =
  let m = toy_mapping () in
  (* Figure 3(a): fma with 3 blocking muls -> 4 cycles. *)
  let e1 = Experiment.of_counts [ (mul, 3); (fma, 1) ] in
  Alcotest.check rat "fma + 3 mul" (Rat.of_int 4) (Throughput.inverse m e1);
  (* Figure 3(b): fma with 6 blocking adds -> 4.5 cycles. *)
  let e2 = Experiment.of_counts [ (add, 6); (fma, 1) ] in
  Alcotest.check rat "fma + 6 add" (Rat.of_ints 9 2) (Throughput.inverse m e2)

let test_singletons () =
  let m = toy_mapping () in
  Alcotest.check rat "add alone" (Rat.of_ints 1 2)
    (Throughput.inverse m (Experiment.singleton add));
  Alcotest.check rat "mul alone" Rat.one
    (Throughput.inverse m (Experiment.singleton mul));
  Alcotest.check rat "fma alone" (Rat.of_ints 3 2)
    (Throughput.inverse m (Experiment.singleton fma))

let test_unsupported () =
  let m = Mapping.create ~num_ports:2 in
  Alcotest.check_raises "unsupported scheme"
    (Throughput.Unsupported add)
    (fun () -> ignore (Throughput.inverse m (Experiment.singleton add)))

let test_empty_experiment () =
  let m = toy_mapping () in
  Alcotest.check rat "empty" Rat.zero (Throughput.inverse m Experiment.empty)

let test_frontend_bound () =
  let m = toy_mapping () in
  (* 8 adds on 2 ports need 4 cycles; a frontend of 5/cycle is no bound,
     a frontend of 1/cycle is. *)
  let e = Experiment.replicate 8 add in
  Alcotest.check rat "unbounded" (Rat.of_int 4)
    (Throughput.inverse_bounded ~r_max:5 m e);
  Alcotest.check rat "bounded" (Rat.of_int 8)
    (Throughput.inverse_bounded ~r_max:1 m e);
  Alcotest.check rat "ipc" (Rat.of_int 2) (Throughput.ipc ~r_max:5 m e)

let test_uop_masses () =
  let m = toy_mapping () in
  let e = Experiment.of_counts [ (mul, 2); (fma, 1) ] in
  Alcotest.(check (list (pair (list int) int))) "masses"
    [ ([ 1 ], 3); ([ 0; 1 ], 2) ]
    (List.map (fun (p, n) -> (Portset.to_list p, n)) (Throughput.uop_masses m e))

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let test_mapping_normalisation () =
  let m = Mapping.create ~num_ports:4 in
  Mapping.set m add [ (both, 1); (both, 2); (p2, 0) ];
  Alcotest.(check string) "merged" "3 x [0,1]"
    (Mapping.usage_to_string (Mapping.usage m add));
  Alcotest.(check int) "uop count" 3 (Mapping.uop_count m add)

let test_mapping_validation () =
  let m = Mapping.create ~num_ports:2 in
  Alcotest.check_raises "port out of range"
    (Invalid_argument "Mapping.set: port out of range")
    (fun () -> Mapping.set m add [ (Portset.singleton 5, 1) ]);
  Alcotest.check_raises "empty port set"
    (Invalid_argument "Mapping.set: empty port set")
    (fun () -> Mapping.set m add [ (Portset.empty, 1) ])

let test_mapping_copy_independent () =
  let m = toy_mapping () in
  let m' = Mapping.copy m in
  Mapping.set m' add [ (p2, 1) ];
  Alcotest.(check bool) "original unchanged" true
    (Mapping.equal_usage (Mapping.usage m add) [ (both, 1) ])

(* ------------------------------------------------------------------ *)
(* LP cross-check                                                      *)
(* ------------------------------------------------------------------ *)

let test_lp_matches_formula_toy () =
  let m = toy_mapping () in
  List.iter
    (fun e ->
       Alcotest.check rat
         ("lp vs formula: " ^ Experiment.to_string e)
         (Throughput.inverse m e) (Lp_model.inverse m e))
    [ Experiment.singleton add;
      Experiment.singleton fma;
      Experiment.of_counts [ (mul, 2); (fma, 1) ];
      Experiment.of_counts [ (add, 6); (fma, 1) ];
      Experiment.of_counts [ (add, 3); (mul, 2); (fma, 2) ] ]

(* Random mappings and experiments: formula and LP must agree. *)
let random_schemes =
  let templates =
    List.init 5 (fun i ->
        (Printf.sprintf "i%d" i, [ Operand.gpr 32 ],
         Iclass.plain (Iclass.Single Iclass.Alu)))
  in
  Catalog.of_list templates

let prop_lp_equals_formula =
  let gen =
    let open QCheck2.Gen in
    let num_ports = 4 in
    let portset =
      map
        (fun bits -> if bits land ((1 lsl num_ports) - 1) = 0 then Portset.singleton 0
          else Portset.of_list
              (List.filter (fun p -> bits land (1 lsl p) <> 0)
                 (List.init num_ports Fun.id)))
        (int_range 1 15)
    in
    let usage = list_size (int_range 1 3) (pair portset (int_range 1 2)) in
    let usages = list_repeat 5 usage in
    let counts = list_repeat 5 (int_range 0 3) in
    pair usages counts
  in
  QCheck2.Test.make ~name:"simplex LP equals bottleneck formula" ~count:60 gen
    (fun (usages, counts) ->
       let m = Mapping.create ~num_ports:4 in
       List.iteri
         (fun i usage -> Mapping.set m (Catalog.find random_schemes i) usage)
         usages;
       let e =
         Experiment.of_counts
           (List.mapi (fun i n -> (Catalog.find random_schemes i, n)) counts)
       in
       Rat.equal (Throughput.inverse m e) (Lp_model.inverse m e))

let prop_throughput_monotone =
  QCheck2.Test.make ~name:"adding instructions never lowers tp⁻¹" ~count:100
    QCheck2.Gen.(pair (list_repeat 3 (int_range 0 3)) (int_range 0 2))
    (fun (counts, extra_idx) ->
       let m = toy_mapping () in
       let items = [ add; mul; fma ] in
       let e =
         Experiment.of_counts (List.mapi (fun i n -> (List.nth items i, n)) counts)
       in
       let e' = Experiment.add (List.nth items extra_idx) e in
       Rat.compare (Throughput.inverse m e') (Throughput.inverse m e) >= 0)

let prop_throughput_scales =
  QCheck2.Test.make ~name:"k×e scales tp⁻¹ by k" ~count:100
    QCheck2.Gen.(pair (list_repeat 3 (int_range 0 3)) (int_range 1 5))
    (fun (counts, k) ->
       let m = toy_mapping () in
       let items = [ add; mul; fma ] in
       let pairs = List.mapi (fun i n -> (List.nth items i, n)) counts in
       let e = Experiment.of_counts pairs in
       let ke =
         Experiment.of_counts (List.map (fun (s, n) -> (s, k * n)) pairs)
       in
       Rat.equal (Throughput.inverse m ke)
         (Rat.mul (Rat.of_int k) (Throughput.inverse m e)))

(* ------------------------------------------------------------------ *)
(* Mapping_io                                                          *)
(* ------------------------------------------------------------------ *)

let toy_resolver name =
  List.find_opt
    (fun s -> Scheme.name s = name)
    [ add; mul; fma ]

let test_io_roundtrip () =
  let m = toy_mapping () in
  let text = Mapping_io.to_string m in
  match Mapping_io.of_string ~resolve:toy_resolver text with
  | Error e -> Alcotest.failf "parse error line %d: %s" e.Mapping_io.line e.message
  | Ok m' ->
    Alcotest.(check int) "ports preserved" (Mapping.num_ports m)
      (Mapping.num_ports m');
    List.iter
      (fun s ->
         Alcotest.(check bool) (Scheme.name s) true
           (Mapping.equal_usage (Mapping.usage m s) (Mapping.usage m' s)))
      (Mapping.schemes m)

let test_io_errors () =
  let expect_error text fragment =
    match Mapping_io.of_string ~resolve:toy_resolver text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment e.Mapping_io.message)
        true
        (String.length e.Mapping_io.message >= String.length fragment)
  in
  expect_error "scheme \"add <GPR[64]>, <GPR[64]>\" 1x[0]" "header";
  expect_error "ports 2\nscheme \"nonsense\" 1x[0]" "unknown";
  expect_error "ports 2\nwhatever" "unrecognised";
  expect_error "ports 2\nscheme \"add <GPR[64]>, <GPR[64]>\" 1x[9]" "range";
  expect_error "" "header"

let test_io_comments_and_blanks () =
  let text = "# comment\n\nports 2\n# more\nscheme \"mul <GPR[64]>, <GPR[64]>\" 1x[1]\n" in
  match Mapping_io.of_string ~resolve:toy_resolver text with
  | Error e -> Alcotest.failf "parse error: %s" e.Mapping_io.message
  | Ok m -> Alcotest.(check int) "one scheme" 1 (Mapping.size m)

let zen_catalog = Catalog.zen_plus ()

let prop_io_roundtrip_random =
  let gen =
    let open QCheck2.Gen in
    let scheme_id = int_range 0 (Catalog.size zen_catalog - 1) in
    let portset =
      map
        (fun bits ->
           Portset.of_list
             (List.filter (fun p -> bits land (1 lsl p) <> 0) (List.init 10 Fun.id)))
        (int_range 1 1023)
    in
    let usage = list_size (int_range 1 3) (pair portset (int_range 1 2)) in
    list_size (int_range 1 10) (pair scheme_id usage)
  in
  QCheck2.Test.make ~name:"mapping_io roundtrips random mappings" ~count:100 gen
    (fun entries ->
       let m = Mapping.create ~num_ports:10 in
       List.iter
         (fun (id, usage) -> Mapping.set m (Catalog.find zen_catalog id) usage)
         entries;
       let resolve = Mapping_io.resolver zen_catalog in
       match Mapping_io.of_string ~resolve (Mapping_io.to_string m) with
       | Error _ -> false
       | Ok m' ->
         List.for_all
           (fun s ->
              match (Mapping.find_opt m s, Mapping.find_opt m' s) with
              | Some a, Some b -> Mapping.equal_usage a b
              | (None | Some _), _ -> false)
           (Mapping.schemes m))

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_analysis_figure2 () =
  let m = toy_mapping () in
  let e = Experiment.of_counts [ (mul, 2); (fma, 1) ] in
  let report = Analysis.analyze ~r_max:5 m e in
  Alcotest.check rat "tp" (Rat.of_int 3) report.Analysis.inverse_throughput;
  Alcotest.(check bool) "not frontend bound" false report.Analysis.frontend_bound;
  Alcotest.(check (list int)) "bottleneck p2" [ 1 ]
    (Portset.to_list report.Analysis.bottleneck);
  (* The optimal distribution fills p2 for the full 3 cycles. *)
  Alcotest.check rat "pressure p2" (Rat.of_int 3) report.Analysis.port_pressure.(1);
  (* Total pressure equals the total µop mass (5 µops). *)
  let total =
    Array.fold_left Rat.add Rat.zero report.Analysis.port_pressure
  in
  Alcotest.check rat "mass conserved" (Rat.of_int 5) total

let test_analysis_frontend () =
  let m = toy_mapping () in
  let e = Experiment.replicate 4 add in
  (* Ports would allow 2 cycles (4 adds over 2 ports); a 1-wide frontend
     stretches the block to 4 cycles. *)
  let report = Analysis.analyze ~r_max:1 m e in
  Alcotest.(check bool) "frontend bound" true report.Analysis.frontend_bound;
  Alcotest.check rat "bounded cycles" (Rat.of_int 4) report.Analysis.bounded_cycles;
  Alcotest.check rat "ipc" Rat.one report.Analysis.ipc

let prop_analysis_pressure_bounded =
  QCheck2.Test.make ~name:"max port pressure = inverse throughput" ~count:100
    QCheck2.Gen.(list_repeat 3 (int_range 0 4))
    (fun counts ->
       QCheck2.assume (List.exists (fun c -> c > 0) counts);
       let m = toy_mapping () in
       let items = [ add; mul; fma ] in
       let e =
         Experiment.of_counts (List.mapi (fun i n -> (List.nth items i, n)) counts)
       in
       let report = Analysis.analyze ~r_max:100 m e in
       let max_pressure =
         Array.fold_left Rat.max Rat.zero report.Analysis.port_pressure
       in
       Rat.equal max_pressure report.Analysis.inverse_throughput)

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let test_diff_classification () =
  let left = Mapping.create ~num_ports:2 in
  let right = Mapping.create ~num_ports:2 in
  Mapping.set left add [ (both, 1) ];
  Mapping.set right add [ (both, 1) ];
  Mapping.set left mul [ (p2, 1) ];
  Mapping.set right mul [ (both, 1) ];
  Mapping.set left fma [ (both, 2); (p2, 1) ];
  let d = Diff.compute ~left ~right in
  Alcotest.(check int) "agreements" 1 (Diff.agreements d);
  Alcotest.(check int) "disagreements" 1 (List.length (Diff.disagreements d));
  Alcotest.(check (list string)) "only left" [ Scheme.name fma ]
    (List.map Scheme.name (Diff.only_left d));
  Alcotest.(check (list string)) "only right" []
    (List.map Scheme.name (Diff.only_right d));
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Diff.agreement_ratio d);
  (match Diff.entry d mul with
   | Some (Diff.Disagree _) -> ()
   | Some (Diff.Agree _ | Diff.Only_left _ | Diff.Only_right _) | None ->
     Alcotest.fail "mul should disagree");
  Alcotest.(check bool) "report renders" true
    (String.length (Format.asprintf "%a" (Diff.pp ()) d) > 0)

let test_diff_self () =
  let m = toy_mapping () in
  let d = Diff.compute ~left:m ~right:m in
  Alcotest.(check int) "all agree" 3 (Diff.agreements d);
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 (Diff.agreement_ratio d);
  Alcotest.(check int) "no disagreements" 0 (List.length (Diff.disagreements d))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "portmap"
    [ ("portset",
       [ Alcotest.test_case "basics" `Quick test_portset_basic;
         Alcotest.test_case "subset enumeration" `Quick test_portset_subset_enum ]
       @ qsuite [ prop_portset_ops ]);
      ("experiment",
       [ Alcotest.test_case "multiset semantics" `Quick test_experiment_multiset;
         Alcotest.test_case "union/add" `Quick test_experiment_union_add ]);
      ("throughput",
       [ Alcotest.test_case "Figure 2" `Quick test_figure2_throughput;
         Alcotest.test_case "Figure 3" `Quick test_figure3_throughputs;
         Alcotest.test_case "singletons" `Quick test_singletons;
         Alcotest.test_case "unsupported scheme" `Quick test_unsupported;
         Alcotest.test_case "empty experiment" `Quick test_empty_experiment;
         Alcotest.test_case "frontend bound (§3.4)" `Quick test_frontend_bound;
         Alcotest.test_case "µop masses" `Quick test_uop_masses ]
       @ qsuite [ prop_throughput_monotone; prop_throughput_scales ]);
      ("mapping",
       [ Alcotest.test_case "normalisation" `Quick test_mapping_normalisation;
         Alcotest.test_case "validation" `Quick test_mapping_validation;
         Alcotest.test_case "copy independence" `Quick test_mapping_copy_independent ]);
      ("lp",
       [ Alcotest.test_case "toy agreement" `Quick test_lp_matches_formula_toy ]
       @ qsuite [ prop_lp_equals_formula ]);
      ("io",
       [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
         Alcotest.test_case "error reporting" `Quick test_io_errors;
         Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks ]
       @ qsuite [ prop_io_roundtrip_random ]);
      ("analysis",
       [ Alcotest.test_case "Figure 2 report" `Quick test_analysis_figure2;
         Alcotest.test_case "frontend bound" `Quick test_analysis_frontend ]
       @ qsuite [ prop_analysis_pressure_bounded ]);
      ("diff",
       [ Alcotest.test_case "classification" `Quick test_diff_classification;
         Alcotest.test_case "self comparison" `Quick test_diff_self ]) ]
