(* Portability of the inference across microarchitecture profiles (§3.5):
   the same pipeline, without any Zen+-specific configuration, must
   reconstruct the port structure of the Golden-Cove-like and A64FX-like
   simulated designs. *)

open Pmi_isa
open Pmi_portmap
open Pmi_core
module Machine = Pmi_machine.Machine
module Profile = Pmi_machine.Profile
module Harness = Pmi_measure.Harness

let test_profiles_valid () =
  List.iter Profile.validate Profile.all;
  Alcotest.(check int) "zen+ widest µop" 4 (Profile.max_port_set Profile.zen_plus);
  Alcotest.(check int) "golden-cove widest µop" 5
    (Profile.max_port_set Profile.golden_cove);
  Alcotest.(check int) "a64fx widest µop" 3 (Profile.max_port_set Profile.a64fx)

let test_profile_gap_enforced () =
  let broken =
    { Profile.zen_plus with
      Profile.name = "broken"; r_max = Profile.max_port_set Profile.zen_plus }
  in
  Alcotest.(check bool) "validate raises" true
    (try
       Profile.validate broken;
       false
     with Invalid_argument _ -> true)

(* Run the full pipeline on a profile once (memoised; three tests share each
   run) and compare the final mapping against that profile's ground truth
   wherever a usage was inferred. *)
let run_profile_uncached profile =
  let catalog = Catalog.reduced ~per_bucket:2 () in
  let machine = Machine.create ~profile catalog in
  let harness = Harness.create machine in
  let result = Pipeline.run harness in
  (catalog, machine, result)

let golden_cove_run = lazy (run_profile_uncached Profile.golden_cove)
let a64fx_run = lazy (run_profile_uncached Profile.a64fx)

let run_profile profile =
  if profile.Profile.name = Profile.golden_cove.Profile.name then
    Lazy.force golden_cove_run
  else Lazy.force a64fx_run

let check_against_truth name machine result buckets =
  let truth = Machine.ground_truth machine in
  let catalog = Machine.catalog machine in
  List.iter
    (fun bucket ->
       List.iter
         (fun s ->
            match Pipeline.verdict result s with
            | Pipeline.Characterized { usage; spurious = false } ->
              Alcotest.(check bool)
                (Printf.sprintf "[%s] %s" name (Scheme.name s))
                true
                (Mapping.equal_usage usage (Mapping.usage truth s))
            | Pipeline.Blocking_class _ ->
              (match Mapping.find_opt result.Pipeline.mapping s with
               | Some usage ->
                 Alcotest.(check bool)
                   (Printf.sprintf "[%s] class member %s" name (Scheme.name s))
                   true
                   (Mapping.equal_usage usage (Mapping.usage truth s))
               | None ->
                 Alcotest.failf "[%s] class member %s unmapped" name
                   (Scheme.name s))
            | Pipeline.Characterized { spurious = true; _ }
            | Pipeline.Excluded_individual _ | Pipeline.Excluded_pairing
            | Pipeline.Excluded_mnemonic | Pipeline.Unstable_result _ ->
              Alcotest.failf "[%s] unexpected verdict for %s" name
                (Scheme.name s))
         (Catalog.bucket catalog bucket))
    buckets

let regular_buckets =
  [ "blocking/vec-int"; "blocking/fp-add"; "regular/scalar-load";
    "regular/ymm"; "regular/rmw" ]

let test_golden_cove_pipeline () =
  let _, machine, result = run_profile Profile.golden_cove in
  Alcotest.(check bool) "classes found" true
    (List.length result.Pipeline.filtering.Blocking.classes >= 10);
  check_against_truth "golden-cove" machine result regular_buckets

let test_a64fx_pipeline () =
  let _, machine, result = run_profile Profile.a64fx in
  (* Several one-port classes share a port on this profile, so the class
     count legitimately drops below 13. *)
  Alcotest.(check bool) "classes found" true
    (List.length result.Pipeline.filtering.Blocking.classes >= 8);
  check_against_truth "a64fx" machine result regular_buckets

let test_profile_culprits_found () =
  (* The §4.3 anomalies are modelled on every profile; the culprit search
     must still identify the scalar-multiply anomaly. *)
  let _, _, result = run_profile Profile.golden_cove in
  Alcotest.(check bool) "imul removed" true
    (List.exists
       (fun k ->
          Scheme.mnemonic k.Blocking.representative = "imul"
          || Scheme.mnemonic k.Blocking.representative = "vpmuldq")
       result.Pipeline.removed_classes)

let () =
  Alcotest.run "profiles"
    [ ("definitions",
       [ Alcotest.test_case "all valid" `Quick test_profiles_valid;
         Alcotest.test_case "§3.4 gap enforced" `Quick test_profile_gap_enforced ]);
      ("portability",
       [ Alcotest.test_case "golden-cove pipeline" `Slow test_golden_cove_pipeline;
         Alcotest.test_case "a64fx pipeline" `Slow test_a64fx_pipeline;
         Alcotest.test_case "culprit detection" `Slow test_profile_culprits_found ]) ]
