open Pmi_isa

let catalog = Catalog.zen_plus ()

(* ------------------------------------------------------------------ *)
(* Funnel sizes (§4.1-§4.4, Table 1)                                   *)
(* ------------------------------------------------------------------ *)

let bucket_size name = List.length (Catalog.bucket catalog name)

let test_total_size () =
  Alcotest.(check int) "2,980 instruction schemes" 2980 (Catalog.size catalog)

let test_stage1_excluded () =
  let total =
    bucket_size "excluded/zero-uop" + bucket_size "excluded/fp-slow"
    + bucket_size "excluded/mov64-imm" + bucket_size "excluded/high-byte"
  in
  Alcotest.(check int) "657 schemes excluded individually" 657 total

let test_stage2_excluded () =
  let total =
    List.fold_left
      (fun acc name ->
         if String.length name >= 13 && String.sub name 0 13 = "unstable-pair" then
           acc + bucket_size name
         else acc)
      0 (Catalog.bucket_names catalog)
  in
  Alcotest.(check int) "436 schemes excluded in pairing" 436 total

let test_blocking_classes () =
  let expected =
    [ ("blocking/alu", 234); ("blocking/vec-logic", 21); ("blocking/vec-int", 30);
      ("blocking/fp-mul-cmp", 143); ("blocking/shuffle", 50);
      ("blocking/vec-sat", 17); ("blocking/fp-add", 10); ("blocking/load", 6);
      ("blocking/vec-shift", 27); ("blocking/vec-mul-hard", 10);
      ("blocking/scalar-mul", 9); ("blocking/fp-round", 4);
      ("blocking/vec-to-gpr", 2) ]
  in
  List.iter
    (fun (name, size) -> Alcotest.(check int) name size (bucket_size name))
    expected;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 expected in
  Alcotest.(check int) "563 blocking candidates" 563 total;
  Alcotest.(check int) "13 blocking classes" 13 (List.length expected)

let test_regular_and_other () =
  let regular =
    bucket_size "regular/ymm" + bucket_size "regular/vec-load"
    + bucket_size "regular/ymm-load" + bucket_size "regular/scalar-load"
    + bucket_size "regular/rmw"
  in
  Alcotest.(check int) "731 regular multi-µop schemes" 731 regular;
  Alcotest.(check int) "146 microcoded" 146 (bucket_size "microcoded");
  Alcotest.(check int) "119 unstable" 119 (bucket_size "unstable-tp")

let test_excluded_mnemonics () =
  let total =
    bucket_size "excluded-mnemonic/imul-mem"
    + bucket_size "excluded-mnemonic/vec-mul-hard-mem"
    + bucket_size "excluded-mnemonic/vec-to-gpr-multi"
  in
  Alcotest.(check int) "47 same-mnemonic exclusions" 47 total

(* ------------------------------------------------------------------ *)
(* Scheme and operand behaviour                                        *)
(* ------------------------------------------------------------------ *)

let test_ids_dense () =
  Array.iteri
    (fun i s -> Alcotest.(check int) "dense id" i (Scheme.id s))
    (Catalog.schemes catalog)

let test_names_unique () =
  let names = Array.map Scheme.name (Catalog.schemes catalog) in
  let tbl = Hashtbl.create 4096 in
  Array.iter
    (fun n ->
       if Hashtbl.mem tbl n then Alcotest.failf "duplicate scheme name: %s" n;
       Hashtbl.add tbl n ())
    names

let test_rendering () =
  match Catalog.bucket catalog "blocking/load" with
  | first :: _ ->
    Alcotest.(check string) "uops.info style" "mov <GPR[32]>, <MEM[32]>"
      (Scheme.name first)
  | [] -> Alcotest.fail "empty load bucket"

let test_memory_metadata () =
  let load = List.hd (Catalog.bucket catalog "blocking/load") in
  Alcotest.(check (list int)) "load reads" [ 32 ] (Scheme.memory_reads load);
  Alcotest.(check (list int)) "load writes" [] (Scheme.memory_writes load);
  Alcotest.(check bool) "loading mov" true (Scheme.is_loading_mov load);
  let store = List.hd (Catalog.bucket catalog "store/scalar") in
  Alcotest.(check bool) "store not loading-mov" false (Scheme.is_loading_mov store);
  Alcotest.(check bool) "store writes memory" true (Scheme.memory_writes store <> []);
  let rmw = List.hd (Catalog.bucket catalog "regular/rmw") in
  Alcotest.(check bool) "rmw reads and writes" true
    (Scheme.memory_reads rmw <> [] && Scheme.memory_writes rmw <> [])

let test_bucket_of () =
  let s = List.hd (Catalog.bucket catalog "microcoded") in
  Alcotest.(check string) "bucket lookup" "microcoded" (Catalog.bucket_of catalog s)

let test_macro_ops () =
  let check bucket expected =
    let s = List.hd (Catalog.bucket catalog bucket) in
    Alcotest.(check int) bucket expected
      (Iclass.macro_ops (Scheme.klass s).Iclass.structure)
  in
  check "blocking/alu" 1;
  check "regular/ymm" 2;
  check "regular/rmw" 1;
  check "store/vec-ymm" 2

let test_quirks_attached () =
  let has_quirk bucket q =
    List.for_all (fun s -> Scheme.quirk s = Some q) (Catalog.bucket catalog bucket)
  in
  Alcotest.(check bool) "imul anomaly" true
    (has_quirk "blocking/scalar-mul" Iclass.Mul_anomaly);
  Alcotest.(check bool) "vpmuldq slow" true
    (has_quirk "blocking/vec-mul-hard" Iclass.Vec_mul_slow);
  Alcotest.(check bool) "vmovd cross" true
    (has_quirk "blocking/vec-to-gpr" Iclass.Gpr_cross);
  Alcotest.(check bool) "microcode" true (has_quirk "microcoded" Iclass.Ms_microcode);
  Alcotest.(check bool) "plain blocking" true
    (List.for_all (fun s -> Scheme.quirk s = None) (Catalog.bucket catalog "blocking/alu"))

let test_reduced_catalog () =
  let small = Catalog.reduced ~per_bucket:3 () in
  Alcotest.(check bool) "smaller" true (Catalog.size small < Catalog.size catalog);
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " capped") true
         (List.length (Catalog.bucket small name) <= 3))
    (Catalog.bucket_names small)

let test_of_list () =
  let c =
    Catalog.of_list
      [ ("foo", [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu)) ]
  in
  Alcotest.(check int) "size" 1 (Catalog.size c);
  Alcotest.(check string) "name" "foo <GPR[32]>" (Scheme.name (Catalog.find c 0))

let prop_variant_naming =
  QCheck2.Test.make ~name:"variant suffix only for clones" ~count:50
    (QCheck2.Gen.int_range 0 2979)
    (fun id ->
       let s = Catalog.find catalog id in
       let name = Scheme.name s in
       let has_suffix =
         String.length name > 4 && String.contains name '{'
       in
       (* Variant 0 renders without a suffix, clones render with one. *)
       if has_suffix then true
       else String.index_opt name '{' = None)

let () =
  Alcotest.run "isa"
    [ ("funnel",
       [ Alcotest.test_case "total size" `Quick test_total_size;
         Alcotest.test_case "stage-1 exclusions" `Quick test_stage1_excluded;
         Alcotest.test_case "stage-2 exclusions" `Quick test_stage2_excluded;
         Alcotest.test_case "blocking classes (Table 1)" `Quick test_blocking_classes;
         Alcotest.test_case "regular/microcoded/unstable" `Quick test_regular_and_other;
         Alcotest.test_case "same-mnemonic exclusions" `Quick test_excluded_mnemonics ]);
      ("schemes",
       [ Alcotest.test_case "dense ids" `Quick test_ids_dense;
         Alcotest.test_case "unique names" `Quick test_names_unique;
         Alcotest.test_case "rendering" `Quick test_rendering;
         Alcotest.test_case "memory metadata" `Quick test_memory_metadata;
         Alcotest.test_case "bucket lookup" `Quick test_bucket_of;
         Alcotest.test_case "macro-op counts" `Quick test_macro_ops;
         Alcotest.test_case "quirk tags" `Quick test_quirks_attached;
         Alcotest.test_case "reduced catalog" `Quick test_reduced_catalog;
         Alcotest.test_case "of_list" `Quick test_of_list;
         QCheck_alcotest.to_alcotest prop_variant_naming ]) ]
