open Pmi_isa
open Pmi_portmap
open Pmi_machine
module Rat = Pmi_numeric.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

let catalog = Catalog.zen_plus ()
let machine = Machine.create ~config:Machine.quiet_config catalog
let noisy = Machine.create catalog

let first bucket = List.hd (Catalog.bucket catalog bucket)
let nth bucket n = List.nth (Catalog.bucket catalog bucket) n

let add_rr = first "blocking/alu"       (* add <GPR[16]>... 4 ALU ports *)
let vpor = first "blocking/vec-logic"
let vpslld =
  (* The immediate-shift form is a 1-port blocking instruction. *)
  first "blocking/vec-shift"
let imul = first "blocking/scalar-mul"
let vpmuldq = first "blocking/vec-mul-hard"
let vmovd = first "blocking/vec-to-gpr"
let vmovq = nth "blocking/vec-to-gpr" 1
let load_mov = first "blocking/load"
let vminps = List.nth (Catalog.bucket catalog "blocking/fp-mul-cmp") 2
let vaddps = first "blocking/fp-add"
let vbroadcastss =
  List.find (fun s -> Scheme.mnemonic s = "vbroadcastss")
    (Catalog.bucket catalog "blocking/shuffle")
let store_mov32 =
  List.find (fun s -> Scheme.memory_writes s = [ 32 ])
    (Catalog.bucket catalog "store/scalar")
let vmovapd_store = first "store/vec"
let nop = first "excluded/zero-uop"
let fma = first "unstable-pair/fma-rr"
let bsf = first "microcoded"
let vdiv = first "excluded/fp-slow"

let tp e = Machine.true_inverse machine e
let exp1 s = Experiment.singleton s
let mix pairs = Experiment.of_counts pairs

(* ------------------------------------------------------------------ *)
(* Baseline port behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_single_instruction_throughputs () =
  (* A 4-port ALU op streams at 4/cycle; frontend allows 5/cycle. *)
  Alcotest.check rat "add" (Rat.of_ints 1 4) (tp (exp1 add_rr));
  Alcotest.check rat "vpor" (Rat.of_ints 1 4) (tp (exp1 vpor));
  Alcotest.check rat "vpslld" Rat.one (tp (exp1 vpslld));
  Alcotest.check rat "load" (Rat.of_ints 1 2) (tp (exp1 load_mov));
  Alcotest.check rat "vminps" (Rat.of_ints 1 2) (tp (exp1 vminps));
  Alcotest.check rat "vaddps" (Rat.of_ints 1 2) (tp (exp1 vaddps))

let test_frontend_limit () =
  (* Five 4-port adds would only need 1.25 cycles of ALU time but retire
     at 5/cycle; ten need 2.5 cycles either way. *)
  Alcotest.check rat "5 adds" (Rat.of_ints 5 4)
    (tp (Experiment.replicate 5 add_rr));
  (* Mixing ALU and FP work: 4 adds + 4 vpors = 8 instrs, ports give 1.0,
     frontend gives 8/5 = 1.6. *)
  Alcotest.check rat "frontend bound" (Rat.of_ints 8 5)
    (tp (mix [ (add_rr, 4); (vpor, 4) ]))

let test_nop_free () =
  Alcotest.check rat "nop streams at 5 IPC" (Rat.of_ints 1 5) (tp (exp1 nop));
  Alcotest.check rat "10 nops" (Rat.of_int 2) (tp (Experiment.replicate 10 nop));
  Alcotest.(check int) "nop still retires" 1
    (Machine.retired_ops machine (exp1 nop))

(* ------------------------------------------------------------------ *)
(* §4.1: the storing-mov evidence chain                                *)
(* ------------------------------------------------------------------ *)

let test_store_mov_evidence () =
  (* "A store-mov together with four simple register-additions takes 1.25
     cycles" — its data µop is restricted to the four ALU ports. *)
  Alcotest.check rat "store-mov + 4 adds" (Rat.of_ints 5 4)
    (tp (mix [ (add_rr, 4); (store_mov32, 1) ]));
  (* "A vmovapd store together with the four additions takes only 1.0" *)
  Alcotest.check rat "vmovapd + 4 adds" Rat.one
    (tp (mix [ (add_rr, 4); (vmovapd_store, 1) ]));
  (* "A storing mov with a storing vmovapd leads to 2 cycles" — both need
     the store port. *)
  Alcotest.check rat "store-mov + vmovapd" (Rat.of_int 2)
    (tp (mix [ (store_mov32, 1); (vmovapd_store, 1) ]))

let test_macro_op_counter () =
  (* The counter reports macro-ops: memory µops are fused (§4.1.1). *)
  let add_load = first "regular/scalar-load" in
  Alcotest.(check int) "add r,m = 1 macro-op" 1
    (Machine.retired_ops machine (exp1 add_load));
  let ymm = first "regular/ymm" in
  Alcotest.(check int) "ymm = 2 macro-ops" 2 (Machine.retired_ops machine (exp1 ymm));
  Alcotest.(check int) "bsf = 8 macro-ops" 8 (Machine.retired_ops machine (exp1 bsf));
  Alcotest.(check int) "mixed" 12
    (Machine.retired_ops machine (mix [ (add_rr, 2); (ymm, 1); (bsf, 1) ]))

(* ------------------------------------------------------------------ *)
(* §4.3 quirks                                                         *)
(* ------------------------------------------------------------------ *)

let test_imul_anomaly () =
  (* imul alone is an ordinary 1-port instruction... *)
  Alcotest.check rat "imul alone" Rat.one (tp (exp1 imul));
  (* ...but 4 adds + 1 imul measure ~1.5 cycles, not the 1.0 or 1.25 the
     port-mapping model would allow (§4.3). *)
  Alcotest.check rat "4 add + imul" (Rat.of_ints 3 2)
    (tp (mix [ (add_rr, 4); (imul, 1) ]))

let test_vpmuldq_slow () =
  (* Slightly slower than its single port implies: 1.05 cycles. *)
  Alcotest.check rat "vpmuldq alone" (Rat.of_ints 21 20) (tp (exp1 vpmuldq));
  (* Two of them are additive (same kind)... *)
  Alcotest.check rat "2 vpmuldq" (Rat.of_ints 21 10)
    (tp (Experiment.replicate 2 vpmuldq))

let test_vmovd_inconsistent () =
  (* Alone (or with its own family): an ordinary port-2 µop. *)
  Alcotest.check rat "vmovd alone" Rat.one (tp (exp1 vmovd));
  Alcotest.check rat "vmovd + vmovq additive" (Rat.of_int 2)
    (tp (mix [ (vmovd, 1); (vmovq, 1) ]));
  (* With a port-2 user from another family, the µop spreads over {1,2}:
     the pair no longer behaves additively. *)
  Alcotest.check rat "vmovd + vpslld NOT additive" Rat.one
    (tp (mix [ (vmovd, 1); (vpslld, 1) ]))

let test_fma_contradictions () =
  (* fma alone looks like a clean 2-port instruction... *)
  Alcotest.check rat "fma alone" (Rat.of_ints 1 2) (tp (exp1 fma));
  (* ...additive with the FP-multiply class... *)
  Alcotest.check rat "fma + vminps" Rat.one (tp (mix [ (fma, 1); (vminps, 1) ]));
  (* ...but ALSO additive with the FP-add class (data lines of port 2),
     while vminps and vaddps are NOT additive with each other: the
     contradiction of §4.2. *)
  Alcotest.check rat "fma + vaddps" Rat.one (tp (mix [ (fma, 1); (vaddps, 1) ]));
  Alcotest.check rat "vminps + vaddps" (Rat.of_ints 1 2)
    (tp (mix [ (vminps, 1); (vaddps, 1) ]));
  Alcotest.check rat "fma + vbroadcastss" Rat.one
    (tp (mix [ (fma, 1); (vbroadcastss, 1) ]))

let test_microcode_stall () =
  (* bsf: 8 ALU µops -> 2 cycles of port work, plus an 8-op MS stall at
     4 ops/cycle -> 4 cycles total. *)
  Alcotest.check rat "bsf alone" (Rat.of_int 4) (tp (exp1 bsf));
  (* Surplus measured against flooded ALU ports is inflated by the stall:
     32 adds alone take 8 cycles; with bsf, 10 port cycles + 2 stall. *)
  Alcotest.check rat "32 adds" (Rat.of_int 8) (tp (Experiment.replicate 32 add_rr));
  Alcotest.check rat "32 adds + bsf" (Rat.of_int 12)
    (tp (mix [ (add_rr, 32); (bsf, 1) ]))

let test_divider_occupancy () =
  (* Non-pipelined divider: 4 cycles per instance on one port. *)
  Alcotest.check rat "div alone" (Rat.of_int 4) (tp (exp1 vdiv));
  Alcotest.check rat "2 divs" (Rat.of_int 8) (tp (Experiment.replicate 2 vdiv))

(* ------------------------------------------------------------------ *)
(* Intel-style counters (for the uops.info reference algorithm)        *)
(* ------------------------------------------------------------------ *)

let test_true_uop_count () =
  Alcotest.(check int) "add" 1 (Machine.true_uop_count machine (exp1 add_rr));
  Alcotest.(check int) "store-mov" 2
    (Machine.true_uop_count machine (exp1 store_mov32));
  let rmw = first "regular/rmw" in
  (* 16-bit rmw in bucket order: ALU + store + narrow AGU = 3 µops. *)
  Alcotest.(check bool) "rmw has more µops than its macro-op" true
    (Machine.true_uop_count machine (exp1 rmw)
     > Machine.retired_ops machine (exp1 rmw))

let test_port_uops_spread () =
  (* A lone 4-port add round-robins over the whole ALU cluster: all four
     counters tick, none of the others do. *)
  let per_port = Machine.port_uops machine (Experiment.replicate 8 add_rr) in
  Array.iteri
    (fun k mass ->
       let expected_active = List.mem k [ 6; 7; 8; 9 ] in
       Alcotest.(check bool)
         (Printf.sprintf "port %d %s" k (if expected_active then "busy" else "idle"))
         expected_active
         (Rat.sign mass > 0))
    per_port;
  (* Counter totals equal the µop count. *)
  let total = Array.fold_left Rat.add Rat.zero per_port in
  Alcotest.check rat "mass conserved" (Rat.of_int 8) total

let test_port_uops_blocking_shape () =
  (* Figure 3(a) on simulated counters: 3 blocking 1-port µops plus the
     µop of the instruction under test that cannot evade. *)
  let e = mix [ (vpslld, 3); (vbroadcastss, 1) ] in
  let per_port = Machine.port_uops machine e in
  (* vpslld floods port 2; vbroadcastss {1,2} evades to port 1. *)
  Alcotest.check rat "port 2 holds the blockers" (Rat.of_int 3) per_port.(2);
  Alcotest.check rat "port 1 holds the evader" Rat.one per_port.(1)

(* ------------------------------------------------------------------ *)
(* Noise model                                                         *)
(* ------------------------------------------------------------------ *)

let test_measurement_deterministic () =
  let e = mix [ (add_rr, 4); (vpor, 2) ] in
  let a = Machine.measure_cycles noisy ~rep:3 e in
  let b = Machine.measure_cycles noisy ~rep:3 e in
  Alcotest.(check (float 0.0)) "same rep, same value" a b;
  let c = Machine.measure_cycles noisy ~rep:4 e in
  Alcotest.(check bool) "different rep jitters" true (a <> c)

let test_noise_tiers () =
  let within_rel pct value reference =
    Float.abs (value -. reference) <= (pct *. reference)
  in
  let stable = mix [ (add_rr, 4); (vpor, 2) ] in
  let t0 = Rat.to_float (Machine.true_inverse noisy stable) in
  let m = Machine.measure_cycles noisy ~rep:1 stable in
  Alcotest.(check bool) "stable within 0.5%" true (within_rel 0.005 m t0);
  (* Unstable pairing: wide jitter when mixed, tight alone. *)
  let cmov = first "unstable-pair/cmov-rr" in
  let alone = Machine.measure_cycles noisy ~rep:1 (exp1 cmov) in
  let t1 = Rat.to_float (Machine.true_inverse noisy (exp1 cmov)) in
  Alcotest.(check bool) "unstable scheme tight alone" true
    (within_rel 0.005 alone t1);
  (* The unreliable tier applies even alone. *)
  let imm64 = first "excluded/mov64-imm" in
  let samples =
    List.init 11 (fun rep -> Machine.measure_cycles noisy ~rep (exp1 imm64))
  in
  let t2 = Rat.to_float (Machine.true_inverse noisy (exp1 imm64)) in
  let spread =
    List.fold_left Float.max neg_infinity samples
    -. List.fold_left Float.min infinity samples
  in
  Alcotest.(check bool) "imm64 spread is wide" true (spread > 0.05 *. t2)

let test_harness_median_and_cache () =
  let harness = Pmi_measure.Harness.create noisy in
  let e = mix [ (add_rr, 4); (imul, 1) ] in
  let s1 = Pmi_measure.Harness.run harness e in
  let s2 = Pmi_measure.Harness.run harness e in
  Alcotest.check rat "cached" s1.Pmi_measure.Harness.cycles s2.Pmi_measure.Harness.cycles;
  Alcotest.(check int) "one benchmark" 1 (Pmi_measure.Harness.benchmarks_run harness);
  (* Median of a stable measurement lands within ε of the truth. *)
  let truth = Rat.to_float (Machine.true_inverse noisy e) in
  let measured = Rat.to_float s1.Pmi_measure.Harness.cycles in
  Alcotest.(check bool) "median near truth" true
    (Float.abs (measured -. truth) < 0.02 *. float_of_int (Experiment.length e));
  Alcotest.(check int) "retired ops" 5 s1.Pmi_measure.Harness.retired_ops

let test_compare_epsilon () =
  let open Pmi_measure.Harness.Compare in
  Alcotest.(check bool) "equal within ε" true
    (cpi_equal ~length:5 (Rat.of_ints 100 100) (Rat.of_ints 109 100));
  Alcotest.(check bool) "unequal beyond ε" false
    (cpi_equal ~length:5 (Rat.of_ints 100 100) (Rat.of_ints 111 100));
  Alcotest.(check bool) "separated" true
    (well_separated ~length:1 Rat.one (Rat.of_ints 3 2));
  Alcotest.(check bool) "not separated" false
    (well_separated ~length:1 Rat.one (Rat.of_ints 103 100))

let prop_true_inverse_at_least_frontend =
  QCheck2.Test.make ~name:"tp⁻¹ ≥ |e|/5 always" ~count:200
    QCheck2.Gen.(list_size (int_range 1 5) (int_range 0 (Catalog.size catalog - 1)))
    (fun ids ->
       let e = Experiment.of_list (List.map (Catalog.find catalog) ids) in
       Rat.compare (Machine.true_inverse machine e)
         (Rat.of_ints (Experiment.length e) 5)
       >= 0)

let prop_retired_ops_additive =
  QCheck2.Test.make ~name:"retired ops are additive" ~count:200
    QCheck2.Gen.(pair
                   (list_size (int_range 1 4) (int_range 0 (Catalog.size catalog - 1)))
                   (list_size (int_range 1 4) (int_range 0 (Catalog.size catalog - 1))))
    (fun (ids1, ids2) ->
       let e1 = Experiment.of_list (List.map (Catalog.find catalog) ids1) in
       let e2 = Experiment.of_list (List.map (Catalog.find catalog) ids2) in
       Machine.retired_ops machine (Experiment.union e1 e2)
       = Machine.retired_ops machine e1 + Machine.retired_ops machine e2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "machine"
    [ ("ports",
       [ Alcotest.test_case "single-instruction throughput" `Quick
           test_single_instruction_throughputs;
         Alcotest.test_case "frontend limit" `Quick test_frontend_limit;
         Alcotest.test_case "nop/mov elimination" `Quick test_nop_free ]);
      ("counters",
       [ Alcotest.test_case "store-mov evidence (§4.1)" `Quick test_store_mov_evidence;
         Alcotest.test_case "macro-op counter (§4.1.1)" `Quick test_macro_op_counter ]);
      ("quirks",
       [ Alcotest.test_case "imul anomaly (§4.3)" `Quick test_imul_anomaly;
         Alcotest.test_case "vpmuldq slowdown (§4.3)" `Quick test_vpmuldq_slow;
         Alcotest.test_case "vmovd inconsistency (§4.3)" `Quick test_vmovd_inconsistent;
         Alcotest.test_case "fma contradictions (§4.2)" `Quick test_fma_contradictions;
         Alcotest.test_case "microcode stall (§4.4)" `Quick test_microcode_stall;
         Alcotest.test_case "divider occupancy (§4.1.2)" `Quick test_divider_occupancy ]);
      ("counters-intel",
       [ Alcotest.test_case "µop counter" `Quick test_true_uop_count;
         Alcotest.test_case "per-port spread" `Quick test_port_uops_spread;
         Alcotest.test_case "blocking shape" `Quick test_port_uops_blocking_shape ]);
      ("noise",
       [ Alcotest.test_case "deterministic" `Quick test_measurement_deterministic;
         Alcotest.test_case "tiers" `Quick test_noise_tiers;
         Alcotest.test_case "harness median/cache" `Quick test_harness_median_and_cache;
         Alcotest.test_case "ε comparisons" `Quick test_compare_epsilon ]
       @ qsuite [ prop_true_inverse_at_least_frontend; prop_retired_ops_additive ]) ]
