(* Benchmark harness: one bechamel test per reproduced table/figure (on
   reduced catalogs so a run stays in the minutes) plus the ablation
   micro-benchmarks called out in DESIGN.md.

   Flags:
     --smoke        run every benchmark body exactly once (no bechamel)
     --json FILE    write the measured results as a JSON array of
                    {name, ns_per_run} records *)

open Bechamel
open Toolkit
open Pmi_isa
open Pmi_portmap
open Pmi_core
module Rat = Pmi_numeric.Rat
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness
module Pool = Pmi_parallel.Pool

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed region)              *)
(* ------------------------------------------------------------------ *)

let toy_catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let toy_add = Catalog.find toy_catalog 0
let toy_mul = Catalog.find toy_catalog 1
let toy_fma = Catalog.find toy_catalog 2

let toy_mapping =
  let both = Portset.of_list [ 0; 1 ] in
  let p2 = Portset.singleton 1 in
  let m = Mapping.create ~num_ports:2 in
  Mapping.set m toy_add [ (both, 1) ];
  Mapping.set m toy_mul [ (p2, 1) ];
  Mapping.set m toy_fma [ (both, 2); (p2, 1) ];
  m

let toy_experiment = Experiment.of_counts [ (toy_mul, 2); (toy_fma, 1) ]

let zen = Catalog.zen_plus ()
let zen_machine = Machine.create zen
let zen_harness = Harness.create zen_machine
let zen_block =
  Experiment.of_list
    (List.filteri (fun i _ -> i < 5)
       (List.map (fun b -> List.hd (Catalog.bucket zen b))
          [ "blocking/alu"; "blocking/vec-logic"; "blocking/fp-add";
            "blocking/shuffle"; "blocking/load" ]))

(* A pipeline-sized fixture: reduced catalog with fresh harness per run so
   caching does not hide the work. *)
let reduced_harness () =
  Harness.create (Machine.create (Catalog.reduced ~per_bucket:2 ()))

let cegis_toy ?(incremental_sat = true) ?(memoized_oracle = true)
    ~symmetry_breaking ~max_size () =
  let truth = Mapping.create ~num_ports:3 in
  Mapping.set truth toy_add [ (Portset.of_list [ 0; 1 ], 1) ];
  Mapping.set truth toy_mul [ (Portset.of_list [ 1; 2 ], 1) ];
  Mapping.set truth toy_fma [ (Portset.singleton 2, 1) ];
  let config =
    { Cegis.default_config with
      Cegis.num_ports = 3; r_max = 4; max_experiment_size = max_size;
      symmetry_breaking; incremental_sat; memoized_oracle }
  in
  let measure e = Cegis.modeled_inverse config truth e in
  let specs =
    [ (toy_add, Encoding.Proper 2); (toy_mul, Encoding.Proper 2);
      (toy_fma, Encoding.Proper 1) ]
  in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.Converged _ -> ()
  | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
    failwith "bench: toy CEGIS failed"

let eval_schemes =
  Pmi_eval.Blocks.spec_subset ~size:40
    (List.concat_map (Catalog.bucket zen)
       [ "blocking/alu"; "blocking/vec-logic"; "blocking/vec-int";
         "blocking/fp-mul-cmp"; "blocking/shuffle"; "blocking/fp-add" ])

let eval_blocks =
  Pmi_eval.Blocks.generate ~count:50 ~block_size:5 eval_schemes

(* A larger sweep for the domain-pool benchmarks, so the per-item work
   amortises the domain spawns. *)
let sweep_blocks =
  Pmi_eval.Blocks.generate ~seed:7 ~count:800 ~block_size:5 eval_schemes

let ground_truth = Machine.ground_truth zen_machine

let zen_oracle =
  let o = Oracle.create ground_truth in
  Oracle.prepare o (Experiment.schemes zen_block);
  Oracle.prepare o eval_schemes;
  o

(* Standing accumulator holding [zen_block]; the incremental benchmark
   perturbs it by one scheme, queries, and restores it. *)
let zen_acc =
  let acc = Oracle.Acc.create zen_oracle in
  List.iter
    (fun (s, n) -> Oracle.Acc.add acc s n)
    (Experiment.to_counts zen_block);
  acc

let acc_delta = List.hd (Experiment.schemes zen_block)

let predict_sweep domains =
  ignore
    (Pool.map_list ~domains
       (fun e -> Oracle.inverse_bounded ~r_max:5 zen_oracle e)
       sweep_blocks)

(* ------------------------------------------------------------------ *)
(* Tests: (name, body) pairs, shared by bechamel and the smoke mode    *)
(* ------------------------------------------------------------------ *)

let micro_tests =
  [ (* Ablation: the bottleneck-set formula vs the explicit simplex LP. *)
    ("oracle/bottleneck-formula", fun () ->
        ignore (Throughput.inverse toy_mapping toy_experiment));
    ("oracle/simplex-lp", fun () ->
        ignore (Lp_model.inverse toy_mapping toy_experiment));
    (* Naive baseline vs the memoized oracle on the same Zen block. *)
    ("oracle/zen-block", fun () ->
        ignore (Throughput.inverse_bounded ~r_max:5 ground_truth zen_block));
    ("oracle/memoized-full", fun () ->
        ignore (Oracle.inverse_bounded ~r_max:5 zen_oracle zen_block));
    ("oracle/memoized", fun () ->
        (* ±one scheme on a standing accumulator + query: the inner step of
           the stratified CEGIS search. *)
        Oracle.Acc.add zen_acc acc_delta 1;
        ignore (Oracle.Acc.inverse_bounded ~r_max:5 zen_acc);
        Oracle.Acc.remove zen_acc acc_delta 1);
    (* Machine and harness costs per measurement. *)
    ("machine/measure-cycles", fun () ->
        ignore (Machine.measure_cycles zen_machine ~rep:0 zen_block));
    ("harness/median-of-11", fun () ->
        ignore (Harness.cycles (Harness.create zen_machine) zen_block));
    (* SAT solver on a classic instance. *)
    ("sat/pigeonhole-7-6", fun () ->
        let open Pmi_smt in
        let s = Sat.create () in
        let v = Array.init 7 (fun _ -> Array.init 6 (fun _ -> Sat.fresh_var s)) in
        for p = 0 to 6 do
          Sat.add_clause s (Array.to_list (Array.map Lit.pos v.(p)))
        done;
        for h = 0 to 5 do
          for p1 = 0 to 6 do
            for p2 = p1 + 1 to 6 do
              Sat.add_clause s
                [ Lit.neg_of_var v.(p1).(h); Lit.neg_of_var v.(p2).(h) ]
            done
          done
        done;
        match Sat.solve s with
        | Sat.Unsat -> ()
        | Sat.Sat _ -> failwith "pigeonhole must be unsat") ]

let characterize_fixture =
  let blockers_ports =
    [ ("blocking/alu", [ 6; 7; 8; 9 ]); ("blocking/vec-logic", [ 0; 1; 2; 3 ]);
      ("blocking/load", [ 4; 5 ]); ("blocking/vec-shift", [ 2 ]) ]
  in
  let counter_free =
    List.map
      (fun (bucket, ports) ->
         { Port_usage.scheme = List.hd (Catalog.bucket zen bucket);
           ports = Portset.of_list ports })
      blockers_ports
  in
  let with_counters =
    List.map
      (fun (bucket, ports) ->
         (List.hd (Catalog.bucket zen bucket), Portset.of_list ports))
      blockers_ports
  in
  let target = List.hd (Catalog.bucket zen "regular/scalar-load") in
  (counter_free, with_counters, target)

let ablation_tests =
  [ (* The paper's headline trade: Algorithm 1 with per-port counters vs
       the counter-free throughput-difference replacement. *)
    ("ablation/characterize-counter-free", fun () ->
        let counter_free, _, target = characterize_fixture in
        match Port_usage.characterize zen_harness ~blockers:counter_free target with
        | Port_usage.Usage _ -> ()
        | Port_usage.Failed _ -> failwith "bench: characterisation failed");
    ("ablation/characterize-uops-info", fun () ->
        let _, with_counters, target = characterize_fixture in
        ignore (Uops_info.characterize zen_machine ~blockers:with_counters target));
    (* Incremental SAT: one persistent encoding with activation literals vs
       a fresh encoding per CEGIS iteration. *)
    ("ablation/cegis-incremental-sat", fun () ->
        cegis_toy ~symmetry_breaking:true ~max_size:4 ());
    ("ablation/cegis-fresh-sat", fun () ->
        cegis_toy ~incremental_sat:false ~symmetry_breaking:true ~max_size:4 ());
    (* Memoized oracle vs naive per-query throughput in the same search. *)
    ("ablation/cegis-memoized-oracle", fun () ->
        cegis_toy ~symmetry_breaking:true ~max_size:4 ());
    ("ablation/cegis-naive-oracle", fun () ->
        cegis_toy ~memoized_oracle:false ~symmetry_breaking:true ~max_size:4 ());
    (* Symmetry breaking: CEGIS convergence cost with and without. *)
    ("ablation/cegis-with-symmetry", fun () ->
        cegis_toy ~symmetry_breaking:true ~max_size:4 ());
    ("ablation/cegis-no-symmetry", fun () ->
        cegis_toy ~symmetry_breaking:false ~max_size:4 ());
    (* Stratification bound of the distinguishing-experiment search. *)
    ("ablation/cegis-bound-3", fun () ->
        cegis_toy ~symmetry_breaking:true ~max_size:3 ());
    ("ablation/cegis-bound-6", fun () ->
        cegis_toy ~symmetry_breaking:true ~max_size:6 ()) ]

let parallel_tests =
  [ (* The validation/prediction sweep, sequential vs the domain pool. *)
    ("parallel/predict-seq", fun () -> predict_sweep 1);
    ("parallel/predict-domains", fun () ->
        predict_sweep (Pool.default_domains ())) ]

let table_figure_tests =
  [ (* Table 1: stage-1 classification + candidate filtering. *)
    ("table1/blocking-classes", fun () ->
        let harness = reduced_harness () in
        let catalog = Machine.catalog (Harness.machine harness) in
        let candidates =
          Array.to_list (Catalog.schemes catalog)
          |> List.filter_map (fun s ->
              match Blocking.classify_individual harness s with
              | Blocking.Candidate n -> Some (s, n)
              | Blocking.Hardwired | Blocking.Unreliable | Blocking.Zero_uop
              | Blocking.Outside_model | Blocking.Multi_uop _ -> None)
        in
        let result = Blocking.filter_candidates harness candidates in
        assert (List.length result.Blocking.classes = 13));
    (* Table 2 + funnel: the whole pipeline on the reduced catalog. *)
    ("table2+funnel/pipeline", fun () ->
        let harness = reduced_harness () in
        let result = Pipeline.run harness in
        assert (result.Pipeline.funnel.Pipeline.blocking_classes = 13));
    (* Figure 5: per-model prediction cost over 50 blocks. *)
    ("figure5/ours-predictions", fun () ->
        List.iter
          (fun e -> ignore (Oracle.inverse_bounded ~r_max:5 zen_oracle e))
          eval_blocks);
    ("figure5/pmevo-inference", fun () ->
        let config =
          { Pmi_baselines.Pmevo.default_config with
            Pmi_baselines.Pmevo.population = 12; generations = 5 }
        in
        let training =
          Pmi_baselines.Pmevo.training_set ~pairs:40 ~blocks:20 zen_harness
            eval_schemes
        in
        ignore (Pmi_baselines.Pmevo.infer ~config training eval_schemes));
    ("figure5/palmed-inference", fun () ->
        let config =
          { Pmi_baselines.Palmed.default_config with
            Pmi_baselines.Palmed.throughput_classes = 16 }
        in
        ignore (Pmi_baselines.Palmed.infer ~config zen_harness eval_schemes)) ]

let sections =
  [ ("micro-benchmarks", micro_tests);
    ("ablations (DESIGN.md)", ablation_tests);
    ("parallel sweeps", parallel_tests);
    ("table/figure regeneration", table_figure_tests) ]

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:40 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  List.concat_map
    (fun (name, fn) ->
       let t = Test.make ~name (Staged.stage fn) in
       let raw = Benchmark.all cfg instances t in
       List.concat_map
         (fun instance ->
            let results = Analyze.all ols instance raw in
            Hashtbl.fold
              (fun name ols_result acc ->
                 match Analyze.OLS.estimates ols_result with
                 | Some [ per_run ] ->
                   Format.printf "%-36s %12.1f ns/run@." name per_run;
                   (name, per_run) :: acc
                 | Some _ | None ->
                   Format.printf "%-36s (no estimate)@." name;
                   acc)
              results [])
         instances)
    tests

let smoke tests =
  List.map
    (fun (name, fn) ->
       let t0 = Sys.time () in
       fn ();
       let ns = (Sys.time () -. t0) *. 1e9 in
       Format.printf "smoke %-36s ok@." name;
       (name, ns))
    tests

let emit_json path results =
  let oc = open_out path in
  output_string oc "[\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
       Printf.fprintf oc "  { \"name\": %S, \"ns_per_run\": %.1f }%s\n" name ns
         (if i < n - 1 then "," else ""))
    results;
  output_string oc "]\n";
  close_out oc

let () =
  let smoke_mode = ref false in
  let json = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke_mode := true; parse rest
    | "--json" :: file :: rest -> json := Some file; parse rest
    | arg :: _ ->
      Printf.eprintf "usage: %s [--smoke] [--json FILE]\nunknown argument %s\n"
        Sys.argv.(0) arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let driver = if !smoke_mode then smoke else benchmark in
  let results =
    List.concat_map
      (fun (title, tests) ->
         Format.printf "== %s ==@." title;
         let rs = driver tests in
         Format.printf "@.";
         rs)
      sections
  in
  (match !json with None -> () | Some path -> emit_json path results);
  Format.printf "done.@."
