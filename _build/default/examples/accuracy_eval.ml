(* Figure 5 on a reduced catalog: infer a port mapping, train the PMEvo and
   Palmed baselines, and compare IPC prediction accuracy on random basic
   blocks (metrics table + predicted-vs-measured heatmaps).

     dune exec examples/accuracy_eval.exe

   The paper-scale evaluation (5,000 blocks over 577 schemes) is
   `pmi_repro figure5`. *)

module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness
module Pipeline = Pmi_core.Pipeline
module Figure5 = Pmi_eval.Figure5

let () =
  let catalog = Pmi_isa.Catalog.reduced ~per_bucket:4 () in
  let harness = Harness.create (Machine.create catalog) in
  Format.printf "inferring the port mapping (%d schemes)...@."
    (Pmi_isa.Catalog.size catalog);
  let result = Pipeline.run harness in
  Format.printf "evaluating against PMEvo and Palmed...@.@.";
  let fig =
    Figure5.run ~options:Figure5.quick_options harness
      ~mapping:result.Pipeline.mapping
  in
  Format.printf "%a@." Figure5.pp fig
