(* The Figure 4 example: two single-µop instructions whose singleton
   measurements admit several port mappings; the counter-example-guided
   loop proposes the distinguishing experiment [iA, iB] and converges.

     dune exec examples/cegis_demo.exe
*)

open Pmi_isa
open Pmi_portmap
open Pmi_core
module Rat = Pmi_numeric.Rat

let () =
  let catalog =
    Catalog.of_list
      [ ("iA", [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu));
        ("iB", [ Operand.gpr 32 ], Iclass.plain (Iclass.Single Iclass.Alu)) ]
  in
  let ia = Catalog.find catalog 0 in
  let ib = Catalog.find catalog 1 in

  (* The hidden truth is Figure 4(b): both µops share port p1. *)
  let truth = Mapping.create ~num_ports:2 in
  Mapping.set truth ia [ (Portset.singleton 0, 1) ];
  Mapping.set truth ib [ (Portset.singleton 0, 1) ];

  let config =
    { Cegis.default_config with
      Cegis.num_ports = 2; r_max = 3; max_experiment_size = 3 }
  in
  let log = ref [] in
  let measure e =
    let t = Cegis.modeled_inverse config truth e in
    log := (e, t) :: !log;
    t
  in
  let specs = [ (ia, Encoding.Proper 1); (ib, Encoding.Proper 1) ] in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.Converged (m, stats) ->
    Format.printf "Measured experiments (in order):@.";
    List.iter
      (fun (e, t) ->
         Format.printf "  %-24s -> %s cycles@." (Experiment.to_string e)
           (Rat.to_string t))
      (List.rev !log);
    Format.printf
      "@.The singleton experiments allow both Figure 4(a) and 4(b); the \
       loop distinguishes them with [1 x iA; 1 x iB] (2.0 cycles on the \
       shared port, 1.0 on disjoint ports).@.";
    Format.printf "@.Inferred after %d iterations:@.%a@." stats.Cegis.iterations
      Mapping.pp m;
    let e = Experiment.of_list [ ia; ib ] in
    Format.printf "tp⁻¹([iA, iB]) under the inferred mapping: %s (truth: %s)@."
      (Rat.to_string (Cegis.modeled_inverse config m e))
      (Rat.to_string (Cegis.modeled_inverse config truth e))
  | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
    prerr_endline "unexpected: Figure 4 inference failed";
    exit 1
