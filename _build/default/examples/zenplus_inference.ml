(* End-to-end inference on a reduced simulated Zen+ catalog: identifies the
   13 blocking classes (Table 1), infers their port mapping with the
   counter-example-guided algorithm (Table 2), excludes the imul / vpmuldq /
   vmovd anomalies, and characterises the remaining schemes.

     dune exec examples/zenplus_inference.exe

   The full 2,980-scheme study is `pmi_repro all` (a few minutes). *)

open Pmi_isa
module Mapping = Pmi_portmap.Mapping
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness
module Pipeline = Pmi_core.Pipeline
module Blocking = Pmi_core.Blocking

let () =
  let catalog = Catalog.reduced ~per_bucket:4 () in
  let machine = Machine.create catalog in
  let harness = Harness.create machine in
  Format.printf "running the inference pipeline on %d schemes...@."
    (Catalog.size catalog);
  let result = Pipeline.run harness in

  Format.printf "@.Blocking-instruction classes (Table 1):@.";
  List.iter
    (fun k ->
       Format.printf "  %d ports  %-40s (%d equivalent schemes)@."
         k.Blocking.port_count
         (Scheme.name k.Blocking.representative)
         (List.length k.Blocking.members))
    result.Pipeline.filtering.Blocking.classes;

  Format.printf "@.Excluded during CEGIS (the §4.3 anomalies):@.";
  List.iter
    (fun k -> Format.printf "  %s@." (Scheme.name k.Blocking.representative))
    result.Pipeline.removed_classes;

  Format.printf "@.Inferred blocking-instruction port mapping (Table 2):@.%a"
    Mapping.pp result.Pipeline.blocker_mapping;

  Format.printf "@.Example characterisations of multi-µop schemes:@.";
  let interesting = [ "regular/scalar-load"; "regular/rmw"; "regular/ymm";
                      "store/scalar"; "microcoded" ] in
  List.iter
    (fun bucket ->
       match Catalog.bucket catalog bucket with
       | [] -> ()
       | s :: _ ->
         (match Pipeline.verdict result s with
          | Pipeline.Characterized { usage; spurious } ->
            Format.printf "  %-44s %s%s@." (Scheme.name s)
              (Mapping.usage_to_string usage)
              (if spurious then "   <- microcode-sequencer artefact" else "")
          | Pipeline.Unstable_result _ ->
            Format.printf "  %-44s (unstable)@." (Scheme.name s)
          | Pipeline.Excluded_individual _ | Pipeline.Excluded_pairing
          | Pipeline.Excluded_mnemonic | Pipeline.Blocking_class _ ->
            Format.printf "  %-44s (not characterised)@." (Scheme.name s)))
    interesting;

  Format.printf "@.%a" Pipeline.pp_funnel result.Pipeline.funnel
