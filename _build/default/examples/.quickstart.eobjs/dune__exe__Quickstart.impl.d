examples/quickstart.ml: Catalog Cegis Encoding Experiment Format Iclass Mapping Operand Pmi_core Pmi_isa Pmi_numeric Pmi_portmap Portset Throughput
