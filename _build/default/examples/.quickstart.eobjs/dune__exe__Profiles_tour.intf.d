examples/profiles_tour.mli:
