examples/zenplus_inference.mli:
