examples/accuracy_eval.mli:
