examples/zenplus_inference.ml: Catalog Format List Pmi_core Pmi_isa Pmi_machine Pmi_measure Pmi_portmap Scheme
