examples/quickstart.mli:
