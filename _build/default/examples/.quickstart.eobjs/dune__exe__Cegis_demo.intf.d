examples/cegis_demo.mli:
