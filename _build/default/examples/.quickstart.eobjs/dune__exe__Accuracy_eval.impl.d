examples/accuracy_eval.ml: Format Pmi_core Pmi_eval Pmi_isa Pmi_machine Pmi_measure
