examples/paper_figures.ml: Catalog Experiment Format Iclass List Mapping Operand Pmi_isa Pmi_machine Pmi_numeric Pmi_portmap Portset Scheme Throughput
