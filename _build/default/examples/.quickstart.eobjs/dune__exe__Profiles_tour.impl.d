examples/profiles_tour.ml: Catalog Format List Pmi_core Pmi_isa Pmi_machine Pmi_measure Pmi_portmap Scheme String
