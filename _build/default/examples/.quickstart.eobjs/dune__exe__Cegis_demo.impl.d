examples/cegis_demo.ml: Catalog Cegis Encoding Experiment Format Iclass List Mapping Operand Pmi_core Pmi_isa Pmi_numeric Pmi_portmap Portset
