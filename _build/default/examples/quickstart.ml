(* Quickstart: build a port mapping, compute throughputs, and run the
   counter-example-guided inference on a toy architecture.

     dune exec examples/quickstart.exe
*)

open Pmi_isa
open Pmi_portmap
open Pmi_core
module Rat = Pmi_numeric.Rat

let () =
  (* 1. Describe three instruction schemes.  The behaviour class is only
     used by the simulated machine; the inference never looks at it. *)
  let catalog =
    Catalog.of_list
      [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
         Iclass.plain (Iclass.Single Iclass.Alu));
        ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
         Iclass.plain (Iclass.Single Iclass.Alu));
        ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
         Iclass.plain (Iclass.Single Iclass.Alu)) ]
  in
  let add = Catalog.find catalog 0 in
  let mul = Catalog.find catalog 1 in
  let fma = Catalog.find catalog 2 in

  (* 2. Build the Figure 2 port mapping by hand: two ports, u1 on both,
     u2 on port p2 only; fma = 2 x u1 + 1 x u2. *)
  let both = Portset.of_list [ 0; 1 ] in
  let p2 = Portset.singleton 1 in
  let mapping = Mapping.create ~num_ports:2 in
  Mapping.set mapping add [ (both, 1) ];
  Mapping.set mapping mul [ (p2, 1) ];
  Mapping.set mapping fma [ (both, 2); (p2, 1) ];
  Format.printf "The Figure 2 port mapping:@.%a@." Mapping.pp mapping;

  (* 3. Ask the throughput oracle about the paper's example experiment. *)
  let e = Experiment.of_counts [ (mul, 2); (fma, 1) ] in
  Format.printf "tp⁻¹(%s) = %s cycles (paper: 3)@.@."
    (Experiment.to_string e)
    (Rat.to_string (Throughput.inverse mapping e));

  (* 4. Hide the mapping behind a measurement function and let the CEGIS
     loop rediscover an equivalent one from throughput observations only. *)
  let config =
    { Cegis.default_config with
      Cegis.num_ports = 2; r_max = 3; max_experiment_size = 4 }
  in
  let measure experiment = Cegis.modeled_inverse config mapping experiment in
  let specs = [ (add, Encoding.Proper 2); (mul, Encoding.Proper 1) ] in
  match Cegis.infer ~config ~measure ~specs () with
  | Cegis.Converged (inferred, stats) ->
    Format.printf
      "CEGIS reconstructed the blocking instructions in %d iterations:@.%a@."
      stats.Cegis.iterations Mapping.pp inferred
  | Cegis.No_consistent_mapping _ | Cegis.Iteration_limit _ ->
    prerr_endline "unexpected: toy inference failed";
    exit 1
