(* Reproduces the paper's illustrative figures and in-text observations:
   Figures 2 and 3 (the toy architecture), the §2.3 blocking-instruction
   walk-through, and the §4.1 storing-mov evidence chain.

     dune exec examples/paper_figures.exe
*)

open Pmi_isa
open Pmi_portmap
module Rat = Pmi_numeric.Rat
module Machine = Pmi_machine.Machine

let section title = Format.printf "@.== %s ==@." title

(* The Figure 2 toy architecture. *)
let catalog =
  Catalog.of_list
    [ ("add", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("mul", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu));
      ("fma", [ Operand.gpr 64; Operand.gpr ~access:Operand.Read 64 ],
       Iclass.plain (Iclass.Single Iclass.Alu)) ]

let add = Catalog.find catalog 0
let mul = Catalog.find catalog 1
let fma = Catalog.find catalog 2

let toy =
  let both = Portset.of_list [ 0; 1 ] in
  let p2 = Portset.singleton 1 in
  let m = Mapping.create ~num_ports:2 in
  Mapping.set m add [ (both, 1) ];
  Mapping.set m mul [ (p2, 1) ];
  Mapping.set m fma [ (both, 2); (p2, 1) ];
  m

let show e paper =
  Format.printf "tp⁻¹ %-32s = %-4s (paper: %s)@." (Experiment.to_string e)
    (Rat.to_string (Throughput.inverse toy e))
    paper

let () =
  section "Figure 2: optimal µop distribution";
  show (Experiment.of_counts [ (mul, 2); (fma, 1) ]) "3";

  section "Figure 3: benchmarking fma against blocking instructions";
  show (Experiment.of_counts [ (mul, 3); (fma, 1) ]) "4";
  show (Experiment.of_counts [ (add, 6); (fma, 1) ]) "9/2";

  section "§2.3: characterising fma with Algorithm 1";
  (* k = 3 muls flood {p2}: 4 µops observed there -> 1 surplus µop. *)
  let t_mul = Throughput.inverse toy (Experiment.replicate 3 mul) in
  let t_mul_fma =
    Throughput.inverse toy (Experiment.add fma (Experiment.replicate 3 mul))
  in
  Format.printf "µops of fma stuck on {p2}: %s (paper: 1)@."
    (Rat.to_string (Rat.sub t_mul_fma t_mul));
  (* k = 6 adds flood {p1,p2}: 3 surplus µops, 1 already explained. *)
  let t_add = Throughput.inverse toy (Experiment.replicate 6 add) in
  let t_add_fma =
    Throughput.inverse toy (Experiment.add fma (Experiment.replicate 6 add))
  in
  Format.printf "µops of fma stuck on {p1,p2}: %s x 2 ports = 3 (paper: 3)@."
    (Rat.to_string (Rat.sub t_add_fma t_add));

  section "§4.1: the storing-mov evidence chain on simulated Zen+";
  let zen = Catalog.zen_plus () in
  let machine = Machine.create ~config:Machine.quiet_config zen in
  let first bucket = List.hd (Catalog.bucket zen bucket) in
  let alu = first "blocking/alu" in
  let store_mov =
    List.find (fun s -> Scheme.memory_writes s = [ 32 ])
      (Catalog.bucket zen "store/scalar")
  in
  let store_vec = first "store/vec" in
  let tp e = Machine.true_inverse machine e in
  Format.printf "store-mov + 4 adds : %s cycles (paper: 1.25)@."
    (Rat.to_string (tp (Experiment.of_counts [ (alu, 4); (store_mov, 1) ])));
  Format.printf "vec store + 4 adds : %s cycles (paper: 1.0)@."
    (Rat.to_string (tp (Experiment.of_counts [ (alu, 4); (store_vec, 1) ])));
  Format.printf "store-mov + vec st : %s cycles (paper: 2.0)@."
    (Rat.to_string (tp (Experiment.of_counts [ (store_mov, 1); (store_vec, 1) ])));

  section "§4.3: the imul anomaly";
  let imul = first "blocking/scalar-mul" in
  Format.printf "4 adds + imul      : %s cycles (paper: ~1.5, model allows \
                 only 1.0 or 1.25)@."
    (Rat.to_string (tp (Experiment.of_counts [ (alu, 4); (imul, 1) ])))
