(* Portability tour (§3.5): run the same inference, unchanged, against a
   different simulated microarchitecture — here the Zen3-like profile with
   its 6-wide frontend — and compare the inferred blocking mapping with
   that machine's documentation.

     dune exec examples/profiles_tour.exe
*)

open Pmi_isa
module Mapping = Pmi_portmap.Mapping
module Machine = Pmi_machine.Machine
module Profile = Pmi_machine.Profile
module Harness = Pmi_measure.Harness
module Pipeline = Pmi_core.Pipeline
module Blocking = Pmi_core.Blocking

let () =
  let profile = Profile.zen3 in
  Format.printf "profile %s: %d ports, %d IPC frontend, widest µop %d ports@."
    profile.Profile.name profile.Profile.num_ports profile.Profile.r_max
    (Profile.max_port_set profile);
  let catalog = Catalog.reduced ~per_bucket:3 () in
  let machine = Machine.create ~profile catalog in
  let harness = Harness.create machine in
  Format.printf "running the pipeline on %d schemes...@." (Catalog.size catalog);
  let result = Pipeline.run harness in
  let docs = Machine.ground_truth machine in
  Format.printf "@.%-44s %-22s %s@." "Blocking instruction" "Documented"
    "Inferred";
  List.iter
    (fun k ->
       let rep = k.Blocking.representative in
       if
         not
           (List.exists
              (fun r -> Scheme.equal r.Blocking.representative rep)
              result.Pipeline.removed_classes)
       then begin
         let show m =
           match Mapping.find_opt m rep with
           | Some u -> Mapping.usage_to_string u
           | None -> "-"
         in
         Format.printf "%-44s %-22s %s@." (Scheme.name rep) (show docs)
           (show result.Pipeline.blocker_mapping)
       end)
    result.Pipeline.filtering.Blocking.classes;
  Format.printf "@.excluded as anomalies: %s@."
    (String.concat ", "
       (List.map
          (fun k -> Scheme.name k.Blocking.representative)
          result.Pipeline.removed_classes));
  let d = Pmi_portmap.Diff.compute ~left:result.Pipeline.mapping ~right:docs in
  Format.printf "@.final mapping vs documentation: %a"
    (Pmi_portmap.Diff.pp ~max_rows:5 ()) d
