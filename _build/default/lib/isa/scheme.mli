(** Instruction schemes (uops.info "instruction forms").

    A scheme abstracts the set of concrete instructions that share a
    mnemonic and operand shape, e.g. [add <GPR[32]>, <MEM[32]>].  Schemes
    carry their simulated-Zen+ behaviour class ({!Iclass.t}) so the machine
    library can execute them; the inference algorithm itself only reads the
    identifier, the rendering, and the operand metadata needed by the
    macro-op postulate. *)

type t = private {
  id : int;               (** dense index into the catalog *)
  mnemonic : string;
  operands : Operand.t list;
  variant : int;          (** encoding/addressing variant disambiguator *)
  klass : Iclass.t;       (** simulated behaviour (machine-side ground truth) *)
}

val make :
  id:int -> mnemonic:string -> operands:Operand.t list -> variant:int ->
  klass:Iclass.t -> t

val id : t -> int
val mnemonic : t -> string
val operands : t -> Operand.t list
val klass : t -> Iclass.t
val quirk : t -> Iclass.quirk option

val name : t -> string
(** Full rendering, e.g. ["add <GPR[32]>, <MEM[32]>"], with a [" {vN}"]
    suffix for encoding variants beyond the first. *)

val memory_reads : t -> int list
(** Widths of memory operands that are read. *)

val memory_writes : t -> int list
(** Widths of memory operands that are written. *)

val is_loading_mov : t -> bool
(** [mov]-family scheme whose only memory operand is read (§4.1.1 excludes
    these from the +1-µop-per-memory-operand rule). *)

val is_lea : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
