(* Catalog generation.  Each bucket lists a pool of (mnemonic, operands,
   class) templates and a target population taken from the paper's funnel;
   pools are cycled with variant tags when smaller than the target. *)

type t = {
  schemes : Scheme.t array;
  buckets : (string * Scheme.t list) list;
  bucket_by_id : string array;
}

type template = string * Operand.t list * Iclass.t

type bucket_spec = {
  bname : string;
  target : int;
  pool : template list;
}

open Operand
open Iclass

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let scalar_widths = [ 16; 32; 64 ]

let product f xs ys = List.concat_map (fun x -> List.map (f x) ys) xs

(* Like [product], but [f] produces several templates per combination. *)
let product2 f xs ys = List.concat_map (fun x -> List.concat_map (f x) ys) xs

(* Two-operand scalar ALU forms: register-register and register-immediate.
   8-bit low-register forms are included so the read-modify-write memory
   forms have register siblings. *)
let alu2_forms mnems klass =
  product2
    (fun m w ->
       [ (m, [ gpr w; gpr ~access:Read w ], klass);
         (m, [ gpr w; imm (min w 32) ], klass) ])
    mnems (8 :: scalar_widths)

let alu1_forms mnems klass =
  product (fun m w -> (m, [ gpr w ], klass)) mnems scalar_widths

(* Three-operand AVX forms on XMM registers. *)
let vx3 mnems klass =
  List.map (fun m -> (m, [ xmm ~access:Write (); xmm (); xmm () ], klass)) mnems

let vy3 mnems klass =
  List.map (fun m -> (m, [ ymm ~access:Write (); ymm (); ymm () ], klass)) mnems

let vx3_mem mnems klass =
  List.map (fun m -> (m, [ xmm ~access:Write (); xmm (); mem 128 ], klass)) mnems

let vy3_mem mnems klass =
  List.map (fun m -> (m, [ ymm ~access:Write (); ymm (); mem 256 ], klass)) mnems

(* Two-operand AVX forms (destructive or move-like). *)
let vx2 mnems klass =
  List.map (fun m -> (m, [ xmm ~access:Write (); xmm () ], klass)) mnems

(* Legacy-SSE destructive two-operand counterparts of the AVX forms; the
   uops.info corpus lists both encodings as separate schemes, and on Zen+
   they share the AVX forms' port behaviour. *)
let sse2op mnems klass =
  List.map
    (fun m -> (m, [ xmm ~access:Read_write (); xmm () ], klass))
    mnems

let sse2op_imm mnems klass =
  List.map
    (fun m -> (m, [ xmm ~access:Read_write (); xmm (); imm 8 ], klass))
    mnems

let drop_v = List.map (fun m ->
    if String.length m > 1 && m.[0] = 'v' then String.sub m 1 (String.length m - 1)
    else m)

let vx3_imm mnems klass =
  List.map
    (fun m -> (m, [ xmm ~access:Write (); xmm (); xmm (); imm 8 ], klass))
    mnems

(* ------------------------------------------------------------------ *)
(* Mnemonic families                                                   *)
(* ------------------------------------------------------------------ *)

let alu2_mnems = [ "add"; "sub"; "and"; "or"; "xor"; "cmp"; "adc"; "sbb"; "test" ]
let alu1_mnems = [ "inc"; "dec"; "neg"; "not" ]
let shift_mnems = [ "shl"; "shr"; "sar"; "rol"; "ror"; "rcl"; "rcr" ]
let setcc_ccs = [ "o"; "no"; "b"; "ae"; "e"; "ne"; "be"; "a";
                  "s"; "ns"; "p"; "np"; "l"; "ge"; "le"; "g" ]

let vec_logic3_mnems = [ "vpor"; "vpand"; "vpxor"; "vpandn"; "vptest" ]

(* Register-to-register vector moves execute on the same four FP pipes but
   are two-operand; their memory forms are pure loads/stores and therefore
   belong to the load and store buckets, not here. *)
let vec_move_mnems =
  [ "vmovdqa"; "vmovaps"; "vmovapd"; "vmovdqu"; "vmovups"; "vmovupd" ]

let vec_int_mnems =
  [ "vpaddb"; "vpaddw"; "vpaddd"; "vpaddq"; "vpsubb"; "vpsubw"; "vpsubd";
    "vpsubq"; "vpcmpeqb"; "vpcmpeqw"; "vpcmpeqd"; "vpcmpgtw"; "vpabsb";
    "vpabsw"; "vpabsd"; "vpminsb"; "vpminsw"; "vpminsd"; "vpminub";
    "vpminuw"; "vpminud"; "vpmaxsb"; "vpmaxsw"; "vpmaxsd"; "vpmaxub";
    "vpmaxuw"; "vpmaxud"; "vpsignb"; "vpsignw"; "vpsignd" ]

let fp_mul_cmp_mnems =
  [ "vmulps"; "vmulss"; "vminps"; "vminpd"; "vminss"; "vminsd"; "vmaxps";
    "vmaxpd"; "vmaxss"; "vmaxsd"; "vcmpps"; "vcmppd"; "vcmpss"; "vcmpsd";
    "vpcmpeqq"; "vucomiss"; "vucomisd"; "vcomiss"; "vcomisd" ]

(* vbroadcastss is two-operand (Table 1 renders it that way); it gets its
   own form below and stays out of the three-operand derived pools. *)
let shuffle_mnems =
  [ "vpshufd"; "vpshufb"; "vpshuflw"; "vpshufhw"; "vshufps"; "vshufpd";
    "vpermilps"; "vpermilpd"; "vmovddup"; "vmovshdup";
    "vmovsldup"; "vpunpcklbw"; "vpunpcklwd"; "vpunpckldq"; "vpunpcklqdq";
    "vpunpckhbw"; "vpunpckhwd"; "vpunpckhdq"; "vpunpckhqdq"; "vunpcklps";
    "vunpcklpd"; "vunpckhps"; "vunpckhpd"; "vpacksswb"; "vpackssdw";
    "vpackuswb"; "vpackusdw"; "vpalignr"; "vinsertps" ]

let vec_sat_mnems =
  [ "vpaddsb"; "vpaddsw"; "vpaddusb"; "vpaddusw"; "vpsubsb"; "vpsubsw";
    "vpsubusb"; "vpsubusw"; "vpavgb"; "vpavgw" ]

let fp_add_mnems =
  [ "vaddps"; "vaddss"; "vaddsd"; "vaddpd"; "vsubps"; "vsubss"; "vsubsd";
    "vsubpd"; "vaddsubps"; "vaddsubpd" ]

let vec_shift_mnems =
  [ "vpsllw"; "vpslld"; "vpsllq"; "vpsrlw"; "vpsrld"; "vpsrlq"; "vpsraw";
    "vpsrad" ]

let vec_mul_hard_mnems =
  [ "vpmuldq"; "vpmuludq"; "vpmulld"; "vpmulhrsw"; "vpmaddubsw" ]

let fp_round_mnems = [ "vroundps"; "vroundpd"; "vroundss"; "vroundsd" ]

let fp_slow_mnems =
  [ "vdivps"; "vdivpd"; "vdivss"; "vdivsd"; "vsqrtps"; "vsqrtpd"; "vsqrtss";
    "vsqrtsd"; "vrsqrtps"; "vrsqrtss"; "vrcpps"; "vrcpss" ]

let vcvt_mnems =
  [ "vcvtdq2ps"; "vcvtdq2pd"; "vcvtps2dq"; "vcvtpd2dq"; "vcvttps2dq";
    "vcvttpd2dq"; "vcvtps2pd"; "vcvtpd2ps"; "vcvtss2sd"; "vcvtsd2ss";
    "vcvtsi2ss"; "vcvtsi2sd"; "vcvtss2si"; "vcvtsd2si"; "vcvttss2si";
    "vcvttsd2si" ]

let aes_mnems =
  [ "aesenc"; "aesenclast"; "aesdec"; "aesdeclast"; "aesimc";
    "aeskeygenassist" ]

let blend_mnems =
  [ "vblendps"; "vblendpd"; "vpblendw"; "vpblendd"; "vblendvps"; "vblendvpd";
    "vpblendvb" ]

let fma_mnems =
  let ops = [ "fmadd"; "fmsub"; "fnmadd"; "fnmsub" ] in
  let orders = [ "132"; "213"; "231" ] in
  let types = [ "ps"; "pd"; "ss"; "sd" ] in
  List.concat_map
    (fun op ->
       List.concat_map
         (fun ord -> List.map (fun ty -> "v" ^ op ^ ord ^ ty) types)
         orders)
    ops

(* ------------------------------------------------------------------ *)
(* Bucket specifications (targets mirror the paper's funnel)           *)
(* ------------------------------------------------------------------ *)

let repeat n x = List.init n (fun _ -> x)

let bucket_specs () : bucket_spec list =
  let single b = plain (Single b) in
  let alu_rr_pool =
    alu2_forms alu2_mnems (single Alu)
    @ alu1_forms alu1_mnems (single Alu)
    @ product2
        (fun m w ->
           [ (m, [ gpr w; imm 8 ], single Alu);
             (m, [ gpr w; gpr ~access:Read 8 ], single Alu) ])
        shift_mnems scalar_widths
    @ List.map (fun cc -> ("set" ^ cc, [ gpr ~access:Write 8 ], single Alu)) setcc_ccs
    @ [ ("movzx", [ gpr ~access:Write 32; gpr ~access:Read 8 ], single Alu);
        ("movzx", [ gpr ~access:Write 32; gpr ~access:Read 16 ], single Alu);
        ("movzx", [ gpr ~access:Write 64; gpr ~access:Read 8 ], single Alu);
        ("movzx", [ gpr ~access:Write 64; gpr ~access:Read 16 ], single Alu);
        ("movsx", [ gpr ~access:Write 32; gpr ~access:Read 8 ], single Alu);
        ("movsx", [ gpr ~access:Write 32; gpr ~access:Read 16 ], single Alu);
        ("movsxd", [ gpr ~access:Write 64; gpr ~access:Read 32 ], single Alu);
        ("lea", [ gpr ~access:Write 32; mem 32 ], single Alu);
        ("lea", [ gpr ~access:Write 64; mem 64 ], single Alu);
        ("mov", [ gpr ~access:Write 16; gpr ~access:Read 16 ], single Alu);
        ("lzcnt", [ gpr ~access:Write 32; gpr ~access:Read 32 ], single Alu);
        ("tzcnt", [ gpr ~access:Write 32; gpr ~access:Read 32 ], single Alu);
        ("popcnt", [ gpr ~access:Write 32; gpr ~access:Read 32 ], single Alu) ]
    @ product2
        (fun m w ->
           [ (m, [ gpr w; gpr ~access:Read w ], single Alu);
             (m, [ gpr w; imm 8 ], single Alu) ])
        [ "bt"; "bts"; "btr"; "btc" ] scalar_widths
    @ List.map (fun w -> ("mov", [ gpr ~access:Write w; imm (min w 32) ], single Alu))
        scalar_widths
  in
  let high8_pool =
    List.concat_map
      (fun m ->
         [ (m, [ gpr_high (); gpr_high ~access:Read () ], quirky (Single Alu) High8);
           (m, [ gpr_high (); gpr ~access:Read 8 ], quirky (Single Alu) High8);
           (m, [ gpr 8; gpr_high ~access:Read () ], quirky (Single Alu) High8);
           (m, [ gpr_high (); imm 8 ], quirky (Single Alu) High8);
           (m, [ gpr_high (); mem 8 ], quirky (With_load (Alu, 1)) High8);
           (m, [ mem ~access:Read_write 8; gpr_high ~access:Read () ],
            quirky (Rmw (Alu, true)) High8) ])
      alu2_mnems
    @ List.map
        (fun m -> (m, [ gpr_high () ], quirky (Single Alu) High8))
        (alu1_mnems @ shift_mnems)
    (* setcc, shifts by cl/imm, exchanges and extensions over high bytes. *)
    @ List.map
        (fun cc -> ("set" ^ cc, [ gpr_high ~access:Write () ], quirky (Single Alu) High8))
        setcc_ccs
    @ List.concat_map
        (fun m ->
           [ (m, [ gpr_high (); imm 8 ], quirky (Single Alu) High8);
             (m, [ gpr_high (); gpr ~access:Read 8 ], quirky (Single Alu) High8) ])
        shift_mnems
    @ [ ("xchg", [ gpr_high (); gpr 8 ], quirky (Multi [ Alu; Alu ]) High8);
        ("xchg", [ gpr_high (); gpr_high () ], quirky (Multi [ Alu; Alu ]) High8);
        ("movzx", [ gpr ~access:Write 32; gpr_high ~access:Read () ],
         quirky (Single Alu) High8);
        ("movzx", [ gpr ~access:Write 64; gpr_high ~access:Read () ],
         quirky (Single Alu) High8);
        ("movsx", [ gpr ~access:Write 32; gpr_high ~access:Read () ],
         quirky (Single Alu) High8);
        ("movsx", [ gpr ~access:Write 64; gpr_high ~access:Read () ],
         quirky (Single Alu) High8);
        ("mov", [ gpr_high ~access:Write (); mem 8 ],
         quirky (Single Alu) High8);
        ("mov", [ mem ~access:Write 8; gpr_high ~access:Read () ],
         quirky (Multi [ Store; Alu ]) High8) ]
  in
  let fp_slow_pool =
    let k = quirky (Single Fp_round) Div_slow in
    let k_load = quirky (With_load (Fp_round, 1)) Div_slow in
    let k_ymm = quirky (Ymm_single Fp_round) Div_slow in
    let k_ymm_load = quirky (Ymm_with_load Fp_round) Div_slow in
    List.concat_map
      (fun m ->
         [ (m, [ xmm ~access:Write (); xmm (); xmm () ], k);
           (m, [ xmm ~access:Write (); xmm (); mem 128 ], k_load);
           (m, [ ymm ~access:Write (); ymm (); ymm () ], k_ymm);
           (m, [ ymm ~access:Write (); ymm (); mem 256 ], k_ymm_load) ])
      fp_slow_mnems
  in
  (* Keep the register and memory cmov forms over the same mnemonics so the
     stage-2 exclusion-by-mnemonic covers both. *)
  let cmov_mnems =
    List.filteri (fun i _ -> i < 8) (List.map (fun cc -> "cmov" ^ cc) setcc_ccs)
  in
  let cmov_rr_pool =
    product
      (fun m w -> (m, [ gpr w; gpr ~access:Read w ], quirky (Single Alu) Pair_unstable))
      cmov_mnems scalar_widths
  in
  let cmov_rm_pool =
    product
      (fun m w -> (m, [ gpr w; mem w ], quirky (With_load (Alu, 1)) Pair_unstable))
      cmov_mnems scalar_widths
  in
  let vcvt_rr_pool =
    vx2 vcvt_mnems (quirky (Single Fp_mul_cmp) Pair_unstable)
    @ sse2op (drop_v vcvt_mnems) (quirky (Single Fp_mul_cmp) Pair_unstable)
  in
  let vcvt_rm_pool =
    List.map
      (fun m -> (m, [ xmm ~access:Write (); mem 128 ], quirky (With_load (Fp_mul_cmp, 1)) Pair_unstable))
      vcvt_mnems
  in
  let aes_rr_pool = vx3 aes_mnems (quirky (Single Fp_mul_cmp) Pair_unstable) in
  let aes_rm_pool = vx3_mem aes_mnems (quirky (With_load (Fp_mul_cmp, 1)) Pair_unstable) in
  let mulpd_rr_pool = vx3 [ "vmulpd"; "vmulsd" ] (quirky (Single Fp_mul_cmp) Pair_unstable) in
  let mulpd_rm_pool =
    vx3_mem [ "vmulpd"; "vmulsd" ] (quirky (With_load (Fp_mul_cmp, 1)) Pair_unstable)
  in
  let blend_rr_pool = vx3_imm blend_mnems (quirky (Single Shuffle) Pair_unstable) in
  let blend_rm_pool = vx3_mem blend_mnems (quirky (With_load (Shuffle, 1)) Pair_unstable) in
  let fma_rr_pool =
    List.map
      (fun m ->
         (m, [ xmm ~access:Read_write (); xmm (); xmm () ],
          quirky (Single Fp_mul_cmp) Fma_lines))
      fma_mnems
  in
  let fma_multi_pool =
    List.concat_map
      (fun m ->
         [ (m, [ xmm ~access:Read_write (); xmm (); mem 128 ],
            quirky (With_load (Fp_mul_cmp, 1)) Fma_lines);
           (m, [ ymm ~access:Read_write (); ymm (); ymm () ], quirky (Ymm_single Fp_mul_cmp) Fma_lines);
           (m, [ ymm ~access:Read_write (); ymm (); mem 256 ],
            quirky (Ymm_with_load Fp_mul_cmp) Fma_lines) ])
      fma_mnems
  in
  let imul_pool =
    List.map (fun w -> ("imul", [ gpr w; gpr ~access:Read w ], quirky (Single Scalar_mul) Mul_anomaly))
      scalar_widths
    @ List.map
        (fun w ->
           ("imul", [ gpr ~access:Write w; gpr ~access:Read w; imm (min w 32) ],
            quirky (Single Scalar_mul) Mul_anomaly))
        scalar_widths
  in
  let imul_mem_pool =
    List.map (fun w -> ("imul", [ gpr w; mem w ], quirky (With_load (Scalar_mul, 1)) Mul_anomaly))
      scalar_widths
    @ List.map
        (fun w ->
           ("imul", [ gpr ~access:Write w; mem w; imm (min w 32) ],
            quirky (With_load (Scalar_mul, 1)) Mul_anomaly))
        scalar_widths
  in
  let microcoded_pool =
    let ms = Ms_microcode in
    List.concat_map
      (fun m ->
         List.map
           (fun w ->
              (m, [ gpr ~access:Write w; gpr ~access:Read w ],
               quirky (Multi (repeat 8 Alu)) ms))
           scalar_widths
         @ List.map
             (fun w ->
                (m, [ gpr ~access:Write w; mem w ],
                 quirky (Multi (Load :: repeat 8 Alu)) ms))
             scalar_widths)
      [ "bsf"; "bsr" ]
    @ vx3 [ "vphaddw"; "vphaddd"; "vphaddsw"; "vphsubw"; "vphsubd"; "vphsubsw" ]
        (quirky (Multi [ Vec_logic; Vec_int_arith; Shuffle; Shuffle ]) ms)
    @ vx3_mem [ "vphaddw"; "vphaddd"; "vphaddsw"; "vphsubw"; "vphsubd"; "vphsubsw" ]
        (quirky (Multi [ Load; Vec_logic; Vec_int_arith; Shuffle; Shuffle ]) ms)
    @ vx3_imm [ "vmpsadbw"; "vdpps"; "vdppd" ]
        (quirky (Multi [ Fp_mul_cmp; Fp_add; Shuffle; Shuffle ]) ms)
    @ vx3_imm [ "vpcmpestri"; "vpcmpestrm"; "vpcmpistri"; "vpcmpistrm" ]
        (quirky (Multi [ Alu; Alu; Fp_mul_cmp; Shuffle; Shuffle; Vec_logic ]) ms)
    @ List.map
        (fun m ->
           (m, [ xmm ~access:Write (); mem 128; xmm () ],
            quirky (Multi [ Load; Load; Shuffle; Shuffle; Alu; Alu ]) ms))
        [ "vgatherdps"; "vgatherqps"; "vgatherdpd"; "vgatherqpd";
          "vpgatherdd"; "vpgatherqd"; "vpgatherdq"; "vpgatherqq" ]
    @ vx3_imm [ "pclmulqdq"; "vpclmulqdq" ]
        (quirky (Multi [ Vec_mul_hard; Vec_mul_hard; Shuffle; Shuffle ]) ms)
    @ List.map
        (fun m -> (m, [], quirky (Multi (repeat 4 Vec_logic)) ms))
        [ "vzeroall"; "vzeroupper"; "emms"; "fninit" ]
    @ List.concat_map
        (fun m ->
           List.map
             (fun w ->
                (m, [ gpr ~access:Write w; gpr ~access:Read w ],
                 quirky (Multi (Load :: repeat 6 Alu)) ms))
             scalar_widths)
        [ "pdep"; "pext" ]
  in
  let unstable_tp_pool =
    let mnems = [ "vpsllvd"; "vpsllvq"; "vpsrlvd"; "vpsrlvq"; "vpsravd" ] in
    vx3 mnems (quirky (Multi [ Vec_shift_imm; Vec_logic ]) Tp_unstable)
    @ vy3 mnems
        (quirky (Multi [ Vec_shift_imm; Vec_shift_imm; Vec_logic; Vec_logic ]) Tp_unstable)
    @ vx3_mem mnems (quirky (Multi [ Load; Vec_shift_imm; Vec_logic ]) Tp_unstable)
  in
  let vec_class_mnems =
    [ (vec_logic3_mnems, Vec_logic); (vec_int_mnems, Vec_int_arith);
      (fp_mul_cmp_mnems, Fp_mul_cmp); (shuffle_mnems, Shuffle);
      (vec_sat_mnems, Vec_sat); (fp_add_mnems, Fp_add);
      (vec_shift_mnems, Vec_shift_imm) ]
  in
  let ymm_vec_pool =
    List.concat_map (fun (mnems, b) -> vy3 mnems (plain (Ymm_single b))) vec_class_mnems
    @ List.map
        (fun m ->
           (m, [ ymm ~access:Write (); ymm (); imm 8 ], plain (Ymm_single Fp_round)))
        fp_round_mnems
  in
  let vec_load_pool =
    List.concat_map
      (fun (mnems, b) -> vx3_mem mnems (plain (With_load (b, 1))))
      vec_class_mnems
    @ List.map
        (fun m ->
           (m, [ xmm ~access:Write (); mem 128; imm 8 ],
            plain (With_load (Fp_round, 1))))
        fp_round_mnems
  in
  let ymm_vec_load_pool =
    List.concat_map
      (fun (mnems, b) -> vy3_mem mnems (plain (Ymm_with_load b)))
      vec_class_mnems
    @ List.map
        (fun m ->
           (m, [ ymm ~access:Write (); mem 256; imm 8 ],
            plain (Ymm_with_load Fp_round)))
        fp_round_mnems
  in
  let scalar_load_pool =
    product
      (fun m w -> (m, [ gpr w; mem w ], plain (With_load (Alu, 1))))
      alu2_mnems scalar_widths
    @ product
        (fun m w -> (m, [ gpr w; mem w ], plain (With_load (Alu, 1))))
        [ "bt"; "lzcnt"; "tzcnt"; "popcnt" ] scalar_widths
  in
  let rmw_pool =
    product2
      (fun m w ->
         [ (m, [ mem ~access:Read_write w; gpr ~access:Read w ], plain (Rmw (Alu, w <= 32)));
           (m, [ mem ~access:Read_write w; imm (min w 32) ], plain (Rmw (Alu, w <= 32))) ])
      (List.filter (fun m -> m <> "test" && m <> "cmp") alu2_mnems)
      [ 8; 16; 32; 64 ]
    @ product2
        (fun m w ->
           [ (m, [ mem ~access:Read_write w; imm 8 ], plain (Rmw (Alu, w <= 32)));
             (m, [ mem ~access:Read_write w; gpr ~access:Read 8 ],
              plain (Rmw (Alu, w <= 32))) ])
        shift_mnems [ 8; 16; 32; 64 ]
    @ product
        (fun m w -> (m, [ mem ~access:Read_write w ], plain (Rmw (Alu, w <= 32))))
        alu1_mnems [ 8; 16; 32; 64 ]
  in
  let store_scalar_pool =
    List.map
      (fun w -> ("mov", [ mem ~access:Write w; gpr ~access:Read w ], plain Store_scalar))
      [ 8; 16; 32; 64 ]
  in
  let store_vec_pool =
    List.map
      (fun m -> (m, [ mem ~access:Write 128; xmm () ], plain Store_vec))
      [ "vmovaps"; "vmovapd"; "vmovdqa"; "vmovups"; "vmovupd"; "vmovdqu" ]
  in
  let store_vec_ymm_pool =
    List.map
      (fun m -> (m, [ mem ~access:Write 256; ymm () ], plain Store_vec_ymm))
      [ "vmovaps"; "vmovapd"; "vmovdqa" ]
  in
  let misc_multi_pool =
    List.map
      (fun w -> ("xchg", [ gpr w; gpr w ], plain (Multi [ Alu; Alu ])))
      scalar_widths
    @ product
        (fun m w ->
           (m, [ gpr w; gpr ~access:Read w; imm 8 ], plain (Multi [ Alu; Alu ])))
        [ "shld"; "shrd" ] [ 32; 64 ]
    @ List.map
        (fun m ->
           (m, [ ymm ~access:Read_write (); ymm (); xmm (); imm 8 ],
            plain (Multi [ Shuffle; Shuffle ])))
        [ "vinsertf128"; "vinserti128"; "vperm2f128"; "vperm2i128" ]
    @ List.map
        (fun m ->
           (m, [ xmm ~access:Write (); ymm (); imm 8 ], plain (Multi [ Shuffle; Shuffle ])))
        [ "vextractf128"; "vextracti128" ]
    @ [ ("movbe", [ gpr ~access:Write 32; mem 32 ], plain (Multi [ Load; Alu ]));
        ("movbe", [ gpr ~access:Write 64; mem 64 ], plain (Multi [ Load; Alu ]));
        ("movbe", [ mem ~access:Write 32; gpr ~access:Read 32 ], plain (Multi [ Alu; Store ]));
        ("movbe", [ mem ~access:Write 64; gpr ~access:Read 64 ], plain (Multi [ Alu; Store ]));
        ("vmaskmovps", [ xmm ~access:Write (); xmm (); mem 128 ], plain (Multi [ Load; Shuffle ]));
        ("vmaskmovpd", [ xmm ~access:Write (); xmm (); mem 128 ], plain (Multi [ Load; Shuffle ])) ]
    @ List.map
        (fun m ->
           (m, [ gpr ~access:Write 32; xmm (); imm 8 ], plain (Multi [ Shuffle; Alu ])))
        [ "vpextrb"; "vpextrw"; "vpextrd"; "vpextrq" ]
    @ List.map
        (fun m ->
           (m, [ xmm ~access:Write (); xmm (); gpr ~access:Read 32; imm 8 ],
            plain (Multi [ Alu; Shuffle ])))
        [ "vpinsrb"; "vpinsrw"; "vpinsrd"; "vpinsrq" ]
  in
  [ (* --- §4.1.2: excluded when benchmarked individually (657 total) --- *)
    { bname = "excluded/zero-uop"; target = 16;
      pool =
        [ ("nop", [], plain Nullary);
          ("fnop", [], plain Nullary);
          ("nop", [ gpr ~access:Read 16 ], plain Nullary);
          ("nop", [ gpr ~access:Read 32 ], plain Nullary);
          ("mov", [ gpr ~access:Write 32; gpr ~access:Read 32 ], plain Nullary);
          ("mov", [ gpr ~access:Write 64; gpr ~access:Read 64 ], plain Nullary) ] };
    { bname = "excluded/fp-slow"; target = 240; pool = fp_slow_pool };
    { bname = "excluded/mov64-imm"; target = 1;
      pool = [ ("mov", [ gpr ~access:Write 64; imm 64 ],
                quirky (Single Alu) Imm64_unreliable) ] };
    { bname = "excluded/high-byte"; target = 400; pool = high8_pool };
    (* --- §4.2: excluded in pairing experiments (436 total) --- *)
    { bname = "unstable-pair/cmov-rr"; target = 24; pool = cmov_rr_pool };
    { bname = "unstable-pair/cmov-rm"; target = 72; pool = cmov_rm_pool };
    { bname = "unstable-pair/vcvt-rr"; target = 24; pool = vcvt_rr_pool };
    { bname = "unstable-pair/vcvt-rm"; target = 56; pool = vcvt_rm_pool };
    { bname = "unstable-pair/aes-rr"; target = 8; pool = aes_rr_pool };
    { bname = "unstable-pair/aes-rm"; target = 16; pool = aes_rm_pool };
    { bname = "unstable-pair/mulpd-rr"; target = 8; pool = mulpd_rr_pool };
    { bname = "unstable-pair/mulpd-rm"; target = 12; pool = mulpd_rm_pool };
    { bname = "unstable-pair/blend-rr"; target = 16; pool = blend_rr_pool };
    { bname = "unstable-pair/blend-rm"; target = 8; pool = blend_rm_pool };
    { bname = "unstable-pair/fma-rr"; target = 48; pool = fma_rr_pool };
    { bname = "unstable-pair/fma-multi"; target = 144; pool = fma_multi_pool };
    (* --- Table 1: blocking-instruction classes (563 total) --- *)
    { bname = "blocking/alu"; target = 234; pool = alu_rr_pool };
    { bname = "blocking/vec-logic"; target = 21;
      pool =
        vx3 vec_logic3_mnems (plain (Single Vec_logic))
        @ vx2 vec_move_mnems (plain (Single Vec_logic))
        @ sse2op (drop_v vec_logic3_mnems) (plain (Single Vec_logic))
        @ sse2op (drop_v vec_move_mnems) (plain (Single Vec_logic)) };
    { bname = "blocking/vec-int"; target = 30;
      pool =
        vx3 vec_int_mnems (plain (Single Vec_int_arith))
        @ sse2op (drop_v vec_int_mnems) (plain (Single Vec_int_arith)) };
    { bname = "blocking/fp-mul-cmp"; target = 143;
      pool =
        vx3 fp_mul_cmp_mnems (plain (Single Fp_mul_cmp))
        @ sse2op (drop_v fp_mul_cmp_mnems) (plain (Single Fp_mul_cmp))
        @ sse2op_imm [ "cmpps"; "cmppd"; "cmpss"; "cmpsd" ]
            (plain (Single Fp_mul_cmp))
        @ sse2op
            [ "pmullw"; "pmulhw"; "pmulhuw"; "pmaddwd"; "pmulhrsw" ]
            (plain (Single Fp_mul_cmp)) };
    { bname = "blocking/shuffle"; target = 50;
      pool =
        vx2 [ "vbroadcastss" ] (plain (Single Shuffle))
        @ vx3 shuffle_mnems (plain (Single Shuffle))
        @ sse2op (drop_v shuffle_mnems) (plain (Single Shuffle)) };
    { bname = "blocking/vec-sat"; target = 17;
      pool =
        vx3 vec_sat_mnems (plain (Single Vec_sat))
        @ sse2op (drop_v vec_sat_mnems) (plain (Single Vec_sat)) };
    { bname = "blocking/fp-add"; target = 10;
      pool =
        vx3 fp_add_mnems (plain (Single Fp_add))
        @ sse2op (drop_v fp_add_mnems) (plain (Single Fp_add)) };
    { bname = "blocking/load"; target = 6;
      pool =
        [ ("mov", [ gpr ~access:Write 32; mem 32 ], plain (Single Load));
          ("mov", [ gpr ~access:Write 64; mem 64 ], plain (Single Load));
          ("movzx", [ gpr ~access:Write 32; mem 8 ], plain (Single Load));
          ("movzx", [ gpr ~access:Write 32; mem 16 ], plain (Single Load));
          ("movsx", [ gpr ~access:Write 64; mem 32 ], plain (Single Load));
          ("movsxd", [ gpr ~access:Write 64; mem 32 ], plain (Single Load)) ] };
    { bname = "blocking/vec-shift"; target = 27;
      pool =
        vx3 vec_shift_mnems (plain (Single Vec_shift_imm))
        @ List.map
            (fun m -> (m, [ xmm ~access:Write (); xmm (); imm 8 ], plain (Single Vec_shift_imm)))
            (vec_shift_mnems @ [ "vpslldq"; "vpsrldq" ]) };
    { bname = "blocking/vec-mul-hard"; target = 10;
      pool = vx3 vec_mul_hard_mnems (quirky (Single Vec_mul_hard) Vec_mul_slow) };
    { bname = "blocking/scalar-mul"; target = 9; pool = imul_pool };
    { bname = "blocking/fp-round"; target = 4;
      pool =
        List.map
          (fun m -> (m, [ xmm ~access:Write (); xmm (); imm 8 ], plain (Single Fp_round)))
          fp_round_mnems };
    { bname = "blocking/vec-to-gpr"; target = 2;
      pool =
        [ ("vmovd", [ xmm ~access:Write (); gpr ~access:Read 32 ],
           quirky (Single Vec_to_gpr) Gpr_cross);
          ("vmovq", [ xmm ~access:Write (); gpr ~access:Read 64 ],
           quirky (Single Vec_to_gpr) Gpr_cross) ] };
    (* --- §4.3: multi-µop schemes excluded with problematic mnemonics --- *)
    { bname = "excluded-mnemonic/imul-mem"; target = 12; pool = imul_mem_pool };
    { bname = "excluded-mnemonic/vec-mul-hard-mem"; target = 25;
      pool = vx3_mem vec_mul_hard_mnems (quirky (With_load (Vec_mul_hard, 1)) Vec_mul_slow) };
    { bname = "excluded-mnemonic/vec-to-gpr-multi"; target = 10;
      pool =
        [ ("vmovd", [ gpr ~access:Write 32; xmm () ],
           quirky (Multi [ Vec_to_gpr; Alu ]) Gpr_cross);
          ("vmovq", [ gpr ~access:Write 64; xmm () ],
           quirky (Multi [ Vec_to_gpr; Alu ]) Gpr_cross);
          ("vmovd", [ mem ~access:Write 32; xmm () ],
           quirky (Multi [ Vec_to_gpr; Store ]) Gpr_cross);
          ("vmovq", [ mem ~access:Write 64; xmm () ],
           quirky (Multi [ Vec_to_gpr; Store ]) Gpr_cross) ] };
    (* --- §4.4: microcoded and unstable schemes --- *)
    { bname = "microcoded"; target = 146; pool = microcoded_pool };
    { bname = "unstable-tp"; target = 119; pool = unstable_tp_pool };
    (* --- §4.4: regular decomposition patterns (731 total) --- *)
    { bname = "regular/ymm"; target = 172; pool = ymm_vec_pool };
    { bname = "regular/vec-load"; target = 167; pool = vec_load_pool };
    { bname = "regular/ymm-load"; target = 120; pool = ymm_vec_load_pool };
    { bname = "regular/scalar-load"; target = 150; pool = scalar_load_pool };
    { bname = "regular/rmw"; target = 122; pool = rmw_pool };
    (* --- remaining multi-µop schemes (281 total) --- *)
    { bname = "store/scalar"; target = 12; pool = store_scalar_pool };
    { bname = "store/vec"; target = 10; pool = store_vec_pool };
    { bname = "store/vec-ymm"; target = 6; pool = store_vec_ymm_pool };
    { bname = "misc-multi"; target = 253; pool = misc_multi_pool } ]

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let fill_bucket ~next_id spec =
  let pool = Array.of_list spec.pool in
  let n = Array.length pool in
  if n = 0 then invalid_arg ("Catalog: empty pool for bucket " ^ spec.bname);
  List.init spec.target (fun i ->
      let mnemonic, operands, klass = pool.(i mod n) in
      let id = next_id () in
      Scheme.make ~id ~mnemonic ~operands ~variant:(i / n) ~klass)

let build specs =
  let counter = ref 0 in
  let next_id () =
    let id = !counter in
    incr counter;
    id
  in
  let buckets =
    List.map (fun spec -> (spec.bname, fill_bucket ~next_id spec)) specs
  in
  let schemes =
    Array.of_list (List.concat_map (fun (_, schemes) -> schemes) buckets)
  in
  let bucket_by_id = Array.make (Array.length schemes) "" in
  List.iter
    (fun (name, members) ->
       List.iter (fun s -> bucket_by_id.(Scheme.id s) <- name) members)
    buckets;
  { schemes; buckets; bucket_by_id }

let zen_plus () = build (bucket_specs ())

let reduced ?(seed = 0) ~per_bucket () =
  let specs =
    List.map
      (fun spec ->
         let pool =
           (* Rotate the pool so different seeds pick different members. *)
           let arr = Array.of_list spec.pool in
           let n = Array.length arr in
           List.init n (fun i -> arr.((i + seed) mod n))
         in
         { spec with target = min spec.target per_bucket; pool })
      (bucket_specs ())
  in
  build specs

let of_list templates =
  build [ { bname = "custom"; target = List.length templates; pool = templates } ]

let size t = Array.length t.schemes
let schemes t = t.schemes

let find t id =
  if id < 0 || id >= Array.length t.schemes then
    invalid_arg ("Catalog.find: bad scheme id " ^ string_of_int id);
  t.schemes.(id)

let bucket_names t = List.map fst t.buckets
let bucket t name = List.assoc name t.buckets
let bucket_of t s = t.bucket_by_id.(Scheme.id s)

let pp_stats ppf t =
  List.iter
    (fun (name, members) ->
       match members with
       | [] -> Format.fprintf ppf "%-32s %5d@." name 0
       | repr :: _ ->
         Format.fprintf ppf "%-32s %5d  e.g. %s@." name (List.length members)
           (Scheme.name repr))
    t.buckets
