(** Operands of x86-64 instruction schemes.

    Instruction schemes (uops.info "instruction forms") abstract over the
    concrete registers and immediate values; an operand therefore only
    records its kind, bit width and access direction.  Memory-operand widths
    drive the macro-op to µop postulate of §4.1.1 of the paper. *)

type kind =
  | Gpr of int           (** general-purpose register of the given width *)
  | Gpr_high             (** legacy high-byte register (AH/BH/CH/DH) *)
  | Vec of int           (** vector register: 128 = XMM, 256 = YMM *)
  | Mem of int           (** memory operand of the given width in bits *)
  | Imm of int           (** immediate of the given width in bits *)

type access = Read | Write | Read_write

type t = { kind : kind; access : access }

val gpr : ?access:access -> int -> t
val gpr_high : ?access:access -> unit -> t
val xmm : ?access:access -> unit -> t
val ymm : ?access:access -> unit -> t
val mem : ?access:access -> int -> t
val imm : int -> t

val is_memory : t -> bool
val memory_width : t -> int option
val is_memory_read : t -> bool
val is_memory_write : t -> bool

val to_string : t -> string
(** uops.info-style rendering, e.g. ["<GPR[32]>"] or ["<MEM[128]>"]. *)

val pp : Format.formatter -> t -> unit
