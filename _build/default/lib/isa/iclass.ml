type base =
  | Alu
  | Vec_logic
  | Vec_int_arith
  | Fp_mul_cmp
  | Shuffle
  | Vec_sat
  | Fp_add
  | Load
  | Vec_shift_imm
  | Vec_mul_hard
  | Scalar_mul
  | Fp_round
  | Vec_to_gpr
  | Store

type structure =
  | Nullary
  | Single of base
  | With_load of base * int
  | Rmw of base * bool
  | Ymm_single of base
  | Ymm_with_load of base
  | Store_scalar
  | Store_vec
  | Store_vec_ymm
  | Multi of base list

type quirk =
  | Div_slow
  | Imm64_unreliable
  | High8
  | Pair_unstable
  | Fma_lines
  | Mul_anomaly
  | Vec_mul_slow
  | Gpr_cross
  | Ms_microcode
  | Tp_unstable

type t = { structure : structure; quirk : quirk option }

let plain structure = { structure; quirk = None }
let quirky structure quirk = { structure; quirk = Some quirk }

let macro_ops = function
  | Nullary -> 1
  | Single _ | With_load _ | Rmw _ -> 1
  | Ymm_single _ | Ymm_with_load _ -> 2
  | Store_scalar | Store_vec -> 1
  | Store_vec_ymm -> 2
  | Multi bases -> List.length bases

let base_to_string = function
  | Alu -> "alu"
  | Vec_logic -> "vec-logic"
  | Vec_int_arith -> "vec-int"
  | Fp_mul_cmp -> "fp-mul-cmp"
  | Shuffle -> "shuffle"
  | Vec_sat -> "vec-sat"
  | Fp_add -> "fp-add"
  | Load -> "load"
  | Vec_shift_imm -> "vec-shift"
  | Vec_mul_hard -> "vec-mul-hard"
  | Scalar_mul -> "scalar-mul"
  | Fp_round -> "fp-round"
  | Vec_to_gpr -> "vec-to-gpr"
  | Store -> "store"

let structure_to_string = function
  | Nullary -> "nullary"
  | Single b -> base_to_string b
  | With_load (b, n) -> Printf.sprintf "%s+%dxload" (base_to_string b) n
  | Rmw (b, narrow) ->
    Printf.sprintf "%s+store%s" (base_to_string b) (if narrow then "+agu" else "")
  | Ymm_single b -> "2x" ^ base_to_string b
  | Ymm_with_load b -> "2x" ^ base_to_string b ^ "+2xload"
  | Store_scalar -> "store-scalar"
  | Store_vec -> "store-vec"
  | Store_vec_ymm -> "store-vec-ymm"
  | Multi bases -> String.concat "+" (List.map base_to_string bases)

let quirk_to_string = function
  | Div_slow -> "div-slow"
  | Imm64_unreliable -> "imm64"
  | High8 -> "high8"
  | Pair_unstable -> "pair-unstable"
  | Fma_lines -> "fma-lines"
  | Mul_anomaly -> "mul-anomaly"
  | Vec_mul_slow -> "vec-mul-slow"
  | Gpr_cross -> "gpr-cross"
  | Ms_microcode -> "microcode"
  | Tp_unstable -> "tp-unstable"

let pp ppf t =
  Format.pp_print_string ppf (structure_to_string t.structure);
  match t.quirk with
  | None -> ()
  | Some q -> Format.fprintf ppf " (%s)" (quirk_to_string q)
