(** Behaviour classes of the simulated Zen+ catalog.

    A scheme's {e structure} says which µops it decomposes into (in terms of
    functional-unit base classes), and its optional {e quirk} marks a
    deviation from the pure port-mapping model that the simulated machine
    reproduces (§3.4 and §4.1-4.4 of the paper).  The machine library maps
    base classes to concrete port sets; keeping the symbolic classes here
    lets the catalog stay independent of the port-level ground truth. *)

(** Functional-unit base class of a single µop. *)
type base =
  | Alu            (** scalar ALU, 4 ports *)
  | Vec_logic      (** vector logic, 4 FP ports *)
  | Vec_int_arith  (** vector integer arithmetic, 3 ports *)
  | Fp_mul_cmp     (** FP compare/multiply, 2 ports *)
  | Shuffle        (** vector layouting, 2 ports *)
  | Vec_sat        (** saturating vector ops, 2 ports *)
  | Fp_add         (** FP addition, 2 ports *)
  | Load           (** memory load, 2 AGU ports *)
  | Vec_shift_imm  (** vector shift, 1 port *)
  | Vec_mul_hard   (** elaborate vector multiply, 1 port *)
  | Scalar_mul     (** scalar integer multiply, 1 port *)
  | Fp_round       (** vector rounding / FP divider pipe, 1 port *)
  | Vec_to_gpr     (** vector-to-GPR transfer, 1 port *)
  | Store          (** store-data/retire µop, 1 port *)

(** µop structure of a scheme. *)
type structure =
  | Nullary                    (** retires without µops: nop, eliminated mov *)
  | Single of base
  | With_load of base * int    (** register form plus [n] load µops *)
  | Rmw of base * bool         (** read-modify-write; [true] adds the extra
                                   AGU µop of narrow (≤32-bit) operations *)
  | Ymm_single of base         (** double-pumped 256-bit form: 2 × base *)
  | Ymm_with_load of base      (** 2 × base + 2 load µops *)
  | Store_scalar               (** store µop + ALU data µop (the §4.1 mov) *)
  | Store_vec                  (** store µop + FP-pipe data µop *)
  | Store_vec_ymm              (** double-pumped vector store *)
  | Multi of base list         (** any other decomposition, incl. microcode *)

(** Deviations from the port-mapping model. *)
type quirk =
  | Div_slow          (** non-pipelined divider (§4.1.2) *)
  | Imm64_unreliable  (** 64-bit immediate mov (§4.1.2) *)
  | High8             (** hardwired AH/DH operands (§4.1.2) *)
  | Pair_unstable     (** unstable when benchmarked with others (§4.2) *)
  | Fma_lines         (** occupies the data lines of a third port (§4.2) *)
  | Mul_anomaly       (** the §4.3 imul 1.5-cycle effect *)
  | Vec_mul_slow      (** vpmuldq-style sub-model throughput (§4.3) *)
  | Gpr_cross         (** vmovd-style inconsistent conflicts (§4.3) *)
  | Ms_microcode      (** microcode-sequencer frontend stall (§4.4) *)
  | Tp_unstable       (** unstable throughput in combination (§4.4) *)

type t = { structure : structure; quirk : quirk option }

val plain : structure -> t
val quirky : structure -> quirk -> t

val macro_ops : structure -> int
(** Number of macro-ops the "Retired Uops" counter reports (§4.1.1): memory
    µops are fused into their macro-op; double-pumped 256-bit forms retire
    two macro-ops; microcoded schemes retire one macro-op per µop. *)

val base_to_string : base -> string
val structure_to_string : structure -> string
val quirk_to_string : quirk -> string
val pp : Format.formatter -> t -> unit
