type t = {
  id : int;
  mnemonic : string;
  operands : Operand.t list;
  variant : int;
  klass : Iclass.t;
}

let make ~id ~mnemonic ~operands ~variant ~klass =
  { id; mnemonic; operands; variant; klass }

let id t = t.id
let mnemonic t = t.mnemonic
let operands t = t.operands
let klass t = t.klass
let quirk t = t.klass.Iclass.quirk

let name t =
  let ops = List.map Operand.to_string t.operands in
  let head =
    if ops = [] then t.mnemonic
    else t.mnemonic ^ " " ^ String.concat ", " ops
  in
  if t.variant = 0 then head else Printf.sprintf "%s {v%d}" head t.variant

let memory_reads t =
  List.filter_map
    (fun op -> if Operand.is_memory_read op then Operand.memory_width op else None)
    t.operands

let memory_writes t =
  List.filter_map
    (fun op -> if Operand.is_memory_write op then Operand.memory_width op else None)
    t.operands

let mov_mnemonics = [ "mov"; "movzx"; "movsx"; "movsxd"; "vmovdqa"; "vmovdqu";
                      "vmovaps"; "vmovapd"; "vmovups"; "vmovupd"; "vmovq" ]

let is_loading_mov t =
  List.mem t.mnemonic mov_mnemonics
  && memory_reads t <> []
  && memory_writes t = []

let is_lea t = t.mnemonic = "lea"

let compare a b = Stdlib.compare a.id b.id
let equal a b = a.id = b.id
let pp ppf t = Format.pp_print_string ppf (name t)
