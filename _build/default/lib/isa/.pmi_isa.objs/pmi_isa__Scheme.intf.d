lib/isa/scheme.mli: Format Iclass Operand
