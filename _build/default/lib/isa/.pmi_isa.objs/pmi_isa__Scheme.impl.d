lib/isa/scheme.ml: Format Iclass List Operand Printf Stdlib String
