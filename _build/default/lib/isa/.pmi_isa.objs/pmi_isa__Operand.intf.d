lib/isa/operand.mli: Format
