lib/isa/iclass.ml: Format List Printf String
