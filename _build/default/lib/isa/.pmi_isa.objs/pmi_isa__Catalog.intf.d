lib/isa/catalog.mli: Format Iclass Operand Scheme
