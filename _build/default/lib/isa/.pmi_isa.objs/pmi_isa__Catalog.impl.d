lib/isa/catalog.ml: Array Format Iclass List Operand Scheme String
