(** The simulated Zen+ instruction-scheme catalog.

    The case study of the paper starts from 2,980 x86-64 instruction schemes
    taken from uops.info (control flow, system instructions and
    input-dependent instructions already removed).  This module generates a
    catalog with the same size and internal structure: every scheme belongs
    to a named {e bucket} whose size mirrors the corresponding population of
    the paper's funnel (§4.1-§4.4, Table 1).

    Buckets are filled from pools of realistic mnemonic/operand combinations;
    when a pool is smaller than the bucket's historical population, the pool
    is cycled with encoding-variant tags (uops.info likewise distinguishes
    many encodings of one mnemonic).  Bucket sizes are therefore exact by
    construction and asserted in the test suite. *)

type t

val zen_plus : unit -> t
(** The full 2,980-scheme catalog. *)

val reduced : ?seed:int -> per_bucket:int -> unit -> t
(** A small catalog with at most [per_bucket] schemes per bucket, preserving
    the bucket structure.  Used by tests and fast examples.  The [seed]
    selects which pool members survive. *)

val of_list : (string * Operand.t list * Iclass.t) list -> t
(** An ad-hoc catalog for unit tests; bucket name is ["custom"]. *)

val size : t -> int
val schemes : t -> Scheme.t array
val find : t -> int -> Scheme.t

val bucket_names : t -> string list
val bucket : t -> string -> Scheme.t list
(** @raise Not_found for an unknown bucket name. *)

val bucket_of : t -> Scheme.t -> string

val pp_stats : Format.formatter -> t -> unit
(** One line per bucket: name, size, representative scheme. *)
