type kind =
  | Gpr of int
  | Gpr_high
  | Vec of int
  | Mem of int
  | Imm of int

type access = Read | Write | Read_write

type t = { kind : kind; access : access }

let gpr ?(access = Read_write) width = { kind = Gpr width; access }
let gpr_high ?(access = Read_write) () = { kind = Gpr_high; access }
let xmm ?(access = Read) () = { kind = Vec 128; access }
let ymm ?(access = Read) () = { kind = Vec 256; access }
let mem ?(access = Read) width = { kind = Mem width; access }
let imm width = { kind = Imm width; access = Read }

let is_memory t = match t.kind with Mem _ -> true | Gpr _ | Gpr_high | Vec _ | Imm _ -> false

let memory_width t =
  match t.kind with
  | Mem w -> Some w
  | Gpr _ | Gpr_high | Vec _ | Imm _ -> None

let is_memory_read t =
  is_memory t && (match t.access with Read | Read_write -> true | Write -> false)

let is_memory_write t =
  is_memory t && (match t.access with Write | Read_write -> true | Read -> false)

let to_string t =
  match t.kind with
  | Gpr w -> Printf.sprintf "<GPR[%d]>" w
  | Gpr_high -> "<GPR8h>"
  | Vec 128 -> "<XMM>"
  | Vec 256 -> "<YMM>"
  | Vec w -> Printf.sprintf "<VEC[%d]>" w
  | Mem w -> Printf.sprintf "<MEM[%d]>" w
  | Imm w -> Printf.sprintf "<IMM[%d]>" w

let pp ppf t = Format.pp_print_string ppf (to_string t)
