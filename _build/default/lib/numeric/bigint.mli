(** Arbitrary-precision signed integers.

    The container is sealed (no [opam install]), so the repository vendors its
    own bignum implementation instead of depending on zarith.  Numbers are
    stored in sign-magnitude form with little-endian base-2{^15} digits, which
    keeps all intermediate products comfortably inside OCaml's native [int]
    range.  The exact-arithmetic layers ({!Rat}, {!Simplex}) sit on top of
    this module, so simplex pivoting can never overflow. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int n] is [n] as a native integer.
    @raise Failure if [n] does not fit into an OCaml [int]. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on any other input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero and
    [r] carrying the sign of [a] (like OCaml's [(/)] and [(mod)]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative, [gcd 0 0 = 0]. *)

val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_one : t -> bool

val pp : Format.formatter -> t -> unit
