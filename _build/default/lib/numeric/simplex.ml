type relation = Le | Ge | Eq

type linear_constraint = {
  coeffs : Rat.t array;
  relation : relation;
  rhs : Rat.t;
}

type objective =
  | Minimize of Rat.t array
  | Maximize of Rat.t array

type problem = {
  num_vars : int;
  constraints : linear_constraint list;
  objective : objective;
}

type solution = {
  objective_value : Rat.t;
  assignment : Rat.t array;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

(* Dense tableau:
     [rows].(r).(c) for c < total_cols are constraint coefficients,
     [rows].(r).(total_cols) is the right-hand side.
     [cost].(c) holds reduced costs, [cost].(total_cols) the negated
     objective value of the current basis.
     [basis].(r) is the variable index basic in row [r]. *)
type tableau = {
  rows : Rat.t array array;
  cost : Rat.t array;
  basis : int array;
  total_cols : int;
}

let pivot tab ~row ~col =
  let { rows; cost; basis; total_cols } = tab in
  let piv = rows.(row).(col) in
  assert (Rat.sign piv > 0);
  let inv_piv = Rat.inv piv in
  for c = 0 to total_cols do
    rows.(row).(c) <- Rat.mul rows.(row).(c) inv_piv
  done;
  let eliminate target =
    let factor = target.(col) in
    if not (Rat.is_zero factor) then
      for c = 0 to total_cols do
        target.(c) <- Rat.sub target.(c) (Rat.mul factor rows.(row).(c))
      done
  in
  Array.iteri (fun r target -> if r <> row then eliminate target) rows;
  eliminate cost;
  basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced cost;
   leaving = lowest-index basic variable among minimum-ratio rows. *)
let rec iterate tab ~allowed =
  let { rows; cost; total_cols; basis } = tab in
  let entering =
    let rec find c =
      if c >= total_cols then None
      else if allowed c && Rat.sign cost.(c) < 0 then Some c
      else find (c + 1)
    in
    find 0
  in
  match entering with
  | None -> `Optimal
  | Some col ->
    let leaving = ref None in
    for r = 0 to Array.length rows - 1 do
      let a = rows.(r).(col) in
      if Rat.sign a > 0 then begin
        let ratio = Rat.div rows.(r).(total_cols) a in
        match !leaving with
        | None -> leaving := Some (r, ratio)
        | Some (r', best) ->
          let c = Rat.compare ratio best in
          if c < 0 || (c = 0 && basis.(r) < basis.(r')) then
            leaving := Some (r, ratio)
      end
    done;
    (match !leaving with
     | None -> `Unbounded
     | Some (row, _) ->
       pivot tab ~row ~col;
       iterate tab ~allowed)

let solve problem =
  let n = problem.num_vars in
  let constraints = Array.of_list problem.constraints in
  Array.iter
    (fun c ->
       if Array.length c.coeffs <> n then
         invalid_arg "Simplex.solve: coefficient arity mismatch")
    constraints;
  let m = Array.length constraints in
  (* Normalise right-hand sides to be non-negative. *)
  let constraints =
    Array.map
      (fun c ->
         if Rat.sign c.rhs < 0 then
           { coeffs = Array.map Rat.neg c.coeffs;
             relation = (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
             rhs = Rat.neg c.rhs }
         else c)
      constraints
  in
  let needs_slack = function Le | Ge -> true | Eq -> false in
  let needs_artificial = function Ge | Eq -> true | Le -> false in
  let num_slack =
    Array.fold_left (fun acc c -> if needs_slack c.relation then acc + 1 else acc) 0 constraints
  in
  let num_art =
    Array.fold_left
      (fun acc c -> if needs_artificial c.relation then acc + 1 else acc)
      0 constraints
  in
  let total_cols = n + num_slack + num_art in
  let rows = Array.init m (fun _ -> Array.make (total_cols + 1) Rat.zero) in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let slack_cursor = ref n in
  let art_cursor = ref (n + num_slack) in
  Array.iteri
    (fun r c ->
       Array.blit (Array.map (fun x -> x) c.coeffs) 0 rows.(r) 0 n;
       rows.(r).(total_cols) <- c.rhs;
       (match c.relation with
        | Le ->
          rows.(r).(!slack_cursor) <- Rat.one;
          basis.(r) <- !slack_cursor;
          incr slack_cursor
        | Ge ->
          rows.(r).(!slack_cursor) <- Rat.neg Rat.one;
          incr slack_cursor;
          rows.(r).(!art_cursor) <- Rat.one;
          basis.(r) <- !art_cursor;
          art_cols := !art_cursor :: !art_cols;
          incr art_cursor
        | Eq ->
          rows.(r).(!art_cursor) <- Rat.one;
          basis.(r) <- !art_cursor;
          art_cols := !art_cursor :: !art_cols;
          incr art_cursor))
    constraints;
  let is_artificial =
    let arts = Array.make (total_cols + 1) false in
    List.iter (fun c -> arts.(c) <- true) !art_cols;
    fun c -> arts.(c)
  in
  (* Phase 1: minimise the sum of artificial variables. *)
  let phase1_outcome =
    if num_art = 0 then `Optimal
    else begin
      let cost = Array.make (total_cols + 1) Rat.zero in
      List.iter (fun c -> cost.(c) <- Rat.one) !art_cols;
      (* Reduce the cost row against the initial (artificial) basis. *)
      Array.iteri
        (fun r b ->
           if is_artificial b then
             for c = 0 to total_cols do
               cost.(c) <- Rat.sub cost.(c) rows.(r).(c)
             done)
        basis;
      let tab = { rows; cost; basis; total_cols } in
      match iterate tab ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
      | `Optimal ->
        let objective_value = Rat.neg cost.(total_cols) in
        if Rat.sign objective_value <> 0 then `Infeasible
        else begin
          (* Drive any artificial variables still basic (at value 0) out of
             the basis when a real pivot column exists; otherwise the row is
             redundant and harmless since the artificial sits at zero and is
             never allowed to re-enter. *)
          Array.iteri
            (fun r b ->
               if is_artificial b then begin
                 let rec find c =
                   if c >= n + num_slack then None
                   else if Rat.sign rows.(r).(c) > 0 then Some c
                   else find (c + 1)
                 in
                 match find 0 with
                 | Some col -> pivot tab ~row:r ~col
                 | None -> ()
               end)
            basis;
          `Optimal
        end
    end
  in
  match phase1_outcome with
  | `Infeasible -> Infeasible
  | `Optimal ->
    (* Phase 2 with the real objective (internally always minimising). *)
    let minimise_coeffs, flip =
      match problem.objective with
      | Minimize c -> (c, false)
      | Maximize c -> (Array.map Rat.neg c, true)
    in
    let cost = Array.make (total_cols + 1) Rat.zero in
    Array.blit (Array.map (fun x -> x) minimise_coeffs) 0 cost 0 n;
    (* Reduce the cost row against the current basis. *)
    Array.iteri
      (fun r b ->
         let cb = if b < n then minimise_coeffs.(b) else Rat.zero in
         if not (Rat.is_zero cb) then
           for c = 0 to total_cols do
             cost.(c) <- Rat.sub cost.(c) (Rat.mul cb rows.(r).(c))
           done)
      basis;
    let tab = { rows; cost; basis; total_cols } in
    (match iterate tab ~allowed:(fun c -> not (is_artificial c)) with
     | `Unbounded -> Unbounded
     | `Optimal ->
       let assignment = Array.make n Rat.zero in
       Array.iteri
         (fun r b -> if b < n then assignment.(b) <- rows.(r).(total_cols))
         basis;
       let value = Rat.neg cost.(total_cols) in
       let objective_value = if flip then Rat.neg value else value in
       Optimal { objective_value; assignment })
