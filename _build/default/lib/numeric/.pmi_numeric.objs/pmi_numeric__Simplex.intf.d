lib/numeric/simplex.mli: Rat
