lib/numeric/simplex.ml: Array List Rat
