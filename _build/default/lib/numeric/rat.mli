(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    numerator/denominator are coprime, so structural equality coincides with
    numeric equality. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val to_float : t -> float
(** Nearest float; exact for the small values used in this project. *)

val to_string : t -> string
(** ["n"] for integers, ["n/d"] otherwise. *)

val pp : Format.formatter -> t -> unit

(** Infix operators, intended for local [open Rat.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
