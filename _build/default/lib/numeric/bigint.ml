(* Sign-magnitude bignums over little-endian base-2^15 digit arrays.
   Invariants: [mag] has no trailing (most-significant) zero digit, and
   [sign = 0] exactly when [mag] is empty.  Base 2^15 keeps every digit
   product below 2^30, so schoolbook multiplication can accumulate a full
   row of partial products plus carries without approaching [max_int]. *)

let base_bits = 15
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let k = top n in
  if k = 0 then zero
  else if k = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 k }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i > 0 then 1 else -1 in
    (* [abs min_int] overflows, so peel digits off the negative value. *)
    let rec digits acc v =
      if v = 0 then List.rev acc
      else digits ((-(v mod base)) :: acc) (v / base)
    in
    let v = if i > 0 then -i else i in
    { sign; mag = Array.of_list (digits [] v) }
  end

let one = of_int 1
let minus_one = of_int (-1)

let is_zero a = a.sign = 0
let sign a = a.sign

(* Magnitude comparison: |a| vs |b|. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign = 0 then 0
  else a.sign * cmp_mag a.mag b.mag

let equal a b = compare a b = 0

let hash a =
  Array.fold_left (fun acc d -> (acc * 31 + d) land max_int) (a.sign + 1) a.mag

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

(* |a| + |b| as a magnitude. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  out.(l) <- !carry;
  out

(* |a| - |b| as a magnitude; requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (ai * b.mag.(j)) + !carry in
        out.(i + j) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = out.(!k) + !carry in
        out.(!k) <- cur land base_mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    normalize (a.sign * b.sign) out
  end

(* Magnitude division by a single digit; returns (quotient, remainder). *)
let divmod_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Long division of magnitudes: |a| / |b| with |b| non-zero.  Uses the
   classical shift-and-subtract algorithm on digits, binary-searching each
   quotient digit; numbers in this code base are small, so simplicity wins
   over Knuth's algorithm D. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 1 then begin
    let q, r = divmod_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end else begin
    let la = Array.length a in
    if cmp_mag a b < 0 then ([||], Array.copy a)
    else begin
      let q = Array.make (la - lb + 1) 0 in
      (* Remainder accumulator, processed from the most significant digit. *)
      let rem = ref [||] in
      let shift_in_digit m d =
        (* m * base + d *)
        let lm = Array.length m in
        if lm = 0 && d = 0 then [||]
        else begin
          let out = Array.make (lm + 1) 0 in
          out.(0) <- d;
          Array.blit m 0 out 1 lm;
          out
        end
      in
      (* mag * small-digit *)
      let mul_digit m d =
        if d = 0 then [||]
        else begin
          let lm = Array.length m in
          let out = Array.make (lm + 1) 0 in
          let carry = ref 0 in
          for i = 0 to lm - 1 do
            let cur = (m.(i) * d) + !carry in
            out.(i) <- cur land base_mask;
            carry := cur lsr base_bits
          done;
          out.(lm) <- !carry;
          let n = if out.(lm) = 0 then lm else lm + 1 in
          Array.sub out 0 n
        end
      in
      for i = la - 1 downto 0 do
        rem := shift_in_digit !rem a.(i);
        (* Largest digit d with b*d <= rem, found by binary search. *)
        let lo = ref 0 and hi = ref (base - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if cmp_mag (mul_digit b mid) !rem <= 0 then lo := mid else hi := mid - 1
        done;
        let d = !lo in
        if d > 0 then rem := sub_mag !rem (mul_digit b d);
        (* Strip leading zeros of rem. *)
        let lr = Array.length !rem in
        let rec top k = if k > 0 && !rem.(k - 1) = 0 then top (k - 1) else k in
        let k = top lr in
        if k < lr then rem := Array.sub !rem 0 k;
        if i <= la - lb then q.(i) <- d
      done;
      (q, !rem)
    end
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_abs a b = if is_zero b then a else gcd_abs b (rem a b)
let gcd a b = gcd_abs (abs a) (abs b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_one a = a.sign = 1 && a.mag = [| 1 |]

let to_int_opt a =
  (* Accumulate in the negative range, which is one wider than the positive. *)
  let rec loop acc i =
    if i < 0 then Some acc
    else if acc < Stdlib.min_int / base then None
    else begin
      let shifted = acc * base in
      if shifted < Stdlib.min_int + a.mag.(i) then None
      else loop (shifted - a.mag.(i)) (i - 1)
    end
  in
  match loop 0 (Array.length a.mag - 1) with
  | None -> None
  | Some neg_v ->
    if a.sign >= 0 then (if neg_v = Stdlib.min_int then None else Some (-neg_v))
    else Some neg_v

let to_int a =
  match to_int_opt a with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks acc m =
      (* Peel base-10000 chunks so each is printable with %04d. *)
      if Array.length m = 0 then acc
      else begin
        let q, r = divmod_digit m 10000 in
        let rec top k = if k > 0 && q.(k - 1) = 0 then top (k - 1) else k in
        let q = Array.sub q 0 (top (Array.length q)) in
        chunks (r :: acc) q
      end
    in
    (match chunks [] a.mag with
     | [] -> assert false
     | first :: rest ->
       if a.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let invalid () = invalid_arg ("Bigint.of_string: " ^ s) in
  let n = String.length s in
  if n = 0 then invalid ();
  let is_neg, start = if s.[0] = '-' then (true, 1) else (false, 0) in
  if start >= n then invalid ();
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | _ -> invalid ()
  done;
  if is_neg then neg !acc else !acc

let pp ppf a = Format.pp_print_string ppf (to_string a)
