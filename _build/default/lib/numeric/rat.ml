type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let of_int i = { num = Bigint.of_int i; den = Bigint.one }
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let num t = t.num
let den t = t.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den, dens > 0. *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let sign a = Bigint.sign a.num

let neg a = { a with num = Bigint.neg a.num }
let abs a = { a with num = Bigint.abs a.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv a =
  if Bigint.is_zero a.num then raise Division_by_zero
  else if Bigint.sign a.num > 0 then { num = a.den; den = a.num }
  else { num = Bigint.neg a.den; den = Bigint.neg a.num }

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_zero a = Bigint.is_zero a.num
let is_integer a = Bigint.is_one a.den

let floor a =
  let q, r = Bigint.divmod a.num a.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil a = Bigint.neg (floor (neg a))

let to_float a =
  (* Values in this project have small numerators/denominators, so a direct
     float division is exact enough for reporting. *)
  float_of_string (Bigint.to_string a.num) /. float_of_string (Bigint.to_string a.den)

let to_string a =
  if is_integer a then Bigint.to_string a.num
  else Bigint.to_string a.num ^ "/" ^ Bigint.to_string a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
