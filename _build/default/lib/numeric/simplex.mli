(** Exact-arithmetic linear programming.

    A dense two-phase primal simplex over {!Rat} with Bland's anti-cycling
    rule.  All decision variables are implicitly non-negative, which matches
    the port-mapping linear program of the paper (constraints A-E in §2.2):
    µop masses, per-port totals, and the makespan are all non-negative.

    The solver is used as an independent oracle: the fast bottleneck-set
    throughput formula in [Pmi_portmap.Throughput] is cross-checked against
    the LP optimum in tests and benchmarks. *)

type relation = Le | Ge | Eq

type linear_constraint = {
  coeffs : Rat.t array;  (** one coefficient per decision variable *)
  relation : relation;
  rhs : Rat.t;
}

type objective =
  | Minimize of Rat.t array
  | Maximize of Rat.t array

type problem = {
  num_vars : int;
  constraints : linear_constraint list;
  objective : objective;
}

type solution = {
  objective_value : Rat.t;
  assignment : Rat.t array;  (** optimal values of the decision variables *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** [solve p] solves [p] exactly.
    @raise Invalid_argument if a constraint's coefficient vector does not
    have [p.num_vars] entries. *)
