(** Deterministic pseudo-random numbers for the baselines.

    Both baselines must be reproducible run-to-run (the whole repository is
    deterministic), so they use an explicit splitmix-style generator instead
    of the global [Random] state. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
