module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Experiment = Pmi_portmap.Experiment
module Harness = Pmi_measure.Harness

type config = {
  kernel_size : int;
  throughput_classes : int;
  r_max : int;
  seed : int;
  measurement_bias : float;
  (** Relative overestimation of cycles by Palmed's own benchmarking
      infrastructure.  The paper cannot run Palmed on its harness and
      observes systematically slow predictions (§4.5: "Palmed's resource
      model usually predicts slower executions than what we measure");
      the bias emulates that infrastructure mismatch. *)
}

let default_config =
  { kernel_size = 8; throughput_classes = 64; r_max = 5; seed = 3;
    measurement_bias = 1.4 }

type resource = {
  name : string;
  representative : Scheme.t;
  kernel_cycles : float;   (** measured tp⁻¹ of the saturating kernel *)
}

type t = {
  config : config;
  resource_list : resource list;
  (* Per scheme id: pressure (in cycles per instance) on each resource,
     index-aligned with [resource_list], plus the self-pressure (the
     instruction's own steady-state CPI). *)
  pressures : (int, float array * float) Hashtbl.t;
}

let own_cycles _config harness experiment =
  Rat.to_float (Harness.cycles harness experiment)

(* Palmed's infrastructure mismatch: every per-instruction quantity it fits
   comes out slower than our harness would measure, by a deterministic
   instruction-dependent factor between zero and the configured maximum
   (loop and decoding overheads depend on the benchmarked kernel). *)
let infrastructure_factor config scheme =
  let unit =
    0.5
    +. Pmi_machine.Noise.jitter ~seed:config.seed
         ~key:(Scheme.id scheme * 0x9E3779B9) ~rep:0 ~amplitude:0.5
  in
  1.0 +. (config.measurement_bias *. unit)

let cpi config harness scheme =
  own_cycles config harness (Experiment.singleton scheme)
  *. infrastructure_factor config scheme

let kernel config resource =
  Experiment.replicate config.kernel_size resource.representative

(* Extra cycles scheme adds on top of the saturating kernel of [resource]. *)
let added_pressure config harness resource scheme =
  let base = Experiment.replicate config.kernel_size resource.representative in
  let combined = Experiment.add scheme base in
  let t_base = own_cycles config harness base in
  let t_comb = own_cycles config harness combined in
  Float.max 0.0 (t_comb -. t_base) *. infrastructure_factor config scheme

let infer ?(config = default_config) harness schemes =
  (* Phase 1: heuristically select core instructions.  A scheme opens a new
     abstract resource when no existing saturating kernel slows it down the
     way its own throughput demands: its bottleneck is not yet modelled. *)
  let resource_list = ref [] in
  let basics =
    List.filter
      (fun s -> Harness.retired_ops harness (Experiment.singleton s) = 1)
      schemes
  in
  let considered = ref 0 in
  List.iter
    (fun s ->
       if !considered < config.throughput_classes then begin
         incr considered;
         let own = cpi config harness s in
         let covered =
           List.exists
             (fun r -> added_pressure config harness r s >= own -. 0.1)
             !resource_list
         in
         if not covered && own > 0.0 then begin
           let resource =
             { name = Printf.sprintf "R%d<%s>" (List.length !resource_list)
                 (Scheme.mnemonic s);
               representative = s;
               kernel_cycles = 0.0 }
           in
           let kernel_cycles =
             own_cycles config harness (kernel config resource)
           in
           resource_list := { resource with kernel_cycles } :: !resource_list
         end
       end)
    basics;
  let resource_list = List.rev !resource_list in
  let resources = Array.of_list resource_list in
  (* Phase 2: fit every instruction's pressures against the kernels. *)
  let pressures = Hashtbl.create (List.length schemes) in
  List.iter
    (fun s ->
       let row =
         Array.map (fun r -> added_pressure config harness r s) resources
       in
       Hashtbl.replace pressures (Scheme.id s) (row, cpi config harness s))
    schemes;
  { config; resource_list; pressures }

let resources t = List.length t.resource_list
let supports t scheme = Hashtbl.mem t.pressures (Scheme.id scheme)

let predict t experiment =
  let n_res = List.length t.resource_list in
  let loads = Array.make n_res 0.0 in
  let self = ref 0.0 in
  Experiment.fold
    (fun s count () ->
       match Hashtbl.find_opt t.pressures (Scheme.id s) with
       | None -> raise Not_found
       | Some (row, own) ->
         Array.iteri
           (fun r p -> loads.(r) <- loads.(r) +. (float_of_int count *. p))
           row;
         (* Conjunctive self resource: an instruction saturates itself. *)
         self := Float.max !self (float_of_int count *. own))
    experiment ();
  let frontend =
    float_of_int (Experiment.length experiment) /. float_of_int t.config.r_max
  in
  let worst = Array.fold_left Float.max (Float.max frontend !self) loads in
  (* Report on the harness's quantisation grid. *)
  Rat.of_ints (int_of_float (Float.round (worst *. 1000.0))) 1000

let pressure t scheme =
  match Hashtbl.find_opt t.pressures (Scheme.id scheme) with
  | None -> raise Not_found
  | Some (row, own) ->
    ("self", own)
    :: List.mapi (fun i r -> (r.name, row.(i))) t.resource_list
