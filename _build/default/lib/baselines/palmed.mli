(** The Palmed baseline (Derumigny et al., CGO 2022), reimplemented for the
    Figure 5 comparison.

    Palmed infers {e conjunctive resource mappings}: every instruction puts
    a non-negative pressure on a set of abstract resources, and the inverse
    throughput of a sequence is the maximum total pressure on any resource.
    Our simplified reconstruction follows its two-phase structure: a core of
    basic instructions is selected heuristically by throughput (one abstract
    resource per core class, plus a frontend resource), and every other
    instruction's pressures are fitted from benchmarks against saturating
    kernels of each resource.  Resources have no direct microarchitectural
    identity, which is exactly the drawback the paper discusses (§5). *)

type config = {
  kernel_size : int;    (** copies of a core instruction per saturating
                            kernel benchmark *)
  throughput_classes : int; (** resolution of the core-selection heuristic *)
  r_max : int;
  seed : int;
  measurement_bias : float;
  (** Relative cycle overestimation of Palmed's own measurement
      infrastructure.  The paper could not port Palmed to its harness and
      observed systematically slow predictions (§4.5); the bias emulates
      that infrastructure mismatch. *)
}

val default_config : config

type t

val infer :
  ?config:config -> Pmi_measure.Harness.t -> Pmi_isa.Scheme.t list -> t
(** Build a resource model for the given schemes, running its own
    benchmarks on the harness. *)

val resources : t -> int
val supports : t -> Pmi_isa.Scheme.t -> bool

val predict : t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t
(** Predicted inverse throughput: the most-loaded resource.
    @raise Not_found if a scheme was not modelled. *)

val pressure : t -> Pmi_isa.Scheme.t -> (string * float) list
(** The instruction's pressure per named resource (reporting). *)
