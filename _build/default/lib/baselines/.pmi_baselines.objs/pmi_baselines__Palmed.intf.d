lib/baselines/palmed.mli: Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap
