lib/baselines/palmed.ml: Array Float Hashtbl List Pmi_isa Pmi_machine Pmi_measure Pmi_numeric Pmi_portmap Printf
