lib/baselines/rng.ml: Array
