lib/baselines/pmevo.ml: Array Float Fun Hashtbl List Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap Rng
