lib/baselines/rng.mli:
