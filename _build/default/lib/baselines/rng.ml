type t = { mutable state : int }

let create ~seed = { state = seed lxor 0x2545F4914F6CDD1D }

let next t =
  (* splitmix-style step on 62 usable bits. *)
  t.state <- (t.state + 0x61C8864680B583EB) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x4be98134a5976fd3 land max_int in
  let z = (z lxor (z lsr 29)) * 0x3bc8203a9c2b4eab land max_int in
  z lxor (z lsr 32)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

let float t = float_of_int (next t land 0xFFFFFFFF) /. 4294967296.0
let bool t = next t land 1 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
