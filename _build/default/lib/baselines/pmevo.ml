module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Throughput = Pmi_portmap.Throughput
module Harness = Pmi_measure.Harness

type config = {
  population : int;
  generations : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;   (* expected mutations per child genome *)
  max_uops : int;
  num_ports : int;
  r_max : int;
  elite : int;
  seed : int;
}

let default_config =
  { population = 48;
    generations = 250;
    tournament = 4;
    crossover_rate = 0.9;
    mutation_rate = 2.5;
    max_uops = 4;
    num_ports = 10;
    r_max = 5;
    elite = 2;
    seed = 7 }

type benchmark = {
  experiment : Experiment.t;
  cycles : Rat.t;
}

let training_set ?(seed = 11) ?(pairs = 600) ?(blocks = 400) harness schemes =
  let rng = Rng.create ~seed in
  let arr = Array.of_list schemes in
  let singletons = List.map Experiment.singleton schemes in
  let random_pair () =
    Experiment.of_list [ Rng.pick rng arr; Rng.pick rng arr ]
  in
  let random_block () =
    Experiment.of_list (List.init 5 (fun _ -> Rng.pick rng arr))
  in
  let experiments =
    singletons
    @ List.init pairs (fun _ -> random_pair ())
    @ List.init blocks (fun _ -> random_block ())
    |> List.sort_uniq Experiment.compare
  in
  List.map (fun e -> { experiment = e; cycles = Harness.cycles harness e }) experiments

(* Genomes are mutable arrays of usages, one per scheme (index-aligned). *)
let to_mapping config schemes genome =
  let m = Mapping.create ~num_ports:config.num_ports in
  List.iteri (fun i s -> Mapping.set m s genome.(i)) schemes;
  m

let random_portset config rng =
  let rec go acc =
    let acc = Portset.add (Rng.int rng config.num_ports) acc in
    if Rng.float rng < 0.5 && Portset.cardinal acc < config.num_ports then go acc
    else acc
  in
  go Portset.empty

let random_usage config rng =
  let uops = 1 + Rng.int rng config.max_uops in
  Mapping.normalize_usage
    (List.init uops (fun _ -> (random_portset config rng, 1)))

let mutate_usage config rng usage =
  (* Flip one port in one µop, or add/remove a µop. *)
  let usage = Array.of_list (List.concat_map (fun (p, n) -> List.init n (fun _ -> p)) usage) in
  let choice = Rng.float rng in
  let as_usage arr =
    Mapping.normalize_usage (Array.to_list (Array.map (fun p -> (p, 1)) arr))
  in
  if choice < 0.2 && Array.length usage < config.max_uops then
    as_usage (Array.append usage [| random_portset config rng |])
  else if choice < 0.4 && Array.length usage > 1 then
    as_usage (Array.sub usage 0 (Array.length usage - 1))
  else begin
    let i = Rng.int rng (Array.length usage) in
    let port = Rng.int rng config.num_ports in
    let set = usage.(i) in
    let set' =
      if Portset.mem port set then
        if Portset.cardinal set > 1 then Portset.diff set (Portset.singleton port)
        else set
      else Portset.add port set
    in
    usage.(i) <- set';
    as_usage usage
  end

(* Relative error of one benchmark under one genome-as-mapping.  PMEvo's
   model has no frontend term (the paper's footnote 10: predictions are not
   adjusted for the IPC bottleneck), so training is consistent with it. *)
let benchmark_error ~r_max mapping bench =
  ignore r_max;
  let modeled = Throughput.inverse mapping bench.experiment in
  let measured = Rat.to_float bench.cycles in
  if measured = 0.0 then 0.0
  else Float.abs (Rat.to_float modeled -. measured) /. measured

let fitness ~num_ports ~r_max mapping benchmarks =
  ignore num_ports;
  let total =
    List.fold_left (fun acc b -> acc +. benchmark_error ~r_max mapping b) 0.0
      benchmarks
  in
  100.0 *. total /. float_of_int (max 1 (List.length benchmarks))

(* Seed usages from an instruction's own steady-state CPI, as PMEvo seeds
   its population from per-instruction measurements: CPI <= 1 suggests one
   µop on about 1/CPI ports, CPI > 1 suggests several serial µops. *)
let seeded_usage config rng cpi =
  if cpi <= 0.0 then random_usage config rng
  else if cpi <= 1.1 then begin
    let ports = max 1 (min config.num_ports (int_of_float (Float.round (1.0 /. cpi)))) in
    let available = Array.init config.num_ports Fun.id in
    Rng.shuffle rng available;
    [ (Pmi_portmap.Portset.of_list (Array.to_list (Array.sub available 0 ports)), 1) ]
  end
  else begin
    (* A slow single-µop-per-port story: stack the µops on one port so the
       seeded genome reproduces the measured singleton throughput. *)
    let uops = max 1 (min config.max_uops (int_of_float (Float.round cpi))) in
    let port = Rng.int rng config.num_ports in
    Mapping.normalize_usage
      (List.init uops (fun _ -> (Portset.singleton port, 1)))
  end

let infer ?(config = default_config) benchmarks schemes =
  let rng = Rng.create ~seed:config.seed in
  let n = List.length schemes in
  let singleton_cpi =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun b ->
         match Experiment.to_counts b.experiment with
         | [ (s, 1) ] -> Hashtbl.replace tbl (Scheme.id s) (Rat.to_float b.cycles)
         | _ -> ())
      benchmarks;
    fun s -> Hashtbl.find_opt tbl (Scheme.id s)
  in
  let scheme_arr = Array.of_list schemes in
  let random_genome seeded =
    Array.init n (fun i ->
        match (seeded, singleton_cpi scheme_arr.(i)) with
        | true, Some cpi -> seeded_usage config rng cpi
        | (true, None) | (false, _) -> random_usage config rng)
  in
  let population =
    (* Most of the population starts from measurement-informed usages; a
       few random genomes keep diversity. *)
    Array.init config.population (fun i -> random_genome (i mod 4 <> 3))
  in
  let score genome =
    fitness ~num_ports:config.num_ports ~r_max:config.r_max
      (to_mapping config schemes genome) benchmarks
  in
  let scores = Array.map score population in
  let tournament () =
    let best = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament do
      let challenger = Rng.int rng config.population in
      if scores.(challenger) < scores.(!best) then best := challenger
    done;
    !best
  in
  let order = Array.init config.population Fun.id in
  for _generation = 1 to config.generations do
    Array.sort (fun a b -> compare scores.(a) scores.(b)) order;
    let next = Array.make config.population [||] in
    for e = 0 to config.elite - 1 do
      next.(e) <- Array.copy population.(order.(e))
    done;
    for slot = config.elite to config.population - 1 do
      let parent_a = population.(tournament ()) in
      let parent_b = population.(tournament ()) in
      let child =
        Array.init n (fun i ->
            if Rng.float rng < config.crossover_rate && Rng.bool rng then
              parent_b.(i)
            else parent_a.(i))
      in
      let per_gene =
        Float.min 0.5 (config.mutation_rate /. float_of_int (max 1 n))
      in
      for i = 0 to n - 1 do
        if Rng.float rng < per_gene then
          child.(i) <- mutate_usage config rng child.(i)
      done;
      next.(slot) <- child
    done;
    Array.blit next 0 population 0 config.population;
    Array.iteri (fun i g -> scores.(i) <- score g) population
  done;
  let best = ref 0 in
  Array.iteri (fun i s -> if s < scores.(!best) then best := i) scores;
  to_mapping config schemes population.(!best)
