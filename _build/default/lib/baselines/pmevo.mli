(** The PMEvo baseline (Ritter & Hack, PLDI 2020), reimplemented for the
    Figure 5 comparison.

    PMEvo infers port mappings by evolutionary optimisation: a population of
    candidate mappings is scored by how well it predicts the throughput of a
    fixed benchmark set (singletons, pairs and small random blocks), and
    evolves through tournament selection, per-instruction crossover and
    port-set mutation.  Unlike the paper's main algorithm there is no
    explanatory microbenchmark per mapping entry — the result is whatever
    the optimiser converges to, which is exactly the behaviour the
    evaluation contrasts against. *)

type config = {
  population : int;
  generations : int;
  tournament : int;        (** tournament size for selection *)
  crossover_rate : float;
  mutation_rate : float;   (** expected mutations per child genome *)
  max_uops : int;          (** µops allowed per instruction *)
  num_ports : int;
  r_max : int;
  elite : int;             (** individuals copied unchanged each generation *)
  seed : int;
}

val default_config : config

type benchmark = {
  experiment : Pmi_portmap.Experiment.t;
  cycles : Pmi_numeric.Rat.t;  (** measured inverse throughput *)
}

val training_set :
  ?seed:int -> ?pairs:int -> ?blocks:int ->
  Pmi_measure.Harness.t -> Pmi_isa.Scheme.t list -> benchmark list
(** Singleton benchmarks of every scheme plus random pairs and random
    five-instruction blocks, measured on the harness. *)

val infer :
  ?config:config -> benchmark list -> Pmi_isa.Scheme.t list ->
  Pmi_portmap.Mapping.t
(** Evolve a mapping for the given schemes against the benchmarks. *)

val fitness :
  num_ports:int -> r_max:int -> Pmi_portmap.Mapping.t -> benchmark list ->
  float
(** Mean absolute percentage error of the mapping on the benchmarks
    (lower is better). *)
