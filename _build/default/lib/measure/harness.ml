module Rat = Pmi_numeric.Rat
module Experiment = Pmi_portmap.Experiment
module Machine = Pmi_machine.Machine

type sample = {
  cycles : Rat.t;
  spread_cpi : float;
  retired_ops : int;
}

type t = {
  machine : Machine.t;
  reps : int;
  precision : int;
  cache : sample Experiment.Tbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(reps = 11) ?(precision = 1000) machine =
  if reps <= 0 || precision <= 0 then invalid_arg "Harness.create";
  { machine;
    reps;
    precision;
    cache = Experiment.Tbl.create 4096;
    hits = 0;
    misses = 0 }

let machine t = t.machine

let quantise t value =
  let p = float_of_int t.precision in
  Rat.of_ints (int_of_float (Float.round (value *. p))) t.precision

let run t experiment =
  let k = Experiment.key experiment in
  match Experiment.Tbl.find_opt t.cache k with
  | Some sample ->
    t.hits <- t.hits + 1;
    sample
  | None ->
    t.misses <- t.misses + 1;
    let runs =
      List.init t.reps (fun rep -> Machine.measure_cycles t.machine ~rep experiment)
    in
    let sorted = List.sort Float.compare runs in
    let median = List.nth sorted (t.reps / 2) in
    let low = List.nth sorted 0 in
    let high = List.nth sorted (t.reps - 1) in
    let len = Experiment.length experiment in
    let spread_cpi =
      if len = 0 then 0.0 else (high -. low) /. float_of_int len
    in
    let sample =
      { cycles = quantise t median;
        spread_cpi;
        retired_ops = Machine.retired_ops t.machine experiment }
    in
    Experiment.Tbl.replace t.cache k sample;
    sample

let cycles t experiment = (run t experiment).cycles

let cpi t experiment =
  let len = Experiment.length experiment in
  if len = 0 then invalid_arg "Harness.cpi: empty experiment";
  Rat.div (cycles t experiment) (Rat.of_int len)

let retired_ops t experiment = (run t experiment).retired_ops
let benchmarks_run t = Experiment.Tbl.length t.cache
let cache_hits t = t.hits
let cache_misses t = t.misses

module Compare = struct
  let default_epsilon = Rat.of_ints 2 100

  let cpi_equal ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul epsilon (Rat.of_int length) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound <= 0

  let well_separated ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul (Rat.of_int 2) (Rat.mul epsilon (Rat.of_int length)) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound > 0
end
