lib/measure/harness.mli: Pmi_machine Pmi_numeric Pmi_portmap
