lib/measure/harness.ml: Buffer Float Hashtbl List Pmi_isa Pmi_machine Pmi_numeric Pmi_portmap
