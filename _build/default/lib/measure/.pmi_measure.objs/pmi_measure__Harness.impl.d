lib/measure/harness.ml: Float List Pmi_machine Pmi_numeric Pmi_portmap
