type t = {
  counts : int array array;   (* counts.(row).(col); row 0 = highest bin *)
  bins : int;
  rows : int;
  bin_width : float;
  max_predicted : float;
}

let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let make ?(bins = 10) ?(max_measured = 5.0) pairs =
  let max_predicted =
    List.fold_left (fun acc (p, _) -> Float.max acc p) max_measured pairs
  in
  let bin_width = max_measured /. float_of_int bins in
  let rows = int_of_float (Float.ceil (max_predicted /. bin_width)) in
  let rows = max bins rows in
  let counts = Array.make_matrix rows bins 0 in
  List.iter
    (fun (predicted, measured) ->
       let col = min (bins - 1) (int_of_float (measured /. bin_width)) in
       let row_from_bottom =
         min (rows - 1) (int_of_float (predicted /. bin_width))
       in
       let row = rows - 1 - row_from_bottom in
       counts.(row).(col) <- counts.(row).(col) + 1)
    pairs;
  { counts; bins; rows; bin_width; max_predicted }

let render t =
  let buf = Buffer.create 1024 in
  let peak =
    Array.fold_left
      (fun acc row -> Array.fold_left max acc row)
      1 t.counts
  in
  let glyph count =
    if count = 0 then ' '
    else begin
      (* Log scale: sparse buckets must stay visible next to dense ones. *)
      let intensity =
        log (1.0 +. float_of_int count) /. log (1.0 +. float_of_int peak)
      in
      let idx =
        min (Array.length glyphs - 1)
          (1 + int_of_float (intensity *. float_of_int (Array.length glyphs - 2)))
      in
      glyphs.(idx)
    end
  in
  Buffer.add_string buf "predicted IPC\n";
  for row = 0 to t.rows - 1 do
    let upper = float_of_int (t.rows - row) *. t.bin_width in
    Buffer.add_string buf (Printf.sprintf "%5.1f |" upper);
    for col = 0 to t.bins - 1 do
      (* Mark the diagonal cell of each column with brackets. *)
      let diagonal = t.rows - 1 - row = col in
      let c = glyph t.counts.(row).(col) in
      if diagonal then begin
        Buffer.add_char buf '[';
        Buffer.add_char buf c;
        Buffer.add_char buf ']'
      end
      else begin
        Buffer.add_char buf ' ';
        Buffer.add_char buf c;
        Buffer.add_char buf ' '
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "      +";
  Buffer.add_string buf (String.make (3 * t.bins) '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf "       ";
  for col = 0 to t.bins - 1 do
    if col mod 2 = 1 then
      Buffer.add_string buf
        (Printf.sprintf "%6.1f" (float_of_int (col + 1) *. t.bin_width))
  done;
  Buffer.add_string buf "  measured IPC\n";
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
