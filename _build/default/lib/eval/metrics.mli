(** Prediction-accuracy metrics of Figure 5(a).

    All three metrics are computed over paired (predicted, measured) series:
    mean absolute percentage error, Pearson's linear correlation
    coefficient, and Kendall's rank correlation τ (the τ-a variant on
    strict concordance, matching the paper's use of ranking quality). *)

val mape : (float * float) list -> float
(** [mape pairs] with pairs of (predicted, measured); measured values of 0
    are skipped.  Result in percent. *)

val pearson : (float * float) list -> float
(** In [-1, 1]; 0 for degenerate (constant) series. *)

val kendall_tau : (float * float) list -> float
(** O(n²) exact computation; ties count as discordance-neutral. *)

type summary = { mape : float; pearson : float; kendall : float }

val summarize : (float * float) list -> summary
val pp_summary : Format.formatter -> string * summary -> unit
