module Rng = Pmi_baselines.Rng

let spec_subset ?(seed = 1) ~size schemes =
  let arr = Array.of_list schemes in
  if Array.length arr <= size then schemes
  else begin
    let rng = Rng.create ~seed in
    Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 size)
    |> List.sort Pmi_isa.Scheme.compare
  end

let generate ?(seed = 2) ~count ~block_size schemes =
  let rng = Rng.create ~seed in
  let arr = Array.of_list schemes in
  List.init count (fun _ ->
      Pmi_portmap.Experiment.of_list
        (List.init block_size (fun _ -> Rng.pick rng arr)))
