lib/eval/blocks.ml: Array List Pmi_baselines Pmi_isa Pmi_portmap
