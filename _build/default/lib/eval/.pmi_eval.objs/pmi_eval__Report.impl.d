lib/eval/report.ml: Buffer Catalog Figure5 Format List Metrics Pmi_core Pmi_isa Pmi_machine Pmi_measure Pmi_portmap Printf Scheme String
