lib/eval/figure5.ml: Array Blocks Float Format Heatmap List Metrics Pmi_baselines Pmi_isa Pmi_machine Pmi_measure Pmi_numeric Pmi_parallel Pmi_portmap
