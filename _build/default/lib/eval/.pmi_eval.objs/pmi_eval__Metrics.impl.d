lib/eval/metrics.ml: Array Float Format List
