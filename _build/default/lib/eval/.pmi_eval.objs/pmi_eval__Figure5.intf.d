lib/eval/figure5.mli: Format Metrics Pmi_baselines Pmi_measure Pmi_portmap
