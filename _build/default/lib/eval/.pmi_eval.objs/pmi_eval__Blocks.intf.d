lib/eval/blocks.mli: Pmi_isa Pmi_portmap
