lib/eval/report.mli: Figure5 Pmi_core Pmi_measure
