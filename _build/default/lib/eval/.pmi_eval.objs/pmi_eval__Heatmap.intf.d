lib/eval/heatmap.mli: Format
