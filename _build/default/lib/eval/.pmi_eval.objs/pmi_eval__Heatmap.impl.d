lib/eval/heatmap.ml: Array Buffer Float Format List Printf String
