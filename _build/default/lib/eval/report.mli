(** Markdown report generation.

    The paper's artifact ships human-readable result summaries alongside the
    machine-readable mapping; this module renders the same from a pipeline
    result: the funnel, Table 1, Table 2, the diff against the documented
    mapping, and (optionally) the Figure 5 accuracy study. *)

val render :
  ?figure5:Figure5.t ->
  harness:Pmi_measure.Harness.t ->
  Pmi_core.Pipeline.t ->
  string
(** A complete markdown document. *)

val write :
  ?figure5:Figure5.t ->
  harness:Pmi_measure.Harness.t ->
  path:string ->
  Pmi_core.Pipeline.t ->
  unit
