open Pmi_isa
module Mapping = Pmi_portmap.Mapping
module Diff = Pmi_portmap.Diff
module Machine = Pmi_machine.Machine
module Harness = Pmi_measure.Harness
module Pipeline = Pmi_core.Pipeline
module Blocking = Pmi_core.Blocking

let render ?figure5 ~harness result =
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let machine = Harness.machine harness in
  let profile = Machine.profile machine in
  out "# Port-mapping inference report (%s)\n\n"
    profile.Pmi_machine.Profile.name;
  out "%d instruction schemes, %d ports, %d IPC frontend.\n\n"
    (Catalog.size result.Pipeline.catalog)
    profile.Pmi_machine.Profile.num_ports
    profile.Pmi_machine.Profile.r_max;
  (* Funnel. *)
  let f = result.Pipeline.funnel in
  out "## Case-study funnel\n\n";
  out "| stage | schemes |\n|---|---|\n";
  List.iter
    (fun (label, v) -> out "| %s | %d |\n" label v)
    [ ("total", f.Pipeline.total);
      ("excluded individually", f.Pipeline.excluded_individual);
      ("after stage 1", f.Pipeline.after_stage1);
      ("single-µop candidates", f.Pipeline.candidates_initial);
      ("excluded in pairing", f.Pipeline.excluded_pairing);
      ("after stage 2", f.Pipeline.after_stage2);
      ("blocking candidates", f.Pipeline.candidates_final);
      ("blocking classes", f.Pipeline.blocking_classes);
      ("excluded with culprit mnemonics", f.Pipeline.excluded_mnemonic);
      ("considered", f.Pipeline.considered);
      ("regular patterns", f.Pipeline.regular_pattern);
      ("microcode artefacts", f.Pipeline.spurious_ms);
      ("unstable", f.Pipeline.unstable);
      ("inferred", f.Pipeline.inferred) ];
  (* Table 1. *)
  out "\n## Blocking-instruction classes (Table 1)\n\n";
  out "| ports | representative | equivalent schemes |\n|---|---|---|\n";
  List.iter
    (fun k ->
       out "| %d | `%s` | %d |\n" k.Blocking.port_count
         (Scheme.name k.Blocking.representative)
         (List.length k.Blocking.members))
    result.Pipeline.filtering.Blocking.classes;
  (* Table 2. *)
  let docs = Machine.ground_truth machine in
  out "\n## Inferred port usage of the blocking instructions (Table 2)\n\n";
  out "| scheme | documented | inferred |\n|---|---|---|\n";
  let removed rep =
    List.exists
      (fun r -> Scheme.equal r.Blocking.representative rep)
      result.Pipeline.removed_classes
  in
  List.iter
    (fun k ->
       let rep = k.Blocking.representative in
       if not (removed rep) then begin
         let show m =
           match Mapping.find_opt m rep with
           | Some u -> Mapping.usage_to_string u
           | None -> "-"
         in
         out "| `%s` | %s | %s |\n" (Scheme.name rep) (show docs)
           (show result.Pipeline.blocker_mapping)
       end)
    result.Pipeline.filtering.Blocking.classes;
  List.iter
    (fun s ->
       let show m =
         match Mapping.find_opt m s with
         | Some u -> Mapping.usage_to_string u
         | None -> "-"
       in
       out "| `%s` | %s | %s |\n" (Scheme.name s) (show docs)
         (show result.Pipeline.blocker_mapping))
    result.Pipeline.improper;
  if result.Pipeline.removed_classes <> [] then begin
    out "\nExcluded during inference (UNSAT, §4.3): %s.\n"
      (String.concat ", "
         (List.map
            (fun k -> "`" ^ Scheme.name k.Blocking.representative ^ "`")
            result.Pipeline.removed_classes))
  end;
  (* Diff against the documentation. *)
  let diff = Diff.compute ~left:result.Pipeline.mapping ~right:docs in
  out "\n## Agreement with the documented mapping\n\n";
  out "%s\n"
    (Format.asprintf "%a" (Diff.pp ~max_rows:10 ()) diff);
  (* Figure 5. *)
  (match figure5 with
   | None -> ()
   | Some fig ->
     out "\n## Prediction accuracy (Figure 5)\n\n";
     out "| model | MAPE | PCC | Kendall τ |\n|---|---|---|---|\n";
     List.iter
       (fun r ->
          out "| %s | %.1f%% | %.2f | %.2f |\n" r.Figure5.model
            r.Figure5.summary.Metrics.mape r.Figure5.summary.Metrics.pearson
            r.Figure5.summary.Metrics.kendall)
       [ fig.Figure5.pmevo; fig.Figure5.palmed; fig.Figure5.ours ];
     out "\n(%d blocks over %d schemes)\n" fig.Figure5.blocks_used
       fig.Figure5.schemes_used);
  Buffer.contents buf

let write ?figure5 ~harness ~path result =
  let oc = open_out path in
  output_string oc (render ?figure5 ~harness result);
  close_out oc
