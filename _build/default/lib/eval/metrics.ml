let mape pairs =
  let total, count =
    List.fold_left
      (fun (acc, n) (predicted, measured) ->
         if measured = 0.0 then (acc, n)
         else (acc +. (Float.abs (predicted -. measured) /. Float.abs measured), n + 1))
      (0.0, 0) pairs
  in
  if count = 0 then 0.0 else 100.0 *. total /. float_of_int count

let pearson pairs =
  let n = float_of_int (List.length pairs) in
  if n < 2.0 then 0.0
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pairs in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pairs in
    let mx = sx /. n and my = sy /. n in
    let cov, vx, vy =
      List.fold_left
        (fun (cov, vx, vy) (x, y) ->
           let dx = x -. mx and dy = y -. my in
           (cov +. (dx *. dy), vx +. (dx *. dx), vy +. (dy *. dy)))
        (0.0, 0.0, 0.0) pairs
    in
    if vx = 0.0 || vy = 0.0 then 0.0 else cov /. sqrt (vx *. vy)
  end

let kendall_tau pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  if n < 2 then 0.0
  else begin
    let concordant = ref 0 and discordant = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let xi, yi = arr.(i) and xj, yj = arr.(j) in
        let sx = compare xi xj and sy = compare yi yj in
        if sx * sy > 0 then incr concordant
        else if sx * sy < 0 then incr discordant
      done
    done;
    let total = float_of_int (n * (n - 1) / 2) in
    float_of_int (!concordant - !discordant) /. total
  end

type summary = { mape : float; pearson : float; kendall : float }

let summarize pairs =
  { mape = mape pairs; pearson = pearson pairs; kendall = kendall_tau pairs }

let pp_summary ppf (name, s) =
  Format.fprintf ppf "%-8s MAPE %5.1f%%   PCC %5.2f   Kendall τ %5.2f" name
    s.mape s.pearson s.kendall
