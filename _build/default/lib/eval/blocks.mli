(** Workload generation for the Figure 5 evaluation.

    The paper samples 5,000 dependency-free basic blocks of five random
    instructions over the 577 schemes that occur in SPEC CPU2017 binaries
    and are covered by the inferred mapping.  We reproduce the shape:
    a deterministic subset of the covered schemes and deterministic random
    blocks over it. *)

val spec_subset :
  ?seed:int -> size:int -> Pmi_isa.Scheme.t list -> Pmi_isa.Scheme.t list
(** A deterministic pseudo-random subset standing in for "schemes appearing
    in compiled SPEC binaries". *)

val generate :
  ?seed:int -> count:int -> block_size:int -> Pmi_isa.Scheme.t list ->
  Pmi_portmap.Experiment.t list
(** [count] random blocks of [block_size] instructions each (duplicates
    within a block allowed, as in real straight-line code). *)
