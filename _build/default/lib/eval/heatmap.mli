(** ASCII heatmaps of predicted vs measured IPC (Figure 5(b-d)).

    Basic blocks are bucketed on both axes; darker glyphs mean more blocks.
    The diagonal (perfect prediction) is marked so the eye can compare
    models the way the paper's orange line does. *)

type t

val make :
  ?bins:int -> ?max_measured:float -> (float * float) list -> t
(** [make pairs] from (predicted, measured) IPC pairs.  The predicted axis
    extends beyond [max_measured] if a model overshoots (as PMEvo does in
    the paper). *)

val render : t -> string
val pp : Format.formatter -> t -> unit
