lib/smt/expr.ml: Format Int List Lit Sat Set
