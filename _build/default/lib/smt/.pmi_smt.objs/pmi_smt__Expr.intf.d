lib/smt/expr.mli: Format Sat
