lib/smt/sat.mli: Lit
