lib/smt/sat.mli: Buffer Lit
