lib/smt/card.mli: Lit Sat
