lib/smt/sat.ml: Array Buffer List Lit Printf Seq
