lib/smt/lit.ml: Format
