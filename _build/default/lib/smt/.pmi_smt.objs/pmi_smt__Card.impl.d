lib/smt/card.ml: Array List Lit Sat
