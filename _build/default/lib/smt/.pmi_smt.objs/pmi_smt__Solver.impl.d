lib/smt/solver.ml: Array List Lit Sat
