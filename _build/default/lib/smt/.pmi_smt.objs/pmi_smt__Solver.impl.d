lib/smt/solver.ml: Array List Lit Pmi_parallel Sat
