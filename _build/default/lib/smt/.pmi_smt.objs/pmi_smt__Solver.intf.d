lib/smt/solver.mli: Lit Sat
