(** Propositional literals.

    A variable is a non-negative integer; a literal packs a variable and a
    polarity into a single integer ([2*v] positive, [2*v+1] negative), the
    classical MiniSat encoding. *)

type t = int

val make : int -> bool -> t
(** [make v positive] is the literal over variable [v]. *)

val pos : int -> t
val neg_of_var : int -> t

val var : t -> int
val negate : t -> t
val is_pos : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
