type t = int

let make v positive = (v lsl 1) lor (if positive then 0 else 1)
let pos v = v lsl 1
let neg_of_var v = (v lsl 1) lor 1
let var l = l lsr 1
let negate l = l lxor 1
let is_pos l = l land 1 = 0

let to_string l = (if is_pos l then "" else "-") ^ string_of_int (var l)
let pp ppf l = Format.pp_print_string ppf (to_string l)
