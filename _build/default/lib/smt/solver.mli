(** Lazy SMT: SAT modulo a theory given as a refutation callback.

    This is the counter-example-guided core of the paper's inference in
    solver form: the boolean skeleton describes candidate port mappings,
    and the theory check evaluates the port-mapping model (the
    [relateThroughput] constraints of §3.3.2) with exact arithmetic,
    returning lemmas for every violated observation. *)

type result =
  | Sat of bool array
  | Unsat

val solve :
  ?assumptions:Lit.t list ->
  ?max_rounds:int ->
  check:(bool array -> Lit.t list list) ->
  Sat.t ->
  result
(** [solve ~check sat] alternates SAT solving and theory checking.  A model
    for which [check] returns [[]] is theory-consistent and returned.
    Otherwise all returned lemma clauses are added and solving resumes; at
    least one lemma must be falsified by the rejected model (enforced by
    assertion) so that every round makes progress.

    @raise Failure if [max_rounds] (default 100,000) is exceeded, which
    indicates a diverging theory encoding. *)

val solve_portfolio :
  ?assumptions:Lit.t list ->
  ?max_rounds:int ->
  ?domains:int ->
  check:(bool array -> Lit.t list list) ->
  Sat.t ->
  result
(** [solve] with a diversified solver portfolio per theory round: the
    persistent solver is cloned [min domains 8] times (member 0 keeps the
    reference configuration; the others vary seed, polarity, random-decision
    rate, and restart policy), the clones race across
    {!Pmi_parallel.Pool.race}, and the first verdict wins.  The winner's
    low-glue learnt clauses and its statistics are folded back into [sat],
    so later rounds (and later calls) start from the accumulated work
    exactly as in the sequential path.  SAT/UNSAT verdicts are identical to
    [solve]; which model witnesses SAT may differ run to run.  [domains]
    defaults to {!Pmi_parallel.Pool.default_domains}; with [domains <= 1]
    this is exactly [solve]. *)
