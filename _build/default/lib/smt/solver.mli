(** Lazy SMT: SAT modulo a theory given as a refutation callback.

    This is the counter-example-guided core of the paper's inference in
    solver form: the boolean skeleton describes candidate port mappings,
    and the theory check evaluates the port-mapping model (the
    [relateThroughput] constraints of §3.3.2) with exact arithmetic,
    returning lemmas for every violated observation. *)

type result =
  | Sat of bool array
  | Unsat

val solve :
  ?assumptions:Lit.t list ->
  ?max_rounds:int ->
  check:(bool array -> Lit.t list list) ->
  Sat.t ->
  result
(** [solve ~check sat] alternates SAT solving and theory checking.  A model
    for which [check] returns [[]] is theory-consistent and returned.
    Otherwise all returned lemma clauses are added and solving resumes; at
    least one lemma must be falsified by the rejected model (enforced by
    assertion) so that every round makes progress.

    @raise Failure if [max_rounds] (default 100,000) is exceeded, which
    indicates a diverging theory encoding. *)
