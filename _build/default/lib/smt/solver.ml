type result =
  | Sat of bool array
  | Unsat

let falsified_by model lits =
  List.for_all
    (fun l ->
       let v = Lit.var l in
       v < Array.length model && (if Lit.is_pos l then not model.(v) else model.(v)))
    lits

let solve ?(assumptions = []) ?(max_rounds = 100_000) ~check sat =
  let rec loop round =
    if round > max_rounds then failwith "Smt.Solver.solve: theory loop diverges"
    else begin
      match Sat.solve ~assumptions sat with
      | Sat.Unsat -> Unsat
      | Sat.Sat model ->
        (match check model with
         | [] -> Sat model
         | lemmas ->
           (* Progress guard: the rejected model must violate some lemma.
              Lemmas may mention variables allocated after the model was
              produced (e.g. fresh cardinality registers), which
              [falsified_by] treats as unassigned-false. *)
           assert (List.exists (falsified_by model) lemmas);
           List.iter (Sat.add_clause sat) lemmas;
           loop (round + 1))
    end
  in
  loop 1
