(** A CDCL SAT solver in the MiniSat/Glucose lineage.

    Engine features: flat int-array watcher lists with blocking literals
    (propagation is allocation-free), dedicated binary-clause implication
    lists, an indexed binary max-heap for VSIDS decisions, first-UIP conflict
    analysis with recursive clause minimization, phase saving, configurable
    Luby or geometric restarts, and LBD-scored learnt clauses with periodic
    clause-database reduction.

    The solver is incremental: clauses may be added between [solve] calls
    (at decision level 0 — every call returns there), and [solve
    ~assumptions] decides under a temporary assumption prefix without
    polluting the persistent state.  Clause-database reduction only ever
    discards learnt clauses; problem clauses — including the
    activation-literal clauses of the incremental CEGIS encoding — are
    permanent. *)

type t

type result =
  | Sat of bool array  (** model: polarity per variable *)
  | Unsat

(** Cumulative search counters.  [deleted] counts learnt clauses discarded
    by clause-database reduction; [max_lbd] is the largest glue score of any
    clause learnt so far. *)
type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned : int;
  deleted : int;
  max_lbd : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val create : unit -> t

val fresh_var : t -> int
(** Allocate a new variable.  Variables are numbered consecutively from 0. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a disjunction of literals.  Must be called at decision level 0
    (which holds between [solve] calls).  Adding the empty clause (or a
    clause that simplifies to it) makes the solver permanently
    unsatisfiable. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under the given assumptions.  The model of a [Sat] answer assigns
    every allocated variable.  [Unsat] under assumptions means
    unsatisfiable *under those assumptions*; the solver stays usable.
    Learnt clauses persist across calls. *)

val solve_opt :
  ?assumptions:Lit.t list -> ?stop:(unit -> bool) -> t -> result option
(** [solve] with a cooperative cancellation hook: [stop] is polled once per
    search-loop iteration, and [None] is returned if it fired before a
    verdict was reached.  The solver state stays valid (clauses learnt
    during the partial run persist). *)

val okay : t -> bool
(** [false] once the clause database is unsatisfiable at level 0. *)

val num_conflicts : t -> int
(** Total conflicts encountered so far (statistics). *)

val stats : t -> stats

(** {1 Portfolio support} *)

val copy : t -> t
(** An independent snapshot, safe to drive from another domain.  The clone
    starts with zeroed statistics and records every clause it learns, so a
    portfolio winner's progress can be folded back into the original via
    [new_learnts]/[add_learnt] and [absorb_stats]. *)

val new_learnts : t -> (int * Lit.t list) list
(** Clauses learnt by a [copy] since it was created, oldest first, as
    [(lbd, literals)] pairs.  Empty on solvers not created by [copy]. *)

val add_learnt : t -> lbd:int -> Lit.t list -> unit
(** Import a clause learnt elsewhere (e.g. by a portfolio member).  Like
    [add_clause] but the clause is registered as learnt, so it stays
    subject to clause-database reduction unless its glue is [<= 2]. *)

val absorb_stats : t -> t -> unit
(** [absorb_stats s clone] folds the clone's counters into [s]. *)

(** {1 Diversification knobs} *)

val set_seed : t -> int -> unit
(** Seed the solver's internal PRNG (used by random decisions and
    [randomize_phases]). *)

val set_random_var_freq : t -> float -> unit
(** Probability in [[0, 1]] of picking a random decision variable instead
    of the top of the VSIDS heap.  Default [0.]. *)

val set_restart : t -> [ `Luby of int | `Geometric of int ] -> unit
(** Restart policy: Luby sequence scaled by the given unit, or the
    geometric policy growing by 3/2 from the given base (the default is
    [`Geometric 300]; the portfolio diversifies over both). *)

val set_reduce_enabled : t -> bool -> unit
(** Enable/disable clause-database reduction (default enabled). *)

val invert_phases : t -> unit
(** Flip every saved phase (decision polarity). *)

val randomize_phases : t -> unit
(** Randomize every saved phase using the solver PRNG. *)

(** {1 Export} *)

val to_dimacs : ?learned:bool -> t -> Buffer.t -> unit
(** Append the clause set in DIMACS CNF format ([p cnf] header, 1-based
    variables, level-0 unit clauses included).  [~learned:true] also
    exports the live learnt clauses. *)

val dimacs : ?learned:bool -> t -> string
