(** An incremental CDCL SAT solver.

    The implementation follows the MiniSat architecture: two-watched-literal
    propagation, first-UIP conflict analysis with clause learning and
    backjumping, VSIDS-style variable activities with decay, phase saving,
    and geometric restarts.  Clauses may be added between [solve] calls,
    which is what the counter-example-guided port-mapping inference relies
    on: every refuted candidate mapping becomes a new clause. *)

type t

type result =
  | Sat of bool array  (** model: polarity per variable *)
  | Unsat

val create : unit -> t

val fresh_var : t -> int
(** Allocate a new variable.  Variables are numbered consecutively from 0. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a disjunction of literals.  Adding the empty clause (or a clause
    that simplifies to it) makes the solver permanently unsatisfiable. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under the given assumptions.  The model of a [Sat] answer assigns
    every allocated variable. *)

val okay : t -> bool
(** [false] once the clause database is unsatisfiable at level 0. *)

val num_conflicts : t -> int
(** Total conflicts encountered so far (statistics). *)
