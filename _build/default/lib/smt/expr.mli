(** Propositional formulas and Tseitin transformation.

    The port-mapping encoding builds most of its CNF by hand (cardinality
    networks, implication ladders), but ad-hoc side conditions are easier
    to state as formulas.  This module provides a conventional formula AST
    with structural smart constructors and an equisatisfiable CNF
    translation that allocates auxiliary variables from the target
    solver. *)

type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

val tt : t
val ff : t
val var : int -> t
val neg : t -> t
(** Simplifying negation ([neg (neg x) = x], De-Morgan on constants). *)

val conj : t list -> t
(** Flattens nested conjunctions, drops [True], collapses on [False]. *)

val disj : t list -> t
val imp : t -> t -> t
val iff : t -> t -> t

val eval : (int -> bool) -> t -> bool
(** Evaluate under an assignment. *)

val vars : t -> int list
(** Distinct variables, ascending. *)

val size : t -> int
(** Number of AST nodes. *)

val assert_in : Sat.t -> t -> unit
(** Tseitin-transform the formula and add the clauses asserting it to the
    solver.  Fresh definition variables are allocated from the solver, so
    the result is equisatisfiable and every model of the extended solver
    restricted to the original variables satisfies the formula. *)

val pp : Format.formatter -> t -> unit
