(* MiniSat-style CDCL.  See sat.mli for the feature list.

   Conventions:
   - [value] is per *variable*: 0 undefined, 1 true, -1 false.
   - A clause is an [int array] of literals; only clauses with at least two
     literals live in the database, unit consequences go straight onto the
     trail at level 0.
   - Watch invariant: every database clause is watched by its first two
     literals, and whenever a clause propagates, the propagated literal is
     at index 0 (conflict analysis relies on this to skip the asserting
     literal of reason clauses). *)

type t = {
  mutable clauses : int array array;
  mutable n_clauses : int;
  mutable watches : int list array;  (* indexed by literal *)
  mutable value : int array;         (* per variable *)
  mutable level : int array;
  mutable reason : int array;        (* clause index, or -1 *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable trail : int array;         (* literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable n_levels : int;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
}

type result =
  | Sat of bool array
  | Unsat

let create () =
  { clauses = Array.make 64 [||];
    n_clauses = 0;
    watches = Array.make 16 [];
    value = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    seen = Array.make 8 false;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    n_levels = 0;
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0 }

let grow_array arr len fill =
  if Array.length arr >= len then arr
  else begin
    let out = Array.make (max len (2 * Array.length arr)) fill in
    Array.blit arr 0 out 0 (Array.length arr);
    out
  end

let fresh_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.value <- grow_array s.value s.nvars 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars (-1);
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.phase <- grow_array s.phase s.nvars false;
  s.seen <- grow_array s.seen s.nvars false;
  s.trail <- grow_array s.trail s.nvars 0;
  s.watches <- grow_array s.watches (2 * s.nvars) [];
  s.value.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.activity.(v) <- 0.0;
  s.phase.(v) <- false;
  s.seen.(v) <- false;
  v

let num_vars s = s.nvars
let okay s = s.ok
let num_conflicts s = s.conflicts

let lit_value s l =
  let v = s.value.(Lit.var l) in
  if v = 0 then 0 else if Lit.is_pos l then v else -v

let enqueue s lit reason =
  let v = Lit.var lit in
  assert (s.value.(v) = 0);
  s.value.(v) <- (if Lit.is_pos lit then 1 else -1);
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let new_decision_level s =
  s.trail_lim <- grow_array s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let lit = s.trail.(i) in
      let v = Lit.var lit in
      s.phase.(v) <- Lit.is_pos lit;
      s.value.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- lvl
  end

(* Two-watched-literal unit propagation; returns the index of a conflicting
   clause or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let false_lit = Lit.negate p in
    let watching = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        let c = s.clauses.(ci) in
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if lit_value s c.(0) = 1 then begin
          (* Clause already satisfied; keep the watch. *)
          s.watches.(false_lit) <- ci :: s.watches.(false_lit);
          process rest
        end else begin
          let len = Array.length c in
          let rec find_watch k =
            if k >= len then -1
            else if lit_value s c.(k) >= 0 then k
            else find_watch (k + 1)
          in
          let k = find_watch 2 in
          if k >= 0 then begin
            c.(1) <- c.(k);
            c.(k) <- false_lit;
            s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
            process rest
          end else begin
            s.watches.(false_lit) <- ci :: s.watches.(false_lit);
            if lit_value s c.(0) = -1 then begin
              (* Conflict: put the unprocessed suffix back. *)
              s.watches.(false_lit) <-
                List.rev_append rest s.watches.(false_lit);
              s.qhead <- s.trail_size;
              conflict := ci
            end else begin
              enqueue s c.(0) ci;
              process rest
            end
          end
        end
    in
    process watching
  done;
  !conflict

let rescale_activities s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then rescale_activities s

let decay s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP conflict analysis.  Returns the learnt clause (asserting literal
   first) and the backjump level. *)
let analyze s confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump s v;
        if s.level.(v) >= s.n_levels then incr path
        else learnt := q :: !learnt
      end
    done;
    (* Walk the trail back to the most recently assigned marked literal. *)
    while not s.seen.(Lit.var s.trail.(!index)) do decr index done;
    p := s.trail.(!index);
    decr index;
    s.seen.(Lit.var !p) <- false;
    decr path;
    if !path = 0 then continue := false
    else confl := s.reason.(Lit.var !p)
  done;
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let asserting = Lit.negate !p in
  let tail = !learnt in
  let backjump =
    List.fold_left (fun acc q -> max acc (s.level.(Lit.var q))) 0 tail
  in
  (asserting :: tail, backjump)

let attach_clause s lits =
  let ci = s.n_clauses in
  if ci >= Array.length s.clauses then begin
    let out = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 out 0 ci;
    s.clauses <- out
  end;
  s.clauses.(ci) <- lits;
  s.n_clauses <- ci + 1;
  s.watches.(lits.(0)) <- ci :: s.watches.(lits.(0));
  s.watches.(lits.(1)) <- ci :: s.watches.(lits.(1));
  ci

let add_clause s lits =
  assert (s.n_levels = 0);
  if s.ok then begin
    (* Simplify: drop duplicates and root-level-false literals, detect
       tautologies and root-level-satisfied clauses. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (tautology || satisfied) then begin
      let lits = List.filter (fun l -> lit_value s l = 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l (-1);
        if propagate s >= 0 then s.ok <- false
      | l0 :: l1 :: rest ->
        ignore (attach_clause s (Array.of_list (l0 :: l1 :: rest)))
    end
  end

(* Install a learnt clause after backjumping and assert its first literal. *)
let record_learnt s lits =
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l (-1)
  | l0 :: rest ->
    (* Watch the asserting literal and (one of) the highest-level others. *)
    let arr = Array.of_list (l0 :: rest) in
    let best = ref 1 in
    for j = 2 to Array.length arr - 1 do
      if s.level.(Lit.var arr.(j)) > s.level.(Lit.var arr.(!best)) then best := j
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let ci = attach_clause s arr in
    enqueue s l0 ci

let pick_branch_var s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.value.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

let solve ?(assumptions = []) s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list assumptions in
    let n_assumptions = Array.length assumptions in
    let restart_budget = ref 100 in
    let conflicts_here = ref 0 in
    let result = ref None in
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_here;
        if s.n_levels = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end else if s.n_levels <= n_assumptions then
          (* The conflict only depends on assumptions and root clauses. *)
          result := Some Unsat
        else begin
          let learnt, backjump = analyze s confl in
          (* Never backjump into the middle of the assumption prefix with a
             pending asserting literal that contradicts an assumption: the
             learnt clause is still sound, and if it conflicts again we end
             up in one of the terminating branches above. *)
          cancel_until s backjump;
          record_learnt s learnt;
          decay s
        end
      end else if !conflicts_here >= !restart_budget then begin
        conflicts_here := 0;
        restart_budget := !restart_budget * 3 / 2;
        cancel_until s 0
      end else if s.n_levels < n_assumptions then begin
        let a = assumptions.(s.n_levels) in
        match lit_value s a with
        | -1 -> result := Some Unsat
        | 1 -> new_decision_level s (* vacuous level to keep indices aligned *)
        | _ ->
          new_decision_level s;
          enqueue s a (-1)
      end else begin
        match pick_branch_var s with
        | -1 ->
          let model = Array.init s.nvars (fun v -> s.value.(v) = 1) in
          result := Some (Sat model)
        | v ->
          new_decision_level s;
          enqueue s (Lit.make v s.phase.(v)) (-1)
      end
    done;
    cancel_until s 0;
    match !result with
    | Some r -> r
    | None -> assert false
  end
