type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

let tt = True
let ff = False
let var v = Var v

let neg = function
  | True -> False
  | False -> True
  | Not e -> e
  | (Var _ | And _ | Or _ | Imp _ | Iff _) as e -> Not e

let conj es =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> gather acc rest
    | False :: _ -> None
    | And inner :: rest -> gather acc (inner @ rest)
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | None -> False
  | Some [] -> True
  | Some [ e ] -> e
  | Some es -> And es

let disj es =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> gather acc rest
    | True :: _ -> None
    | Or inner :: rest -> gather acc (inner @ rest)
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | None -> True
  | Some [] -> False
  | Some [ e ] -> e
  | Some es -> Or es

let imp a b =
  match (a, b) with
  | False, _ -> True
  | True, b -> b
  | a, False -> neg a
  | _, True -> True
  | a, b -> Imp (a, b)

let iff a b =
  match (a, b) with
  | True, b -> b
  | a, True -> a
  | False, b -> neg b
  | a, False -> neg a
  | a, b -> Iff (a, b)

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Imp (a, b) -> (not (eval env a)) || eval env b
  | Iff (a, b) -> eval env a = eval env b

let vars e =
  let module IS = Set.Make (Int) in
  let rec go acc = function
    | True | False -> acc
    | Var v -> IS.add v acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
    | Imp (a, b) | Iff (a, b) -> go (go acc a) b
  in
  IS.elements (go IS.empty e)

let rec size = function
  | True | False | Var _ -> 1
  | Not e -> 1 + size e
  | And es | Or es -> List.fold_left (fun acc e -> acc + size e) 1 es
  | Imp (a, b) | Iff (a, b) -> 1 + size a + size b

(* Tseitin: [define solver e] returns a literal equivalent to [e] in every
   model of the added definition clauses. *)
let rec define solver = function
  | True ->
    let v = Sat.fresh_var solver in
    Sat.add_clause solver [ Lit.pos v ];
    Lit.pos v
  | False ->
    let v = Sat.fresh_var solver in
    Sat.add_clause solver [ Lit.neg_of_var v ];
    Lit.pos v
  | Var v -> Lit.pos v
  | Not e -> Lit.negate (define solver e)
  | And es ->
    let lits = List.map (define solver) es in
    let d = Sat.fresh_var solver in
    (* d -> l_i,  (/\ l_i) -> d *)
    List.iter (fun l -> Sat.add_clause solver [ Lit.neg_of_var d; l ]) lits;
    Sat.add_clause solver (Lit.pos d :: List.map Lit.negate lits);
    Lit.pos d
  | Or es ->
    let lits = List.map (define solver) es in
    let d = Sat.fresh_var solver in
    (* l_i -> d,  d -> (\/ l_i) *)
    List.iter (fun l -> Sat.add_clause solver [ Lit.pos d; Lit.negate l ]) lits;
    Sat.add_clause solver (Lit.neg_of_var d :: lits);
    Lit.pos d
  | Imp (a, b) -> define solver (Or [ Not a; b ])
  | Iff (a, b) ->
    let la = define solver a in
    let lb = define solver b in
    let d = Sat.fresh_var solver in
    Sat.add_clause solver [ Lit.neg_of_var d; Lit.negate la; lb ];
    Sat.add_clause solver [ Lit.neg_of_var d; la; Lit.negate lb ];
    Sat.add_clause solver [ Lit.pos d; la; lb ];
    Sat.add_clause solver [ Lit.pos d; Lit.negate la; Lit.negate lb ];
    Lit.pos d

let assert_in solver e =
  match e with
  | True -> ()
  | False -> Sat.add_clause solver []
  | And es ->
    (* Assert each conjunct directly: cheaper than defining the And. *)
    List.iter (fun e -> Sat.add_clause solver [ define solver e ]) es
  | (Var _ | Not _ | Or _ | Imp _ | Iff _) as e ->
    Sat.add_clause solver [ define solver e ]

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Var v -> Format.fprintf ppf "x%d" v
  | Not e -> Format.fprintf ppf "!%a" pp_atom e
  | And es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " & ") pp)
      es
  | Or es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " | ") pp)
      es
  | Imp (a, b) -> Format.fprintf ppf "(%a -> %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a <-> %a)" pp a pp b

and pp_atom ppf e =
  match e with
  | True | False | Var _ | Not _ -> pp ppf e
  | And _ | Or _ | Imp _ | Iff _ -> Format.fprintf ppf "(%a)" pp e
