(** Cardinality constraints over literals, via the sequential-counter
    (Sinz 2005) encoding.  Auxiliary variables are allocated from the given
    solver.  The port-mapping encoding uses these to pin each µop's number
    of admissible ports to the value measured from its throughput. *)

val at_most : Sat.t -> Lit.t list -> int -> unit
(** [at_most s lits k] asserts that at most [k] of [lits] are true. *)

val at_least : Sat.t -> Lit.t list -> int -> unit
(** [at_least s lits k] asserts that at least [k] of [lits] are true. *)

val exactly : Sat.t -> Lit.t list -> int -> unit
(** [exactly s lits k] asserts that exactly [k] of [lits] are true. *)
