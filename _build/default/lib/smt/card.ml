(* Sequential-counter encoding: registers s_{i,j} mean "at least j of the
   first i+1 literals are true".  Linear in n*k clauses and variables. *)

let at_most solver lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 then Sat.add_clause solver []
  else if k = 0 then
    Array.iter (fun l -> Sat.add_clause solver [ Lit.negate l ]) lits
  else if n > k then begin
    (* regs.(i).(j) = s_{i+1, j+1} of the classical presentation. *)
    let regs =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Sat.fresh_var solver))
    in
    let s i j = Lit.pos regs.(i).(j) in
    let not_s i j = Lit.neg_of_var regs.(i).(j) in
    Sat.add_clause solver [ Lit.negate lits.(0); s 0 0 ];
    for j = 1 to k - 1 do
      Sat.add_clause solver [ not_s 0 j ]
    done;
    for i = 1 to n - 2 do
      Sat.add_clause solver [ Lit.negate lits.(i); s i 0 ];
      Sat.add_clause solver [ not_s (i - 1) 0; s i 0 ];
      for j = 1 to k - 1 do
        Sat.add_clause solver [ Lit.negate lits.(i); not_s (i - 1) (j - 1); s i j ];
        Sat.add_clause solver [ not_s (i - 1) j; s i j ]
      done;
      Sat.add_clause solver [ Lit.negate lits.(i); not_s (i - 1) (k - 1) ]
    done;
    Sat.add_clause solver [ Lit.negate lits.(n - 1); not_s (n - 2) (k - 1) ]
  end

let at_least solver lits k =
  let n = List.length lits in
  if k > n then Sat.add_clause solver []
  else if k = n then List.iter (fun l -> Sat.add_clause solver [ l ]) lits
  else if k = 1 then Sat.add_clause solver lits
  else if k > 0 then at_most solver (List.map Lit.negate lits) (n - k)

let exactly solver lits k =
  at_most solver lits k;
  at_least solver lits k
