open Pmi_isa
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping

(* Zen+ constants, re-exported for the case-study code paths. *)
let num_ports = Profile.zen_plus.Profile.num_ports
let r_max = Profile.zen_plus.Profile.r_max
let ms_ops_per_cycle = Profile.zen_plus.Profile.ms_ops_per_cycle
let div_occupancy = Profile.zen_plus.Profile.div_occupancy

let ports_of_base = Profile.zen_plus.Profile.ports_of_base

let usage_for profile structure =
  let ports = profile.Profile.ports_of_base in
  let base b = (ports b, 1) in
  let load = ports Iclass.Load in
  let store = ports Iclass.Store in
  match structure with
  | Iclass.Nullary -> []
  | Iclass.Single b -> [ base b ]
  | Iclass.With_load (b, n) -> [ base b; (load, n) ]
  | Iclass.Rmw (b, narrow) ->
    (* Zen+ fuses the two memory accesses of read-modify-write operations
       into the macro-op; narrow (≤32-bit) operations spend one extra
       address-generation µop (§4.4). *)
    base b :: (store, 1) :: (if narrow then [ (load, 1) ] else [])
  | Iclass.Ymm_single b -> [ (ports b, 2) ]
  | Iclass.Ymm_with_load b -> [ (ports b, 2); (load, 2) ]
  | Iclass.Store_scalar ->
    (* The §4.1 deviation from the SOG: a storing mov has a µop restricted
       to the ALU ports besides its store µop. *)
    [ (store, 1); (ports Iclass.Alu, 1) ]
  | Iclass.Store_vec -> [ (store, 1); (ports Iclass.Vec_shift_imm, 1) ]
  | Iclass.Store_vec_ymm -> [ (store, 2); (ports Iclass.Vec_shift_imm, 2) ]
  | Iclass.Multi bases ->
    Mapping.normalize_usage (List.map (fun b -> (ports b, 1)) bases)

let usage_of_structure structure = usage_for Profile.zen_plus structure

let mapping_for profile catalog =
  let mapping = Mapping.create ~num_ports:profile.Profile.num_ports in
  Array.iter
    (fun scheme ->
       let { Iclass.structure; _ } = Scheme.klass scheme in
       Mapping.set mapping scheme (usage_for profile structure))
    (Catalog.schemes catalog);
  mapping

let mapping_of_catalog catalog = mapping_for Profile.zen_plus catalog
