lib/machine/machine.ml: Array Catalog Ground_truth Hashtbl Iclass List Noise Pmi_isa Pmi_numeric Pmi_portmap Profile Scheme
