lib/machine/profile.mli: Pmi_isa Pmi_portmap
