lib/machine/profile.ml: Iclass List Pmi_isa Pmi_portmap
