lib/machine/noise.ml: Pmi_isa Pmi_portmap
