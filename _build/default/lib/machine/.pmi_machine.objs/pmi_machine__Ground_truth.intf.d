lib/machine/ground_truth.mli: Pmi_isa Pmi_portmap Profile
