lib/machine/machine.mli: Pmi_isa Pmi_numeric Pmi_portmap Profile
