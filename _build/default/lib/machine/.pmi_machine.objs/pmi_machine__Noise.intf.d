lib/machine/noise.mli: Pmi_portmap
