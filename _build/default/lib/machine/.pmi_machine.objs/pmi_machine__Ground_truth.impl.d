lib/machine/ground_truth.ml: Array Catalog Iclass List Pmi_isa Pmi_portmap Profile Scheme
