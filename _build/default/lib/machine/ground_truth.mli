(** The simulated Zen+ ground truth: port layout and per-class port usage.

    Ports follow the Software Optimization Guide layout used in the paper's
    Table 2 (after renaming): FP pipes 0-3, AGU/load 4-5 (stores retire
    through port 5), scalar ALUs 6-9. *)

val usage_for :
  Profile.t -> Pmi_isa.Iclass.structure -> Pmi_portmap.Mapping.usage
(** µop multiset of a scheme under an arbitrary profile (§3.5). *)

val mapping_for : Profile.t -> Pmi_isa.Catalog.t -> Pmi_portmap.Mapping.t

val num_ports : int
(** 10, as in the paper's case study (§4.3). *)

val r_max : int
(** Sustained frontend/retire throughput: 5 instructions per cycle (§3.5). *)

val ms_ops_per_cycle : int
(** Microcode-sequencer emission rate: 4 ops per cycle (§4.4). *)

val div_occupancy : int
(** Cycles a non-pipelined divider µop occupies its port (§4.1.2). *)

val ports_of_base : Pmi_isa.Iclass.base -> Pmi_portmap.Portset.t

val usage_of_structure : Pmi_isa.Iclass.structure -> Pmi_portmap.Mapping.usage
(** µop multiset of a scheme with the given structure; empty for [Nullary]. *)

val mapping_of_catalog : Pmi_isa.Catalog.t -> Pmi_portmap.Mapping.t
(** The full ground-truth port mapping of a catalog (base usage of every
    scheme, without quirk effects).  This is the hidden mapping the
    inference algorithm tries to reconstruct. *)
