let mix h =
  (* splitmix64-style finaliser, truncated to OCaml's 63-bit ints. *)
  let h = h lxor (h lsr 30) in
  let h = h * 0x4be98134a5976fd3 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3bc8203a9c2b4eab in
  h lxor (h lsr 32)

let hash_experiment experiment =
  Pmi_portmap.Experiment.fold
    (fun scheme count acc ->
       (* Multiset hash: commutative combination of per-element hashes. *)
       acc + mix ((Pmi_isa.Scheme.id scheme * 1_000_003) + count))
    experiment 0x9e3779b9

let jitter ~seed ~key ~rep ~amplitude =
  let h = mix (mix (seed + (key * 31)) + rep) in
  let unit = float_of_int (h land 0xFFFFFF) /. float_of_int 0xFFFFFF in
  ((2.0 *. unit) -. 1.0) *. amplitude
