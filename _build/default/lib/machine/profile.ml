open Pmi_isa
module Portset = Pmi_portmap.Portset

type t = {
  name : string;
  num_ports : int;
  r_max : int;
  ms_ops_per_cycle : int;
  div_occupancy : int;
  ports_of_base : Iclass.base -> Portset.t;
  fma_shadow : Portset.t;
}

let all_bases =
  [ Iclass.Alu; Iclass.Vec_logic; Iclass.Vec_int_arith; Iclass.Fp_mul_cmp;
    Iclass.Shuffle; Iclass.Vec_sat; Iclass.Fp_add; Iclass.Load;
    Iclass.Vec_shift_imm; Iclass.Vec_mul_hard; Iclass.Scalar_mul;
    Iclass.Fp_round; Iclass.Vec_to_gpr; Iclass.Store ]

let table name num_ports r_max ~ms ~div ~fma_shadow entries =
  let lookup base =
    match List.assoc_opt base entries with
    | Some ports -> Portset.of_list ports
    | None -> invalid_arg ("Profile: missing base class in " ^ name)
  in
  { name;
    num_ports;
    r_max;
    ms_ops_per_cycle = ms;
    div_occupancy = div;
    ports_of_base = lookup;
    fma_shadow = Portset.of_list fma_shadow }

(* The paper's Zen+ layout (Table 2 numbering): FP pipes 0-3, AGUs 4-5
   (stores retire through 5), scalar ALUs 6-9. *)
let zen_plus =
  table "zen+" 10 5 ~ms:4 ~div:4 ~fma_shadow:[ 2 ]
    [ (Iclass.Alu, [ 6; 7; 8; 9 ]);
      (Iclass.Vec_logic, [ 0; 1; 2; 3 ]);
      (Iclass.Vec_int_arith, [ 0; 1; 3 ]);
      (Iclass.Fp_mul_cmp, [ 0; 1 ]);
      (Iclass.Shuffle, [ 1; 2 ]);
      (Iclass.Vec_sat, [ 0; 3 ]);
      (Iclass.Fp_add, [ 2; 3 ]);
      (Iclass.Load, [ 4; 5 ]);
      (Iclass.Vec_shift_imm, [ 2 ]);
      (Iclass.Vec_mul_hard, [ 0 ]);
      (Iclass.Scalar_mul, [ 9 ]);
      (Iclass.Fp_round, [ 3 ]);
      (Iclass.Vec_to_gpr, [ 2 ]);
      (Iclass.Store, [ 5 ]) ]

(* A Zen3-like design: the footnote of §3.5 — same port structure as Zen+
   here, but a 6-IPC frontend and a faster divider.  (The ALU/FP port-
   sharing ambiguity of §4.3 survives even this gap: hiding it needs a
   bottleneck set larger than the frontend width, and the relevant unions
   span 7+ ports.) *)
let zen3 =
  { zen_plus with
    name = "zen3";
    r_max = 6;
    div_occupancy = 3 }

(* A Golden-Cove-like design: 6 sustained IPC, five-wide ALU µops, three
   load ports and two store-data ports (§3.5). *)
let golden_cove =
  table "golden-cove" 12 6 ~ms:4 ~div:5 ~fma_shadow:[ 10 ]
    [ (Iclass.Alu, [ 0; 1; 5; 6; 10 ]);
      (Iclass.Vec_logic, [ 0; 1; 5 ]);
      (Iclass.Vec_int_arith, [ 0; 1 ]);
      (Iclass.Fp_mul_cmp, [ 0; 5 ]);
      (Iclass.Shuffle, [ 1; 5 ]);
      (Iclass.Vec_sat, [ 0; 10 ]);
      (Iclass.Fp_add, [ 5; 10 ]);
      (Iclass.Load, [ 2; 3; 11 ]);
      (Iclass.Vec_shift_imm, [ 1 ]);
      (Iclass.Vec_mul_hard, [ 0 ]);
      (Iclass.Scalar_mul, [ 10 ]);
      (Iclass.Fp_round, [ 5 ]);
      (Iclass.Vec_to_gpr, [ 6 ]);
      (Iclass.Store, [ 4; 9 ]) ]

(* An A64FX-like design: 4-wide decode, µops at most 3 ports wide (§3.5).
   Several one-port classes share a port, so the blocking equivalence
   classes legitimately merge there. *)
let a64fx =
  table "a64fx" 7 4 ~ms:2 ~div:9 ~fma_shadow:[ 1 ]
    [ (Iclass.Alu, [ 4; 5; 6 ]);
      (Iclass.Vec_logic, [ 0; 1; 2 ]);
      (Iclass.Vec_int_arith, [ 0; 1 ]);
      (Iclass.Fp_mul_cmp, [ 0; 2 ]);
      (Iclass.Shuffle, [ 1; 2 ]);
      (Iclass.Vec_sat, [ 0 ]);
      (Iclass.Fp_add, [ 1 ]);
      (Iclass.Load, [ 3; 4 ]);
      (Iclass.Vec_shift_imm, [ 2 ]);
      (Iclass.Vec_mul_hard, [ 0 ]);
      (Iclass.Scalar_mul, [ 6 ]);
      (Iclass.Fp_round, [ 1 ]);
      (Iclass.Vec_to_gpr, [ 2 ]);
      (Iclass.Store, [ 3 ]) ]

let all = [ zen_plus; zen3; golden_cove; a64fx ]

let max_port_set t =
  List.fold_left
    (fun acc base -> max acc (Portset.cardinal (t.ports_of_base base)))
    1 all_bases

let validate t =
  if t.num_ports <= 0 || t.r_max <= 0 || t.ms_ops_per_cycle <= 0
     || t.div_occupancy <= 0
  then invalid_arg ("Profile.validate: non-positive constant in " ^ t.name);
  List.iter
    (fun base ->
       let ports = t.ports_of_base base in
       if Portset.is_empty ports then
         invalid_arg ("Profile.validate: empty port set in " ^ t.name);
       if not (Portset.subset ports (Portset.full t.num_ports)) then
         invalid_arg ("Profile.validate: port out of range in " ^ t.name))
    all_bases;
  if not (Portset.subset t.fma_shadow (Portset.full t.num_ports)) then
    invalid_arg ("Profile.validate: fma shadow out of range in " ^ t.name);
  if t.r_max <= max_port_set t then
    invalid_arg
      ("Profile.validate: §3.4 gap violated in " ^ t.name
       ^ " (frontend must out-run the widest µop)")
