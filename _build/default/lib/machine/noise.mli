(** Deterministic measurement noise.

    Real microbenchmarks are noisy; the paper combats this with medians over
    11 runs and an ε-tolerant comparison (§4).  The simulator reproduces the
    phenomenon with a deterministic hash-based jitter so that every run of
    the reproduction is bit-identical. *)

val hash_experiment : Pmi_portmap.Experiment.t -> int
(** Order-insensitive hash of an experiment's multiset. *)

val jitter : seed:int -> key:int -> rep:int -> amplitude:float -> float
(** A pseudo-random value in [[-amplitude, +amplitude]], a pure function of
    its arguments (splitmix-style integer mixing). *)
