let gap_ok ~r_max ~max_port_set = r_max > max_port_set

let check ~r_max ~max_port_set =
  if not (gap_ok ~r_max ~max_port_set) then
    invalid_arg
      (Printf.sprintf
         "Bottleneck.check: frontend rate %d does not exceed the widest µop \
          port set %d; blocking-based counting would be unsound (§3.4)"
         r_max max_port_set)

let distinguishable_cpi ~r_max ~port_set =
  Printf.sprintf "%.2f CPI at %d ports vs %.2f CPI at %d ports"
    (1.0 /. float_of_int r_max) r_max
    (1.0 /. float_of_int port_set) port_set
