module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Experiment = Pmi_portmap.Experiment
module Mapping = Pmi_portmap.Mapping
module Throughput = Pmi_portmap.Throughput
module Solver = Pmi_smt.Solver

let log = Logs.Src.create "pmi.cegis" ~doc:"counter-example-guided inference"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  num_ports : int;
  r_max : int;
  epsilon : Rat.t;
  max_experiment_size : int;
  max_other_candidates : int;
  max_iterations : int;
  symmetry_breaking : bool;
}

let default_config =
  { num_ports = 10;
    r_max = 5;
    epsilon = Rat.of_ints 2 100;
    max_experiment_size = 5;
    max_other_candidates = 400;
    max_iterations = 400;
    symmetry_breaking = true }

type observation = {
  experiment : Experiment.t;
  cycles : Rat.t;
}

type stats = {
  iterations : int;
  observations : observation list;
  candidates_tried : int;
  theory_lemmas : int;
}

type outcome =
  | Converged of Mapping.t * stats
  | No_consistent_mapping of stats
  | Iteration_limit of stats

let modeled_inverse config mapping experiment =
  Throughput.inverse_bounded ~r_max:config.r_max mapping experiment

let consistent config mapping obs =
  let modeled = modeled_inverse config mapping obs.experiment in
  Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
    ~length:(Experiment.length obs.experiment) modeled obs.cycles

(* Theory check: decode the SAT model, evaluate every observation, and
   learn a footprint lemma for each violated one.  Lemmas are collected in
   [pool] so that later encodings (deterministic variable numbering) can be
   seeded with everything already learned. *)
let theory_check config encoding observations pool model =
  let mapping = Encoding.decode encoding model in
  let lemmas =
    List.filter_map
      (fun obs ->
         if consistent config mapping obs then None
         else begin
           let lemma =
             Encoding.block_footprint encoding model
               (Experiment.schemes obs.experiment)
           in
           Some lemma
         end)
      observations
  in
  pool := !pool @ lemmas;
  lemmas

let fresh_encoding config specs pool =
  let encoding =
    Encoding.create ~num_ports:config.num_ports
      ~symmetry_breaking:config.symmetry_breaking specs
  in
  List.iter (Pmi_smt.Sat.add_clause (Encoding.sat encoding)) !pool;
  encoding

let find_mapping config encoding observations pool =
  let check = theory_check config encoding observations pool in
  match Solver.solve ~check (Encoding.sat encoding) with
  | Solver.Sat model -> Some (Encoding.decode encoding model)
  | Solver.Unsat -> None

(* Multisets of the given schemes, enumerated in order of increasing size
   (the stratified search of §3.3.4), smallest first. *)
let iter_experiments schemes ~max_size f =
  let schemes = Array.of_list schemes in
  let n = Array.length schemes in
  let rec fill size start acc =
    if size = 0 then f (Experiment.of_counts acc)
    else
      for i = start to n - 1 do
        (* Give scheme i between 1 and [size] copies, then recurse on the
           remaining schemes with the remaining size budget. *)
        let rec with_count c =
          if c <= size then begin
            fill (size - c) (i + 1) ((schemes.(i), c) :: acc);
            with_count (c + 1)
          end
        in
        with_count 1
      done
  in
  let rec sizes s =
    if s <= max_size then begin
      fill s 0 [];
      sizes (s + 1)
    end
  in
  sizes 1

exception Found of Experiment.t

let distinguishing_experiment config m1 m2 schemes =
  let sep = Pmi_measure.Harness.Compare.well_separated ~epsilon:config.epsilon in
  match
    iter_experiments schemes ~max_size:config.max_experiment_size (fun e ->
        let t1 = modeled_inverse config m1 e in
        let t2 = modeled_inverse config m2 e in
        if sep ~length:(Experiment.length e) t1 t2 then raise (Found e))
  with
  | () -> None
  | exception Found e -> Some e

let same_mapping specs m1 m2 =
  List.for_all
    (fun (scheme, _) ->
       match (Mapping.find_opt m1 scheme, Mapping.find_opt m2 scheme) with
       | Some a, Some b -> Mapping.equal_usage a b
       | (None | Some _), _ -> false)
    specs

let find_other_mapping config specs observations pool m1 tried_counter =
  let encoding = fresh_encoding config specs pool in
  let sat = Encoding.sat encoding in
  let check = theory_check config encoding observations pool in
  let schemes = List.map fst specs in
  let rec search budget =
    if budget = 0 then begin
      Log.warn (fun m ->
          m "findOtherMapping: candidate budget exhausted; treating as converged");
      None
    end
    else begin
      match Solver.solve ~check sat with
      | Solver.Unsat -> None
      | Solver.Sat model ->
        incr tried_counter;
        let m2 = Encoding.decode encoding model in
        if same_mapping specs m1 m2 then begin
          Pmi_smt.Sat.add_clause sat (Encoding.block_model encoding model);
          search (budget - 1)
        end
        else begin
          match distinguishing_experiment config m1 m2 schemes with
          | Some e -> Some (m2, e)
          | None ->
            (* Indistinguishable within the experiment bound: block this
               candidate for the remainder of the call (§3.3.4). *)
            Pmi_smt.Sat.add_clause sat (Encoding.block_model encoding model);
            search (budget - 1)
        end
    end
  in
  search config.max_other_candidates

(* Canonical flooding experiments used to validate a converged mapping:
   [c×j, i] and [2c×j, i] for every c-port blocking instruction j and every
   instruction i.  The distinguishing-experiment search only measures what
   separates two {e consistent} mappings, so measurements that refute the
   whole model class (the §4.3 anomalies) can stay unobserved; sweeping the
   canonical experiments before declaring convergence closes that gap. *)
let validation_experiments specs =
  let proper =
    List.filter_map
      (fun (s, spec) ->
         match spec with
         | Encoding.Proper c -> Some (s, c)
         | Encoding.Improper _ -> None)
      specs
  in
  let all = List.map fst specs in
  List.concat_map
    (fun (j, c) ->
       List.concat_map
         (fun i ->
            [ Experiment.add i (Experiment.replicate c j);
              Experiment.add i (Experiment.replicate (2 * c) j) ])
         all)
    proper
  |> List.sort_uniq Experiment.compare

let explain ?(config = default_config) ~specs ~observations () =
  let pool = ref [] in
  let encoding = fresh_encoding config specs pool in
  find_mapping config encoding observations pool

let infer ?(config = default_config) ~measure ~specs () =
  let pool = ref [] in
  let observations = ref [] in
  let observe experiment =
    let cycles = measure experiment in
    let obs = { experiment; cycles } in
    observations := !observations @ [ obs ];
    obs
  in
  List.iter (fun (s, _) -> ignore (observe (Experiment.singleton s))) specs;
  let fm_encoding = fresh_encoding config specs pool in
  let tried = ref 0 in
  let finish mk =
    mk
      { iterations = 0;
        observations = !observations;
        candidates_tried = !tried;
        theory_lemmas = List.length !pool }
  in
  let sweep = validation_experiments specs in
  let validate m1 =
    (* The first sweep experiment the converged mapping fails to explain;
       [None] means the convergence is confirmed.  Only one refutation is
       reported per round so that an UNSAT can be traced to a single
       observation (the §4.3 culprit search depends on that). *)
    List.find_opt
      (fun e ->
         if List.exists (fun o -> Experiment.equal o.experiment e) !observations
         then false
         else begin
           let cycles = measure e in
           not
             (Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
                ~length:(Experiment.length e) (modeled_inverse config m1 e)
                cycles)
         end)
      sweep
  in
  let rec loop iteration =
    if iteration > config.max_iterations then
      finish (fun s -> Iteration_limit { s with iterations = iteration - 1 })
    else begin
      match find_mapping config fm_encoding !observations pool with
      | None -> finish (fun s -> No_consistent_mapping { s with iterations = iteration })
      | Some m1 ->
        (match find_other_mapping config specs !observations pool m1 tried with
         | None ->
           (match validate m1 with
            | None -> finish (fun s -> Converged (m1, { s with iterations = iteration }))
            | Some failure ->
              Log.info (fun m ->
                  m "iteration %d: validation experiment %s refutes the \
                     converged mapping" iteration (Experiment.to_string failure));
              ignore (observe failure);
              loop (iteration + 1))
         | Some (_, new_exp) ->
           let obs = observe new_exp in
           Log.info (fun m ->
               m "iteration %d: new experiment %s measured at %s cycles"
                 iteration
                 (Experiment.to_string new_exp)
                 (Rat.to_string obs.cycles));
           loop (iteration + 1))
    end
  in
  loop 1
