(** Pipeline-bottleneck handling (§3.4).

    The port-mapping model assumes functional units are the only throughput
    limit.  Real frontends sustain only [r_max] instructions per cycle; the
    algorithm's checks remain sound only if [r_max] strictly exceeds the
    largest port-set size of any µop, so that flooding a port set is
    distinguishable from hitting the frontend. *)

val gap_ok : r_max:int -> max_port_set:int -> bool
(** The §3.4 requirement: a gap must exist between the frontend rate and
    the widest µop ([r_max > max_port_set]). *)

val check : r_max:int -> max_port_set:int -> unit
(** @raise Invalid_argument when the requirement is violated. *)

val distinguishable_cpi : r_max:int -> port_set:int -> string
(** Human-readable note of the CPI levels the ε must separate (e.g. Zen+:
    0.20 CPI at five ports vs 0.25 CPI at four).  Used in reports. *)
