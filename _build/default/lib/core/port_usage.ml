module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Experiment = Pmi_portmap.Experiment
module Harness = Pmi_measure.Harness

type blocker = {
  scheme : Scheme.t;
  ports : Portset.t;
}

type failure =
  | Unstable of string
  | Non_integral of Portset.t * float

type step = {
  blocker : Scheme.t;
  ports : Portset.t;
  copies : int;
  baseline : Rat.t;
  combined : Rat.t;
  stuck_uops : int;
  surplus : int;
}

type outcome =
  | Usage of {
      usage : Pmi_portmap.Mapping.usage;
      postulated : int;
      spurious : bool;
      witnesses : step list;
    }
  | Failed of failure

type config = {
  tolerance : float;
  spread_threshold : float;
  spurious_margin : int;
}

let default_config =
  { tolerance = 0.35; spread_threshold = 0.04; spurious_margin = 3 }

let blocking_count harness ~port_set_size scheme =
  let uops = Uop_count.postulated_uops harness scheme in
  let tp1 =
    Rat.to_float (Harness.cycles harness (Experiment.singleton scheme))
  in
  min 100
    (max 10
       (max (port_set_size * uops)
          (2 * port_set_size * max 1 (int_of_float (Float.floor tp1)))))

exception Fail of failure

let characterize ?(config = default_config) harness ~blockers scheme =
  let blockers =
    List.sort
      (fun (a : blocker) (b : blocker) ->
         match compare (Portset.cardinal a.ports) (Portset.cardinal b.ports) with
         | 0 -> Portset.compare a.ports b.ports
         | c -> c)
      blockers
  in
  let postulated = Uop_count.postulated_uops harness scheme in
  let stable_cycles experiment =
    let sample = Harness.run harness experiment in
    if sample.Harness.spread_cpi > config.spread_threshold then
      raise (Fail (Unstable (Experiment.to_string experiment)))
    else sample.Harness.cycles
  in
  match
    List.fold_left
      (fun (found, steps) { scheme = blocker; ports } ->
         let size = Portset.cardinal ports in
         let k = blocking_count harness ~port_set_size:size scheme in
         let blocked = Experiment.replicate k blocker in
         let with_i = Experiment.add scheme blocked in
         let baseline = stable_cycles blocked in
         let combined = stable_cycles with_i in
         let measured =
           Uop_count.uops_on_blocked_ports harness ~blocked ~with_i
             ~port_set_size:size
         in
         match Uop_count.round_uops ~tolerance:config.tolerance measured with
         | None -> raise (Fail (Non_integral (ports, Rat.to_float measured)))
         | Some on_ports ->
           (* µops already attributed to proper subsets cannot evade either
              and are included in the measurement (Algorithm 1, ll. 6-8). *)
           let already =
             List.fold_left
               (fun acc (sub, n) ->
                  if Portset.proper_subset sub ports then acc + n else acc)
               0 found
           in
           let surplus = on_ports - already in
           let step =
             { blocker; ports; copies = k; baseline; combined;
               stuck_uops = on_ports; surplus = max 0 surplus }
           in
           ((if surplus > 0 then (ports, surplus) :: found else found),
            step :: steps))
      ([], []) blockers
  with
  | found, steps ->
    let usage = Pmi_portmap.Mapping.normalize_usage found in
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 usage in
    Usage
      { usage;
        postulated;
        spurious = total >= postulated + config.spurious_margin;
        witnesses = List.rev steps }
  | exception Fail f -> Failed f

let pp_witnesses ppf (scheme, steps) =
  Format.fprintf ppf "evidence chain for %s:@." (Scheme.name scheme);
  List.iter
    (fun step ->
       Format.fprintf ppf
         "  flood %-12s with %3d x %-38s %6.3f -> %6.3f cycles"
         (Portset.to_string step.ports) step.copies
         (Scheme.name step.blocker)
         (Rat.to_float step.baseline) (Rat.to_float step.combined);
       if step.stuck_uops = 0 then
         Format.fprintf ppf "   (all µops evade)@."
       else begin
         Format.fprintf ppf "   %d µop%s stuck" step.stuck_uops
           (if step.stuck_uops = 1 then "" else "s");
         if step.surplus <> step.stuck_uops then
           Format.fprintf ppf ", %d new after subtracting subsets" step.surplus;
         if step.surplus > 0 then
           Format.fprintf ppf " => %d x %s" step.surplus
             (Portset.to_string step.ports);
         Format.fprintf ppf "@."
       end)
    steps
