module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Experiment = Pmi_portmap.Experiment
module Harness = Pmi_measure.Harness

let memory_uop_adjustment scheme =
  if Scheme.is_lea scheme || Scheme.is_loading_mov scheme then 0
  else begin
    let contribution width = if width <= 128 then 1 else 2 in
    (* A read-written memory operand is a single operand of the scheme and
       is fused into one address computation on Zen+ (§4.4), so count
       operands, not accesses. *)
    let widths =
      List.filter_map Pmi_isa.Operand.memory_width (Scheme.operands scheme)
    in
    List.fold_left (fun acc w -> acc + contribution w) 0 widths
  end

let postulated_uops harness scheme =
  let macro = Harness.retired_ops harness (Experiment.singleton scheme) in
  macro + memory_uop_adjustment scheme

let uops_on_blocked_ports harness ~blocked ~with_i ~port_set_size =
  let t_with = Harness.cycles harness with_i in
  let t_without = Harness.cycles harness blocked in
  Rat.mul (Rat.sub t_with t_without) (Rat.of_int port_set_size)

let round_uops ~tolerance value =
  let f = Rat.to_float value in
  let nearest = Float.round f in
  if Float.abs (f -. nearest) <= tolerance && nearest >= -0.5 then
    Some (max 0 (int_of_float nearest))
  else None
