(** Canonical port renaming (Table 2: "Inferred ports were renamed to ease
    comparison").

    Port mappings are only defined up to a permutation of the ports; the
    CEGIS result therefore uses solver-chosen numbers.  To compare with the
    documented layout (and to reuse documented port names downstream), this
    module searches a permutation aligning the inferred mapping with a set
    of documented usages.  Ports are matched by their membership signature
    across the documented schemes; when no perfect alignment exists (the
    paper's add-port ambiguity under the 5-IPC ceiling), documented schemes
    are greedily dropped until one does. *)

type alignment = {
  permutation : int array;               (** inferred port -> renamed port *)
  matched : Pmi_isa.Scheme.t list;       (** schemes aligned exactly *)
  dropped : Pmi_isa.Scheme.t list;       (** schemes sacrificed for a
                                             consistent renaming *)
}

val align :
  docs:(Pmi_isa.Scheme.t * Pmi_portmap.Mapping.usage) list ->
  Pmi_portmap.Mapping.t ->
  alignment option
(** [None] only when even the empty documentation set fails, which cannot
    happen for well-formed inputs. *)

val apply : int array -> Pmi_portmap.Mapping.t -> Pmi_portmap.Mapping.t
(** Rename every port of every usage through the permutation. *)

val apply_usage : int array -> Pmi_portmap.Mapping.usage -> Pmi_portmap.Mapping.usage
