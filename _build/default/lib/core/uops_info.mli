(** The original uops.info algorithm (Abel & Reineke 2019; §2.3 of the
    paper), using per-port µop counters.

    This is the reference the paper's counter-free algorithm replaces.  It
    only runs on machines that expose Intel-style counters (simulated via
    {!Pmi_machine.Machine.port_uops}); the repository uses it to validate
    the central claim experimentally: on quirk-free schemes, the counter-free
    characterisation and the counter-based one must coincide. *)

val blocking_instructions :
  Pmi_machine.Machine.t -> Pmi_isa.Scheme.t list ->
  (Pmi_isa.Scheme.t * Pmi_portmap.Portset.t) list
(** §2.3: a scheme is a blocking instruction when it executes as a single
    µop; its blocked port set is read directly off the per-port counters.
    Returns one representative per observed port set, in ascending
    port-set-size order. *)

val characterize :
  Pmi_machine.Machine.t ->
  blockers:(Pmi_isa.Scheme.t * Pmi_portmap.Portset.t) list ->
  Pmi_isa.Scheme.t ->
  Pmi_portmap.Mapping.usage
(** Algorithm 1 verbatim: benchmark the scheme with [k] copies of each
    blocking instruction (ascending port-set size), count the µops observed
    on the blocked ports with the per-port counters, subtract µops already
    attributed to proper subsets. *)

val infer :
  Pmi_machine.Machine.t -> Pmi_isa.Scheme.t list -> Pmi_portmap.Mapping.t
(** Run both phases over a scheme list and assemble the mapping. *)
