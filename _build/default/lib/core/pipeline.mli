(** The end-to-end Zen+ case study (§4).

    Stages:
    + benchmark every scheme individually and classify it (§4.1);
    + filter blocking-instruction candidates into equivalence classes,
      dropping unstable and contradictory schemes and excluding every
      scheme that shares a mnemonic with a dropped one (§4.2);
    + add the improper store blockers and infer the blocking-instruction
      port mapping with the counter-example-guided algorithm; when the
      observations admit no mapping, greedily remove culprit classes (the
      imul / vpmuldq / vmovd anomalies of §4.3) together with all schemes
      sharing their mnemonics;
    + rename ports against the documented layout (Table 2);
    + characterise every remaining scheme against the blocking suite with
      the adapted Algorithm 1 (§4.4) and assemble the final port mapping. *)

type config = {
  blocking : Blocking.config;
  cegis : Cegis.config;
  port_usage : Port_usage.config;
}

val default_config : config

(** Per-scheme verdict (indexed by scheme id in the result). *)
type verdict =
  | Excluded_individual of Blocking.individual
  (** dropped in stage 1 ([Unreliable], [Zero_uop] or [Outside_model]) *)
  | Excluded_pairing
  (** dropped in stage 2, or shares a mnemonic with a dropped candidate *)
  | Excluded_mnemonic
  (** shares a mnemonic with a §4.3 culprit blocking class *)
  | Blocking_class of Pmi_isa.Scheme.t
  (** blocking candidate; the payload is its class representative *)
  | Characterized of { usage : Pmi_portmap.Mapping.usage; spurious : bool }
  | Unstable_result of Port_usage.failure

type funnel = {
  total : int;
  excluded_individual : int;
  after_stage1 : int;            (** the paper's 2,323 *)
  candidates_initial : int;      (** the paper's 691 *)
  excluded_pairing : int;
  after_stage2 : int;            (** the paper's 1,887 *)
  candidates_final : int;        (** the paper's 563 *)
  blocking_classes : int;        (** the paper's 13 *)
  excluded_mnemonic : int;       (** the paper's 68 *)
  considered : int;              (** the paper's 1,819 *)
  regular_pattern : int;         (** the paper's ~70 % *)
  spurious_ms : int;             (** the paper's ~8 % *)
  unstable : int;                (** the paper's ~7 % *)
  inferred : int;                (** the paper's 1,700 *)
}

type t = {
  catalog : Pmi_isa.Catalog.t;
  verdicts : verdict array;
  filtering : Blocking.filtering;
  removed_classes : Blocking.klass list;     (** §4.3 culprits *)
  blocker_mapping : Pmi_portmap.Mapping.t;   (** CEGIS result, renamed *)
  alignment : Relabel.alignment option;
  improper : Pmi_isa.Scheme.t list;          (** store blockers used *)
  blockers : Port_usage.blocker list;        (** the Algorithm-1 suite:
                                                 class representatives plus
                                                 the store blocker, with
                                                 renamed ports *)
  cegis_stats : Cegis.stats option;
  mapping : Pmi_portmap.Mapping.t;           (** the full final mapping *)
  funnel : funnel;
}

val run : ?config:config -> Pmi_measure.Harness.t -> t
(** Run the whole study on the harness's machine.  Improper store blockers
    are located in the catalog by shape (a storing [mov m32] and a storing
    128-bit vector move); when absent (reduced test catalogs), the store
    port is simply not blocked. *)

val verdict : t -> Pmi_isa.Scheme.t -> verdict

val pp_funnel : Format.formatter -> funnel -> unit
