type 'a t = {
  mutable items : 'a array;
  mutable len : int;
}

let create () = { items = [||]; len = 0 }

let length v = v.len

let push v x =
  if v.len = Array.length v.items then begin
    let cap = max 8 (2 * Array.length v.items) in
    let items = Array.make cap x in
    Array.blit v.items 0 items 0 v.len;
    v.items <- items
  end;
  v.items.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.items.(i)

let iter_from start f v =
  for i = max 0 start to v.len - 1 do
    f v.items.(i)
  done

let iter f v = iter_from 0 f v

let exists p v =
  let rec go i = i < v.len && (p v.items.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (fun i -> v.items.(i))
