(** A minimal growable vector (amortised O(1) push).

    Replaces the quadratic [xs := !xs @ [x]] accumulation patterns on the
    CEGIS hot path; elements keep insertion order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit

val iter_from : int -> ('a -> unit) -> 'a t -> unit
(** [iter_from i f v] applies [f] to elements [i .. length v - 1], in
    order; used to sync newly learned lemmas into a persistent solver. *)

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
