module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Machine = Pmi_machine.Machine

let observed_ports machine experiment =
  let per_port = Machine.port_uops machine experiment in
  let ports = ref Portset.empty in
  Array.iteri
    (fun k mass -> if Rat.sign mass > 0 then ports := Portset.add k !ports)
    per_port;
  !ports

let blocking_instructions machine schemes =
  let seen = Hashtbl.create 16 in
  let blockers = ref [] in
  List.iter
    (fun s ->
       let e = Experiment.singleton s in
       if Machine.true_uop_count machine e = 1 then begin
         (* Benchmark the scheme alone; the per-port counters show every
            port its µop can use (§2.3). *)
         let ports = observed_ports machine (Experiment.replicate 8 s) in
         if not (Portset.is_empty ports || Hashtbl.mem seen ports) then begin
           Hashtbl.add seen ports ();
           blockers := (s, ports) :: !blockers
         end
       end)
    schemes;
  List.sort
    (fun (_, a) (_, b) ->
       match compare (Portset.cardinal a) (Portset.cardinal b) with
       | 0 -> Portset.compare a b
       | c -> c)
    !blockers

(* The uops.info k heuristic (§2.3). *)
let blocking_count machine ~port_set_size scheme =
  let e = Experiment.singleton scheme in
  let uops = Machine.true_uop_count machine e in
  let tp1 = Rat.to_float (Machine.true_inverse machine e) in
  min 100
    (max 10
       (max (port_set_size * uops)
          (2 * port_set_size * max 1 (int_of_float (Float.floor tp1)))))

let characterize machine ~blockers scheme =
  let blockers =
    List.sort
      (fun (_, a) (_, b) ->
         match compare (Portset.cardinal a) (Portset.cardinal b) with
         | 0 -> Portset.compare a b
         | c -> c)
      blockers
  in
  let found =
    List.fold_left
      (fun found (blocker, pu) ->
         let size = Portset.cardinal pu in
         let k = blocking_count machine ~port_set_size:size scheme in
         let e = Experiment.add scheme (Experiment.replicate k blocker) in
         (* Per-port counters: µops observed on the blocked ports. *)
         let per_port = Machine.port_uops machine e in
         let on_pu =
           List.fold_left
             (fun acc p -> Rat.add acc per_port.(p))
             Rat.zero (Portset.to_list pu)
         in
         (* Algorithm 1, l. 5: subtract the k blocking instructions... *)
         let surplus_f = Rat.to_float (Rat.sub on_pu (Rat.of_int k)) in
         let surplus = int_of_float (Float.round surplus_f) in
         (* ...and the µops already attributed to proper subsets (l. 6-8). *)
         let already =
           List.fold_left
             (fun acc (sub, n) ->
                if Portset.proper_subset sub pu then acc + n else acc)
             0 found
         in
         let fresh = surplus - already in
         if fresh > 0 then (pu, fresh) :: found else found)
      [] blockers
  in
  Mapping.normalize_usage found

let infer machine schemes =
  let blockers = blocking_instructions machine schemes in
  let mapping = Mapping.create ~num_ports:(Machine.num_ports machine) in
  List.iter
    (fun s ->
       let usage = characterize machine ~blockers s in
       if usage <> [] then Mapping.set mapping s usage)
    schemes;
  mapping
