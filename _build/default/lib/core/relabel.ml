module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping

type alignment = {
  permutation : int array;
  matched : Scheme.t list;
  dropped : Scheme.t list;
}

let apply_usage permutation usage =
  Mapping.normalize_usage
    (List.map
       (fun (ports, n) ->
          let renamed =
            List.fold_left
              (fun acc p -> Portset.add permutation.(p) acc)
              Portset.empty (Portset.to_list ports)
          in
          (renamed, n))
       usage)

let apply permutation mapping =
  let out = Mapping.create ~num_ports:(Mapping.num_ports mapping) in
  List.iter
    (fun s -> Mapping.set out s (apply_usage permutation (Mapping.usage mapping s)))
    (Mapping.schemes mapping);
  out

(* The possible pairings of inferred µops with documented µops of one
   scheme: µops can only correspond when their port counts agree. *)
let pairings inferred documented =
  let rec go inferred documented =
    match inferred with
    | [] -> if documented = [] then [ [] ] else []
    | iu :: rest ->
      List.concat_map
        (fun du ->
           if Portset.cardinal (fst iu) = Portset.cardinal (fst du)
           && snd iu = snd du
           then
             let remaining = List.filter (fun x -> x != du) documented in
             List.map (fun tail -> (fst iu, fst du) :: tail) (go rest remaining)
           else [])
        documented
  in
  (* Expand multiplicities so each µop instance pairs individually; with
     the tiny usages involved (1-2 µops) this stays trivial. *)
  let expand usage = List.concat_map (fun (p, n) -> List.init n (fun _ -> (p, 1))) usage in
  go (expand inferred) (expand documented)

(* Check one selection of µop pairs: ports match when their membership
   signatures across all pairs coincide; the permutation then maps ports
   within equal-signature groups. *)
let solve_signature num_ports pairs =
  let sig_of side port =
    List.map
      (fun (inf, doc) ->
         let set = match side with `Inferred -> inf | `Documented -> doc in
         Portset.mem port set)
      pairs
  in
  let inferred_groups = Hashtbl.create 8 in
  let documented_groups = Hashtbl.create 8 in
  for p = 0 to num_ports - 1 do
    let si = sig_of `Inferred p in
    let sd = sig_of `Documented p in
    Hashtbl.replace inferred_groups si
      (p :: (try Hashtbl.find inferred_groups si with Not_found -> []));
    Hashtbl.replace documented_groups sd
      (p :: (try Hashtbl.find documented_groups sd with Not_found -> []))
  done;
  let ok =
    Hashtbl.fold
      (fun s ports acc ->
         acc
         && (match Hashtbl.find_opt documented_groups s with
             | Some ports' -> List.length ports = List.length ports'
             | None -> false))
      inferred_groups true
  in
  if not ok then None
  else begin
    let permutation = Array.make num_ports (-1) in
    Hashtbl.iter
      (fun s ports ->
         let targets = Hashtbl.find documented_groups s in
         List.iter2 (fun p q -> permutation.(p) <- q) ports targets)
      inferred_groups;
    Some permutation
  end

let try_constraints num_ports constraints =
  (* Backtrack over the µop pairing choice of each constraint. *)
  let rec go acc = function
    | [] -> solve_signature num_ports acc
    | options :: rest ->
      let rec try_options = function
        | [] -> None
        | choice :: more ->
          (match go (acc @ choice) rest with
           | Some p -> Some p
           | None -> try_options more)
      in
      try_options options
  in
  go [] constraints

let popcount =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0

let align ~docs mapping =
  let num_ports = Mapping.num_ports mapping in
  let items =
    List.filter_map
      (fun (scheme, doc_usage) ->
         match Mapping.find_opt mapping scheme with
         | None -> None
         | Some inferred ->
           (match pairings inferred doc_usage with
            | [] -> Some (scheme, None)       (* structurally incompatible *)
            | options -> Some (scheme, Some options)))
      docs
  in
  let schemes = Array.of_list items in
  let n = Array.length schemes in
  (* Search drop sets in order of increasing size. *)
  let masks = List.init (1 lsl n) Fun.id in
  let masks = List.sort (fun a b -> compare (popcount a) (popcount b)) masks in
  let rec try_masks = function
    | [] -> None
    | mask :: rest ->
      let kept = ref [] in
      let matched = ref [] in
      let dropped = ref [] in
      Array.iteri
        (fun i (scheme, options) ->
           if mask land (1 lsl i) = 0 then begin
             match options with
             | Some opts ->
               kept := opts :: !kept;
               matched := scheme :: !matched
             | None ->
               (* Incompatible constraints can never be kept. *)
               kept := [ [] ] :: !kept;
               dropped := scheme :: !dropped
           end
           else dropped := (scheme : Scheme.t) :: !dropped)
        schemes;
      (match try_constraints num_ports (List.rev !kept) with
       | Some permutation ->
         Some
           { permutation;
             matched = List.rev !matched;
             dropped = List.rev !dropped }
       | None -> try_masks rest)
  in
  try_masks masks
