(** Port-usage characterisation of arbitrary schemes (Algorithm 1 + §3.1).

    This is the uops.info algorithm with its per-port µop counters replaced
    by the throughput-difference argument: for each blocking class, the
    instruction under investigation runs together with enough copies of the
    blocking instruction to flood the class's ports, and the slowdown over
    the flooded baseline reveals how many of its µops cannot evade those
    ports.  Previously characterised µops of proper subsets are subtracted,
    exactly as in Algorithm 1. *)

type blocker = {
  scheme : Pmi_isa.Scheme.t;        (** instruction replicated to flood *)
  ports : Pmi_portmap.Portset.t;    (** ports it blocks (after renaming) *)
}

type failure =
  | Unstable of string              (** spread beyond the threshold *)
  | Non_integral of Pmi_portmap.Portset.t * float
  (** the measured µop count on the given port set was not close to an
      integer: the scheme falls outside the port-mapping model *)

(** One flooding experiment of Algorithm 1 — the witness that justifies a
    µop-count conclusion ("a key benefit of this port mapping inference
    algorithm is that the performed microbenchmarks serve as witnesses for
    the result", §2.3). *)
type step = {
  blocker : Pmi_isa.Scheme.t;
  ports : Pmi_portmap.Portset.t;
  copies : int;                        (** the [k] of Algorithm 1 *)
  baseline : Pmi_numeric.Rat.t;        (** tp⁻¹ of the flooded ports alone *)
  combined : Pmi_numeric.Rat.t;        (** tp⁻¹ with the instruction added *)
  stuck_uops : int;                    (** µops that could not evade *)
  surplus : int;                       (** after subtracting proper subsets *)
}

type outcome =
  | Usage of {
      usage : Pmi_portmap.Mapping.usage;
      postulated : int;             (** §4.1.1 postulate for comparison *)
      spurious : bool;              (** far more µops found than counted:
                                        the microcode-sequencer signature
                                        of §4.4 *)
      witnesses : step list;        (** every flooding experiment performed,
                                        in ascending port-set order *)
    }
  | Failed of failure

type config = {
  tolerance : float;            (** µop-count rounding tolerance *)
  spread_threshold : float;
  spurious_margin : int;        (** µops above the postulate that trigger
                                    the [spurious] flag *)
}

val default_config : config

val blocking_count :
  Pmi_measure.Harness.t -> port_set_size:int -> Pmi_isa.Scheme.t -> int
(** The uops.info [k] heuristic:
    [min(100, max(10, |pu|·µopsOf(i), 2·|pu|·max(1, ⌊tp⁻¹(\[i\])⌋)))]. *)

val characterize :
  ?config:config ->
  Pmi_measure.Harness.t ->
  blockers:blocker list ->
  Pmi_isa.Scheme.t ->
  outcome
(** Characterise one scheme against the suite of blocking instructions
    (sorted internally by ascending port-set size). *)

val pp_witnesses :
  Format.formatter -> Pmi_isa.Scheme.t * step list -> unit
(** Render the evidence chain in the style of the paper's examples:
    which experiment was run, what it measured, and what was concluded. *)
