module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Experiment = Pmi_portmap.Experiment
module Harness = Pmi_measure.Harness

type config = {
  epsilon : Rat.t;
  spread_threshold : float;
  port_tolerance : float;
  max_ports : int;
  r_max : int;
}

let default_config =
  { epsilon = Harness.Compare.default_epsilon;
    spread_threshold = 0.04;
    port_tolerance = 0.12;
    max_ports = 4;
    r_max = 5 }

type individual =
  | Hardwired
  | Unreliable
  | Zero_uop
  | Outside_model
  | Candidate of int
  | Multi_uop of int

let has_hardwired_operand scheme =
  List.exists
    (fun op ->
       match op.Pmi_isa.Operand.kind with
       | Pmi_isa.Operand.Gpr_high -> true
       | Pmi_isa.Operand.Gpr _ | Pmi_isa.Operand.Vec _ | Pmi_isa.Operand.Mem _
       | Pmi_isa.Operand.Imm _ -> false)
    (Pmi_isa.Scheme.operands scheme)

let classify_individual ?(config = default_config) harness scheme =
  if has_hardwired_operand scheme then Hardwired
  else begin
  let sample = Harness.run harness (Experiment.singleton scheme) in
  if sample.Harness.spread_cpi > config.spread_threshold then Unreliable
  else begin
    let postulated = Uop_count.postulated_uops harness scheme in
    let cycles = Rat.to_float sample.Harness.cycles in
    if cycles > float_of_int (max postulated 1) +. config.port_tolerance then
      (* No port mapping over [postulated] µops can be this slow: the
         divider-style non-pipelined schemes of §4.1.2. *)
      Outside_model
    else if postulated >= 2 then Multi_uop postulated
    else begin
      let throughput = 1.0 /. Rat.to_float sample.Harness.cycles in
      if throughput >= float_of_int config.r_max -. config.port_tolerance then
        (* Streams at the frontend limit: no port usage to observe. *)
        Zero_uop
      else begin
        let n = int_of_float (Float.round throughput) in
        if
          n >= 1 && n <= config.max_ports
          && Float.abs (throughput -. float_of_int n) <= config.port_tolerance
        then Candidate n
        else Outside_model
      end
    end
  end
  end

type klass = {
  port_count : int;
  representative : Scheme.t;
  members : Scheme.t list;
}

type filtering = {
  classes : klass list;
  unstable : Scheme.t list;
  contradictory : Scheme.t list;
}

type pair_result = Additive | Not_additive | Unstable_pair

let measure_pair config harness i j =
  let sample = Harness.run harness (Experiment.of_list [ i; j ]) in
  if sample.Harness.spread_cpi > config.spread_threshold then Unstable_pair
  else begin
    let ti = Harness.cycles harness (Experiment.singleton i) in
    let tj = Harness.cycles harness (Experiment.singleton j) in
    if
      Harness.Compare.cpi_equal ~epsilon:config.epsilon ~length:2
        sample.Harness.cycles (Rat.add ti tj)
    then Additive
    else Not_additive
  end

let additive ?(config = default_config) harness i j =
  measure_pair config harness i j = Additive

(* Union-find over array indices. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(ri) <- rj

(* Process one group of candidates that share a port-set size. *)
let process_group config harness group =
  let members = Array.of_list group in
  let n = Array.length members in
  let adjacency = Array.make_matrix n n false in
  let unstable_pair = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match measure_pair config harness members.(i) members.(j) with
      | Additive ->
        adjacency.(i).(j) <- true;
        adjacency.(j).(i) <- true
      | Not_additive -> ()
      | Unstable_pair ->
        unstable_pair.(i).(j) <- true;
        unstable_pair.(j).(i) <- true
    done
  done;
  (* A candidate whose pairings are mostly unstable cannot be trusted.
     Unstable schemes destabilise every pairing, including those of
     innocent partners, so the exclusion peels greedily: drop the worst
     destabiliser, discount its pairings, repeat.  A small group of adds
     measured against as many cmovs keeps its adds this way. *)
  let alive = Array.make n true in
  let unstable = ref [] in
  let rec peel () =
    let count i =
      let c = ref 0 and total = ref 0 in
      for j = 0 to n - 1 do
        if j <> i && alive.(j) then begin
          incr total;
          if unstable_pair.(i).(j) then incr c
        end
      done;
      (!c, !total)
    in
    let worst = ref (-1) in
    let worst_count = ref 0 in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let c, total = count i in
        if total > 0 && 2 * c > total && c > !worst_count then begin
          worst := i;
          worst_count := c
        end
      end
    done;
    if !worst >= 0 then begin
      alive.(!worst) <- false;
      unstable := members.(!worst) :: !unstable;
      peel ()
    end
  in
  peel ();
  (* Triangle offenders: additive with two candidates that are not additive
     with each other (the fma phenomenon, §4.2).  Repeatedly drop every
     candidate involved in strictly more conflict triangles than its
     neighbours until the additivity relation is transitive. *)
  let contradictory = ref [] in
  let rec prune () =
    let triangles = Array.make n 0 in
    let any = ref false in
    for s = 0 to n - 1 do
      if alive.(s) then begin
        let neighbours =
          List.filter (fun k -> k <> s && alive.(k) && adjacency.(s).(k))
            (List.init n Fun.id)
        in
        List.iteri
          (fun idx i ->
             List.iteri
               (fun jdx j ->
                  if jdx > idx && not adjacency.(i).(j) then begin
                    triangles.(s) <- triangles.(s) + 1;
                    any := true
                  end)
               neighbours)
          neighbours
      end
    done;
    if !any then begin
      (* Drop the primary offenders: everything within a factor of two of
         the worst triangle count.  Connector schemes like fma sit in vastly
         more conflict triangles than the classes they bridge, so this
         removes a whole family per round and converges quickly. *)
      let worst = Array.fold_left max 0 triangles in
      for s = 0 to n - 1 do
        if alive.(s) && 2 * triangles.(s) > worst then begin
          alive.(s) <- false;
          contradictory := members.(s) :: !contradictory
        end
      done;
      prune ()
    end
  in
  prune ();
  (* Equivalence classes are the connected components of what is now a
     disjoint union of cliques. *)
  let parent = Array.init n Fun.id in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if alive.(i) && alive.(j) && adjacency.(i).(j) then union parent i j
    done
  done;
  let classes = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if alive.(i) then begin
      let root = find parent i in
      let existing = try Hashtbl.find classes root with Not_found -> [] in
      Hashtbl.replace classes root (members.(i) :: existing)
    end
  done;
  let class_list =
    Hashtbl.fold (fun _ ms acc -> List.rev ms :: acc) classes []
  in
  (class_list, List.rev !unstable, List.rev !contradictory)

let default_preference =
  [ "add"; "vpor"; "vpaddd"; "vminps"; "vbroadcastss"; "vpaddsw"; "vaddps";
    "mov"; "vpslld"; "vpmuldq"; "imul"; "vroundps"; "vmovd" ]

let representative_key prefer scheme =
  let mnemonic_rank =
    let rec go i = function
      | [] -> List.length prefer
      | m :: rest -> if m = Scheme.mnemonic scheme then i else go (i + 1) rest
    in
    go 0 prefer
  in
  let width_rank =
    (* Prefer the 32-bit / plain-XMM forms the paper's Table 1 displays. *)
    let ops = Scheme.operands scheme in
    let has32 =
      List.exists
        (fun op ->
           match op.Pmi_isa.Operand.kind with
           | Pmi_isa.Operand.Gpr 32 | Pmi_isa.Operand.Vec 128
           | Pmi_isa.Operand.Mem 32 -> true
           | Pmi_isa.Operand.Gpr _ | Pmi_isa.Operand.Gpr_high
           | Pmi_isa.Operand.Vec _ | Pmi_isa.Operand.Mem _
           | Pmi_isa.Operand.Imm _ -> false)
        ops
    in
    if has32 then 0 else 1
  in
  (mnemonic_rank, width_rank, Scheme.id scheme)

let filter_candidates ?(config = default_config) ?(prefer = default_preference)
    harness candidates =
  (* Candidates can only be redundant when their port sets have equal size,
     so the pairing stage works one size group at a time. *)
  let by_count = Hashtbl.create 8 in
  List.iter
    (fun (scheme, count) ->
       let existing = try Hashtbl.find by_count count with Not_found -> [] in
       Hashtbl.replace by_count count (scheme :: existing))
    candidates;
  let groups =
    Hashtbl.fold (fun count ms acc -> (count, List.rev ms) :: acc) by_count []
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let classes = ref [] in
  let unstable = ref [] in
  let contradictory = ref [] in
  List.iter
    (fun (count, group) ->
       let class_members, uns, contra = process_group config harness group in
       unstable := !unstable @ uns;
       contradictory := !contradictory @ contra;
       List.iter
         (fun members ->
            let representative =
              List.fold_left
                (fun best s ->
                   if representative_key prefer s < representative_key prefer best
                   then s
                   else best)
                (List.hd members) members
            in
            classes := { port_count = count; representative; members } :: !classes)
         class_members)
    groups;
  let classes =
    List.sort
      (fun a b ->
         match compare b.port_count a.port_count with
         | 0 -> compare (Scheme.id a.representative) (Scheme.id b.representative)
         | c -> c)
      !classes
  in
  { classes; unstable = !unstable; contradictory = !contradictory }
