(** Counting µops without per-port counters (§3.1, §4.1.1).

    AMD's "Retired Uops" counter (PMCx0C1) counts {e macro-ops}: memory
    µops are fused into their macro-op.  The paper postulates a macro-op to
    µop correspondence — one extra µop per ≤128-bit memory operand, two per
    256-bit operand, excluding [lea] and loading [mov]s — with the measured
    correction that storing movs {e do} carry an extra µop (contradicting
    the Software Optimization Guide).

    The throughput-difference argument of §3.1 replaces Intel's per-port
    counters: if an experiment [e = k×B + i] with blocking instructions [B]
    for port set [pu] is slower than [e' = k×B] alone, every extra
    [1/|pu|] cycles is one µop of [i] that cannot evade [pu]. *)

val postulated_uops : Pmi_measure.Harness.t -> Pmi_isa.Scheme.t -> int
(** Macro-op counter reading for [\[i\]] plus the §4.1.1 memory-operand
    adjustment. *)

val memory_uop_adjustment : Pmi_isa.Scheme.t -> int
(** Just the adjustment term (0 for register-only schemes, [lea], loads). *)

val uops_on_blocked_ports :
  Pmi_measure.Harness.t ->
  blocked:Pmi_portmap.Experiment.t ->
  with_i:Pmi_portmap.Experiment.t ->
  port_set_size:int ->
  Pmi_numeric.Rat.t
(** [(tp⁻¹(with_i) - tp⁻¹(blocked)) · port_set_size]: the (possibly
    fractional, if measurements misbehave) number of µops of the
    instruction under investigation that execute on the blocked ports. *)

val round_uops : tolerance:float -> Pmi_numeric.Rat.t -> int option
(** Round a measured µop count to the nearest non-negative integer, or
    [None] if it is further than [tolerance] from every integer (a sign
    that the scheme falls outside the port-mapping model). *)
