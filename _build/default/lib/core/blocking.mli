(** Identifying and filtering blocking instructions (§3.2, §4.1-§4.2).

    Stage 1 benchmarks every instruction scheme individually: a scheme is a
    blocking-instruction candidate if it executes as a single µop whose
    throughput reveals an integral number of ports.  Schemes with unreliable
    measurements, µop-free execution (nops, eliminated movs) or throughput
    outside the model (non-pipelined dividers) are excluded, reproducing
    §4.1.2.

    Stage 2 measures pairs of candidates with equally sized port sets:
    their inverse throughputs are additive exactly when their port sets
    coincide.  Candidates whose pairings are unstable are dropped (cmov,
    AES, vcvt, double-precision multiplies), and candidates that produce
    {e contradictory} equivalence information — additive with two classes
    that are not additive with each other, the fma phenomenon of §4.2 — are
    detected as triangle offenders and dropped as well. *)

type config = {
  epsilon : Pmi_numeric.Rat.t;  (** CPI tolerance for throughput equality *)
  spread_threshold : float;     (** CPI spread above which a measurement is
                                    considered unreliable *)
  port_tolerance : float;       (** how close 1/tp⁻¹ must be to an integer *)
  max_ports : int;              (** largest port-set size of any µop *)
  r_max : int;                  (** frontend throughput in instructions/cycle *)
}

val default_config : config

(** Outcome of benchmarking one scheme individually (§4.1). *)
type individual =
  | Hardwired               (** AH/DH-style operands: no dependency-free
                                experiment can be built (§4.1.2) *)
  | Unreliable              (** spread too large (mov64-imm) *)
  | Zero_uop                (** retires without using ports (nop, mov r,r) *)
  | Outside_model           (** non-integral port count, or slower than any
                                mapping over its µops permits (FP dividers) *)
  | Candidate of int        (** single µop usable on the given #ports *)
  | Multi_uop of int        (** postulated µop count ≥ 2 *)

val classify_individual :
  ?config:config -> Pmi_measure.Harness.t -> Pmi_isa.Scheme.t -> individual

(** An equivalence class of blocking instructions. *)
type klass = {
  port_count : int;
  representative : Pmi_isa.Scheme.t;
  members : Pmi_isa.Scheme.t list;  (** includes the representative *)
}

type filtering = {
  classes : klass list;                       (** sorted by descending
                                                  port count, then id *)
  unstable : Pmi_isa.Scheme.t list;           (** dropped: unstable pairs *)
  contradictory : Pmi_isa.Scheme.t list;      (** dropped: triangle offenders *)
}

val filter_candidates :
  ?config:config ->
  ?prefer:string list ->
  Pmi_measure.Harness.t ->
  (Pmi_isa.Scheme.t * int) list ->
  filtering
(** [filter_candidates harness candidates] runs the pairing stage on
    [(scheme, port_count)] candidates.  [prefer] orders representative
    selection by mnemonic (earlier is better); ties break towards lower
    variant and id. *)

val additive :
  ?config:config ->
  Pmi_measure.Harness.t ->
  Pmi_isa.Scheme.t -> Pmi_isa.Scheme.t ->
  bool
(** The §3.2 redundancy check: [tp⁻¹(\[i,j\]) = tp⁻¹(\[i\]) + tp⁻¹(\[j\])]
    up to ε. *)
