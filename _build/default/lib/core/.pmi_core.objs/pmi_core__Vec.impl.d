lib/core/vec.ml: Array List
