lib/core/relabel.ml: Array Fun Hashtbl List Pmi_isa Pmi_portmap
