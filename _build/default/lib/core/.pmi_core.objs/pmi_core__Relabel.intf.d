lib/core/relabel.mli: Pmi_isa Pmi_portmap
