lib/core/encoding.mli: Pmi_isa Pmi_portmap Pmi_smt
