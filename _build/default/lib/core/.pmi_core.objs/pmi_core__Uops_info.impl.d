lib/core/uops_info.ml: Array Float Hashtbl List Pmi_isa Pmi_machine Pmi_numeric Pmi_portmap
