lib/core/uops_info.mli: Pmi_isa Pmi_machine Pmi_portmap
