lib/core/cegis.ml: Array Atomic Encoding List Logs Pmi_isa Pmi_measure Pmi_numeric Pmi_parallel Pmi_portmap Pmi_smt Vec
