lib/core/cegis.ml: Array Atomic Buffer Encoding Fun List Logs Pmi_isa Pmi_measure Pmi_numeric Pmi_parallel Pmi_portmap Pmi_smt Vec
