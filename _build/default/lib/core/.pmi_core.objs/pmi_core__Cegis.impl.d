lib/core/cegis.ml: Array Encoding List Logs Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap Pmi_smt
