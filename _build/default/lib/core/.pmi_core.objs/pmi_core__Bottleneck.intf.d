lib/core/bottleneck.mli:
