lib/core/encoding.ml: Array Card List Lit Pmi_isa Pmi_portmap Pmi_smt Sat
