lib/core/cegis.mli: Encoding Pmi_isa Pmi_numeric Pmi_portmap Pmi_smt
