lib/core/uop_count.ml: Float List Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap
