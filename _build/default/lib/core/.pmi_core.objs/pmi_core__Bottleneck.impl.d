lib/core/bottleneck.ml: Printf
