lib/core/vec.mli:
