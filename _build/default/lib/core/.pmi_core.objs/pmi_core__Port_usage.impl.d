lib/core/port_usage.ml: Float Format List Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap Uop_count
