lib/core/port_usage.mli: Format Pmi_isa Pmi_measure Pmi_numeric Pmi_portmap
