lib/core/blocking.mli: Pmi_isa Pmi_measure Pmi_numeric
