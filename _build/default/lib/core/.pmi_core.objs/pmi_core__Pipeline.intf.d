lib/core/pipeline.mli: Blocking Cegis Format Pmi_isa Pmi_measure Pmi_portmap Port_usage Relabel
