lib/parallel/pool.mli:
