lib/parallel/pool.ml: Array Atomic Domain String Sys
