(** A small chunked work pool over OCaml 5 domains.

    No dependencies beyond the stdlib.  Work is claimed in contiguous index
    chunks off one atomic cursor; the calling domain participates as a
    worker, so requesting one domain runs sequentially with zero spawns.

    The work function is the caller's responsibility to make thread-safe:
    it must only read shared state (or write to disjoint slots, as the
    combinators here do).  In this codebase that means preparing
    {!Pmi_portmap.Oracle} tables before fanning out, and never routing a
    {!Pmi_measure.Harness} (whose cache is a plain hashtable) through a
    pool with more than one domain. *)

val default_domains : unit -> int
(** [PMI_DOMAINS] if set (clamped to ≥ 1), otherwise
    [Domain.recommended_domain_count] capped at 8. *)

val parallel_for : ?domains:int -> n:int -> (int -> unit) -> unit
(** Run [f i] for [0 <= i < n] across the pool.  [domains] defaults to
    {!default_domains}; it is clamped to [n].  If a work item raises, the
    workers are still joined and the first exception observed is re-raised
    in the caller (other items may have run). *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val race : ?domains:int -> ((unit -> bool) -> 'a option) array -> 'a option
(** First-finisher-wins: run every task across the pool, each receiving a
    [stop] callback that turns true once some task has produced a value;
    tasks should poll it and bail out with [None].  Returns the first value
    produced (a non-deterministic choice under true parallelism), or [None]
    if every task returned [None].  With one domain the tasks run
    sequentially in order and [stop] never fires. *)

val find_first_index : ?domains:int -> ('a -> bool) -> 'a array -> int option
(** The {e minimal} index satisfying the predicate (deterministic even
    though evaluation order is not).  Indices at or beyond the best hit so
    far are skipped, so the predicate is not evaluated on every element. *)
