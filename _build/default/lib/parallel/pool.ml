(* Chunked work pool over OCaml 5 domains.

   Work items are claimed in contiguous chunks off a single atomic cursor:
   cheap enough for fine-grained items, and preserving enough locality that
   per-item results land in disjoint cache lines most of the time.  The
   calling domain participates as a worker, so [domains = 1] runs entirely
   in the caller with no spawns. *)

let env_domains = "PMI_DOMAINS"

let default_domains () =
  match Sys.getenv_opt env_domains with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with Failure _ -> 1)
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let chunk_for ~items ~domains =
  (* Aim for ~8 chunks per worker so stragglers rebalance, chunk >= 1. *)
  max 1 (items / (8 * domains))

let run_workers ~domains body =
  if domains <= 1 then body ()
  else begin
    let error = Atomic.make None in
    let guarded () =
      try body () with
      | e -> ignore (Atomic.compare_and_set error None (Some e))
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn guarded) in
    guarded ();
    Array.iter Domain.join spawned;
    match Atomic.get error with
    | Some e -> raise e
    | None -> ()
  end

let parallel_for ?domains ~n f =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let domains = min domains (max 1 n) in
  if n <= 0 then ()
  else if domains = 1 then
    for i = 0 to n - 1 do f i done
  else begin
    let chunk = chunk_for ~items:n ~domains in
    let next = Atomic.make 0 in
    run_workers ~domains (fun () ->
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do f i done;
            loop ()
          end
        in
        loop ())
  end

let map_array ?domains f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for ?domains ~n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let race ?domains tasks =
  let n = Array.length tasks in
  if n = 0 then None
  else begin
    let domains =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let domains = min domains n in
    if domains = 1 then begin
      (* Sequential fallback: try the tasks in order. *)
      let never () = false in
      let rec go i =
        if i >= n then None
        else
          match tasks.(i) never with
          | Some _ as r -> r
          | None -> go (i + 1)
      in
      go 0
    end
    else begin
      let winner = Atomic.make None in
      let stop () = Atomic.get winner <> None in
      parallel_for ~domains ~n (fun i ->
          if not (stop ()) then
            match tasks.(i) stop with
            | Some _ as r -> ignore (Atomic.compare_and_set winner None r)
            | None -> ());
      Atomic.get winner
    end
  end

let find_first_index ?domains p arr =
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let best = Atomic.make max_int in
    let rec lower i =
      let b = Atomic.get best in
      if i < b && not (Atomic.compare_and_set best b i) then lower i
    in
    parallel_for ?domains ~n (fun i ->
        (* Indices at or past the best hit so far cannot improve it. *)
        if i < Atomic.get best && p arr.(i) then lower i);
    match Atomic.get best with
    | i when i = max_int -> None
    | i -> Some i
  end
