lib/portmap/experiment.ml: Format Hashtbl List Pmi_isa Printf Stdlib String
