lib/portmap/lp_model.ml: Array List Mapping Pmi_numeric Portset Throughput
