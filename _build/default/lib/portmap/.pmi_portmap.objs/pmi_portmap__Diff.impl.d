lib/portmap/diff.ml: Format Hashtbl List Mapping Option Pmi_isa
