lib/portmap/mapping_io.ml: Array Buffer Hashtbl List Mapping Pmi_isa Portset Printf String
