lib/portmap/mapping.ml: Format Hashtbl List Pmi_isa Portset Printf String
