lib/portmap/mapping_io.mli: Mapping Pmi_isa
