lib/portmap/diff.mli: Format Mapping Pmi_isa
