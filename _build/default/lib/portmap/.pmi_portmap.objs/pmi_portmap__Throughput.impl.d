lib/portmap/throughput.ml: Experiment Hashtbl List Mapping Pmi_isa Pmi_numeric Portset
