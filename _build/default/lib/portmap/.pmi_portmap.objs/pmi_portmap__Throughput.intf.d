lib/portmap/throughput.mli: Experiment Mapping Pmi_isa Pmi_numeric Portset
