lib/portmap/oracle.mli: Experiment Mapping Pmi_isa Pmi_numeric Portset
