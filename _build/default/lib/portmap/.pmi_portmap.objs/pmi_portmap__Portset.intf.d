lib/portmap/portset.mli: Format
