lib/portmap/mapping.mli: Format Pmi_isa Portset
