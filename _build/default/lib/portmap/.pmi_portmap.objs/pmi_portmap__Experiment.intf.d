lib/portmap/experiment.mli: Format Hashtbl Pmi_isa
