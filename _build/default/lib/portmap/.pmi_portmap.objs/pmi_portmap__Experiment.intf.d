lib/portmap/experiment.mli: Format Pmi_isa
