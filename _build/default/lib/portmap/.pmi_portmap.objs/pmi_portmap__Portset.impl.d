lib/portmap/portset.ml: Format List Stdlib String Sys
