lib/portmap/analysis.mli: Experiment Format Mapping Pmi_isa Pmi_numeric Portset
