lib/portmap/analysis.ml: Array Experiment Format List Lp_model Mapping Pmi_isa Pmi_numeric Portset Printf String Throughput
