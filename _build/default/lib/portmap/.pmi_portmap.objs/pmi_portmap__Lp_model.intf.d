lib/portmap/lp_model.mli: Experiment Mapping Pmi_numeric
