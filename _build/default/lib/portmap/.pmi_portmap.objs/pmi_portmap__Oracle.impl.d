lib/portmap/oracle.ml: Array Experiment Hashtbl List Mapping Pmi_isa Pmi_numeric Portset Throughput
