(** Sets of execution ports, represented as bit sets.

    A µop in the port-mapping model is characterised entirely by the set of
    ports that may execute it, so this module doubles as the identity of
    µop kinds throughout the code base. *)

type t = private int

val empty : t
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
(** Ascending port numbers. *)

val full : int -> t
(** [full n] contains ports [0 .. n-1]. *)

val mem : int -> t -> bool
val add : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val proper_subset : t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val to_mask : t -> int
(** The underlying bit mask (bit [p] set iff port [p] is in the set).
    Dense port-lattice tables ({!Oracle}) index by this mask. *)

val of_mask : int -> t
(** Inverse of {!to_mask}.  @raise Invalid_argument on negative masks. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val iter_subsets : t -> (t -> unit) -> unit
(** Enumerate every subset of the given set (including the empty set and the
    set itself) without visiting any bit pattern outside it. *)

val to_string : t -> string
(** uops.info-style rendering, e.g. ["[0,1,5,6]"]. *)

val pp : Format.formatter -> t -> unit
