module Scheme = Pmi_isa.Scheme

type entry =
  | Agree of Mapping.usage
  | Disagree of { left : Mapping.usage; right : Mapping.usage }
  | Only_left of Mapping.usage
  | Only_right of Mapping.usage

type t = {
  entries : (int, Scheme.t * entry) Hashtbl.t;
}

let compute ~left ~right =
  let entries = Hashtbl.create 1024 in
  let add s e = Hashtbl.replace entries (Scheme.id s) (s, e) in
  List.iter
    (fun s ->
       let lu = Mapping.usage left s in
       match Mapping.find_opt right s with
       | None -> add s (Only_left lu)
       | Some ru ->
         if Mapping.equal_usage lu ru then add s (Agree lu)
         else add s (Disagree { left = lu; right = ru }))
    (Mapping.schemes left);
  List.iter
    (fun s ->
       if not (Mapping.supports left s) then
         add s (Only_right (Mapping.usage right s)))
    (Mapping.schemes right);
  { entries }

let entry t scheme =
  Option.map snd (Hashtbl.find_opt t.entries (Scheme.id scheme))

let collect t pred =
  Hashtbl.fold (fun _ (s, e) acc -> match pred s e with Some x -> x :: acc | None -> acc)
    t.entries []
  |> List.sort (fun a b -> compare (fst a) (fst b))
  |> List.map snd

let agreements t =
  Hashtbl.fold
    (fun _ (_, e) acc -> match e with Agree _ -> acc + 1 | _ -> acc)
    t.entries 0

let disagreements t =
  collect t (fun s e ->
      match e with
      | Disagree { left; right } -> Some (Scheme.id s, (s, left, right))
      | Agree _ | Only_left _ | Only_right _ -> None)

let only_left t =
  collect t (fun s e ->
      match e with
      | Only_left _ -> Some (Scheme.id s, s)
      | Agree _ | Disagree _ | Only_right _ -> None)

let only_right t =
  collect t (fun s e ->
      match e with
      | Only_right _ -> Some (Scheme.id s, s)
      | Agree _ | Disagree _ | Only_left _ -> None)

let agreement_ratio t =
  let agree = agreements t in
  let both = agree + List.length (disagreements t) in
  if both = 0 then 1.0 else float_of_int agree /. float_of_int both

let pp ?(max_rows = 20) () ppf t =
  let disagreeing = disagreements t in
  Format.fprintf ppf
    "agree on %d schemes, disagree on %d (%.1f%% agreement); %d only left, \
     %d only right@."
    (agreements t)
    (List.length disagreeing)
    (100.0 *. agreement_ratio t)
    (List.length (only_left t))
    (List.length (only_right t));
  List.iteri
    (fun i (s, lu, ru) ->
       if i < max_rows then
         Format.fprintf ppf "  %-44s %-24s vs %s@." (Scheme.name s)
           (Mapping.usage_to_string lu) (Mapping.usage_to_string ru))
    disagreeing;
  if List.length disagreeing > max_rows then
    Format.fprintf ppf "  ... and %d more@."
      (List.length disagreeing - max_rows)
