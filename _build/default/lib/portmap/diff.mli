(** Structural comparison of two port mappings.

    The evaluation constantly asks "where does the inferred mapping disagree
    with the documentation / the ground truth / another tool's result?".
    This module answers it once, properly: per-scheme classification into
    agreement, µop-level disagreement, and one-sided coverage, with summary
    counts and a printable report. *)

type entry =
  | Agree of Mapping.usage
  | Disagree of { left : Mapping.usage; right : Mapping.usage }
  | Only_left of Mapping.usage
  | Only_right of Mapping.usage

type t

val compute : left:Mapping.t -> right:Mapping.t -> t

val entry : t -> Pmi_isa.Scheme.t -> entry option
(** [None] when neither side maps the scheme. *)

val agreements : t -> int
val disagreements : t -> (Pmi_isa.Scheme.t * Mapping.usage * Mapping.usage) list
val only_left : t -> Pmi_isa.Scheme.t list
val only_right : t -> Pmi_isa.Scheme.t list

val agreement_ratio : t -> float
(** Agreements over schemes mapped by both sides; 1.0 when both empty. *)

val pp : ?max_rows:int -> unit -> Format.formatter -> t -> unit
(** Summary plus up to [max_rows] (default 20) disagreement rows. *)
