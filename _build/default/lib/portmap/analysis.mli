(** Static block analysis on top of a port mapping — the downstream use
    case that motivates port-mapping inference (llvm-mca / uiCA-style
    reports; §1 of the paper).

    For a basic block, the analysis solves the §2.2 linear program and
    reports the steady-state inverse throughput, the achieved IPC under the
    frontend limit, an optimal per-port pressure distribution (from the LP
    solution), the bottleneck port set witnessing optimality, and the µop
    decomposition of every instruction. *)

type t = {
  experiment : Experiment.t;
  inverse_throughput : Pmi_numeric.Rat.t;  (** port-model cycles/iteration *)
  bounded_cycles : Pmi_numeric.Rat.t;      (** with the frontend limit *)
  ipc : Pmi_numeric.Rat.t;
  frontend_bound : bool;   (** the frontend, not the ports, limits it *)
  bottleneck : Portset.t;  (** bottleneck port set of the port model *)
  port_pressure : Pmi_numeric.Rat.t array; (** cycles per port/iteration in
                                               one optimal distribution *)
  decomposition : (Pmi_isa.Scheme.t * Mapping.usage * int) list;
  (** per distinct scheme: its µops and its occurrence count *)
}

val analyze :
  ?r_max:int -> Mapping.t -> Experiment.t -> t
(** @raise Throughput.Unsupported when the mapping does not cover a scheme
    of the block.  [r_max] defaults to 5 (Zen+). *)

val pp : Format.formatter -> t -> unit
(** Render an mca-style report: summary line, port-pressure table, and the
    per-instruction µop table. *)
