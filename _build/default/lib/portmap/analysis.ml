module Rat = Pmi_numeric.Rat
module Simplex = Pmi_numeric.Simplex
module Scheme = Pmi_isa.Scheme

type t = {
  experiment : Experiment.t;
  inverse_throughput : Rat.t;
  bounded_cycles : Rat.t;
  ipc : Rat.t;
  frontend_bound : bool;
  bottleneck : Portset.t;
  port_pressure : Rat.t array;
  decomposition : (Scheme.t * Mapping.usage * int) list;
}

(* Per-port utilisation of one optimal distribution, read off the LP
   solution's p_k variables (see Lp_model's variable layout). *)
let pressures mapping experiment =
  let num_ports = Mapping.num_ports mapping in
  let masses = Throughput.uop_masses mapping experiment in
  let nu = List.length masses in
  match Simplex.solve (Lp_model.build mapping experiment) with
  | Simplex.Optimal { assignment; _ } ->
    Array.init num_ports (fun k -> assignment.((nu * num_ports) + k))
  | Simplex.Infeasible | Simplex.Unbounded ->
    (* Cannot happen for well-formed mappings; keep the analysis total. *)
    Array.make num_ports Rat.zero

let analyze ?(r_max = 5) mapping experiment =
  let inverse_throughput = Throughput.inverse mapping experiment in
  let bounded_cycles =
    Throughput.inverse_bounded ~r_max mapping experiment
  in
  let ipc = Throughput.ipc ~r_max mapping experiment in
  { experiment;
    inverse_throughput;
    bounded_cycles;
    ipc;
    frontend_bound = Rat.compare bounded_cycles inverse_throughput > 0;
    bottleneck = Throughput.bottleneck_set mapping experiment;
    port_pressure = pressures mapping experiment;
    decomposition =
      Experiment.fold
        (fun s n acc -> (s, Mapping.usage mapping s, n) :: acc)
        experiment []
      |> List.rev;
  }

let pp ppf t =
  Format.fprintf ppf "block: %d instructions, %d distinct schemes@."
    (Experiment.length t.experiment)
    (Experiment.distinct t.experiment);
  Format.fprintf ppf "inverse throughput: %s cycles/iteration (port model)@."
    (Rat.to_string t.inverse_throughput);
  Format.fprintf ppf "steady state:       %s cycles/iteration, %.2f IPC%s@."
    (Rat.to_string t.bounded_cycles) (Rat.to_float t.ipc)
    (if t.frontend_bound then "  [frontend bound]" else "");
  if not (Portset.is_empty t.bottleneck) then
    Format.fprintf ppf "bottleneck ports:   %s@." (Portset.to_string t.bottleneck);
  Format.fprintf ppf "@.port pressure (cycles per iteration):@.";
  Format.fprintf ppf "  %s@."
    (String.concat " "
       (Array.to_list
          (Array.mapi (fun k _ -> Printf.sprintf "%6s" (Printf.sprintf "p%d" k))
             t.port_pressure)));
  Format.fprintf ppf "  %s@."
    (String.concat " "
       (Array.to_list
          (Array.map
             (fun p -> Printf.sprintf "%6.2f" (Rat.to_float p))
             t.port_pressure)));
  Format.fprintf ppf "@.µop decomposition:@.";
  List.iter
    (fun (s, usage, n) ->
       Format.fprintf ppf "  %2d x %-44s %s@." n (Scheme.name s)
         (Mapping.usage_to_string usage))
    t.decomposition
