(** The linear program (A)-(E) of §2.2, built explicitly.

    This is the textbook formulation with one mass variable per µop kind and
    port, per-port total variables and the makespan [t].  It exists as an
    independent oracle for {!Throughput}: both must agree on every mapping
    and experiment, which the property tests exercise. *)

val build : Mapping.t -> Experiment.t -> Pmi_numeric.Simplex.problem
(** @raise Throughput.Unsupported if the experiment contains an unmapped
    scheme. *)

val inverse : Mapping.t -> Experiment.t -> Pmi_numeric.Rat.t
(** Solve the LP for the inverse throughput.
    @raise Failure if the solver reports the LP infeasible or unbounded,
    which would indicate a bug (the program is always feasible and bounded
    for well-formed mappings). *)
