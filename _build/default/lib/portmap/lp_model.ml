module Rat = Pmi_numeric.Rat
module Simplex = Pmi_numeric.Simplex

(* Variable layout: x_{u,k} for µop kind u (0..nu-1) and port k (0..np-1)
   come first, then p_k (np variables), then t. *)

let build mapping experiment =
  let masses = Throughput.uop_masses mapping experiment in
  let nu = List.length masses in
  let np = Mapping.num_ports mapping in
  let num_vars = (nu * np) + np + 1 in
  let x u k = (u * np) + k in
  let p k = (nu * np) + k in
  let t = (nu * np) + np in
  let row () = Array.make num_vars Rat.zero in
  let constraints = ref [] in
  let push coeffs relation rhs =
    constraints := { Simplex.coeffs; relation; rhs } :: !constraints
  in
  (* (A): all mass of each µop kind is distributed over the ports. *)
  List.iteri
    (fun u (_, mass) ->
       let coeffs = row () in
       for k = 0 to np - 1 do
         coeffs.(x u k) <- Rat.one
       done;
       push coeffs Simplex.Eq (Rat.of_int mass))
    masses;
  for k = 0 to np - 1 do
    (* (B): p_k collects the mass assigned to port k. *)
    let coeffs = row () in
    List.iteri (fun u _ -> coeffs.(x u k) <- Rat.one) masses;
    coeffs.(p k) <- Rat.neg Rat.one;
    push coeffs Simplex.Eq Rat.zero;
    (* (C): p_k <= t. *)
    let coeffs = row () in
    coeffs.(p k) <- Rat.one;
    coeffs.(t) <- Rat.neg Rat.one;
    push coeffs Simplex.Le Rat.zero
  done;
  (* (E): µops only on admissible ports ((D) is implicit: vars are >= 0). *)
  List.iteri
    (fun u (ports, _) ->
       for k = 0 to np - 1 do
         if not (Portset.mem k ports) then begin
           let coeffs = row () in
           coeffs.(x u k) <- Rat.one;
           push coeffs Simplex.Eq Rat.zero
         end
       done)
    masses;
  let objective = Array.make num_vars Rat.zero in
  objective.(t) <- Rat.one;
  { Simplex.num_vars;
    constraints = List.rev !constraints;
    objective = Simplex.Minimize objective }

let inverse mapping experiment =
  match Simplex.solve (build mapping experiment) with
  | Simplex.Optimal { objective_value; _ } -> objective_value
  | Simplex.Infeasible -> failwith "Lp_model.inverse: infeasible"
  | Simplex.Unbounded -> failwith "Lp_model.inverse: unbounded"
