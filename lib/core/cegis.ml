module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme
module Experiment = Pmi_portmap.Experiment
module Mapping = Pmi_portmap.Mapping
module Throughput = Pmi_portmap.Throughput
module Oracle = Pmi_portmap.Oracle
module Pool = Pmi_parallel.Pool
module Solver = Pmi_smt.Solver
module Race = Pmi_diag.Race
module Obs = Pmi_obs.Obs

(* Telemetry counters: the CEGIS-level tallies a [--metrics] run reports
   next to the per-iteration spans.  All process-wide; [stats] keeps the
   per-run numbers. *)
let c_lemmas = Obs.counter "cegis.theory_lemmas"
let c_certificates = Obs.counter "cegis.certificates_checked"
let c_candidates = Obs.counter "cegis.candidates_tried"
let c_observations = Obs.counter "cegis.observations"
let c_enclint_findings = Obs.counter "cegis.enclint.findings"
let c_enclint_removed = Obs.counter "cegis.enclint.clauses_removed"
let c_sat_episodes = Obs.counter "cegis.sat_episodes"
let c_mapcheck_refuted = Obs.counter "cegis.mapcheck.refuted_rows"
let c_mapcheck_saved = Obs.counter "cegis.mapcheck.measurements_saved"
let c_mapcheck_symmetries = Obs.counter "cegis.mapcheck.symmetry_facts"
let c_cert_cached = Obs.counter "cegis.certificates_cached"
let c_warm_obs = Obs.counter "cegis.warm_observations"

module Mapcheck = Pmi_analysis.Mapcheck
module IntSet = Set.Make (Int)

(* Process-wide episode tally; per-run numbers are snapshots around one
   inference (the repo never runs two inferences concurrently). *)
let episode_count = Atomic.make 0

(* Sanitizer shadow locations for the two Vecs every CEGIS phase shares:
   the observation log (read by parallel validation sweeps, written only
   between fan-outs) and the theory-lemma pool (caller-thread only).  One
   location per role is enough — the sanitizer runs one inference at a
   time. *)
let obs_loc = Race.location "cegis.observations"
let lemma_loc = Race.location "cegis.lemma-pool"

let log = Logs.Src.create "pmi.cegis" ~doc:"counter-example-guided inference"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  num_ports : int;
  r_max : int;
  epsilon : Rat.t;
  max_experiment_size : int;
  max_other_candidates : int;
  max_iterations : int;
  symmetry_breaking : bool;
  incremental_sat : bool;
  memoized_oracle : bool;
  domains : int;
  cube_conquer : int;
  clause_db_reduction : bool;
  dump_cnf : string option;
  certify : bool;
  enclint : bool;
  enclint_simplify : bool;
  mapcheck : bool;
  store : Pmi_store.Store.t option;
}

exception Certification_failure of string
exception Enclint_failure of string

let default_config =
  { num_ports = 10;
    r_max = 5;
    epsilon = Rat.of_ints 2 100;
    max_experiment_size = 5;
    max_other_candidates = 400;
    max_iterations = 400;
    symmetry_breaking = true;
    incremental_sat = true;
    memoized_oracle = true;
    domains = 1;
    cube_conquer = 0;
    clause_db_reduction = true;
    dump_cnf = None;
    certify = false;
    enclint = false;
    enclint_simplify = false;
    mapcheck = false;
    store = None }

type observation = {
  experiment : Experiment.t;
  cycles : Rat.t;
}

type stats = {
  iterations : int;
  observations : observation list;
  candidates_tried : int;
  theory_lemmas : int;
  sat_episodes : int;
  sat : Pmi_smt.Sat.stats;
}

type outcome =
  | Converged of Mapping.t * stats
  | No_consistent_mapping of stats
  | Iteration_limit of stats

let modeled_inverse config mapping experiment =
  Throughput.inverse_bounded ~r_max:config.r_max mapping experiment

(* The memoized oracle is a drop-in replacement for the naive throughput
   computation (same exact rationals); it only declines when the port count
   exceeds its dense-table bound, in which case we keep the naive path. *)
let inverse_fn config mapping =
  if config.memoized_oracle then
    match Oracle.create mapping with
    | oracle -> fun e -> Oracle.inverse_bounded ~r_max:config.r_max oracle e
    | exception Invalid_argument _ -> modeled_inverse config mapping
  else modeled_inverse config mapping

let consistent config mapping obs =
  let modeled = modeled_inverse config mapping obs.experiment in
  Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
    ~length:(Experiment.length obs.experiment) modeled obs.cycles

(* Theory check: decode the SAT model, evaluate every observation, and
   learn a footprint lemma for each violated one.  Lemmas are collected in
   [pool] so that later encodings (deterministic variable numbering) can be
   seeded with everything already learned. *)
let theory_check config encoding observations pool model =
  let mapping = Encoding.decode encoding model in
  let inv = inverse_fn config mapping in
  let lemmas = ref [] in
  Race.touch_read obs_loc;
  Vec.iter
    (fun obs ->
       let explained =
         Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
           ~length:(Experiment.length obs.experiment) (inv obs.experiment)
           obs.cycles
       in
       if not explained then
         lemmas :=
           Encoding.block_footprint encoding model
             (Experiment.schemes obs.experiment)
           :: !lemmas)
    observations;
  let lemmas = List.rev !lemmas in
  if lemmas <> [] then begin
    Race.touch_write lemma_loc;
    Obs.add c_lemmas (List.length lemmas)
  end;
  List.iter (Vec.push pool) lemmas;
  lemmas

let fresh_encoding config specs pool =
  let encoding =
    Encoding.create ~num_ports:config.num_ports
      ~symmetry_breaking:config.symmetry_breaking ~certify:config.certify
      specs
  in
  Pmi_smt.Sat.set_reduce_enabled (Encoding.sat encoding)
    config.clause_db_reduction;
  Race.touch_read lemma_loc;
  Vec.iter (Pmi_smt.Sat.add_clause (Encoding.sat encoding)) pool;
  encoding

(* Static gate on a constructed encoding (behind [config.enclint]): run
   the EncLint analysis — optionally preceded by the certified
   simplification — once per solver episode, before the episode's first
   solve.  Two caches keep the gate sub-linear over a CEGIS run:

   - [enclint_cone_memo] is handed to the analyzer, which memoizes clean
     exhaustive cardinality-cone enumerations by network shape (the
     [Card] builder is deterministic), so shapes verified once are not
     re-enumerated — neither on later episodes of the same solver nor
     when a fresh same-spec encoding rebuilds them, as the §4.3 culprit
     search does once per [explain] call.
   - [enclint_db_seen] maps [Sat.id] to the retired-row signature under
     which the clause-database passes (dead vars, duplicates, retired
     reachability, frozen-unused) last ran.  Those passes only change
     when the database does structurally: a new solver, a retirement, or
     a simplification that removed clauses; episodes in between run the
     view-layer checks only. *)
let enclint_cone_memo : (string, unit) Hashtbl.t = Hashtbl.create 64
let enclint_db_seen : (int, string) Hashtbl.t = Hashtbl.create 16

(* [lemmas] is a thunk so the (possibly large) pool-to-list conversion
   is only paid when the gate is actually on. *)
let enclint_gate config ?lemmas ?frozen encoding =
  if config.enclint then
    Obs.span "cegis.enclint" @@ fun () ->
    let sat = Encoding.sat encoding in
    let lemmas = Option.map (fun f -> f ()) lemmas in
    let view = Encoding.enclint_view ?lemmas ?frozen encoding in
    let retired_sig =
      String.concat ";"
        (List.filter_map
           (fun (r : Pmi_analysis.Enclint.row) ->
              if r.Pmi_analysis.Enclint.live then None
              else Some r.Pmi_analysis.Enclint.subject)
           view.Pmi_analysis.Enclint.rows)
    in
    let db =
      match Hashtbl.find_opt enclint_db_seen (Pmi_smt.Sat.id sat) with
      | Some s when s = retired_sig -> false
      | _ -> true
    in
    (* Simplification rides the same trigger as the database passes: the
       subsumption/SSR/BCE sweep is only worth its cost when the database
       changed structurally, so it runs on a solver's first episode and
       after each retirement (lemmas added in between wait for the next
       trigger) — and the analysis below scans the post-simplify
       database. *)
    if db && config.enclint_simplify then begin
      let stats =
        Obs.span "cegis.enclint.simplify" (fun () ->
            Pmi_analysis.Enclint.simplify
              ~protect:(Encoding.protected_vars encoding) sat)
      in
      let removed = Pmi_analysis.Enclint.total stats in
      Obs.add c_enclint_removed removed;
      if removed > 0 then
        Log.debug (fun m ->
            m "enclint: simplified %d clause(s) (%d satisfied, %d subsumed, \
               %d strengthened, %d blocked)"
              removed stats.Pmi_analysis.Enclint.satisfied_removed
              stats.Pmi_analysis.Enclint.subsumed_removed
              stats.Pmi_analysis.Enclint.strengthened
              stats.Pmi_analysis.Enclint.blocked_removed)
    end;
    if db then
      Hashtbl.replace enclint_db_seen (Pmi_smt.Sat.id sat) retired_sig;
    let diags =
      Obs.span "cegis.enclint.analyze" (fun () ->
          Pmi_analysis.Enclint.analyze ~cone_memo:enclint_cone_memo ~db sat
            view)
    in
    Obs.add c_enclint_findings (List.length diags);
    List.iter
      (fun d -> Log.debug (fun m -> m "%s" (Pmi_diag.Diag.to_string d)))
      diags;
    match Pmi_diag.Diag.errors diags with
    | [] -> ()
    | errs ->
      raise
        (Enclint_failure
           (Printf.sprintf "encoding rejected by enclint (%d error(s)): %s"
              (List.length errs)
              (String.concat "; "
                 (List.map Pmi_diag.Diag.to_string errs))))

(* Theory-level solving: cube-and-conquer when [cube_conquer] grants split
   variables, a diversified solver portfolio otherwise — both only when the
   config grants more than one domain. *)
let solve_sub config encoding ?assumptions ~check sat =
  if config.cube_conquer > 0 && config.domains > 1 then
    Obs.span
      ~args:[ ("k", Obs.Int config.cube_conquer) ]
      "cegis.cubes"
      (fun () ->
         Solver.solve_cubes ?assumptions ~domains:config.domains
           ~cubes:config.cube_conquer
           ~hint:(fun () -> Encoding.split_hint encoding)
           ~check sat)
  else if config.domains > 1 then
    Solver.solve_portfolio ?assumptions ~domains:config.domains ~check sat
  else Solver.solve ?assumptions ~check sat

(* ------------------------------------------------------------------ *)
(* Trust-but-verify layer                                              *)
(* ------------------------------------------------------------------ *)

(* An UNSAT verdict under assumptions [a1; …; an] is certified by checking
   the DRAT trace against the goal clause [¬a1 ∨ … ∨ ¬an] (the empty clause
   when there are no assumptions): the independent checker replays every
   derivation and finally requires the goal itself to be RUP. *)
let certify_unsat config ?(assumptions = []) sat =
  if config.certify then begin
    Obs.incr c_certificates;
    if not (Pmi_smt.Sat.proof_logging sat) then
      raise
        (Certification_failure
           "certify is on but the solver carries no proof trace");
    let goal = List.map Pmi_smt.Lit.negate assumptions in
    let proof = Pmi_smt.Sat.proof sat in
    let run_checker () =
      match Pmi_analysis.Drat.check ~goal proof with
      | Ok () ->
        Log.debug (fun m ->
            m "UNSAT certificate accepted (%d proof steps)"
              (Pmi_smt.Sat.proof_length sat))
      | Error e ->
        raise
          (Certification_failure
             (Format.asprintf "UNSAT certificate rejected: %a"
                Pmi_analysis.Drat.pp_error e))
    in
    (* The durable certificate store short-circuits the checker only when
       this exact proof of this exact goal (same axioms) was accepted by a
       previous run: the key is the claim's digest, the stored value the
       full proof's.  A different proof of a known goal is re-checked and
       the record refreshed. *)
    match config.store with
    | None -> run_checker ()
    | Some store ->
      let key = "unsat:" ^ Pmi_analysis.Drat.goal_digest ~goal proof in
      let digest = Pmi_analysis.Drat.proof_digest ~goal proof in
      (match Pmi_store.Store.get store Pmi_store.Store.Certificate ~key with
       | Some stored when String.equal stored digest ->
         Obs.incr c_cert_cached;
         Log.debug (fun m ->
             m "UNSAT certificate found in store; re-check skipped")
       | _ ->
         run_checker ();
         Pmi_store.Store.put store Pmi_store.Store.Certificate ~key digest)
  end

(* A SAT verdict is certified against the axioms, not the solver: the model
   must satisfy every input clause of the trace (problem CNF, cardinality
   chains, theory lemmas), and the decoded mapping must explain every
   observation under the naive exact-rational oracle — deliberately not the
   memoized fast path the search itself uses. *)
let certify_sat config encoding observations model =
  if config.certify then begin
    Obs.incr c_certificates;
    let sat = Encoding.sat encoding in
    (match Pmi_analysis.Drat.validate_model ~model (Pmi_smt.Sat.proof sat) with
     | Ok () -> ()
     | Error e ->
       raise
         (Certification_failure
            (Format.asprintf "SAT model rejected: %a"
               Pmi_analysis.Drat.pp_error e)));
    let mapping = Encoding.decode encoding model in
    Vec.iter
      (fun obs ->
         let modeled = modeled_inverse config mapping obs.experiment in
         if
           not
             (Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
                ~length:(Experiment.length obs.experiment) modeled obs.cycles)
         then
           raise
             (Certification_failure
                (Printf.sprintf
                   "SAT model rejected: decoded mapping does not explain %s \
                    (modeled %s, observed %s)"
                   (Experiment.to_string obs.experiment)
                   (Rat.to_string modeled)
                   (Rat.to_string obs.cycles))))
      observations
  end

(* Every solver verdict the CEGIS loop consumes flows through here, so the
   fresh, incremental, and portfolio paths are all certified when the knob
   is on. *)
let certified_solve config encoding observations ?assumptions ~check () =
  let sat = Encoding.sat encoding in
  Atomic.incr episode_count;
  Obs.incr c_sat_episodes;
  let verdict = solve_sub config encoding ?assumptions ~check sat in
  (match verdict with
   | Solver.Unsat -> certify_unsat config ?assumptions sat
   | Solver.Sat model -> certify_sat config encoding observations model);
  verdict

(* Candidate-row tracker behind [config.mapcheck]: every proper scheme
   starts from all C(num_ports, c) cardinality-c rows; observations then
   refute candidates whose throughput interval excludes the measured value.
   Wide layouts opt out (the tracker enumerates dense candidate tables), and
   improper schemes are simply untracked — the refuter ignores experiments
   that mention them. *)
let mapcheck_refuter config specs =
  if (not config.mapcheck) || config.num_ports > 12 then None
  else
    let rows =
      List.filter_map
        (fun (s, spec) ->
           match spec with
           | Encoding.Proper c ->
             Some (s, Mapcheck.proper_candidates ~num_ports:config.num_ports c)
           | Encoding.Improper _ -> None)
        specs
    in
    if rows = [] then None
    else
      Some
        (Mapcheck.Refuter.create ~epsilon:config.epsilon
           ~num_ports:config.num_ports ~r_max:config.r_max rows)

let find_mapping config encoding observations pool =
  Obs.span "cegis.find_mapping" (fun () ->
      enclint_gate config ~lemmas:(fun () -> Vec.to_list pool) encoding;
      let check = theory_check config encoding observations pool in
      match certified_solve config encoding observations ~check () with
      | Solver.Sat model -> Some (Encoding.decode encoding model)
      | Solver.Unsat -> None)

(* Multisets of the given schemes, enumerated in order of increasing size
   (the stratified search of §3.3.4), smallest first. *)
let iter_experiments schemes ~max_size f =
  let schemes = Array.of_list schemes in
  let n = Array.length schemes in
  let rec fill size start acc =
    if size = 0 then f (Experiment.of_counts acc)
    else
      for i = start to n - 1 do
        (* Give scheme i between 1 and [size] copies, then recurse on the
           remaining schemes with the remaining size budget. *)
        let rec with_count c =
          if c <= size then begin
            fill (size - c) (i + 1) ((schemes.(i), c) :: acc);
            with_count (c + 1)
          end
        in
        with_count 1
      done
  in
  let rec sizes s =
    if s <= max_size then begin
      fill s 0 [];
      sizes (s + 1)
    end
  in
  sizes 1

exception Found of Experiment.t

exception Found_counts of (Scheme.t * int) list

(* One size stratum of the distinguishing-experiment search, walked with
   incremental oracle accumulators: entering/leaving a recursion level is a
   ±one-scheme mass delta, and each leaf is an O(2^P) scan per mapping
   instead of a from-scratch throughput computation.  Enumeration order is
   identical to [iter_experiments], so the first hit is deterministic.
   [abort] is polled at every node (used by the parallel search to stop a
   stratum once a smaller one has found a hit). *)
let search_stratum config o1 o2 schemes ~size ~abort =
  let sep = Pmi_measure.Harness.Compare.well_separated ~epsilon:config.epsilon in
  let a1 = Oracle.Acc.create o1 and a2 = Oracle.Acc.create o2 in
  let n = Array.length schemes in
  let rec fill size start acc =
    if abort () then raise_notrace Exit;
    if size = 0 then begin
      let length = Oracle.Acc.length a1 in
      let t1 = Oracle.Acc.inverse_bounded ~r_max:config.r_max a1 in
      let t2 = Oracle.Acc.inverse_bounded ~r_max:config.r_max a2 in
      if sep ~length t1 t2 then raise_notrace (Found_counts acc)
    end
    else
      for i = start to n - 1 do
        let s = schemes.(i) in
        let rec with_count c =
          if c <= size then begin
            Oracle.Acc.add a1 s 1;
            Oracle.Acc.add a2 s 1;
            fill (size - c) (i + 1) ((s, c) :: acc);
            with_count (c + 1)
          end
          else begin
            (* All [c - 1] copies of scheme i are standing; retract them. *)
            Oracle.Acc.remove a1 s (c - 1);
            Oracle.Acc.remove a2 s (c - 1)
          end
        in
        with_count 1
      done
  in
  match fill size 0 [] with
  | () -> None
  | exception Found_counts acc -> Some (Experiment.of_counts acc)
  | exception Exit -> None

let distinguishing_memoized config o1 o2 schemes =
  let arr = Array.of_list schemes in
  Obs.span "oracle.prepare" (fun () ->
      Oracle.prepare o1 schemes;
      Oracle.prepare o2 schemes);
  if config.domains > 1 && config.max_experiment_size > 1 then begin
    (* One domain per size stratum; every stratum reports its first hit in
       enumeration order and the smallest stratum wins, so the result is
       the same experiment the sequential search returns. *)
    let strata = config.max_experiment_size in
    let hits = Array.make (strata + 1) None in
    let best = Race.tracked_atomic ~name:"cegis.distinguishing.best" max_int in
    let rec shrink size =
      let b = Race.aget best in
      if size < b && not (Race.acas best b size) then shrink size
    in
    Pool.parallel_for ~domains:config.domains ~n:strata (fun idx ->
        let size = idx + 1 in
        let abort () = Race.aget best < size in
        if not (abort ()) then
          match search_stratum config o1 o2 arr ~size ~abort with
          | Some e ->
            hits.(size) <- Some e;
            shrink size
          | None -> ());
    let rec first size =
      if size > strata then None
      else match hits.(size) with Some e -> Some e | None -> first (size + 1)
    in
    first 1
  end
  else begin
    let rec go size =
      if size > config.max_experiment_size then None
      else
        match
          search_stratum config o1 o2 arr ~size ~abort:(fun () -> false)
        with
        | Some e -> Some e
        | None -> go (size + 1)
    in
    go 1
  end

let distinguishing_experiment config m1 m2 schemes =
  Obs.span "cegis.distinguish" (fun () ->
      let oracles =
        if config.memoized_oracle then
          match (Oracle.create m1, Oracle.create m2) with
          | o1, o2 -> Some (o1, o2)
          | exception Invalid_argument _ -> None
        else None
      in
      match oracles with
      | Some (o1, o2) -> distinguishing_memoized config o1 o2 schemes
      | None ->
        let sep =
          Pmi_measure.Harness.Compare.well_separated ~epsilon:config.epsilon
        in
        (match
           iter_experiments schemes ~max_size:config.max_experiment_size
             (fun e ->
                let t1 = modeled_inverse config m1 e in
                let t2 = modeled_inverse config m2 e in
                if sep ~length:(Experiment.length e) t1 t2 then raise (Found e))
         with
         | () -> None
         | exception Found e -> Some e))

let same_mapping specs m1 m2 =
  List.for_all
    (fun (scheme, _) ->
       match (Mapping.find_opt m1 scheme, Mapping.find_opt m2 scheme) with
       | Some a, Some b -> Mapping.equal_usage a b
       | (None | Some _), _ -> false)
    specs

(* State of the persistent findOtherMapping solver: one encoding per specs
   set, kept across CEGIS iterations so learned clauses, variable
   activities and theory lemmas survive.  [synced] counts the pool lemmas
   already present in the solver (both encodings number their variables
   deterministically, so lemmas learned on one transfer verbatim). *)
type other_state = {
  o_encoding : Encoding.t;
  mutable o_synced : int;
}

let sync_lemmas state pool =
  Race.touch_read lemma_loc;
  let sat = Encoding.sat state.o_encoding in
  Vec.iter_from state.o_synced (Pmi_smt.Sat.add_clause sat) pool;
  state.o_synced <- Vec.length pool

(* Incremental findOtherMapping: block_model clauses are only valid for the
   duration of one call (a candidate that cannot be distinguished under the
   current experiment bound must be reconsidered once new observations
   arrive), so each call guards them behind a fresh activation literal that
   is assumed during the call and retired with a unit clause afterwards. *)
let find_other_mapping_incremental config state specs observations pool m1
    tried_counter =
  Obs.span ~args:[ ("mode", Obs.Str "incremental") ] "cegis.find_other_mapping"
  @@ fun () ->
  sync_lemmas state pool;
  let encoding = state.o_encoding in
  (* Gate before the per-call activation variable exists: it would read as
     an allocated-but-unconstrained (dead) variable until first assumed. *)
  enclint_gate config ~lemmas:(fun () -> Vec.to_list pool) encoding;
  let sat = Encoding.sat encoding in
  let act = Pmi_smt.Sat.fresh_var sat in
  let assumptions = [ Pmi_smt.Lit.pos act ] in
  let retract = Pmi_smt.Lit.neg_of_var act in
  let check = theory_check config encoding observations pool in
  let schemes = List.map fst specs in
  let rec search budget =
    if budget = 0 then begin
      Log.warn (fun m ->
          m "findOtherMapping: candidate budget exhausted; treating as converged");
      None
    end
    else begin
      match certified_solve config encoding observations ~assumptions ~check () with
      | Solver.Unsat -> None
      | Solver.Sat model ->
        incr tried_counter;
        Obs.incr c_candidates;
        let m2 = Encoding.decode encoding model in
        if same_mapping specs m1 m2 then begin
          Pmi_smt.Sat.add_clause sat
            (retract :: Encoding.block_model encoding model);
          search (budget - 1)
        end
        else begin
          match distinguishing_experiment config m1 m2 schemes with
          | Some e -> Some (m2, e)
          | None ->
            (* Indistinguishable within the experiment bound: block this
               candidate for the remainder of the call (§3.3.4). *)
            Pmi_smt.Sat.add_clause sat
              (retract :: Encoding.block_model encoding model);
            search (budget - 1)
        end
    end
  in
  let result = search config.max_other_candidates in
  (* Retire this call's blocking clauses; lemmas the solver added for us
     during [check] are already in, so fast-forward the sync mark. *)
  Pmi_smt.Sat.add_clause sat [ retract ];
  state.o_synced <- Vec.length pool;
  result

(* [sat_acc] accumulates the throwaway encoding's solver counters so the
   per-run statistics stay comparable with the incremental path. *)
let find_other_mapping_fresh config specs observations pool m1 tried_counter
    sat_acc ~register =
  Obs.span ~args:[ ("mode", Obs.Str "fresh") ] "cegis.find_other_mapping"
  @@ fun () ->
  let encoding = fresh_encoding config specs pool in
  register encoding;
  enclint_gate config ~lemmas:(fun () -> Vec.to_list pool) encoding;
  let sat = Encoding.sat encoding in
  let check = theory_check config encoding observations pool in
  let schemes = List.map fst specs in
  let rec search budget =
    if budget = 0 then begin
      Log.warn (fun m ->
          m "findOtherMapping: candidate budget exhausted; treating as converged");
      None
    end
    else begin
      match certified_solve config encoding observations ~check () with
      | Solver.Unsat -> None
      | Solver.Sat model ->
        incr tried_counter;
        Obs.incr c_candidates;
        let m2 = Encoding.decode encoding model in
        if same_mapping specs m1 m2 then begin
          Pmi_smt.Sat.add_clause sat (Encoding.block_model encoding model);
          search (budget - 1)
        end
        else begin
          match distinguishing_experiment config m1 m2 schemes with
          | Some e -> Some (m2, e)
          | None ->
            Pmi_smt.Sat.add_clause sat (Encoding.block_model encoding model);
            search (budget - 1)
        end
    end
  in
  let result = search config.max_other_candidates in
  sat_acc := Pmi_smt.Sat.add_stats !sat_acc (Pmi_smt.Sat.stats sat);
  result

(* Canonical flooding experiments used to validate a converged mapping:
   [c×j, i] and [2c×j, i] for every c-port blocking instruction j and every
   instruction i.  The distinguishing-experiment search only measures what
   separates two {e consistent} mappings, so measurements that refute the
   whole model class (the §4.3 anomalies) can stay unobserved; sweeping the
   canonical experiments before declaring convergence closes that gap. *)
let validation_experiments specs =
  let proper =
    List.filter_map
      (fun (s, spec) ->
         match spec with
         | Encoding.Proper c -> Some (s, c)
         | Encoding.Improper _ -> None)
      specs
  in
  let all = List.map fst specs in
  List.concat_map
    (fun (j, c) ->
       List.concat_map
         (fun i ->
            [ Experiment.add i (Experiment.replicate c j);
              Experiment.add i (Experiment.replicate (2 * c) j) ])
         all)
    proper
  |> List.sort_uniq Experiment.compare

(* Write the current clause set of an encoding's solver to [file] in DIMACS
   format, for offline triage of hard instances. *)
let dump_cnf_file sat file =
  try
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         let buf = Buffer.create 65536 in
         Pmi_smt.Sat.to_dimacs sat buf;
         Buffer.output_buffer oc buf);
    Log.info (fun m -> m "wrote CNF to %s" file)
  with Sys_error msg ->
    Log.warn (fun m -> m "could not dump CNF: %s" msg)

let explain ?(config = default_config) ~specs ~observations () =
  Obs.span "cegis.explain" @@ fun () ->
  let pool = Vec.create () in
  let obs = Vec.create () in
  List.iter (Vec.push obs) observations;
  let encoding = fresh_encoding config specs pool in
  let result = find_mapping config encoding obs pool in
  (match config.dump_cnf with
   | Some prefix -> dump_cnf_file (Encoding.sat encoding) (prefix ^ "-explain.cnf")
   | None -> ());
  result

let infer ?(config = default_config) ?(warm_start = []) ~measure ~specs () =
  Obs.span "cegis.infer" @@ fun () ->
  let pool = Vec.create () in
  let observations = Vec.create () in
  let episodes_before = Atomic.get episode_count in
  (* Static refutation (MapCheck): the refuter tracks every proper scheme's
     surviving candidate rows.  Refuted rows become clauses in every
     standing encoding ([refutation_targets]) and are replayed into any
     encoding built later ([refuted_log]) — all before those encodings pay
     a SAT episode for rediscovering the contradiction. *)
  let refuter = mapcheck_refuter config specs in
  let refuted_log = ref [] in
  let refutation_targets = ref [] in
  let add_refuted scheme ports =
    refuted_log := (scheme, ports) :: !refuted_log;
    List.iter
      (fun enc ->
         Pmi_smt.Sat.add_clause (Encoding.sat enc)
           (Encoding.refute_row enc scheme ports))
      !refutation_targets
  in
  let replay_refutations enc =
    List.iter
      (fun (scheme, ports) ->
         Pmi_smt.Sat.add_clause (Encoding.sat enc)
           (Encoding.refute_row enc scheme ports))
      (List.rev !refuted_log)
  in
  let register_target enc =
    refutation_targets := enc :: !refutation_targets;
    replay_refutations enc
  in
  let record obs =
    Race.touch_write obs_loc;
    Vec.push observations obs;
    (match refuter with
     | None -> ()
     | Some r ->
       let dropped =
         Obs.span "cegis.mapcheck" (fun () ->
             Mapcheck.Refuter.observe r obs.experiment obs.cycles)
       in
       if dropped <> [] then begin
         Obs.add c_mapcheck_refuted (List.length dropped);
         Log.debug (fun m ->
             m "mapcheck: observation %s refutes %d candidate row(s)"
               (Experiment.to_string obs.experiment) (List.length dropped));
         List.iter
           (fun (scheme, usage) ->
              match usage with
              | [ (ports, _) ] -> add_refuted scheme ports
              | _ -> ())
           dropped
       end);
    obs
  in
  let observe experiment =
    let cycles =
      Obs.span "cegis.observe" (fun () -> measure experiment)
    in
    Obs.incr c_observations;
    record { experiment; cycles }
  in
  let already_observed e =
    Vec.exists (fun o -> Experiment.equal o.experiment e) observations
  in
  (* Warm start: replay durable observations from a previous run as if
     they had just been measured — they enter the observation log and the
     MapCheck refuter before any encoding exists, so replayed refutations
     land in every encoding via [register_target].  Observations naming
     schemes outside [specs] (another stage's floods, a retry after a
     culprit removal) are skipped. *)
  (match warm_start with
   | [] -> ()
   | warm ->
     let spec_ids =
       List.fold_left
         (fun acc (s, _) -> IntSet.add (Scheme.id s) acc)
         IntSet.empty specs
     in
     let in_specs e =
       List.for_all
         (fun s -> IntSet.mem (Scheme.id s) spec_ids)
         (Experiment.schemes e)
     in
     let replayed = ref 0 in
     List.iter
       (fun obs ->
          if in_specs obs.experiment && not (already_observed obs.experiment)
          then begin
            incr replayed;
            Obs.incr c_warm_obs;
            ignore (record obs)
          end)
       warm;
     if !replayed > 0 then
       Log.info (fun m ->
           m "warm start: replayed %d stored observation(s)" !replayed));
  List.iter
    (fun (s, _) ->
       let e = Experiment.singleton s in
       let statically_known =
         match refuter with
         | Some r -> Mapcheck.Refuter.statically_determined r e <> None
         | None -> false
       in
       if statically_known then begin
         (* A point interval: under the port-mapping model every candidate
            completion predicts the same value, so the measurement can
            refute nothing.  The convergence-time validation sweep still
            floods every scheme against the live machine. *)
         Obs.incr c_mapcheck_saved;
         Log.debug (fun m ->
             m "mapcheck: %s statically determined; measurement skipped"
               (Experiment.to_string e))
       end
       else if already_observed e then
         (* Warm-started: the durable store already answered this one. *)
         Log.debug (fun m ->
             m "warm start: %s already observed; measurement skipped"
               (Experiment.to_string e))
       else ignore (observe e))
    specs;
  let fm_encoding = fresh_encoding config specs pool in
  register_target fm_encoding;
  let other_state =
    if config.incremental_sat then begin
      let o_encoding =
        Encoding.create ~num_ports:config.num_ports
          ~symmetry_breaking:config.symmetry_breaking
          ~certify:config.certify specs
      in
      Pmi_smt.Sat.set_reduce_enabled (Encoding.sat o_encoding)
        config.clause_db_reduction;
      register_target o_encoding;
      Some { o_encoding; o_synced = 0 }
    end
    else None
  in
  (* Solver counters of throwaway findOtherMapping encodings (fresh path). *)
  let sat_extra = ref Pmi_smt.Sat.zero_stats in
  let find_other m1 tried =
    match other_state with
    | Some state ->
      find_other_mapping_incremental config state specs observations pool m1
        tried
    | None ->
      find_other_mapping_fresh config specs observations pool m1 tried
        sat_extra ~register:replay_refutations
  in
  let tried = ref 0 in
  let sat_stats () =
    let acc = Pmi_smt.Sat.stats (Encoding.sat fm_encoding) in
    let acc =
      match other_state with
      | Some state ->
        Pmi_smt.Sat.add_stats acc
          (Pmi_smt.Sat.stats (Encoding.sat state.o_encoding))
      | None -> acc
    in
    Pmi_smt.Sat.add_stats acc !sat_extra
  in
  let finish mk =
    let sat = sat_stats () in
    Log.info (fun m ->
        m "solver: %d decisions, %d propagations, %d conflicts, %d restarts, \
           %d learned (max glue %d), %d deleted by reduction"
          sat.Pmi_smt.Sat.decisions sat.Pmi_smt.Sat.propagations
          sat.Pmi_smt.Sat.conflicts sat.Pmi_smt.Sat.restarts
          sat.Pmi_smt.Sat.learned sat.Pmi_smt.Sat.max_lbd
          sat.Pmi_smt.Sat.deleted);
    (match config.dump_cnf with
     | Some prefix ->
       dump_cnf_file (Encoding.sat fm_encoding) (prefix ^ "-findmapping.cnf");
       (match other_state with
        | Some state ->
          dump_cnf_file
            (Encoding.sat state.o_encoding)
            (prefix ^ "-findothermapping.cnf")
        | None -> ())
     | None -> ());
    mk
      { iterations = 0;
        observations = Vec.to_list observations;
        candidates_tried = !tried;
        theory_lemmas = Vec.length pool;
        sat_episodes = Atomic.get episode_count - episodes_before;
        sat }
  in
  let sweep = Array.of_list (validation_experiments specs) in
  let validate m1 =
    Obs.span ~args:[ ("sweep", Obs.Int (Array.length sweep)) ] "cegis.validate"
    @@ fun () ->
    (* The first sweep experiment the converged mapping fails to explain;
       [None] means the convergence is confirmed.  Only one refutation is
       reported per round so that an UNSAT can be traced to a single
       observation (the §4.3 culprit search depends on that). *)
    let inv, oracle =
      if config.memoized_oracle then
        match Oracle.create m1 with
        | o ->
          ((fun e -> Oracle.inverse_bounded ~r_max:config.r_max o e), Some o)
        | exception Invalid_argument _ -> (modeled_inverse config m1, None)
      else (modeled_inverse config m1, None)
    in
    let failing e =
      Race.touch_read obs_loc;
      if
        Vec.exists (fun o -> Experiment.equal o.experiment e) observations
      then false
      else begin
        let cycles = measure e in
        not
          (Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
             ~length:(Experiment.length e) (inv e) cycles)
      end
    in
    if config.domains > 1 then begin
      (* Warm the oracle tables before fanning out: the sweep only reads
         shared state afterwards.  [measure] must be thread-safe here. *)
      (match oracle with
       | Some o -> Oracle.prepare o (List.map fst specs)
       | None -> ());
      match Pool.find_first_index ~domains:config.domains failing sweep with
      | Some i -> Some sweep.(i)
      | None -> None
    end
    else Array.find_opt failing sweep
  in
  (* One CEGIS iteration under its own span; [None] means "not settled,
     go around again".  Keeping the iteration body out of the recursion
     makes the spans siblings in the trace — iteration 57 is a peer of
     iteration 1, not buried 56 frames deep. *)
  let step iteration =
    Obs.span
      ~args:[ ("iteration", Obs.Int iteration) ]
      "cegis.iteration"
      (fun () ->
         match find_mapping config fm_encoding observations pool with
         | None ->
           Some
             (finish (fun s ->
                  No_consistent_mapping { s with iterations = iteration }))
         | Some m1 ->
           (match find_other m1 tried with
            | None ->
              (match validate m1 with
               | None ->
                 Some
                   (finish (fun s ->
                        Converged (m1, { s with iterations = iteration })))
               | Some failure ->
                 Log.info (fun m ->
                     m "iteration %d: validation experiment %s refutes the \
                        converged mapping" iteration
                       (Experiment.to_string failure));
                 ignore (observe failure);
                 None)
            | Some (_, new_exp) ->
              let obs = observe new_exp in
              Log.info (fun m ->
                  m "iteration %d: new experiment %s measured at %s cycles"
                    iteration
                    (Experiment.to_string new_exp)
                    (Rat.to_string obs.cycles));
              None))
  in
  let rec loop iteration =
    if iteration > config.max_iterations then
      finish (fun s -> Iteration_limit { s with iterations = iteration - 1 })
    else
      match step iteration with
      | Some outcome -> outcome
      | None -> loop (iteration + 1)
  in
  loop 1

(* ------------------------------------------------------------------ *)
(* Delta mode: online incremental re-inference                         *)
(* ------------------------------------------------------------------ *)

(* Batch counters of the streaming path: flushes, schemes per flush,
   retired (changed-scheme) rows, and falls back to full re-inference. *)
let c_delta_batches = Obs.counter "cegis.delta.batches"
let c_delta_schemes = Obs.counter "cegis.delta.schemes"
let c_delta_retired = Obs.counter "cegis.delta.retired_rows"
let c_delta_fallbacks = Obs.counter "cegis.delta.fallbacks"

type delta_outcome =
  | Delta_applied of outcome
  | Delta_fallback of outcome

(* findOtherMapping against a delta encoding: same per-call activation
   discipline as the incremental path, with the session's standing
   assumptions (frozen-row pins + row activation literals) underneath.
   Any second consistent mapping necessarily differs on the delta rows
   only, so a distinguishing experiment always involves a batch scheme. *)
let find_other_mapping_delta config encoding observations pool
    base_assumptions m1 tried_counter =
  Obs.span ~args:[ ("mode", Obs.Str "delta") ] "cegis.find_other_mapping"
  @@ fun () ->
  enclint_gate config
    ~lemmas:(fun () -> Vec.to_list pool)
    ~frozen:base_assumptions
    encoding;
  let sat = Encoding.sat encoding in
  let act = Pmi_smt.Sat.fresh_var sat in
  let assumptions = Pmi_smt.Lit.pos act :: base_assumptions in
  let retract = Pmi_smt.Lit.neg_of_var act in
  let check = theory_check config encoding observations pool in
  let specs = Encoding.schemes encoding in
  let schemes = List.map fst specs in
  let rec search budget =
    if budget = 0 then begin
      Log.warn (fun m ->
          m "findOtherMapping: candidate budget exhausted; treating as converged");
      None
    end
    else begin
      match certified_solve config encoding observations ~assumptions ~check () with
      | Solver.Unsat -> None
      | Solver.Sat model ->
        incr tried_counter;
        Obs.incr c_candidates;
        let m2 = Encoding.decode encoding model in
        if same_mapping specs m1 m2 then begin
          Pmi_smt.Sat.add_clause sat
            (retract :: Encoding.block_model encoding model);
          search (budget - 1)
        end
        else begin
          match distinguishing_experiment config m1 m2 schemes with
          | Some e -> Some (m2, e)
          | None ->
            Pmi_smt.Sat.add_clause sat
              (retract :: Encoding.block_model encoding model);
            search (budget - 1)
        end
    end
  in
  let result = search config.max_other_candidates in
  Pmi_smt.Sat.add_clause sat [ retract ];
  result

(* The delta-scoped convergence sweep: the canonical flooding experiments
   restricted to pairs that involve at least one batch scheme — the
   frozen×frozen pairs were already validated when the base mapping was
   accepted, so re-measuring them would defeat the latency story. *)
let validation_experiments_delta specs batch_schemes =
  let in_batch s = List.exists (Scheme.equal s) batch_schemes in
  validation_experiments specs
  |> List.filter (fun e -> List.exists in_batch (Experiment.schemes e))

module Delta = struct
  type session = {
    d_config : config;
    d_measure : Experiment.t -> Rat.t;
    d_measure_batch : Experiment.t list -> Rat.t list;
    mutable d_encoding : Encoding.t;
    mutable d_mapping : Mapping.t;
    mutable d_observations : observation Vec.t;
    mutable d_pool : Pmi_smt.Lit.t list Vec.t;
    mutable d_pending : (Scheme.t * Encoding.instr_spec) list; (* newest first *)
    mutable d_batches : int;
    mutable d_fallbacks : int;
  }

  let reject_improper = function
    | Encoding.Proper _ -> ()
    | Encoding.Improper _ ->
      invalid_arg
        "Cegis.Delta: improper (store-blocker) schemes are not streamable; \
         run full re-inference"

  (* Delta encodings always disable symmetry breaking: the frozen rows are
     pinned to the accepted mapping as-is, which need not be the
     lex-minimal column representative, so the lex clauses could wrongly
     refute it.  The pins break the port symmetry far more strongly than
     the lex ordering anyway. *)
  let build_encoding config specs =
    let encoding =
      Encoding.create ~num_ports:config.num_ports ~symmetry_breaking:false
        ~certify:config.certify []
    in
    Pmi_smt.Sat.set_reduce_enabled (Encoding.sat encoding)
      config.clause_db_reduction;
    List.iter (fun (s, spec) -> Encoding.append_row encoding s spec) specs;
    encoding

  let start ?(config = default_config) ~measure ?measure_batch ~mapping
      ~specs ?(observations = []) () =
    List.iter (fun (_, spec) -> reject_improper spec) specs;
    List.iter
      (fun (s, _) ->
         if Mapping.find_opt mapping s = None then
           invalid_arg "Cegis.Delta.start: mapping does not cover the specs")
      specs;
    let obs = Vec.create () in
    List.iter (Vec.push obs) observations;
    { d_config = config;
      d_measure = measure;
      d_measure_batch =
        (match measure_batch with
         | Some f -> f
         | None -> fun es -> List.map measure es);
      d_encoding = build_encoding config specs;
      d_mapping = mapping;
      d_observations = obs;
      d_pool = Vec.create ();
      d_pending = [];
      d_batches = 0;
      d_fallbacks = 0 }

  let enqueue session scheme spec =
    reject_improper spec;
    (* Last enqueue wins when a scheme is queued twice before a flush. *)
    session.d_pending <-
      (scheme, spec)
      :: List.filter
           (fun (s, _) -> not (Scheme.equal s scheme))
           session.d_pending

  let pending session = List.length session.d_pending
  let mapping session = session.d_mapping
  let batches session = session.d_batches
  let fallbacks session = session.d_fallbacks

  let empty_stats session =
    { iterations = 0;
      observations = Vec.to_list session.d_observations;
      candidates_tried = 0;
      theory_lemmas = Vec.length session.d_pool;
      sat_episodes = 0;
      sat = Pmi_smt.Sat.stats (Encoding.sat session.d_encoding) }

  let flush session =
    match List.rev session.d_pending with
    | [] -> Delta_applied (Converged (session.d_mapping, empty_stats session))
    | batch ->
      session.d_pending <- [];
      let config = session.d_config in
      let episodes_before = Atomic.get episode_count in
      Obs.span
        ~args:[ ("batch", Obs.Int (List.length batch)) ]
        "cegis.delta"
      @@ fun () ->
      session.d_batches <- session.d_batches + 1;
      Obs.incr c_delta_batches;
      Obs.add c_delta_schemes (List.length batch);
      let encoding = session.d_encoding in
      let batch_schemes = List.map fst batch in
      (* Retire the stale rows of changed schemes — one unit clause each,
         which also deactivates every lemma scoped to them — and drop the
         observations that mention a changed scheme: the measurements that
         motivated the change are presumed stale too.  The accepted mapping
         sheds {e every} batch scheme, changed or merely over-covered by the
         seed mapping, so no freshly appended row can be frozen to a stale
         port usage. *)
      let in_batch s = List.exists (Scheme.equal s) batch_schemes in
      let changed =
        List.filter (fun s -> Encoding.has_scheme encoding s) batch_schemes
      in
      List.iter
        (fun s ->
           Encoding.retire_row encoding s;
           Obs.incr c_delta_retired)
        changed;
      if changed <> [] then begin
        let keep = Vec.create () in
        Race.touch_write obs_loc;
        Vec.iter
          (fun o ->
             let stale =
               List.exists
                 (fun s -> List.exists (Scheme.equal s) changed)
                 (Experiment.schemes o.experiment)
             in
             if not stale then Vec.push keep o)
          session.d_observations;
        session.d_observations <- keep
      end;
      if List.exists in_batch (Mapping.schemes session.d_mapping) then begin
        let m = Mapping.create ~num_ports:config.num_ports in
        List.iter
          (fun s ->
             if not (in_batch s) then
               Mapping.set m s (Mapping.usage session.d_mapping s))
          (Mapping.schemes session.d_mapping);
        session.d_mapping <- m
      end;
      List.iter (fun (s, spec) -> Encoding.append_row encoding s spec) batch;
      (* MapCheck symmetry restoration: delta encodings are built without
         symmetry breaking (frozen rows pin port identities), but any port
         pair whose swap leaves the accepted mapping invariant is still
         interchangeable over the batch rows.  Feed those pairs back as
         ordering facts scoped to the fresh rows. *)
      if config.mapcheck then begin
        let pairs = Mapcheck.interchangeable_ports session.d_mapping in
        List.iter
          (fun (p, q) ->
             Encoding.order_ports ~schemes:batch_schemes encoding p q;
             Obs.incr c_mapcheck_symmetries)
          pairs
      end;
      (* One batched harness sweep over every queued scheme's singleton
         before the solver episode starts, so measurement round-trips
         amortise across the batch.  Under MapCheck, singletons whose
         throughput is statically determined by the model class (point
         interval over all candidate rows) are excluded — the measurement
         could never refute anything. *)
      let refuter = mapcheck_refuter config batch in
      let statically_determined e =
        match refuter with
        | None -> false
        | Some r ->
          (match Mapcheck.Refuter.statically_determined r e with
           | Some _ ->
             Obs.incr c_mapcheck_saved;
             Log.debug (fun m ->
                 m "mapcheck: skipping statically determined %s"
                   (Experiment.to_string e));
             true
           | None -> false)
      in
      let singletons =
        List.filter
          (fun e -> not (statically_determined e))
          (List.map Experiment.singleton batch_schemes)
      in
      let sweep_cycles =
        Obs.span
          ~args:[ ("experiments", Obs.Int (List.length singletons)) ]
          "cegis.delta.sweep"
          (fun () -> session.d_measure_batch singletons)
      in
      Race.touch_write obs_loc;
      List.iter2
        (fun experiment cycles ->
           Obs.incr c_observations;
           Vec.push session.d_observations { experiment; cycles })
        singletons sweep_cycles;
      (* Standing assumptions of every solve in this flush: activation
         literals of all live rows plus the frozen-row pins.  The batch
         rows are live but unmapped, so only their activation literals
         appear — their port sets are exactly what the solve determines. *)
      let assumptions =
        Encoding.row_assumptions encoding
        @ Encoding.freeze_lits encoding session.d_mapping
      in
      let tried = ref 0 in
      let finish iterations =
        { iterations;
          observations = Vec.to_list session.d_observations;
          candidates_tried = !tried;
          theory_lemmas = Vec.length session.d_pool;
          sat_episodes = Atomic.get episode_count - episodes_before;
          sat = Pmi_smt.Sat.stats (Encoding.sat encoding) }
      in
      let observe experiment =
        let cycles =
          Obs.span "cegis.observe" (fun () -> session.d_measure experiment)
        in
        Obs.incr c_observations;
        let obs = { experiment; cycles } in
        Race.touch_write obs_loc;
        Vec.push session.d_observations obs;
        obs
      in
      let find_mapping_assumed () =
        Obs.span "cegis.find_mapping" (fun () ->
            enclint_gate config
              ~lemmas:(fun () -> Vec.to_list session.d_pool)
              ~frozen:assumptions encoding;
            let check =
              theory_check config encoding session.d_observations
                session.d_pool
            in
            match
              certified_solve config encoding session.d_observations
                ~assumptions ~check ()
            with
            | Solver.Sat model -> Some (Encoding.decode encoding model)
            | Solver.Unsat -> None)
      in
      let sweep =
        Array.of_list
          (validation_experiments_delta (Encoding.schemes encoding)
             batch_schemes)
      in
      let validate m1 =
        Obs.span
          ~args:[ ("sweep", Obs.Int (Array.length sweep)) ]
          "cegis.validate"
        @@ fun () ->
        let inv, oracle =
          if config.memoized_oracle then
            match Oracle.create m1 with
            | o ->
              ((fun e -> Oracle.inverse_bounded ~r_max:config.r_max o e),
               Some o)
            | exception Invalid_argument _ -> (modeled_inverse config m1, None)
          else (modeled_inverse config m1, None)
        in
        let failing e =
          Race.touch_read obs_loc;
          if
            Vec.exists
              (fun o -> Experiment.equal o.experiment e)
              session.d_observations
          then false
          else begin
            let cycles = session.d_measure e in
            not
              (Pmi_measure.Harness.Compare.cpi_equal ~epsilon:config.epsilon
                 ~length:(Experiment.length e) (inv e) cycles)
          end
        in
        if config.domains > 1 then begin
          (match oracle with
           | Some o ->
             Oracle.prepare o (List.map fst (Encoding.schemes encoding))
           | None -> ());
          match Pool.find_first_index ~domains:config.domains failing sweep with
          | Some i -> Some sweep.(i)
          | None -> None
        end
        else Array.find_opt failing sweep
      in
      (* Falling back: the delta solver proved the batch inconsistent with
         the frozen rows (or a validation failure drove it there), so the
         whole live spec set is re-inferred from scratch and the session
         is rebuilt around the accepted result.  If even the full
         inference fails, the session keeps its pre-flush mapping and the
         batch rows stay live but unaccepted. *)
      let fallback () =
        session.d_fallbacks <- session.d_fallbacks + 1;
        Obs.incr c_delta_fallbacks;
        let specs = Encoding.schemes encoding in
        Log.info (fun m ->
            m "delta batch inconsistent with frozen rows; full re-inference \
               over %d schemes" (List.length specs));
        let outcome = infer ~config ~measure:session.d_measure ~specs () in
        (match outcome with
         | Converged (m, stats) ->
           session.d_encoding <- build_encoding config specs;
           session.d_mapping <- m;
           let obs = Vec.create () in
           List.iter (Vec.push obs) stats.observations;
           session.d_observations <- obs;
           session.d_pool <- Vec.create ()
         | No_consistent_mapping _ | Iteration_limit _ -> ());
        Delta_fallback outcome
      in
      let step iteration =
        Obs.span
          ~args:[ ("iteration", Obs.Int iteration) ]
          "cegis.delta.iteration"
          (fun () ->
             match find_mapping_assumed () with
             | None -> `Fallback
             | Some m1 ->
               (match
                  find_other_mapping_delta config encoding
                    session.d_observations session.d_pool assumptions m1
                    tried
                with
                | None ->
                  (match validate m1 with
                   | None -> `Converged m1
                   | Some failure ->
                     Log.info (fun m ->
                         m "delta iteration %d: validation experiment %s \
                            refutes the converged mapping" iteration
                           (Experiment.to_string failure));
                     ignore (observe failure);
                     `Continue)
                | Some (_, new_exp) ->
                  ignore (observe new_exp);
                  `Continue))
      in
      let rec loop iteration =
        if iteration > config.max_iterations then
          Delta_applied (Iteration_limit (finish (iteration - 1)))
        else
          match step iteration with
          | `Converged m1 ->
            session.d_mapping <- m1;
            Delta_applied (Converged (m1, finish iteration))
          | `Continue -> loop (iteration + 1)
          | `Fallback -> fallback ()
      in
      loop 1
end

let infer_delta ?config ~measure ?measure_batch ~mapping ~specs
    ?observations ~updates () =
  let session =
    Delta.start ?config ~measure ?measure_batch ~mapping ~specs
      ?observations ()
  in
  List.iter (fun (s, spec) -> Delta.enqueue session s spec) updates;
  Delta.flush session
