open Pmi_smt
module Scheme = Pmi_isa.Scheme
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping

type instr_spec =
  | Proper of int
  | Improper of { own_ports : int }

type row = {
  scheme : Scheme.t;
  spec : instr_spec;
  own : int array;             (* own µop variables, one per port *)
  shared : int array;          (* improper only: shared µop variables *)
  selectors : int array;       (* improper only: one per proper instr *)
  act : int;                   (* activation variable; -1 = unguarded *)
  mutable live : bool;         (* false once the row has been retired *)
  mutable networks : (int * Card.network) list;
                               (* (declared bound, recorded network) of
                                  every cardinality constraint emitted for
                                  this row, for static re-verification *)
}

type t = {
  solver : Sat.t;
  num_ports : int;
  mutable rows : row array;
}

let sat t = t.solver
let num_ports t = t.num_ports

(* Every observable view of the encoding ranges over the live rows only:
   a retired row's variables stay in the solver (its guarded clauses are
   inert once the activation literal is unit-negated) but it no longer
   takes part in decode/freeze/lemma construction. *)
let live_rows t = Array.to_list t.rows |> List.filter (fun r -> r.live)

let schemes t = List.map (fun r -> (r.scheme, r.spec)) (live_rows t)

let has_scheme t scheme =
  List.exists (fun r -> Scheme.equal r.scheme scheme) (live_rows t)

let check_count num_ports c =
  if c < 1 || c > num_ports then
    invalid_arg "Encoding: port count out of range"

let create ~num_ports ?(symmetry_breaking = true) ?(certify = false) specs =
  if num_ports <= 0 then invalid_arg "Encoding.create: num_ports";
  let solver = Sat.create () in
  (* Proof logging must precede every clause, otherwise the trace lacks the
     axioms later derivations resolve against. *)
  if certify then Sat.set_proof_logging solver true;
  let fresh_row () = Array.init num_ports (fun _ -> Sat.fresh_var solver) in
  let name_row prefix scheme vars =
    Array.iteri
      (fun k v ->
         Sat.name_var solver v
           (Printf.sprintf "%s(%s,p%d)" prefix (Scheme.name scheme) k))
      vars
  in
  let proper_indices =
    List.filteri (fun _ (_, spec) -> match spec with Proper _ -> true | Improper _ -> false)
      specs
    |> List.length
  in
  if
    proper_indices = 0
    && List.exists (fun (_, s) -> match s with Improper _ -> true | Proper _ -> false) specs
  then invalid_arg "Encoding.create: improper instruction without proper ones";
  let rows =
    Array.of_list
      (List.map
         (fun (scheme, spec) ->
            (match spec with
             | Proper c -> check_count num_ports c
             | Improper { own_ports } -> check_count num_ports own_ports);
            let own = fresh_row () in
            name_row "own" scheme own;
            { scheme; spec; own; shared = [||]; selectors = [||];
              act = -1; live = true; networks = [] })
         specs)
  in
  (* Cardinality of every own µop. *)
  Array.iter
    (fun row ->
       let count =
         match row.spec with Proper c -> c | Improper { own_ports } -> own_ports
       in
       let net =
         Card.exactly solver (Array.to_list (Array.map Lit.pos row.own)) count
       in
       row.networks <- (count, net) :: row.networks)
    rows;
  (* Shared µops of improper instructions.  The partner may be any proper
     blocking instruction's µop, or the own µop of another improper one:
     on layouts where the store µop is wider than one port, the store
     blockers share that µop among themselves rather than with a proper
     class. *)
  let rows =
    Array.map
      (fun row ->
         match row.spec with
         | Proper _ -> row
         | Improper _ ->
           let partners =
             Array.to_list rows
             |> List.filter (fun r -> not (Scheme.equal r.scheme row.scheme))
           in
           let shared = fresh_row () in
           name_row "shared" row.scheme shared;
           let selectors =
             Array.of_list (List.map (fun _ -> Sat.fresh_var solver) partners)
           in
           List.iteri
             (fun j partner ->
                Sat.name_var solver selectors.(j)
                  (Printf.sprintf "select(%s,%s)"
                     (Scheme.name row.scheme)
                     (Scheme.name partner.scheme)))
             partners;
           let selector_net =
             Card.exactly solver
               (Array.to_list (Array.map Lit.pos selectors))
               1
           in
           List.iteri
             (fun j partner ->
                for k = 0 to num_ports - 1 do
                  (* selectors.(j) -> (shared.(k) <-> partner.own.(k)) *)
                  Sat.add_clause solver
                    [ Lit.neg_of_var selectors.(j);
                      Lit.neg_of_var shared.(k);
                      Lit.pos partner.own.(k) ];
                  Sat.add_clause solver
                    [ Lit.neg_of_var selectors.(j);
                      Lit.pos shared.(k);
                      Lit.neg_of_var partner.own.(k) ]
                done)
             partners;
           let row = { row with shared; selectors } in
           row.networks <- (1, selector_net) :: row.networks;
           row)
      rows
  in
  let t = { solver; num_ports; rows } in
  if symmetry_breaking then begin
    (* Columns (ports), read along the proper rows, are lexicographically
       non-increasing: col k >= col k+1. *)
    let proper_bits k =
      Array.to_list rows
      |> List.filter_map
           (fun r ->
              match r.spec with
              | Proper _ -> Some r.own.(k)
              | Improper _ -> None)
    in
    for k = 0 to num_ports - 2 do
      let xs = proper_bits k and ys = proper_bits (k + 1) in
      (* a_r: rows 0..r-1 of the two columns are equal.  a_0 is true. *)
      let rec go prefix_equal xs ys =
        match (xs, ys) with
        | [], [] -> ()
        | x :: xs', y :: ys' ->
          (* prefix equal -> x >= y *)
          (match prefix_equal with
           | None -> Sat.add_clause solver [ Lit.pos x; Lit.neg_of_var y ]
           | Some a ->
             Sat.add_clause solver
               [ Lit.neg_of_var a; Lit.pos x; Lit.neg_of_var y ]);
          if xs' <> [] then begin
            let a' = Sat.fresh_var solver in
            (* a' <-> prefix_equal /\ (x <-> y) *)
            let prefix_lits =
              match prefix_equal with
              | None -> []
              | Some a -> [ a ]
            in
            List.iter
              (fun a ->
                 Sat.add_clause solver [ Lit.neg_of_var a'; Lit.pos a ])
              prefix_lits;
            Sat.add_clause solver
              [ Lit.neg_of_var a'; Lit.neg_of_var x; Lit.pos y ];
            Sat.add_clause solver
              [ Lit.neg_of_var a'; Lit.pos x; Lit.neg_of_var y ];
            (* reverse: prefix_equal /\ (x <-> y) -> a'. *)
            let base = List.map Lit.neg_of_var prefix_lits in
            Sat.add_clause solver
              (Lit.pos a' :: Lit.pos x :: Lit.pos y :: base);
            Sat.add_clause solver
              (Lit.pos a' :: Lit.neg_of_var x :: Lit.neg_of_var y :: base);
            go (Some a') xs' ys'
          end
        | _, _ -> assert false
      in
      go None xs ys
    done
  end;
  t

(* ------------------------------------------------------------------ *)
(* Delta rows: guarded append and activation-literal retirement        *)
(* ------------------------------------------------------------------ *)

let append_row t scheme spec =
  let count =
    match spec with
    | Proper c -> c
    | Improper _ ->
      (* Improper rows need the selector machinery over a partner set that
         would itself have to follow appends/retirements; delta sessions
         route store-blocker changes through full re-inference instead. *)
      invalid_arg "Encoding.append_row: improper rows are not appendable"
  in
  check_count t.num_ports count;
  if has_scheme t scheme then
    invalid_arg "Encoding.append_row: scheme already has a live row";
  let own = Array.init t.num_ports (fun _ -> Sat.fresh_var t.solver) in
  Array.iteri
    (fun k v ->
       Sat.name_var t.solver v
         (Printf.sprintf "own(%s,p%d)" (Scheme.name scheme) k))
    own;
  let act = Sat.fresh_var t.solver in
  Sat.name_var t.solver act (Printf.sprintf "act(%s)" (Scheme.name scheme));
  Sat.mark_guard t.solver act;
  (* The cardinality chain binds only while [act] is assumed: retiring the
     row is one unit clause, no encoding rebuild. *)
  let net =
    Card.exactly ~guard:(Lit.neg_of_var act) t.solver
      (Array.to_list (Array.map Lit.pos own))
      count
  in
  let row =
    { scheme; spec; own; shared = [||]; selectors = [||]; act; live = true;
      networks = [ (count, net) ] }
  in
  t.rows <- Array.append t.rows [| row |]

let retire_row t scheme =
  match
    List.find_opt
      (fun r -> r.live && Scheme.equal r.scheme scheme)
      (Array.to_list t.rows)
  with
  | None -> invalid_arg "Encoding.retire_row: no live row for scheme"
  | Some row ->
    if row.act < 0 then
      invalid_arg "Encoding.retire_row: row has no activation literal";
    (* Dropping the activation literal permanently deactivates the row's
       cardinality chain and every lemma that mentions the row (lemmas are
       guarded by the activation literals of the rows they touch). *)
    Sat.add_clause t.solver [ Lit.neg_of_var row.act ];
    row.live <- false

let row_assumptions t =
  List.filter_map
    (fun r -> if r.act >= 0 then Some (Lit.pos r.act) else None)
    (live_rows t)

(* Cube-split hint: the own-port variables of the instruction classes,
   most constrained first.  A class's constrainedness is the summed VSIDS
   activity of its own µop row — the classes the solver fights over the
   most — with the catalog order as the tie-break on a fresh solver.
   Within a row, ports are likewise ordered by activity, so the first few
   variables of the hint are the hottest port-set literals overall.

   Only live rows contribute, and root-assigned variables are dropped:
   splitting on a decided variable (a port pinned by unit propagation, or
   any variable of a retired delta row, all of whose constraints are
   root-satisfied) yields one empty cube and one that re-searches the
   whole space — the cube budget is spent without splitting anything. *)
let split_hint t =
  let activity v = Sat.var_activity t.solver v in
  let row_score row =
    Array.fold_left (fun acc v -> acc +. activity v) 0.0 row.own
  in
  live_rows t
  |> List.map (fun r -> (row_score r, r))
  |> List.stable_sort (fun (a, _) (b, _) -> compare (b : float) a)
  |> List.concat_map (fun (_, r) ->
      Array.to_list r.own
      |> List.filter (fun v -> Sat.root_value t.solver v = 0)
      |> List.stable_sort (fun a b -> compare (activity b) (activity a)))

let ports_of_row model vars =
  let ports = ref Portset.empty in
  Array.iteri (fun k v -> if model.(v) then ports := Portset.add k !ports) vars;
  !ports

let decode t model =
  let mapping = Mapping.create ~num_ports:t.num_ports in
  List.iter
    (fun row ->
       let own = ports_of_row model row.own in
       let usage =
         match row.spec with
         | Proper _ -> [ (own, 1) ]
         | Improper _ -> [ (own, 1); (ports_of_row model row.shared, 1) ]
       in
       Mapping.set mapping row.scheme usage)
    (live_rows t);
  mapping

let pin_row lits row usage =
  let assert_row vars ports =
    Array.iteri
      (fun k v ->
         lits := (if Portset.mem k ports then Lit.pos v else Lit.neg_of_var v) :: !lits)
      vars
  in
  match (row.spec, usage) with
  | Proper _, [ (ports, 1) ] -> assert_row row.own ports
  | Improper _, [ (a, 1); (b, 1) ] ->
    (* The improper usage is stored canonically (sorted by port set);
       try both orientations of (own, shared). *)
    let own_count =
      match row.spec with
      | Improper { own_ports } -> own_ports
      | Proper _ -> assert false
    in
    let own, shared =
      if Portset.cardinal a = own_count then (a, b) else (b, a)
    in
    assert_row row.own own;
    assert_row row.shared shared
  | (Proper _ | Improper _), _ ->
    invalid_arg "Encoding: µop structure mismatch"

let encode_mapping t mapping =
  let lits = ref [] in
  List.iter
    (fun row ->
       let usage =
         match Mapping.find_opt mapping row.scheme with
         | Some u -> u
         | None -> invalid_arg "Encoding.encode_mapping: scheme not mapped"
       in
       pin_row lits row usage)
    (live_rows t);
  !lits

let freeze_lits t mapping =
  let lits = ref [] in
  List.iter
    (fun row ->
       match Mapping.find_opt mapping row.scheme with
       | Some usage -> pin_row lits row usage
       | None -> ())
    (live_rows t);
  !lits

let block_footprint t model schemes =
  let interesting s = List.exists (Scheme.equal s) schemes in
  let lits = ref [] in
  let flip vars =
    Array.iter
      (fun v ->
         lits := (if model.(v) then Lit.neg_of_var v else Lit.pos v) :: !lits)
      vars
  in
  List.iter
    (fun row ->
       if interesting row.scheme then begin
         (* Guarded rows scope the lemma to their own lifetime: once the
            row is retired (act unit-negated) the clause is satisfied and
            inert, exactly like the cardinality chain it refutes. *)
         if row.act >= 0 then lits := Lit.neg_of_var row.act :: !lits;
         flip row.own;
         flip row.shared
       end)
    (live_rows t);
  !lits

let block_model t model =
  block_footprint t model (List.map (fun r -> r.scheme) (live_rows t))

(* ------------------------------------------------------------------ *)
(* Static refutation support (MapCheck)                                 *)
(* ------------------------------------------------------------------ *)

let refute_row t scheme ports =
  match
    List.find_opt (fun r -> r.live && Scheme.equal r.scheme scheme)
      (Array.to_list t.rows)
  with
  | None -> invalid_arg "Encoding.refute_row: no live row for scheme"
  | Some row ->
    let lits = ref [] in
    (* Guarded rows scope the refutation to their lifetime, exactly like
       theory lemmas. *)
    if row.act >= 0 then lits := Lit.neg_of_var row.act :: !lits;
    Array.iteri
      (fun k v ->
         lits :=
           (if Portset.mem k ports then Lit.neg_of_var v else Lit.pos v)
           :: !lits)
      row.own;
    !lits

let order_ports ?schemes t p q =
  if p < 0 || q < 0 || p >= t.num_ports || q >= t.num_ports || p = q then
    invalid_arg "Encoding.order_ports: bad port pair";
  let selected =
    live_rows t
    |> List.filter (fun r ->
        match r.spec with
        | Improper _ -> false
        | Proper _ ->
          (match schemes with
           | None -> true
           | Some ss -> List.exists (Scheme.equal r.scheme) ss))
  in
  if selected <> [] then begin
    (* Every clause of the chain carries the ¬act guard of each selected
       guarded row: retiring any of those rows root-satisfies the fact, so
       it can never outlive the rows it orders. *)
    let guards =
      List.filter_map
        (fun r -> if r.act >= 0 then Some (Lit.neg_of_var r.act) else None)
        selected
    in
    let add cl = Sat.add_clause t.solver (guards @ cl) in
    let xs = List.map (fun r -> r.own.(p)) selected in
    let ys = List.map (fun r -> r.own.(q)) selected in
    (* Same lexicographic chain as the create-time column ordering. *)
    let rec go prefix_equal xs ys =
      match (xs, ys) with
      | [], [] -> ()
      | x :: xs', y :: ys' ->
        (match prefix_equal with
         | None -> add [ Lit.pos x; Lit.neg_of_var y ]
         | Some a -> add [ Lit.neg_of_var a; Lit.pos x; Lit.neg_of_var y ]);
        if xs' <> [] then begin
          let a' = Sat.fresh_var t.solver in
          let prefix_lits =
            match prefix_equal with None -> [] | Some a -> [ a ]
          in
          List.iter
            (fun a -> add [ Lit.neg_of_var a'; Lit.pos a ])
            prefix_lits;
          add [ Lit.neg_of_var a'; Lit.neg_of_var x; Lit.pos y ];
          add [ Lit.neg_of_var a'; Lit.pos x; Lit.neg_of_var y ];
          let base = List.map Lit.neg_of_var prefix_lits in
          add (Lit.pos a' :: Lit.pos x :: Lit.pos y :: base);
          add (Lit.pos a' :: Lit.neg_of_var x :: Lit.neg_of_var y :: base);
          go (Some a') xs' ys'
        end
      | _, _ -> assert false
    in
    go None xs ys
  end

(* ------------------------------------------------------------------ *)
(* Static analysis support (EncLint)                                   *)
(* ------------------------------------------------------------------ *)

(* Every variable that carries encoding meaning: µop rows, selectors,
   activation literals.  Certified simplification must never eliminate or
   flip these — theory lemmas, blocking clauses and decode all read them —
   whereas cardinality registers and symmetry auxiliaries are fair game. *)
let protected_vars t =
  Array.to_list t.rows
  |> List.concat_map (fun r ->
      (if r.act >= 0 then [ r.act ] else [])
      @ Array.to_list r.own
      @ Array.to_list r.shared
      @ Array.to_list r.selectors)

let enclint_view ?(lemmas = []) ?(frozen = []) ?accepted t =
  let module E = Pmi_analysis.Enclint in
  let rows =
    Array.to_list t.rows
    |> List.map (fun r ->
        { E.subject = Printf.sprintf "row %s" (Scheme.name r.scheme);
          vars =
            Array.to_list r.own @ Array.to_list r.shared
            @ Array.to_list r.selectors;
          act = r.act;
          live = r.live;
          networks = r.networks })
  in
  let accepted =
    match accepted with
    | None -> []
    | Some mapping ->
      List.map
        (fun l -> (Lit.var l, Lit.is_pos l))
        (freeze_lits t mapping)
  in
  { E.rows; lemmas; frozen; accepted; hint = split_hint t }
