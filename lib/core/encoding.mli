(** Boolean encoding of candidate port mappings (§3.3.1-§3.3.2, §4.3).

    Every blocking instruction carries a single µop, so the mapping is a
    boolean matrix [m\[u⁽ⁱ⁾,k\]]: µop of instruction [i] may execute on
    port [k].  Cardinality constraints pin each µop's port count to the
    value measured from its throughput (§3.3.1, "we add constraints so that
    each µop's number of ports fits the previous throughput measurements").

    Improper blocking instructions — the §4.3 store blockers — carry two
    µops: one of their own, and one constrained to equal the µop of {e some}
    other blocking instruction (proper, or the own µop of another improper
    one — store blockers share the store µop among themselves on layouts
    where no proper class covers it), selected by auxiliary choice
    variables.

    Since ports are interchangeable a priori, the encoding optionally adds
    lexicographic column-ordering constraints: the matrix columns (ports),
    read along the proper µop rows, must be non-increasing.  Every mapping
    has such a representative, so no behaviour is lost, while the SAT search
    stops enumerating port renamings of the same mapping. *)

type instr_spec =
  | Proper of int               (** single µop with the given port count *)
  | Improper of { own_ports : int }
  (** own µop with [own_ports] ports, plus one µop shared with a proper
      blocking instruction *)

type t

val create :
  num_ports:int ->
  ?symmetry_breaking:bool ->
  ?certify:bool ->
  (Pmi_isa.Scheme.t * instr_spec) list ->
  t
(** [~certify:true] turns on the solver's DRAT proof logging {e before} any
    clause is added, so every later verdict carries a complete certificate
    ([Pmi_smt.Sat.proof]).  The µop variables are always named
    ([own(<scheme>,p<k>)], [shared(…)], [select(<improper>,<partner>)]) for
    DIMACS/DRAT cross-referencing.
    @raise Invalid_argument if a port count is out of range or an improper
    instruction is given without any proper one. *)

val sat : t -> Pmi_smt.Sat.t
val num_ports : t -> int
val schemes : t -> (Pmi_isa.Scheme.t * instr_spec) list

val decode : t -> bool array -> Pmi_portmap.Mapping.t
(** Read a port mapping out of a SAT model. *)

val encode_mapping : t -> Pmi_portmap.Mapping.t -> Pmi_smt.Lit.t list
(** Literals asserting that the µop variables take exactly the port sets of
    the given mapping (used to hard-wire [M₁] in [findOtherMapping]).
    @raise Invalid_argument if the mapping lacks one of the schemes or has
    an incompatible µop structure. *)

val block_footprint :
  t -> bool array -> Pmi_isa.Scheme.t list -> Pmi_smt.Lit.t list
(** A lemma clause refuting every assignment that agrees with [model] on
    all µop variables of the given schemes — the CEGAR learning step: a
    violated experiment refutes exactly the port sets of the schemes it
    contains. *)

val block_model : t -> bool array -> Pmi_smt.Lit.t list
(** [block_footprint] over all schemes. *)

val split_hint : t -> int list
(** Cube-split hint for {!Pmi_smt.Solver.solve_cubes}: the own-port µop
    variables of the instruction classes, most constrained first — classes
    ranked by the summed VSIDS activity of their own µop row (catalog order
    on a fresh solver), ports within a row likewise by activity.  Re-query
    after each solve; the ranking follows the search. *)
