(** Boolean encoding of candidate port mappings (§3.3.1-§3.3.2, §4.3).

    Every blocking instruction carries a single µop, so the mapping is a
    boolean matrix [m\[u⁽ⁱ⁾,k\]]: µop of instruction [i] may execute on
    port [k].  Cardinality constraints pin each µop's port count to the
    value measured from its throughput (§3.3.1, "we add constraints so that
    each µop's number of ports fits the previous throughput measurements").

    Improper blocking instructions — the §4.3 store blockers — carry two
    µops: one of their own, and one constrained to equal the µop of {e some}
    other blocking instruction (proper, or the own µop of another improper
    one — store blockers share the store µop among themselves on layouts
    where no proper class covers it), selected by auxiliary choice
    variables.

    Since ports are interchangeable a priori, the encoding optionally adds
    lexicographic column-ordering constraints: the matrix columns (ports),
    read along the proper µop rows, must be non-increasing.  Every mapping
    has such a representative, so no behaviour is lost, while the SAT search
    stops enumerating port renamings of the same mapping.

    {b Delta rows.}  Rows may also be appended after creation
    ({!append_row}): such rows are {e guarded} — their cardinality chain is
    conditional on a fresh activation variable, and every lemma built by
    {!block_footprint} that mentions them carries the negated activation
    literal.  Assume {!row_assumptions} on each solve to activate them;
    {!retire_row} permanently drops a row (and every lemma scoped to it)
    with a single unit clause, no rebuild.  This is the encoding half of
    the incremental re-inference mode ({!Pmi_core.Cegis.Delta}). *)

type instr_spec =
  | Proper of int               (** single µop with the given port count *)
  | Improper of { own_ports : int }
  (** own µop with [own_ports] ports, plus one µop shared with a proper
      blocking instruction *)

type t

val create :
  num_ports:int ->
  ?symmetry_breaking:bool ->
  ?certify:bool ->
  (Pmi_isa.Scheme.t * instr_spec) list ->
  t
(** [~certify:true] turns on the solver's DRAT proof logging {e before} any
    clause is added, so every later verdict carries a complete certificate
    ([Pmi_smt.Sat.proof]).  The µop variables are always named
    ([own(<scheme>,p<k>)], [shared(…)], [select(<improper>,<partner>)]) for
    DIMACS/DRAT cross-referencing.
    @raise Invalid_argument if a port count is out of range or an improper
    instruction is given without any proper one. *)

val sat : t -> Pmi_smt.Sat.t
val num_ports : t -> int

val schemes : t -> (Pmi_isa.Scheme.t * instr_spec) list
(** The live rows, in row order (retired rows are excluded everywhere). *)

val has_scheme : t -> Pmi_isa.Scheme.t -> bool
(** Is there a live row for the scheme? *)

val append_row : t -> Pmi_isa.Scheme.t -> instr_spec -> unit
(** Append a guarded row: fresh named µop variables plus a fresh activation
    variable [act(<scheme>)] whose negation guards the cardinality chain.
    The row only binds while its activation literal ({!row_assumptions}) is
    assumed true.
    @raise Invalid_argument on an [Improper] spec (store blockers need the
    selector machinery and go through full re-inference), an out-of-range
    port count, or a scheme that already has a live row. *)

val retire_row : t -> Pmi_isa.Scheme.t -> unit
(** Permanently drop a guarded row by unit-negating its activation literal:
    its cardinality chain and every lemma mentioning it become inert, and
    the row disappears from {!schemes}/{!decode}/{!split_hint}/lemma
    construction.  The variables stay in the solver.
    @raise Invalid_argument if the scheme has no live row or the row is an
    unguarded creation-time row. *)

val row_assumptions : t -> Pmi_smt.Lit.t list
(** The positive activation literals of every live guarded row — assume
    these on each solve of a delta-mode encoding. *)

val decode : t -> bool array -> Pmi_portmap.Mapping.t
(** Read a port mapping out of a SAT model. *)

val encode_mapping : t -> Pmi_portmap.Mapping.t -> Pmi_smt.Lit.t list
(** Literals asserting that the µop variables take exactly the port sets of
    the given mapping (used to hard-wire [M₁] in [findOtherMapping]).
    @raise Invalid_argument if the mapping lacks one of the schemes or has
    an incompatible µop structure. *)

val freeze_lits : t -> Pmi_portmap.Mapping.t -> Pmi_smt.Lit.t list
(** Like {!encode_mapping}, but rows whose scheme the mapping does not
    cover are simply left free — the delta-mode assumption set pinning the
    previously accepted rows while the freshly appended ones are solved.
    @raise Invalid_argument on an incompatible µop structure. *)

val block_footprint :
  t -> bool array -> Pmi_isa.Scheme.t list -> Pmi_smt.Lit.t list
(** A lemma clause refuting every assignment that agrees with [model] on
    all µop variables of the given schemes — the CEGAR learning step: a
    violated experiment refutes exactly the port sets of the schemes it
    contains.  Guarded rows contribute their negated activation literal,
    scoping the lemma to the rows' lifetimes: retiring any mentioned row
    satisfies (and thereby retires) the lemma. *)

val block_model : t -> bool array -> Pmi_smt.Lit.t list
(** [block_footprint] over all schemes. *)

val refute_row :
  t -> Pmi_isa.Scheme.t -> Pmi_portmap.Portset.t -> Pmi_smt.Lit.t list
(** A lemma clause asserting that the scheme's own µop row is {e not}
    exactly the given port set — the MapCheck static-refutation step
    ([Cegis] [config.mapcheck]): a candidate row whose throughput interval
    excludes an already-observed value is ruled out before any SAT episode
    pays for discovering it.  Like {!block_footprint}, guarded rows
    contribute their negated activation literal, so the refutation retires
    with the row.
    @raise Invalid_argument if the scheme has no live row. *)

val order_ports : ?schemes:Pmi_isa.Scheme.t list -> t -> int -> int -> unit
(** Add a lexicographic column-ordering fact: column [p] ≥ column [q] read
    along the own rows of [schemes] (default: all live proper rows).  Sound
    whenever ports [p] and [q] are interchangeable for every row {e not}
    covered by the constraint — in delta sessions (created with symmetry
    breaking off because frozen rows pin port identities), MapCheck detects
    port pairs whose swap leaves the accepted mapping invariant and feeds
    them here over the freshly appended rows, restoring the symmetry
    breaking the frozen rows still admit.  Clauses carry the ¬act guard of
    every covered guarded row, so the fact never outlives the rows it
    orders.  @raise Invalid_argument on an out-of-range or equal pair. *)

val split_hint : t -> int list
(** Cube-split hint for {!Pmi_smt.Solver.solve_cubes}: the own-port µop
    variables of the instruction classes, most constrained first — classes
    ranked by the summed VSIDS activity of their own µop row (catalog order
    on a fresh solver), ports within a row likewise by activity.  Retired
    rows and root-assigned variables are excluded — splitting on a decided
    variable wastes the cube.  Re-query after each solve; the ranking
    follows the search. *)

(** {1 Static analysis support} *)

val protected_vars : t -> int list
(** Every variable with encoding meaning (µop rows, selectors, activation
    literals) across live {e and} retired rows.  Certified simplification
    ({!Pmi_analysis.Enclint.simplify}) must not eliminate these; the
    remaining variables — cardinality registers, symmetry auxiliaries —
    are anonymous plumbing. *)

val enclint_view :
  ?lemmas:Pmi_smt.Lit.t list list ->
  ?frozen:Pmi_smt.Lit.t list ->
  ?accepted:Pmi_portmap.Mapping.t ->
  t ->
  Pmi_analysis.Enclint.view
(** Describe the encoding to the static analyzer: every row with its
    activation literal, liveness, and recorded cardinality networks, plus
    the current {!split_hint}.  [?lemmas] are the theory lemmas asserted
    so far, [?frozen] the delta-mode assumption literals, [?accepted] a
    mapping whose pinned assignment lemmas are vetted against. *)
