open Pmi_isa
module Rat = Pmi_numeric.Rat
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Harness = Pmi_measure.Harness
module Machine = Pmi_machine.Machine

let log = Logs.Src.create "pmi.pipeline" ~doc:"end-to-end case study"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  blocking : Blocking.config;
  cegis : Cegis.config;
  port_usage : Port_usage.config;
}

let default_config =
  { blocking = Blocking.default_config;
    cegis = Cegis.default_config;
    port_usage = Port_usage.default_config }

type verdict =
  | Excluded_individual of Blocking.individual
  | Excluded_pairing
  | Excluded_mnemonic
  | Blocking_class of Scheme.t
  | Characterized of { usage : Mapping.usage; spurious : bool }
  | Unstable_result of Port_usage.failure

type funnel = {
  total : int;
  excluded_individual : int;
  after_stage1 : int;
  candidates_initial : int;
  excluded_pairing : int;
  after_stage2 : int;
  candidates_final : int;
  blocking_classes : int;
  excluded_mnemonic : int;
  considered : int;
  regular_pattern : int;
  spurious_ms : int;
  unstable : int;
  inferred : int;
}

type t = {
  catalog : Catalog.t;
  verdicts : verdict array;
  filtering : Blocking.filtering;
  removed_classes : Blocking.klass list;
  blocker_mapping : Mapping.t;
  alignment : Relabel.alignment option;
  improper : Scheme.t list;
  blockers : Port_usage.blocker list;
  cegis_stats : Cegis.stats option;
  mapping : Mapping.t;
  funnel : funnel;
}

let verdict t scheme = t.verdicts.(Scheme.id scheme)

(* ------------------------------------------------------------------ *)
(* Improper store blockers (§4.3)                                      *)
(* ------------------------------------------------------------------ *)

let is_scalar_store scheme =
  Scheme.mnemonic scheme = "mov"
  && (match Scheme.memory_writes scheme with [ _ ] -> true | [] | _ :: _ -> false)
  && Scheme.memory_reads scheme = []
  && List.exists
       (fun op ->
          match op.Operand.kind with
          | Operand.Gpr _ -> true
          | Operand.Gpr_high | Operand.Vec _ | Operand.Mem _ | Operand.Imm _ ->
            false)
       (Scheme.operands scheme)

let is_vector_store scheme =
  Scheme.memory_writes scheme = [ 128 ]
  && Scheme.memory_reads scheme = []
  && List.exists
       (fun op ->
          match op.Operand.kind with
          | Operand.Vec 128 -> true
          | Operand.Vec _ | Operand.Gpr _ | Operand.Gpr_high | Operand.Mem _
          | Operand.Imm _ -> false)
       (Scheme.operands scheme)

let find_improper catalog =
  let schemes = Array.to_list (Catalog.schemes catalog) in
  let pick pred = List.find_opt pred schemes in
  let scalar =
    (* The paper uses the 32-bit storing mov; fall back to any width. *)
    match
      pick (fun s -> is_scalar_store s && Scheme.memory_writes s = [ 32 ])
    with
    | Some s -> Some s
    | None -> pick is_scalar_store
  in
  List.filter_map Fun.id [ scalar; pick is_vector_store ]

(* ------------------------------------------------------------------ *)
(* CEGIS over the blocking classes, with §4.3 culprit removal          *)
(* ------------------------------------------------------------------ *)

let own_port_count harness scheme =
  let tp = Rat.to_float (Harness.cycles harness (Experiment.singleton scheme)) in
  max 1 (int_of_float (Float.round (1.0 /. tp)))

let specs_of config harness classes improper =
  ignore config;
  List.map
    (fun k -> (k.Blocking.representative, Encoding.Proper k.Blocking.port_count))
    classes
  @ List.map
      (fun s ->
         (s, Encoding.Improper { own_ports = own_port_count harness s }))
      improper

let scheme_in_observation s obs =
  Experiment.count obs.Cegis.experiment s > 0

(* When findMapping is UNSAT, find the scheme(s) whose removal (together
   with the observations naming them) restores consistency.

   The refuting observation usually names an innocent flooding instruction
   alongside the real anomaly, and removing either restores SAT, so the
   choice needs evidence beyond the single refutation.  Two mechanisms:

   - {e probing}: pair each suspect with kernels of other classes and check
     whether its inconsistency reproduces independently of the co-suspects
     (a multi-partner anomaly like vmovd flags itself decisively).  A probe
     that clashes with exactly one kernel is attributed by a mirrored
     probe: if the partner also clashes with others once the suspect is
     out of the way, the partner owns the anomaly and the suspect is
     exonerated (vpslld paired with vmovd); a partner that is clean on its
     own convicts the suspect (imul against its saturated add partner);
   - {e second-chance probing}: the refuting experiment may name only
     innocent instructions — the real anomaly can sit in an {e earlier}
     observation that merely clashes with the newest one, and which
     observation arrives last depends on the solver's model enumeration
     order.  When every suspect's probe abstains, re-probe every scheme
     mentioned in any observation, this time excluding nobody from the
     partner kernels: a saturation anomaly (the imul case) needs its flood
     partner in the probe set, and that partner is often a co-suspect that
     first-stage probing removed;
   - {e heuristic ordering}: if both probe stages abstain, the fallback
     prefers the single-copy instruction of the refuting experiment over
     its flooded kernel, then the scheme with fewer observations overall. *)
let find_culprit config harness specs observations =
  let try_without victims =
    let specs' =
      List.filter (fun (s, _) -> not (List.exists (Scheme.equal s) victims)) specs
    in
    let observations' =
      List.filter
        (fun obs -> not (List.exists (fun v -> scheme_in_observation v obs) victims))
        observations
    in
    match Cegis.explain ~config ~specs:specs' ~observations:observations' () with
    | Some _ -> true
    | None -> false
  in
  let newest =
    match List.rev observations with
    | [] -> Experiment.empty
    | last :: _ -> last.Cegis.experiment
  in
  let suspects =
    List.filter
      (fun (s, _) -> Experiment.count newest s > 0)
      specs
  in
  (* Per-suspect consistency certificate: benchmark the suspect against
     every other class (in isolation from the other suspects and from any
     unrelated observation — other anomalies must not pollute the test) and
     ask whether {e any} mapping explains the suspect's own behaviour.
     Cross-observation contradictions (the vmovd case) and saturation
     anomalies (the imul case) both reappear in this focused set. *)
  let observe e =
    { Cegis.experiment = e; cycles = Harness.cycles harness e }
  in
  let specs_excluding excluding =
    List.filter (fun (s, _) -> not (List.exists (Scheme.equal s) excluding)) specs
  in
  let kernels_of specs' suspect =
    List.filter_map
      (fun (s, spec) ->
         match spec with
         | Encoding.Proper c when not (Scheme.equal s suspect) -> Some (s, c)
         | Encoding.Proper _ | Encoding.Improper _ -> None)
      specs'
  in
  let singletons_of specs' =
    List.map (fun (s, _) -> observe (Experiment.singleton s)) specs'
  in
  let pair_probes suspect (kernel, c) =
    List.map
      (fun copies ->
         observe (Experiment.add suspect (Experiment.replicate copies kernel)))
      [ 1; c; 2 * c ]
  in
  let explains specs' observations =
    Cegis.explain ~config ~specs:specs' ~observations () <> None
  in
  (* Which kernels does [suspect] clash with pairwise?  Stops counting at
     [limit] partners — the callers only distinguish zero, one, and many. *)
  let clash_partners ~excluding ~limit suspect =
    let specs' = specs_excluding excluding in
    let singletons = singletons_of specs' in
    let rec go acc = function
      | [] -> acc
      | k :: rest ->
        if List.length acc >= limit then acc
        else if explains specs' (singletons @ pair_probes suspect k) then
          go acc rest
        else go (fst k :: acc) rest
    in
    go [] (kernels_of specs' suspect)
  in
  let probe_flags ~excluding ((suspect, _)) =
    let specs' = specs_excluding excluding in
    let singletons = singletons_of specs' in
    if not (explains specs' singletons) then
      (* Degenerate: the per-class baselines alone are inconsistent, so
         every probe inherits the contradiction and pair attribution is
         meaningless.  Flag and let [try_without] arbitrate. *)
      true
    else begin
      let kernels = kernels_of specs' suspect in
      let probes = List.concat_map (pair_probes suspect) kernels in
      if explains specs' (singletons @ probes) then false
      else
        match clash_partners ~excluding ~limit:2 suspect with
        | [ k ] ->
          (* Single clashing partner: the pair alone cannot say which of
             the two is anomalous, so mirror the question (see the header
             comment). *)
          List.length (clash_partners ~excluding:[ suspect ] ~limit:2 k) < 2
        | _ -> true
    end
  in
  let flagged_by_probes ((suspect, _) as sp) =
    let others =
      List.filter (fun (s, _) -> not (Scheme.equal s suspect)) suspects
      |> List.map fst
    in
    probe_flags ~excluding:others sp
  in
  let heuristic_fallback () =
    let mentions s =
      List.length (List.filter (scheme_in_observation s) observations)
    in
    let key s =
      let in_newest = Experiment.count newest s > 0 in
      let copies = Experiment.count newest s in
      ((if in_newest then 0 else 1),
       (if in_newest then copies else 0),
       mentions s, Scheme.id s)
    in
    let candidates =
      List.map fst specs |> List.sort (fun a b -> compare (key a) (key b))
    in
    let single = List.find_opt (fun s -> try_without [ s ]) candidates in
    match single with
    | Some s -> Some [ s ]
    | None ->
      (* Rare: two anomalies surfaced in the same round. *)
      let rec pairs = function
        | [] -> None
        | s :: rest ->
          (match List.find_opt (fun s' -> try_without [ s; s' ]) rest with
           | Some s' -> Some [ s; s' ]
           | None -> pairs rest)
      in
      pairs candidates
  in
  let flagged = List.map fst (List.filter flagged_by_probes suspects) in
  let flagged = List.filter (fun s -> try_without [ s ]) flagged in
  if flagged <> [] then Some flagged
  else begin
    (* Second-chance probing (see the header comment): the anomaly may not
       be named by the newest observation at all.  Probe every scheme that
       any observation mentions, without excluding co-suspects — a
       saturation anomaly only reproduces with its flood partner present —
       and keep those whose removal also restores consistency. *)
    let mentioned =
      List.filter
        (fun (s, _) -> List.exists (scheme_in_observation s) observations)
        specs
    in
    let flagged =
      List.map fst (List.filter (probe_flags ~excluding:[]) mentioned)
    in
    let flagged = List.filter (fun s -> try_without [ s ]) flagged in
    if flagged <> [] then Some flagged
    else heuristic_fallback ()
  end

let run_cegis config harness classes improper =
  let measure e = Harness.cycles harness e in
  (* Durable warm start: every stored measurement of this machine enters
     the inference as a replayed observation ([Cegis.infer] filters to
     the current specs, so floods from other pipeline stages and retired
     culprits drop out).  An empty list without a store — zero change to
     the cold path. *)
  let warm_start =
    List.map
      (fun (experiment, cycles) -> { Cegis.experiment; cycles })
      (Harness.stored_observations harness)
  in
  let rec attempt ~warm_start classes improper removed =
    let specs = specs_of config harness classes improper in
    match Cegis.infer ~config:config.cegis ~warm_start ~measure ~specs () with
    | Cegis.Converged (m, stats) -> (m, stats, classes, improper, removed)
    | Cegis.Iteration_limit _ ->
      failwith "Pipeline: CEGIS iteration limit exceeded"
    | Cegis.No_consistent_mapping stats ->
      (match find_culprit config.cegis harness specs stats.Cegis.observations with
       | None when warm_start <> [] ->
         (* A full replayed history can implicate several §4.3 anomalies at
            once, which the one-culprit-per-round search cannot untangle.
            Re-run this attempt cold: the culprit protocol then sees
            observations arrive in its own order, and every measurement is
            still answered by the durable store, not the machine. *)
         Log.info (fun m ->
             m "warm start left no single culprit; replaying this round cold");
         attempt ~warm_start:[] classes improper removed
       | None -> failwith "Pipeline: observations admit no mapping and no culprit"
       | Some victims ->
         Log.info (fun m ->
             m "UNSAT (newest: %s): removing culprit blocking instruction(s) %s"
               (match List.rev stats.Cegis.observations with
                | [] -> "-"
                | o :: _ -> Experiment.to_string o.Cegis.experiment)
               (String.concat ", " (List.map Scheme.name victims)));
         let removed_classes =
           List.filter
             (fun k ->
                List.exists (Scheme.equal k.Blocking.representative) victims)
             classes
         in
         let classes' =
           List.filter
             (fun k ->
                not (List.exists (Scheme.equal k.Blocking.representative) victims))
             classes
         in
         let improper' =
           List.filter
             (fun s -> not (List.exists (Scheme.equal s) victims))
             improper
         in
         attempt ~warm_start classes' improper' (removed @ removed_classes))
  in
  attempt ~warm_start classes improper []

(* ------------------------------------------------------------------ *)
(* Regular-pattern detection (§4.4)                                    *)
(* ------------------------------------------------------------------ *)

type shape = Sh_gpr of int | Sh_high | Sh_vec of int | Sh_mem of int | Sh_imm of int

let shape_of scheme =
  List.map
    (fun op ->
       match op.Operand.kind with
       | Operand.Gpr w -> Sh_gpr w
       | Operand.Gpr_high -> Sh_high
       | Operand.Vec w -> Sh_vec w
       | Operand.Mem w -> Sh_mem w
       | Operand.Imm w -> Sh_imm w)
    (Scheme.operands scheme)

let sibling_index catalog =
  let tbl = Hashtbl.create 4096 in
  Array.iter
    (fun s ->
       let key = (Scheme.mnemonic s, shape_of s) in
       if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key s)
    (Catalog.schemes catalog);
  tbl

let load_ports = Portset.of_list [ 4; 5 ]

let usage_plus usage extra = Mapping.normalize_usage (usage @ extra)
let usage_times n usage = List.map (fun (p, m) -> (p, n * m)) usage

(* Does [usage] relate to a register-form sibling by one of the §4.4
   patterns?  [lookup] returns the final usage of a scheme if inferred. *)
let regular_pattern siblings lookup scheme usage =
  let find key = Hashtbl.find_opt siblings key in
  let mnemonic = Scheme.mnemonic scheme in
  let shape = shape_of scheme in
  let demote_mem to_reg =
    List.map
      (function
        | Sh_mem w -> to_reg w
        | (Sh_gpr _ | Sh_high | Sh_vec _ | Sh_imm _) as s -> s)
      shape
  in
  let halve =
    List.map
      (function
        | Sh_vec 256 -> Sh_vec 128
        | Sh_mem 256 -> Sh_mem 128
        | (Sh_vec _ | Sh_mem _ | Sh_gpr _ | Sh_high | Sh_imm _) as s -> s)
      shape
  in
  let matches sibling transform =
    match find (mnemonic, sibling) with
    | None -> None
    | Some sib ->
      if Scheme.equal sib scheme then None
      else (
        match lookup sib with
        | None -> None
        | Some sib_usage ->
          if Mapping.equal_usage usage (transform sib_usage) then Some ()
          else None)
  in
  let has_mem = List.exists (function Sh_mem _ -> true | _ -> false) shape in
  let mem_width =
    List.fold_left
      (fun acc s -> match s with Sh_mem w -> max acc w | _ -> acc)
      0 shape
  in
  let is_ymm = List.exists (function Sh_vec 256 -> true | _ -> false) shape in
  let reads = Scheme.memory_reads scheme <> [] in
  let writes = Scheme.memory_writes scheme <> [] in
  let candidates =
    (* read-memory form: register sibling + load µop(s) *)
    (if has_mem && reads && not writes then
       [ (demote_mem (fun w -> if w > 128 then Sh_vec 128 else if w >= 128 then Sh_vec w else Sh_gpr w),
          fun u -> usage_plus u [ (load_ports, if mem_width > 128 then 2 else 1) ]) ]
     else [])
    (* double-pumped 256-bit form: 2 x the 128-bit sibling *)
    @ (if is_ymm then [ (halve, fun u -> usage_times 2 u) ] else [])
    (* read-modify-write form: register sibling + store µop (+ AGU) *)
    @ (if has_mem && reads && writes then
         [ (demote_mem (fun w -> Sh_gpr w),
            fun u -> usage_plus u [ (Portset.singleton 5, 1) ]);
           (demote_mem (fun w -> Sh_gpr w),
            fun u ->
              usage_plus u [ (Portset.singleton 5, 1); (load_ports, 1) ]) ]
       else [])
  in
  List.exists (fun (sibling, transform) -> matches sibling transform <> None)
    candidates

(* ------------------------------------------------------------------ *)
(* The study                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) harness =
  let machine = Harness.machine harness in
  (* Machine-level constants come from the profile under test; the caller's
     config only chooses tolerances and search budgets (§3.5). *)
  let r_max = Machine.r_max machine in
  let num_ports = Machine.num_ports machine in
  let config =
    { config with
      blocking =
        { config.blocking with Blocking.r_max; max_ports = r_max - 1 };
      cegis = { config.cegis with Cegis.r_max; num_ports } }
  in
  let catalog = Machine.catalog machine in
  let schemes = Catalog.schemes catalog in
  let n = Array.length schemes in
  (* [None] = still pending a verdict. *)
  let pending : verdict option array = Array.make n None in
  let decide i v = pending.(i) <- Some v in
  (* Stage 1 (§4.1): benchmark every scheme individually. *)
  let stage1 =
    Array.map (Blocking.classify_individual ~config:config.blocking harness)
      schemes
  in
  let candidates = ref [] in
  Array.iteri
    (fun i s ->
       match stage1.(i) with
       | (Blocking.Hardwired | Blocking.Unreliable | Blocking.Zero_uop
         | Blocking.Outside_model) as v ->
         decide i (Excluded_individual v)
       | Blocking.Candidate ports -> candidates := (s, ports) :: !candidates
       | Blocking.Multi_uop _ -> ())
    schemes;
  let candidates = List.rev !candidates in
  let max_port_set =
    List.fold_left (fun acc (_, p) -> max acc p) 1 candidates
  in
  Bottleneck.check ~r_max:config.blocking.Blocking.r_max ~max_port_set;
  (* Stage 2 (§4.2): pair candidates, drop unstable and contradictory ones
     and everything sharing their mnemonics. *)
  let filtering =
    Blocking.filter_candidates ~config:config.blocking harness candidates
  in
  let bad_mnemonics = Hashtbl.create 16 in
  List.iter
    (fun s -> Hashtbl.replace bad_mnemonics (Scheme.mnemonic s) ())
    (filtering.Blocking.unstable @ filtering.Blocking.contradictory);
  Array.iteri
    (fun i s ->
       if pending.(i) = None && Hashtbl.mem bad_mnemonics (Scheme.mnemonic s)
       then decide i Excluded_pairing)
    schemes;
  let count_decided pred =
    Array.fold_left
      (fun acc v -> match v with Some v when pred v -> acc + 1 | _ -> acc)
      0 pending
  in
  let excluded_pairing_count =
    count_decided (function Excluded_pairing -> true | _ -> false)
  in
  (* Stage 3 (§4.3): infer the blocking-instruction mapping. *)
  let improper = find_improper catalog in
  let blocker_mapping_raw, stats, kept_classes, kept_improper, removed_classes =
    run_cegis config harness filtering.Blocking.classes improper
  in
  (* Exclude schemes sharing a mnemonic with a culprit class member. *)
  let culprit_mnemonics = Hashtbl.create 8 in
  List.iter
    (fun k ->
       List.iter
         (fun s -> Hashtbl.replace culprit_mnemonics (Scheme.mnemonic s) ())
         k.Blocking.members)
    removed_classes;
  Array.iteri
    (fun i s ->
       if pending.(i) = None && Hashtbl.mem culprit_mnemonics (Scheme.mnemonic s)
       then decide i Excluded_mnemonic)
    schemes;
  (* Stage 4: rename ports against the documented layout (Table 2). *)
  let docs_mapping = Machine.ground_truth machine in
  let docs =
    List.filter_map
      (fun s ->
         match Mapping.find_opt docs_mapping s with
         | Some u -> Some (s, u)
         | None -> None)
      (List.map (fun k -> k.Blocking.representative) kept_classes
       @ kept_improper)
  in
  let alignment = Relabel.align ~docs blocker_mapping_raw in
  let blocker_mapping =
    match alignment with
    | Some a ->
      let renamed = Relabel.apply a.Relabel.permutation blocker_mapping_raw in
      (* Schemes the renaming had to drop are the frontend-masked
         ambiguities ("[0,6,7,8]"-style add variants); like the paper, we
         resolve them in favour of the documented port set (§4.3: "We use
         [6,7,8,9] in the rest of the algorithm as it is consistent with
         the documentation"). *)
      List.iter
        (fun s ->
           match List.assoc_opt s docs with
           | Some doc_usage ->
             Log.info (fun m ->
                 m "resolving masked ambiguity of %s to the documented %s"
                   (Scheme.name s)
                   (Mapping.usage_to_string doc_usage));
             Mapping.set renamed s doc_usage
           | None -> ())
        a.Relabel.dropped;
      renamed
    | None -> blocker_mapping_raw
  in
  (* Stage 5 (§4.4): characterise everything else against the suite. *)
  let class_ports k =
    match Mapping.find_opt blocker_mapping k.Blocking.representative with
    | Some [ (ports, 1) ] -> ports
    | Some _ | None ->
      failwith "Pipeline: blocking representative has unexpected usage"
  in
  let blockers =
    List.map
      (fun k -> { Port_usage.scheme = k.Blocking.representative; ports = class_ports k })
      kept_classes
    @ List.filter_map
        (fun s ->
           if not (is_scalar_store s) then None
           else
             (* The store blocker floods the store µop: the µop of the
                improper instruction that does not coincide with any proper
                class (its other µop is the shared one, covered by that
                class's own blocker). *)
             match Mapping.find_opt blocker_mapping s with
             | Some usage ->
               let class_sets =
                 List.map class_ports kept_classes
               in
               let own =
                 List.filter
                   (fun (p, _) ->
                      not (List.exists (Portset.equal p) class_sets))
                   usage
               in
               (match own with
                | [ (ports, _) ] -> Some { Port_usage.scheme = s; ports }
                | [] -> None
                | _ :: _ ->
                  (* Both µops unmatched (no surviving partner class):
                     flood the narrower one, which is the store. *)
                  let ports, _ =
                    List.fold_left
                      (fun (bp, bc) (p, _) ->
                         let c = Portset.cardinal p in
                         if c < bc then (p, c) else (bp, bc))
                      (Portset.full (Mapping.num_ports blocker_mapping),
                       max_int)
                      usage
                  in
                  Some { Port_usage.scheme = s; ports })
             | None -> None)
        kept_improper
  in
  (* Blocking candidates inherit their class's port set. *)
  List.iter
    (fun k ->
       List.iter
         (fun s -> decide (Scheme.id s) (Blocking_class k.Blocking.representative))
         k.Blocking.members)
    kept_classes;
  (* Remaining schemes: the adapted Algorithm 1. *)
  Array.iteri
    (fun i s ->
       if pending.(i) = None then begin
         match
           Port_usage.characterize ~config:config.port_usage harness ~blockers s
         with
         | Port_usage.Usage { usage; spurious; _ } ->
           decide i (Characterized { usage; spurious })
         | Port_usage.Failed f -> decide i (Unstable_result f)
       end)
    schemes;
  let verdicts =
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every scheme is decided by now *))
      pending
  in
  (* Final mapping. *)
  let mapping = Mapping.create ~num_ports:config.cegis.Cegis.num_ports in
  let class_ports_by_rep = Hashtbl.create 16 in
  List.iter
    (fun k ->
       Hashtbl.replace class_ports_by_rep
         (Scheme.id k.Blocking.representative) (class_ports k))
    kept_classes;
  Array.iteri
    (fun i s ->
       match verdicts.(i) with
       | Blocking_class rep ->
         let ports = Hashtbl.find class_ports_by_rep (Scheme.id rep) in
         Mapping.set mapping s [ (ports, 1) ]
       | Characterized { usage; _ } -> if usage <> [] then Mapping.set mapping s usage
       | Excluded_individual _ | Excluded_pairing | Excluded_mnemonic
       | Unstable_result _ -> ())
    schemes;
  (* Funnel bookkeeping. *)
  let count pred = Array.fold_left (fun acc v -> if pred v then acc + 1 else acc) 0 verdicts in
  let excluded_individual =
    count (function Excluded_individual _ -> true | _ -> false)
  in
  let excluded_mnemonic_count =
    count (function Excluded_mnemonic -> true | _ -> false)
  in
  let unstable_count = count (function Unstable_result _ -> true | _ -> false) in
  let spurious_count =
    count (function Characterized { spurious; _ } -> spurious | _ -> false)
  in
  let siblings = sibling_index catalog in
  let lookup s = Mapping.find_opt mapping s in
  let regular_characterized =
    Array.to_list schemes
    |> List.filter (fun s ->
        match verdicts.(Scheme.id s) with
        | Characterized { usage; spurious = false } ->
          regular_pattern siblings lookup s usage
        | Characterized _ | Excluded_individual _ | Excluded_pairing
        | Excluded_mnemonic | Blocking_class _ | Unstable_result _ -> false)
    |> List.length
  in
  let class_member_count =
    count (function Blocking_class _ -> true | _ -> false)
  in
  let considered =
    count (function
        | Blocking_class _ | Characterized _ | Unstable_result _ -> true
        | Excluded_individual _ | Excluded_pairing | Excluded_mnemonic -> false)
  in
  let funnel =
    { total = n;
      excluded_individual;
      after_stage1 = n - excluded_individual;
      candidates_initial = List.length candidates;
      excluded_pairing = excluded_pairing_count;
      after_stage2 = n - excluded_individual - excluded_pairing_count;
      candidates_final =
        List.fold_left
          (fun acc k -> acc + List.length k.Blocking.members)
          0 filtering.Blocking.classes;
      blocking_classes = List.length filtering.Blocking.classes;
      excluded_mnemonic = excluded_mnemonic_count;
      considered;
      regular_pattern = class_member_count + regular_characterized;
      spurious_ms = spurious_count;
      unstable = unstable_count;
      inferred = Mapping.size mapping }
  in
  { catalog;
    verdicts;
    filtering;
    removed_classes;
    blocker_mapping;
    alignment;
    improper = kept_improper;
    blockers;
    cegis_stats = Some stats;
    mapping;
    funnel }

let pp_funnel ppf f =
  let line label value paper =
    Format.fprintf ppf "%-42s %6d   (paper: %s)@." label value paper
  in
  line "instruction schemes" f.total "2,980";
  line "excluded when benchmarked alone (§4.1.2)" f.excluded_individual "657";
  line "remaining after stage 1" f.after_stage1 "2,323";
  line "single-µop candidates" f.candidates_initial "691";
  line "excluded in pairing experiments (§4.2)" f.excluded_pairing "436";
  line "remaining after stage 2" f.after_stage2 "1,887";
  line "blocking candidates" f.candidates_final "563";
  line "blocking classes (Table 1)" f.blocking_classes "13";
  line "excluded with culprit mnemonics (§4.3)" f.excluded_mnemonic "68";
  line "considered in the final stage" f.considered "1,819";
  line "regular decomposition patterns (§4.4)" f.regular_pattern "~70%";
  line "microcode-sequencer artefacts" f.spurious_ms "~8%";
  line "unstable / outside the model" f.unstable "~7%";
  line "schemes with an inferred port mapping" f.inferred "1,700"
