(** Counter-example-guided port-mapping inference (§3.3, Algorithm 2).

    The loop maintains a set of measured experiments.  [find_mapping]
    searches a port mapping consistent with every measurement (SAT modulo
    the port-mapping theory: candidate mappings decoded from SAT models are
    checked against the observations with the exact throughput oracle under
    the §3.4 frontend bound; every violated observation yields a footprint
    lemma).  [find_other_mapping] searches a second consistent mapping
    together with a distinguishing experiment, trying small experiments
    first (the stratified search of §3.3.4) and requiring the 2ε separation
    that makes one measurement able to refute one of the two mappings.

    Termination mirrors the paper's argument: every candidate mapping a
    [find_other_mapping] call produces is either returned with a
    distinguishing experiment (and one of the two mappings dies with the
    next measurement) or permanently blocked within the call. *)

type config = {
  num_ports : int;
  r_max : int;
  epsilon : Pmi_numeric.Rat.t;
  max_experiment_size : int;   (** stratified distinguishing-experiment bound *)
  max_other_candidates : int;  (** consistent-mapping candidates examined per
                                   [find_other_mapping] call before declaring
                                   convergence *)
  max_iterations : int;        (** Algorithm-2 iteration budget *)
  symmetry_breaking : bool;
  incremental_sat : bool;      (** keep one persistent [findOtherMapping]
                                   solver per specs set instead of rebuilding
                                   the encoding every iteration; per-call
                                   [block_model] clauses are guarded behind
                                   activation literals and retired when the
                                   call returns, while learned clauses and
                                   theory lemmas persist (default [true]) *)
  memoized_oracle : bool;      (** evaluate the throughput oracle against
                                   memoized dense subset-sum tables
                                   ({!Pmi_portmap.Oracle}) rather than
                                   recomputing per query; exact same
                                   rationals (default [true]) *)
  domains : int;               (** > 1 fans the stratified
                                   distinguishing-experiment search, the
                                   convergence validation sweep, {e and} the
                                   SAT portfolio
                                   ({!Pmi_smt.Solver.solve_portfolio}) out
                                   over that many OCaml domains.  The
                                   validation sweep calls [measure]
                                   concurrently, so only raise this with a
                                   thread-safe measure function (default
                                   [1]) *)
  cube_conquer : int;          (** > 0 replaces the SAT portfolio with
                                   cube-and-conquer
                                   ({!Pmi_smt.Solver.solve_cubes}): each
                                   theory round splits the search space on
                                   that many variables — hinted by
                                   {!Pmi_core.Encoding.split_hint}, the
                                   port-set rows of the most-constrained
                                   instruction classes — into [2^k]
                                   assumption cubes scheduled across
                                   [domains] workers with work stealing
                                   and continuous cross-worker clause
                                   sharing.  Only effective with
                                   [domains > 1] (default [0], off) *)
  clause_db_reduction : bool;  (** let the SAT engine periodically discard
                                   high-glue learnt clauses
                                   ({!Pmi_smt.Sat.set_reduce_enabled});
                                   theory lemmas and blocking clauses are
                                   problem clauses and never touched
                                   (default [true]) *)
  dump_cnf : string option;    (** [Some prefix] writes the final CNF of
                                   each persistent solver in DIMACS format
                                   to [prefix ^ "-findmapping.cnf"] etc.,
                                   for offline triage (default [None]) *)
  certify : bool;              (** trust-but-verify: log DRAT proof traces
                                   in every solver and have the independent
                                   checker ({!Pmi_analysis.Drat}) accept a
                                   certificate for {e each} verdict the loop
                                   consumes — UNSAT answers (fresh,
                                   incremental-with-assumptions, and
                                   portfolio paths alike) must re-derive as
                                   RUP, SAT models must satisfy every input
                                   clause and their decoded mapping must
                                   explain every observation under the naive
                                   exact-rational oracle.  A failure raises
                                   {!Certification_failure} (default
                                   [false]) *)
  enclint : bool;              (** run the solver-off static analyzer
                                   ({!Pmi_analysis.Enclint.analyze}) over
                                   each encoding once per solver episode —
                                   before every [findMapping] /
                                   [findOtherMapping] / delta-flush solve.
                                   Structural checks (guards, duplicates,
                                   retired-row reachability, split hints)
                                   re-run each episode; the exhaustive
                                   cardinality-cone verification is paid
                                   once per solver instance.  Any
                                   [Error]-severity finding raises
                                   {!Enclint_failure}; findings are also
                                   logged and tallied under the
                                   [cegis.enclint.*] counters (default
                                   [false]) *)
  enclint_simplify : bool;     (** with [enclint], additionally run the
                                   DRAT-certified simplification
                                   ({!Pmi_analysis.Enclint.simplify}) on
                                   the episode's clause database before
                                   analyzing: subsumption, self-subsuming
                                   resolution, and blocked-clause
                                   elimination over the anonymous
                                   auxiliary variables, with every rewrite
                                   emitted into the proof trace so
                                   [certify] verdicts still check (default
                                   [false]) *)
  mapcheck : bool;             (** static refutation through the abstract
                                   interpreter ({!Pmi_analysis.Mapcheck}):
                                   the loop tracks every proper scheme's
                                   candidate port sets and, on each new
                                   observation, refutes candidates whose
                                   sound throughput interval excludes the
                                   measured value (same ε·|e| tolerance as
                                   consistency) — each refutation lands as
                                   a clause ({!Encoding.refute_row}) in
                                   every live encoding before any solver
                                   episode pays for rediscovering it.
                                   Initial singleton measurements whose
                                   value is already statically determined
                                   (point interval across all surviving
                                   candidates under the frontend bound)
                                   are skipped entirely, and in delta
                                   sessions interchangeable-port pairs of
                                   the accepted mapping are re-fed as
                                   ordering facts over the batch rows
                                   ({!Encoding.order_ports}).  Refutation
                                   is sound w.r.t. the model class, so the
                                   inferred mapping is unchanged — only
                                   the measurement and search effort
                                   shrink.  Tallied under the
                                   [cegis.mapcheck.*] counters; off for
                                   [num_ports] > 12 where the candidate
                                   spaces explode (default [false]) *)
  store : Pmi_store.Store.t option;
                               (** durable store for checker-accepted
                                   certificates: with [certify] on, an
                                   UNSAT verdict whose exact proof (keyed
                                   by {!Pmi_analysis.Drat.goal_digest},
                                   valued by
                                   {!Pmi_analysis.Drat.proof_digest}) was
                                   accepted by a previous run skips the
                                   DRAT re-check ([cegis.certificates_cached]
                                   counts the skips); freshly accepted
                                   certificates are written through.  The
                                   {e measurement} store rides on the
                                   harness ({!Pmi_measure.Harness.create}),
                                   not on this field (default [None]) *)
}

exception Certification_failure of string
(** An answer the solver produced could not be independently verified:
    either a DRAT certificate was rejected, or a SAT model failed the
    CNF/theory replay.  This indicates a solver or encoding bug — the
    result must not be trusted. *)

exception Enclint_failure of string
(** The static analyzer found an [Error]-severity defect in an encoding
    (wrong cardinality bound, missing guard literal, reachable retired
    row, …) before the solver ran on it.  Solver verdicts on such an
    encoding cannot be trusted, so the episode is aborted.  Only raised
    with [config.enclint] on. *)

val default_config : config

type observation = {
  experiment : Pmi_portmap.Experiment.t;
  cycles : Pmi_numeric.Rat.t;
}

type stats = {
  iterations : int;
  observations : observation list;  (** every measured experiment, in order *)
  candidates_tried : int;           (** mappings examined by
                                        [find_other_mapping] overall *)
  theory_lemmas : int;
  sat_episodes : int;               (** solver episodes this run paid for —
                                        every [findMapping] /
                                        [findOtherMapping] / delta-flush
                                        solve, certified or not; the unit
                                        MapCheck's static refutation tries
                                        to save *)
  sat : Pmi_smt.Sat.stats;          (** aggregated solver counters across
                                        the [findMapping] and
                                        [findOtherMapping] encodings *)
}

type outcome =
  | Converged of Pmi_portmap.Mapping.t * stats
  | No_consistent_mapping of stats
  | Iteration_limit of stats

val modeled_inverse :
  config -> Pmi_portmap.Mapping.t -> Pmi_portmap.Experiment.t ->
  Pmi_numeric.Rat.t
(** Throughput of the port-mapping model combined with the [r_max] frontend
    bound of §3.4. *)

val consistent :
  config -> Pmi_portmap.Mapping.t -> observation -> bool
(** Does the mapping explain the observation within ε·|e|? *)

val infer :
  ?config:config ->
  ?warm_start:observation list ->
  measure:(Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t) ->
  specs:(Pmi_isa.Scheme.t * Encoding.instr_spec) list ->
  unit ->
  outcome
(** Run Algorithm 2.  [measure] performs one steady-state benchmark; the
    initial experiment set is the singleton benchmark of every scheme.

    [warm_start] (default [[]]) replays previously measured observations
    — typically {!Pmi_measure.Harness.stored_observations} from a
    durable store — before the initial singleton round: they join the
    observation log and feed the MapCheck refuter exactly as fresh
    measurements would, singleton measurements they already cover are
    skipped, and the convergence-time validation sweep skips every
    experiment they answer.  Observations mentioning schemes outside
    [specs] are ignored ([cegis.warm_observations] counts the replayed
    ones).  Warm starting is sound: replayed values are real
    measurements of the same machine, so they constrain the search
    exactly as they did in the run that produced them. *)

val explain :
  ?config:config ->
  specs:(Pmi_isa.Scheme.t * Encoding.instr_spec) list ->
  observations:observation list ->
  unit ->
  Pmi_portmap.Mapping.t option
(** One standalone [findMapping] call: a mapping over [specs] consistent
    with the observations, if any.  Used for the §4.3 culprit search when
    the full inference reports UNSAT. *)

(** {1 Online incremental re-inference (delta mode)} *)

type delta_outcome =
  | Delta_applied of outcome
      (** the batch was solved against the frozen rows; [Converged] carries
          the updated full mapping *)
  | Delta_fallback of outcome
      (** the delta solver proved the batch inconsistent with the frozen
          rows, so a full re-inference over every live scheme ran instead;
          the outcome is that full run's *)

(** A long-lived delta-CEGIS session over a streaming catalog.

    [start] builds one persistent encoding in which {e every} port-set row
    is guarded by an activation literal ({!Encoding.append_row}), seeded
    from a previously accepted mapping.  New or changed schemes are
    [enqueue]d and batched; [flush] runs one solver episode for the whole
    batch: changed schemes' stale rows are retired with a unit clause
    (which also deactivates the theory lemmas scoped to them) and their
    observations dropped, fresh rows are appended, all pending singletons
    are measured in one batched sweep ([measure_batch], by default
    point-wise [measure]; pass {!Pmi_measure.Harness.sweep} to amortise
    harness round-trips), and the CEGIS loop then runs with the frozen
    rows pinned through solver {e assumptions}
    ({!Encoding.freeze_lits} + {!Encoding.row_assumptions}) — prior
    observations, learnt clauses, and theory lemmas all stay alive, and
    only the batch rows' port sets are actually open.  Under
    [config.certify] every delta verdict is certified exactly like the
    batch path: UNSAT answers must re-derive the negated assumption goal
    as RUP through the independent DRAT checker, SAT models replay against
    the CNF and the exact oracle.

    If the delta solve proves the batch inconsistent with the frozen rows,
    [flush] automatically falls back to a full re-inference over all live
    schemes and, on convergence, rebuilds the session around the new
    mapping ([Delta_fallback]).

    Sessions reject [Improper] (store-blocker) specs: their selector
    machinery does not compose with dynamic row sets, so such schemes take
    the full re-inference path.  Symmetry breaking is always off in the
    session encoding — an externally supplied frozen mapping need not be
    the lex-minimal column representative. *)
module Delta : sig
  type session

  val start :
    ?config:config ->
    measure:(Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t) ->
    ?measure_batch:
      (Pmi_portmap.Experiment.t list -> Pmi_numeric.Rat.t list) ->
    mapping:Pmi_portmap.Mapping.t ->
    specs:(Pmi_isa.Scheme.t * Encoding.instr_spec) list ->
    ?observations:observation list ->
    unit ->
    session
  (** [mapping] must cover every scheme in [specs] (it is the accepted
      result of a prior inference over them); [observations] seeds the
      session's experiment set, typically the final stats of that run.
      @raise Invalid_argument on an [Improper] spec or an uncovered
      scheme. *)

  val enqueue : session -> Pmi_isa.Scheme.t -> Encoding.instr_spec -> unit
  (** Queue a new or changed scheme for the next [flush].  Re-enqueueing a
      scheme already pending replaces its spec (last write wins).
      @raise Invalid_argument on an [Improper] spec. *)

  val pending : session -> int
  val mapping : session -> Pmi_portmap.Mapping.t
  (** The currently accepted mapping over all live schemes. *)

  val batches : session -> int
  (** Non-empty flushes completed so far. *)

  val fallbacks : session -> int
  (** Flushes that fell back to full re-inference. *)

  val flush : session -> delta_outcome
  (** Run one solver episode over every pending scheme (no-op
      [Delta_applied (Converged _)] when nothing is pending).  On
      [Converged] the session's mapping is updated; on fallback
      convergence the session is rebuilt around the full result; on any
      failure outcome the session keeps its pre-flush mapping. *)
end

val infer_delta :
  ?config:config ->
  measure:(Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t) ->
  ?measure_batch:(Pmi_portmap.Experiment.t list -> Pmi_numeric.Rat.t list) ->
  mapping:Pmi_portmap.Mapping.t ->
  specs:(Pmi_isa.Scheme.t * Encoding.instr_spec) list ->
  ?observations:observation list ->
  updates:(Pmi_isa.Scheme.t * Encoding.instr_spec) list ->
  unit ->
  delta_outcome
(** One-shot convenience: [Delta.start], enqueue every update, [flush]. *)
