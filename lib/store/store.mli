(** Durable crash-safe store for measurements, certificates and bench
    history (ROADMAP item 2).

    The paper's bottleneck is measurement: every counterexample round
    costs real hardware experiments, so losing the experiment cache on a
    crash re-pays the most expensive part of inference.  This store makes
    measurements (and checker-accepted DRAT certificates) outlive the
    process that produced them, the way nanoBench-style harnesses treat
    measurement files as durable artifacts.

    {2 On-disk layout}

    A store directory holds two files:

    - [journal.pmi] — an append-only journal.  Every record is framed as
      [magic · u32 payload length · u32 CRC32 · payload] where the payload
      is [u8 version · u8 kind · u16 key length · key · u32 value length ·
      value] (all little-endian).  Appends are flushed to the OS after
      every record; the store deliberately does {e not} [fsync] (a
      process crash loses nothing; an OS crash may lose the tail, which
      recovery then treats as torn).
    - [segment.pmi] — the compacted history: the same record framing
      behind an 8-byte header, followed by an index
      ([u32 entry count · (u8 kind · u16 key length · key · u64 offset)*])
      and a 16-byte footer ([u64 index offset · u32 index CRC32 · u32
      magic]).  Compaction writes live records (last writer wins per
      [kind · key]) to a temporary file and publishes it with an atomic
      [rename], then truncates the journal — a crash between the two
      steps only leaves journal records that replay idempotently over the
      segment.

    {2 Recovery}

    [open_] never fails on a damaged journal.  Replay walks the journal
    record by record:

    - an incomplete record at the end of the file (short header or short
      payload) is a {e torn tail} — it is truncated away and counted in
      [truncated_bytes] / the [store.recovered] counter;
    - a complete record whose CRC32 does not match is {e corrupt} — it is
      skipped (framing is intact, so replay continues) and counted in
      [corrupt] / the [store.corrupt] counter;
    - a record with a bad magic or an implausible length means the
      framing itself is gone — replay stops and truncates there.

    {2 Telemetry}

    [store.append], [store.replay] and [store.compact] spans, plus
    [store.{appends,hits,misses,recovered,corrupt,replayed,compactions}]
    counters (process-wide, one-atomic-branch no-ops when telemetry is
    off).

    {2 Crash injection}

    When the environment variable [PMI_STORE_CRASH_AFTER=n] is set, the
    n-th append writes half of a record's bytes, flushes, and raises
    [SIGKILL] against the process — a deterministic torn-tail crash the
    CI recovery gate uses.

    A store is safe to share across domains (every operation runs under
    an internal mutex). *)

type t

type kind =
  | Measurement    (** experiment key + machine fingerprint → sample *)
  | Certificate    (** goal hash → accepted DRAT proof digest *)
  | Bench_history  (** bench name + date → timing record *)

val kind_name : kind -> string
(** ["measurement"], ["certificate"], ["bench_history"]. *)

val open_ : ?auto_compact:int -> string -> t
(** [open_ dir] creates [dir] if needed, loads the segment, replays the
    journal (recovering as described above) and opens the journal for
    append.  [auto_compact] (default 8192, [<= 0] disables) is the number
    of journal records that triggers an automatic {!compact} inside
    {!put}. *)

val close : t -> unit
(** Flush and close the journal.  Further operations raise
    [Invalid_argument]. *)

val dir : t -> string

val put : t -> kind -> key:string -> string -> unit
(** Insert or overwrite (last writer wins).  The record is appended to
    the journal and flushed before [put] returns.  Re-putting the
    currently stored value is a no-op (no journal growth).
    @raise Invalid_argument when the key exceeds 65535 bytes or the value
    exceeds the 16 MiB record bound. *)

val get : t -> kind -> key:string -> string option
val mem : t -> kind -> key:string -> bool

val iter : t -> kind -> (key:string -> string -> unit) -> unit
(** Live records of one kind, in unspecified order. *)

val fold : t -> kind -> (key:string -> string -> 'a -> 'a) -> 'a -> 'a

val live : t -> kind -> int
(** Number of live records of one kind. *)

val compact : t -> unit
(** Write all live records to a fresh segment (atomic rename) and
    truncate the journal. *)

val gc : t -> keep:(kind -> key:string -> string -> bool) -> int
(** Drop every live record for which [keep] is false, then {!compact}.
    Returns the number of records dropped. *)

type stats = {
  live_measurements : int;
  live_certificates : int;
  live_bench : int;
  journal_records : int;      (** records currently in the journal *)
  segment_records : int;      (** records loaded from the segment *)
  journal_bytes : int;
  segment_bytes : int;
  replayed : int;             (** journal records recovered at [open_] *)
  corrupt : int;              (** corrupt records skipped at [open_] *)
  truncated_bytes : int;      (** torn-tail bytes removed at [open_] *)
  compactions : int;          (** compactions since [open_] *)
  appends : int;              (** appends since [open_] *)
  hits : int;                 (** [get] hits since [open_] *)
  misses : int;               (** [get] misses since [open_] *)
}

val stats : t -> stats

type report = {
  r_segment_records : int;
  r_journal_records : int;
  r_corrupt : int;       (** checksum-rejected records in either file *)
  r_torn_bytes : int;    (** trailing bytes recovery would truncate *)
}

val verify : string -> report
(** Read-only scan of a store directory: nothing is truncated or
    repaired.  A healthy store (including one whose last writer was
    SIGKILLed mid-append) reports [r_corrupt = 0]; [r_torn_bytes > 0]
    only flags the torn tail the next {!open_} will drop. *)
