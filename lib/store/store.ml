module Obs = Pmi_obs.Obs

(* Telemetry (process-wide, like every other subsystem's counters). *)
let c_appends = Obs.counter "store.appends"
let c_hits = Obs.counter "store.hits"
let c_misses = Obs.counter "store.misses"
let c_replayed = Obs.counter "store.replayed"
let c_corrupt = Obs.counter "store.corrupt"
let c_recovered = Obs.counter "store.recovered"
let c_compactions = Obs.counter "store.compactions"

type kind = Measurement | Certificate | Bench_history

let kind_code = function
  | Measurement -> 0
  | Certificate -> 1
  | Bench_history -> 2

let kind_of_code = function
  | 0 -> Some Measurement
  | 1 -> Some Certificate
  | 2 -> Some Bench_history
  | _ -> None

let kind_name = function
  | Measurement -> "measurement"
  | Certificate -> "certificate"
  | Bench_history -> "bench_history"

let num_kinds = 3

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial)                             *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

(* Journal record: "PMIR" | u32le payload_len | u32le crc32(payload) |
   payload, where payload = u8 version | u8 kind | u16le klen | key |
   u32le vlen | value.  The segment uses the same framing behind its own
   header. *)

let record_magic = 0x52494D50 (* "PMIR" little-endian *)
let record_version = 1
let header_bytes = 12
let max_payload = 1 lsl 24 (* 16 MiB: anything larger is framing damage *)
let segment_magic = "PMISEG1\n"
let footer_magic = 0x58494D50 (* "PMIX" little-endian *)
let footer_bytes = 16

let get_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let encode_record kind ~key value =
  let klen = String.length key and vlen = String.length value in
  if klen > 0xFFFF then invalid_arg "Store.put: key longer than 65535 bytes";
  let payload_len = 2 + 2 + klen + 4 + vlen in
  if payload_len > max_payload then
    invalid_arg "Store.put: record exceeds the 16 MiB bound";
  let b = Bytes.create (header_bytes + payload_len) in
  set_u32 b 0 record_magic;
  set_u32 b 4 payload_len;
  Bytes.set_uint8 b 12 record_version;
  Bytes.set_uint8 b 13 (kind_code kind);
  Bytes.set_uint16_le b 14 klen;
  Bytes.blit_string key 0 b 16 klen;
  set_u32 b (16 + klen) vlen;
  Bytes.blit_string value 0 b (20 + klen) vlen;
  let crc =
    crc32_sub (Bytes.unsafe_to_string b) header_bytes payload_len
  in
  set_u32 b 8 crc;
  b

(* [payload] region of [data] at [off], length [len]; [None] when the
   versioned payload does not parse (counts as corrupt). *)
let decode_payload data off len =
  if len < 8 then None
  else if Char.code data.[off] <> record_version then None
  else
    match kind_of_code (Char.code data.[off + 1]) with
    | None -> None
    | Some kind ->
      let klen = String.get_uint16_le data (off + 2) in
      if 8 + klen > len then None
      else
        let vlen = get_u32 data (off + 4 + klen) in
        if 8 + klen + vlen <> len then None
        else
          let key = String.sub data (off + 4) klen in
          let value = String.sub data (off + 8 + klen) vlen in
          Some (kind, key, value)

type scan = {
  mutable s_records : int;      (* checksummed records applied *)
  mutable s_corrupt : int;      (* complete records rejected *)
  mutable s_valid_end : int;    (* bytes of structurally valid prefix *)
}

(* Walk the record stream in [data.[off .. limit)], calling [apply] on
   every intact record.  A short or unframed tail stops the walk (torn);
   a complete record with a bad checksum or unparsable payload is skipped
   (corrupt), because the framing still carries us to the next record. *)
let scan_records ?(apply = fun _ ~key:_ _ -> ()) data ~off ~limit =
  let s = { s_records = 0; s_corrupt = 0; s_valid_end = off } in
  let pos = ref off in
  let torn = ref false in
  while (not !torn) && !pos + header_bytes <= limit do
    let p = !pos in
    if get_u32 data p <> record_magic then torn := true
    else begin
      let len = get_u32 data (p + 4) in
      if len < 8 || len > max_payload then torn := true
      else if p + header_bytes + len > limit then torn := true
      else begin
        let crc = get_u32 data (p + 8) in
        (if crc <> crc32_sub data (p + header_bytes) len then
           s.s_corrupt <- s.s_corrupt + 1
         else
           match decode_payload data (p + header_bytes) len with
           | None -> s.s_corrupt <- s.s_corrupt + 1
           | Some (kind, key, value) ->
             s.s_records <- s.s_records + 1;
             apply kind ~key value);
        pos := p + header_bytes + len;
        s.s_valid_end <- !pos
      end
    end
  done;
  s

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  journal_path : string;
  segment_path : string;
  auto_compact : int;
  tables : (string, string) Hashtbl.t array; (* indexed by kind code *)
  lock : Mutex.t;
  mutable oc : out_channel;
  mutable closed : bool;
  mutable journal_records : int;
  mutable segment_records : int;
  mutable segment_bytes : int;
  mutable replayed : int;
  mutable corrupt : int;
  mutable truncated_bytes : int;
  mutable compactions : int;
  mutable appends : int;
  mutable hits : int;
  mutable misses : int;
  crash_after : int option; (* PMI_STORE_CRASH_AFTER: CI fault injection *)
}

type stats = {
  live_measurements : int;
  live_certificates : int;
  live_bench : int;
  journal_records : int;
  segment_records : int;
  journal_bytes : int;
  segment_bytes : int;
  replayed : int;
  corrupt : int;
  truncated_bytes : int;
  compactions : int;
  appends : int;
  hits : int;
  misses : int;
}

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* The footer names the index region; the index in turn bounds the record
   region, so a loader can stop scanning exactly where records end.  An
   invalid footer (external damage) degrades to a journal-style sequential
   scan — never a failed open. *)
let segment_record_limit data =
  let size = String.length data in
  let hdr = String.length segment_magic in
  if size < hdr || not (String.equal (String.sub data 0 hdr) segment_magic)
  then None
  else if size < hdr + footer_bytes then Some (size, false)
  else
    let foff = size - footer_bytes in
    if get_u32 data (foff + 12) <> footer_magic then Some (size, false)
    else
      let index_off = Int64.to_int (String.get_int64_le data foff) in
      if index_off < hdr || index_off > foff then Some (size, false)
      else if
        get_u32 data (foff + 8) <> crc32_sub data index_off (foff - index_off)
      then Some (size, false)
      else Some (index_off, true)

let load_segment path apply =
  let data = read_file path in
  match segment_record_limit data with
  | None -> { s_records = 0; s_corrupt = 0; s_valid_end = 0 }
  | Some (limit, _indexed) ->
    scan_records ~apply data ~off:(String.length segment_magic) ~limit

let dir t = t.dir

let open_ ?(auto_compact = 8192) dir =
  mkdir_p dir;
  let journal_path = Filename.concat dir "journal.pmi" in
  let segment_path = Filename.concat dir "segment.pmi" in
  let tables = Array.init num_kinds (fun _ -> Hashtbl.create 256) in
  let apply kind ~key value =
    Hashtbl.replace tables.(kind_code kind) key value
  in
  Obs.span "store.replay" @@ fun () ->
  let seg = load_segment segment_path apply in
  let segment_bytes =
    if Sys.file_exists segment_path then
      In_channel.with_open_bin segment_path In_channel.length
      |> Int64.to_int
    else 0
  in
  let data = read_file journal_path in
  let jnl = scan_records ~apply data ~off:0 ~limit:(String.length data) in
  let truncated = String.length data - jnl.s_valid_end in
  if truncated > 0 then begin
    (* Torn tail (or unframed garbage): drop it so the next append starts
       on a record boundary. *)
    Unix.truncate journal_path jnl.s_valid_end;
    Obs.incr c_recovered
  end;
  Obs.add c_replayed jnl.s_records;
  Obs.add c_corrupt (jnl.s_corrupt + seg.s_corrupt);
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 journal_path
  in
  let crash_after =
    match Sys.getenv_opt "PMI_STORE_CRASH_AFTER" with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  { dir;
    journal_path;
    segment_path;
    auto_compact;
    tables;
    lock = Mutex.create ();
    oc;
    closed = false;
    journal_records = jnl.s_records;
    segment_records = seg.s_records;
    segment_bytes;
    replayed = jnl.s_records;
    corrupt = jnl.s_corrupt + seg.s_corrupt;
    truncated_bytes = truncated;
    compactions = 0;
    appends = 0;
    hits = 0;
    misses = 0;
    crash_after }

let check_open t = if t.closed then invalid_arg "Store: store is closed"

let with_lock t f = Mutex.protect t.lock (fun () -> check_open t; f ())

let close t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then begin
        flush t.oc;
        close_out t.oc;
        t.closed <- true
      end)

(* Deterministic fault injection for the CI crash-recovery gate: the
   [PMI_STORE_CRASH_AFTER]-th append leaves half a record in the journal
   and SIGKILLs the process — no atexit handler, no flush-on-exit, the
   exact failure mode recovery must absorb. *)
let maybe_crash t =
  match t.crash_after with
  | Some n when t.appends >= n ->
    let torn = encode_record Measurement ~key:"__crash__" "torn tail" in
    let half = Bytes.sub torn 0 (Bytes.length torn / 2) in
    output_bytes t.oc half;
    flush t.oc;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

let rec compact_locked t =
  Obs.span "store.compact" @@ fun () ->
  let tmp = t.segment_path ^ ".tmp" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  output_string oc segment_magic;
  let offset = ref (String.length segment_magic) in
  let index = Buffer.create 1024 in
  let count = ref 0 in
  (* Kind order then sorted keys: compaction output is a pure function of
     the live contents, so open/close/open leaves the bytes untouched and
     two replicas with the same records compact identically. *)
  for code = 0 to num_kinds - 1 do
    let kind = Option.get (kind_of_code code) in
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) t.tables.(code) []
      |> List.sort String.compare
    in
    List.iter
      (fun key ->
         let value = Hashtbl.find t.tables.(code) key in
         let record = encode_record kind ~key value in
         output_bytes oc record;
         Buffer.add_uint8 index code;
         Buffer.add_uint16_le index (String.length key);
         Buffer.add_string index key;
         Buffer.add_int64_le index (Int64.of_int !offset);
         offset := !offset + Bytes.length record;
         incr count)
      keys
  done;
  let index_off = !offset in
  let index_payload =
    let b = Buffer.create (Buffer.length index + 4) in
    Buffer.add_int32_le b (Int32.of_int !count);
    Buffer.add_buffer b index;
    Buffer.contents b
  in
  output_string oc index_payload;
  let footer = Bytes.create footer_bytes in
  Bytes.set_int64_le footer 0 (Int64.of_int index_off);
  set_u32 footer 8 (crc32_sub index_payload 0 (String.length index_payload));
  set_u32 footer 12 footer_magic;
  output_bytes oc footer;
  flush oc;
  close_out oc;
  (* Publish point: readers either see the old segment or the complete new
     one.  A crash before the journal truncate below merely leaves journal
     records that replay idempotently over the new segment. *)
  Sys.rename tmp t.segment_path;
  close_out t.oc;
  t.oc <-
    open_out_gen
      [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      0o644 t.journal_path;
  t.segment_records <- !count;
  t.segment_bytes <- index_off + String.length index_payload + footer_bytes;
  t.journal_records <- 0;
  t.compactions <- t.compactions + 1;
  Obs.incr c_compactions

and put t kind ~key value =
  with_lock t (fun () ->
      let tbl = t.tables.(kind_code kind) in
      match Hashtbl.find_opt tbl key with
      | Some v when String.equal v value -> () (* identical re-put: no-op *)
      | _ ->
        Obs.span "store.append" (fun () ->
            Hashtbl.replace tbl key value;
            output_bytes t.oc (encode_record kind ~key value);
            flush t.oc;
            t.journal_records <- t.journal_records + 1;
            t.appends <- t.appends + 1;
            Obs.incr c_appends;
            maybe_crash t);
        if t.auto_compact > 0 && t.journal_records >= t.auto_compact then
          compact_locked t)

let compact t = with_lock t (fun () -> compact_locked t)

let get t kind ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tables.(kind_code kind) key with
      | Some v ->
        t.hits <- t.hits + 1;
        Obs.incr c_hits;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        Obs.incr c_misses;
        None)

let mem t kind ~key = Option.is_some (get t kind ~key)

let iter t kind f =
  (* Snapshot under the lock, apply outside: [f] may call back into the
     store. *)
  let entries =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun key value acc -> (key, value) :: acc)
          t.tables.(kind_code kind) [])
  in
  List.iter (fun (key, value) -> f ~key value) entries

let fold t kind f init =
  let acc = ref init in
  iter t kind (fun ~key value -> acc := f ~key value !acc);
  !acc

let live t kind = with_lock t (fun () -> Hashtbl.length t.tables.(kind_code kind))

let gc t ~keep =
  with_lock t (fun () ->
      let dropped = ref 0 in
      for code = 0 to num_kinds - 1 do
        let kind = Option.get (kind_of_code code) in
        let tbl = t.tables.(code) in
        let doomed =
          Hashtbl.fold
            (fun key value acc ->
               if keep kind ~key value then acc else key :: acc)
            tbl []
        in
        List.iter (Hashtbl.remove tbl) doomed;
        dropped := !dropped + List.length doomed
      done;
      compact_locked t;
      !dropped)

let stats t =
  with_lock t (fun () ->
      { live_measurements = Hashtbl.length t.tables.(0);
        live_certificates = Hashtbl.length t.tables.(1);
        live_bench = Hashtbl.length t.tables.(2);
        journal_records = t.journal_records;
        segment_records = t.segment_records;
        journal_bytes =
          (try (Unix.stat t.journal_path).Unix.st_size with Unix.Unix_error _ -> 0);
        segment_bytes = t.segment_bytes;
        replayed = t.replayed;
        corrupt = t.corrupt;
        truncated_bytes = t.truncated_bytes;
        compactions = t.compactions;
        appends = t.appends;
        hits = t.hits;
        misses = t.misses })

type report = {
  r_segment_records : int;
  r_journal_records : int;
  r_corrupt : int;
  r_torn_bytes : int;
}

let verify dir =
  let seg = load_segment (Filename.concat dir "segment.pmi") (fun _ ~key:_ _ -> ()) in
  let data = read_file (Filename.concat dir "journal.pmi") in
  let jnl = scan_records data ~off:0 ~limit:(String.length data) in
  { r_segment_records = seg.s_records;
    r_journal_records = jnl.s_records;
    r_corrupt = seg.s_corrupt + jnl.s_corrupt;
    r_torn_bytes = String.length data - jnl.s_valid_end }
