/* Monotonic clock primitive for Pmi_obs.
 *
 * One C call, no OCaml allocation: the timestamp is returned as a tagged
 * immediate (63-bit nanoseconds wrap after ~146 years of uptime).  Kept as
 * a stub of our own so the telemetry library depends on nothing outside
 * the compiler distribution. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value pmi_obs_clock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
