(* The bench-regression gate: compare one bench --json run against the
   latest entry of a BENCH_sat.json-style history file and flag wall-clock
   regressions.  Pure data plumbing on top of Json — the bench driver's
   --check-regression mode and the @obs tests both go through here, so the
   gate logic the CI job enforces is the one the test suite pins down. *)

let schema_version = 2

type record = {
  name : string;
  ns_per_run : float option;  (* timing records *)
  count : int option;         (* solver-statistic records *)
}

type run = {
  version : int option;
  records : record list;
}

let record_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
    Some
      { name;
        ns_per_run = Option.bind (Json.member "ns_per_run" j) Json.to_float;
        count = Option.bind (Json.member "count" j) Json.to_int }
  | Some _ | None -> None

let records_of_json js = List.filter_map record_of_json js

(* Accept both shapes: the schema-versioned v2 object
   {schema_version; results; ...} and the bare v1 array of records. *)
let run_of_json = function
  | Json.List js -> Ok { version = None; records = records_of_json js }
  | Json.Obj _ as j ->
    (match Json.member "results" j with
     | Some (Json.List js) ->
       Ok
         { version =
             Option.bind (Json.member "schema_version" j) Json.to_int;
           records = records_of_json js }
     | Some _ | None -> Error "no \"results\" array in bench record")
  | Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ ->
    Error "bench record is neither an array nor an object"

let parse_run text =
  match Json.parse text with
  | Error _ as e -> e
  | Ok j -> run_of_json j

(* The newest entry of a history file ({"history": [entry; ...]}, newest
   last, as in BENCH_sat.json). *)
let latest_history_entry text =
  match Json.parse text with
  | Error _ as e -> e
  | Ok j ->
    (match Json.member "history" j with
     | Some (Json.List (_ :: _ as entries)) ->
       run_of_json (List.nth entries (List.length entries - 1))
     | Some (Json.List []) -> Error "empty \"history\" array"
     | Some _ | None -> Error "no \"history\" array in history file")

type verdict = {
  bench : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
  regressed : bool;
}

let default_threshold = 0.25

(* Benches are compared by name; ones present on only one side are
   skipped (machines differ in which sections they ran), and count-type
   records never gate (counters drift legitimately with policy changes).
   An Error means the records are incomparable and the caller should not
   conclude anything — most importantly on a schema-version mismatch. *)
let compare_runs ?(threshold = default_threshold) ~baseline ~current () =
  let version_of run =
    match run.version with
    | Some v -> Ok v
    | None -> Error "record carries no schema_version"
  in
  match (version_of baseline, version_of current) with
  | Error e, _ -> Error ("baseline is incomparable: " ^ e)
  | _, Error e -> Error ("current run is incomparable: " ^ e)
  | Ok bv, Ok cv when bv <> cv ->
    Error
      (Printf.sprintf
         "incomparable schema versions: baseline %d vs current %d" bv cv)
  | Ok _, Ok _ ->
    let verdicts =
      List.filter_map
        (fun cur ->
           match cur.ns_per_run with
           | None -> None
           | Some current_ns ->
             List.find_opt (fun b -> b.name = cur.name) baseline.records
             |> Fun.flip Option.bind (fun b -> b.ns_per_run)
             |> Option.map (fun baseline_ns ->
                 let ratio =
                   if baseline_ns > 0. then current_ns /. baseline_ns
                   else infinity
                 in
                 { bench = cur.name;
                   baseline_ns;
                   current_ns;
                   ratio;
                   regressed = ratio > 1. +. threshold }))
        current.records
    in
    Ok verdicts

let regressions verdicts = List.filter (fun v -> v.regressed) verdicts

let pp_verdict v =
  Printf.sprintf "%-44s %14.1f %14.1f %8.2fx %s" v.bench v.baseline_ns
    v.current_ns v.ratio
    (if v.regressed then "REGRESSED" else "ok")

let report verdicts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %14s %14s %9s\n" "bench" "baseline ns"
       "current ns" "ratio");
  List.iter
    (fun v -> Buffer.add_string buf (pp_verdict v ^ "\n"))
    verdicts;
  let regs = regressions verdicts in
  Buffer.add_string buf
    (if regs = [] then
       Printf.sprintf "regression gate: %d benches compared, none regressed\n"
         (List.length verdicts)
     else
       Printf.sprintf "regression gate: %d of %d benches regressed (>%.0f%%)\n"
         (List.length regs) (List.length verdicts)
         (default_threshold *. 100.));
  Buffer.contents buf
