(** A minimal JSON tree, parser and printer (stdlib only).

    Serves the observability stack: {!Obs} prints Chrome-trace files
    through it, the bench driver writes its [--json] reports with it, and
    {!Gate} plus the [@obs] tests parse both back.  Numbers are floats;
    [\uXXXX] escapes are decoded to UTF-8 on parse and control characters
    are escaped on print. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Strict parse of a complete document (trailing garbage is an error). *)

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
