(* A minimal JSON tree, parser and printer.

   Just enough for the observability stack: the Chrome-trace exporter and
   the bench --json writer need escaping-correct printing, and the
   bench-regression gate and the @obs tests need to read those files back.
   No dependency beyond the stdlib; numbers are floats (every number this
   repo writes fits), strings are byte sequences with \uXXXX decoded to
   UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of string * int

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_add buf code =
    (* Encode one Unicode scalar (surrogates already combined). *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "truncated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              let hi = hex4 () in
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* Surrogate pair. *)
                expect '\\';
                expect 'u';
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "invalid surrogate pair";
                utf8_add buf
                  (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else utf8_add buf hi
            | c -> fail (Printf.sprintf "invalid escape \\%c" c)));
        go ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | Some _ | None -> false
    in
    while numeric () do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | Some _ | None -> fail "expected , or } in object"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | Some _ | None -> fail "expected , or ] in array"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Fail (msg, p) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
