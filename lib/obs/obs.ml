(* Telemetry: spans, counters, gauges, bounded per-domain event rings, and
   the tree/Chrome-trace exporters.  See obs.mli for the contract.

   Layout mirrors Pmi_diag.Race: one atomic enable flag checked first on
   every entry point (the disabled path is a single predictable branch and
   allocates nothing), and a generation counter so per-domain buffers
   cached in domain-local storage from a previous enable() are lazily
   replaced instead of polluting the new trace. *)

external clock_ns : unit -> int = "pmi_obs_clock_ns" [@@noalloc]

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span
  | Instant
  | Counter_sample

type event = {
  kind : kind;
  name : string;
  path : string;
  tid : int;
  ts_ns : int;
  dur_ns : int;
  depth : int;
  args : (string * arg) list;
}

let dummy_event =
  { kind = Instant; name = ""; path = ""; tid = 0; ts_ns = 0; dur_ns = 0;
    depth = 0; args = [] }

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Bumped on every enable(); buffers stamped with an older generation are
   stale and get replaced on first use. *)
let generation = Atomic.make 0

(* Trace origin: all event timestamps are [clock_ns () - !t0].  Written
   only by enable(), before the flag goes up. *)
let t0 = ref (clock_ns ())

let default_capacity = 65536
let ring_capacity = ref default_capacity
let set_ring_capacity n =
  if n <= 0 then invalid_arg "Obs.set_ring_capacity";
  ring_capacity := n

let max_depth = 256

(* ------------------------------------------------------------------ *)
(* Per-domain buffers                                                  *)

type buf = {
  gen : int;
  tid : int;
  ring : event array;
  mutable head : int;          (* next write slot *)
  mutable count : int;         (* live events, <= capacity *)
  mutable depth : int;         (* open spans *)
  frame_name : string array;
  frame_path : string array;
  frame_ts : int array;
  frame_args : (string * arg) list array;
  mutable lost : int;          (* ring overwrites + stack overflows *)
}

(* All buffers of the current generation, for the exporters to merge.
   The mutex guards registration and the counter/gauge registries only —
   never the per-event hot path. *)
let registry_mutex = Mutex.create ()
let registry : buf list ref = ref []

let stale_buf =
  { gen = -1; tid = -1; ring = [||]; head = 0; count = 0; depth = 0;
    frame_name = [||]; frame_path = [||]; frame_ts = [||]; frame_args = [||];
    lost = 0 }

let dls_key = Domain.DLS.new_key (fun () -> stale_buf)

let fresh_buf gen =
  let b =
    { gen;
      tid = (Domain.self () :> int);
      ring = Array.make !ring_capacity dummy_event;
      head = 0;
      count = 0;
      depth = 0;
      frame_name = Array.make max_depth "";
      frame_path = Array.make max_depth "";
      frame_ts = Array.make max_depth 0;
      frame_args = Array.make max_depth [];
      lost = 0 }
  in
  Mutex.lock registry_mutex;
  registry := b :: !registry;
  Mutex.unlock registry_mutex;
  Domain.DLS.set dls_key b;
  b

let get_buf () =
  let b = Domain.DLS.get dls_key in
  let gen = Atomic.get generation in
  if b.gen = gen then b else fresh_buf gen

let push_event b ev =
  let cap = Array.length b.ring in
  b.ring.(b.head) <- ev;
  b.head <- (b.head + 1) mod cap;
  if b.count < cap then b.count <- b.count + 1 else b.lost <- b.lost + 1

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

(* A frame is the stack index the span was pushed at; -1 is the disabled
   dummy.  A frame from a previous generation is harmless: the fresh
   buffer's depth is 0, so leave's [frame < depth] guard rejects it. *)
type frame = int

let no_frame : frame = -1

let now () = clock_ns () - !t0

let enter ?args name =
  if not (Atomic.get enabled_flag) then no_frame
  else begin
    let b = get_buf () in
    let d = b.depth in
    if d >= max_depth then begin
      b.lost <- b.lost + 1;
      no_frame
    end
    else begin
      b.frame_name.(d) <- name;
      b.frame_path.(d) <-
        (if d = 0 then name else b.frame_path.(d - 1) ^ "/" ^ name);
      b.frame_args.(d) <- (match args with None -> [] | Some a -> a);
      b.frame_ts.(d) <- now ();
      b.depth <- d + 1;
      d
    end
  end

let leave ?args frame =
  if frame >= 0 && Atomic.get enabled_flag then begin
    let b = get_buf () in
    if frame < b.depth then begin
      (* Children left open (an exception unwound past their leave) are
         dropped with the stack truncation; count them as lost. *)
      b.lost <- b.lost + (b.depth - frame - 1);
      b.depth <- frame;
      let ts = b.frame_ts.(frame) in
      let args =
        match args with
        | None -> b.frame_args.(frame)
        | Some extra -> b.frame_args.(frame) @ extra
      in
      push_event b
        { kind = Span;
          name = b.frame_name.(frame);
          path = b.frame_path.(frame);
          tid = b.tid;
          ts_ns = ts;
          dur_ns = now () - ts;
          depth = frame;
          args }
    end
  end

let span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let frame = enter ?args name in
    match f () with
    | v ->
      leave frame;
      v
    | exception e ->
      leave ~args:[ ("exn", Str (Printexc.to_string e)) ] frame;
      raise e
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = get_buf () in
    let d = b.depth in
    push_event b
      { kind = Instant;
        name;
        path = (if d = 0 then name else b.frame_path.(d - 1) ^ "/" ^ name);
        tid = b.tid;
        ts_ns = now ();
        dur_ns = 0;
        depth = d;
        args }
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

type counter = {
  cname : string;
  cell : int Atomic.t;
}

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauge_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counter_tbl name with
    | Some c -> c
    | None ->
      let c = { cname = name; cell = Atomic.make 0 } in
      Hashtbl.replace counter_tbl name c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let incr c = if Atomic.get enabled_flag then Atomic.incr c.cell

let add c n =
  if n < 0 then invalid_arg ("Obs.add: counter " ^ c.cname ^ " is monotone");
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let counters () =
  Mutex.lock registry_mutex;
  let all =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc)
      counter_tbl []
  in
  Mutex.unlock registry_mutex;
  List.sort compare all

let set_gauge name v =
  if Atomic.get enabled_flag then begin
    Mutex.lock registry_mutex;
    Hashtbl.replace gauge_tbl name v;
    Mutex.unlock registry_mutex;
    let b = get_buf () in
    push_event b
      { kind = Counter_sample;
        name;
        path = name;
        tid = b.tid;
        ts_ns = now ();
        dur_ns = 0;
        depth = b.depth;
        args = [ ("value", Float v) ] }
  end

let gauges () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun name v acc -> (name, v) :: acc) gauge_tbl [] in
  Mutex.unlock registry_mutex;
  List.sort compare all

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)

let enable () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_mutex;
  registry := [];
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counter_tbl;
  Hashtbl.reset gauge_tbl;
  Mutex.unlock registry_mutex;
  Atomic.incr generation;
  t0 := clock_ns ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* ------------------------------------------------------------------ *)
(* Reading back                                                        *)

let buf_events b =
  let cap = Array.length b.ring in
  List.init b.count (fun i ->
      b.ring.((b.head - b.count + i + cap + cap) mod cap))

let events () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.concat_map buf_events bufs
  |> List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns)

let dropped () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left (fun acc b -> acc + b.lost) 0 bufs

(* ------------------------------------------------------------------ *)
(* Chrome trace format                                                 *)

let arg_to_json = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)

let us ns = Json.Num (float_of_int ns /. 1e3)

let event_to_json ev =
  let common =
    [ ("name", Json.Str ev.name);
      ("cat", Json.Str "pmi");
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int ev.tid));
      ("ts", us ev.ts_ns) ]
  in
  match ev.kind with
  | Span ->
    Json.Obj
      (common
       @ [ ("ph", Json.Str "X"); ("dur", us ev.dur_ns);
           ("args", args_to_json ev.args) ])
  | Instant ->
    Json.Obj
      (common
       @ [ ("ph", Json.Str "i"); ("s", Json.Str "t");
           ("args", args_to_json ev.args) ])
  | Counter_sample ->
    Json.Obj (common @ [ ("ph", Json.Str "C"); ("args", args_to_json ev.args) ])

let metadata_events (evs : event list) =
  let process =
    Json.Obj
      [ ("name", Json.Str "process_name"); ("ph", Json.Str "M");
        ("pid", Json.Num 1.);
        ("args", Json.Obj [ ("name", Json.Str "pmi") ]) ]
  in
  let tids = List.sort_uniq compare (List.map (fun (e : event) -> e.tid) evs) in
  process
  :: List.map
       (fun tid ->
          Json.Obj
            [ ("name", Json.Str "thread_name"); ("ph", Json.Str "M");
              ("pid", Json.Num 1.); ("tid", Json.Num (float_of_int tid));
              ("args",
               Json.Obj
                 [ ("name", Json.Str (Printf.sprintf "domain %d" tid)) ]) ])
       tids

(* Cumulative counters have no per-bump samples (bumps are too hot to log);
   export them as a 0 -> final ramp so they still plot. *)
let counter_events (evs : event list) =
  let final_ts =
    List.fold_left (fun acc e -> max acc (e.ts_ns + e.dur_ns)) 0 evs
  in
  List.concat_map
    (fun (name, v) ->
       if v = 0 then []
       else
         let sample ts value =
           Json.Obj
             [ ("name", Json.Str name); ("cat", Json.Str "pmi");
               ("ph", Json.Str "C"); ("pid", Json.Num 1.);
               ("tid", Json.Num 0.); ("ts", us ts);
               ("args", Json.Obj [ ("value", Json.Num (float_of_int value)) ]) ]
         in
         [ sample 0 0; sample final_ts v ])
    (counters ())

let chrome_trace () =
  let evs = events () in
  Json.to_string
    (Json.Obj
       [ ("traceEvents",
          Json.List
            (metadata_events evs
             @ List.map event_to_json evs
             @ counter_events evs));
         ("displayTimeUnit", Json.Str "ms") ])

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (chrome_trace ()))

(* ------------------------------------------------------------------ *)
(* Tree summary                                                        *)

let parent_of path =
  match String.rindex_opt path '/' with
  | Some i -> Some (String.sub path 0 i)
  | None -> None

let summary () =
  let evs = events () in
  let buf = Buffer.create 1024 in
  let totals : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let child_ns : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
       if ev.kind = Span then begin
         let calls, ns =
           match Hashtbl.find_opt totals ev.path with
           | Some cell -> cell
           | None ->
             let cell = (ref 0, ref 0) in
             Hashtbl.replace totals ev.path cell;
             cell
         in
         Stdlib.incr calls;
         ns := !ns + ev.dur_ns;
         match parent_of ev.path with
         | None -> ()
         | Some parent ->
           (match Hashtbl.find_opt child_ns parent with
            | Some cell -> cell := !cell + ev.dur_ns
            | None -> Hashtbl.replace child_ns parent (ref ev.dur_ns))
       end)
    evs;
  let paths =
    List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) totals [])
  in
  if paths <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-52s %9s %12s %12s\n" "span" "calls" "total ms"
         "self ms");
    List.iter
      (fun path ->
         let calls, ns = Hashtbl.find totals path in
         let children =
           match Hashtbl.find_opt child_ns path with
           | Some cell -> !cell
           | None -> 0
         in
         let depth =
           String.fold_left (fun acc c -> if c = '/' then acc + 1 else acc) 0
             path
         in
         let name =
           match parent_of path with
           | None -> path
           | Some p -> String.sub path (String.length p + 1)
                         (String.length path - String.length p - 1)
         in
         Buffer.add_string buf
           (Printf.sprintf "%-52s %9d %12.3f %12.3f\n"
              (String.make (2 * depth) ' ' ^ name)
              !calls
              (float_of_int !ns /. 1e6)
              (float_of_int (!ns - children) /. 1e6)))
      paths
  end;
  (match counters () with
   | [] -> ()
   | cs ->
     Buffer.add_string buf "counters:\n";
     List.iter
       (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "  %-50s %12d\n" name v))
       cs);
  (match gauges () with
   | [] -> ()
   | gs ->
     Buffer.add_string buf "gauges:\n";
     List.iter
       (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "  %-50s %12.3f\n" name v))
       gs);
  let lost = dropped () in
  if lost > 0 then
    Buffer.add_string buf (Printf.sprintf "dropped events: %d\n" lost);
  Buffer.contents buf
