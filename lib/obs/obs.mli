(** Telemetry for the CEGIS/SAT stack: hierarchical spans, named
    counters/gauges, and a bounded event ring, with a human-readable tree
    summary and a Chrome-trace-format exporter ([chrome://tracing] /
    Perfetto).

    The paper's pitch is {e explainability}: the inference loop should be
    able to say why it asked each question and what each answer cost.  This
    module is the "what it cost" half — every CEGIS iteration, solver call,
    oracle search and harness measurement opens a span, so one [--trace]
    run of [pmi_repro infer] yields a timeline of the whole CEGIS dialogue.
    The incremental path is covered too: delta sessions open
    [cegis.delta] / [cegis.delta.sweep] / [cegis.delta.iteration] spans
    and count [cegis.delta.{batches,schemes,retired_rows,fallbacks}],
    and batched measurement passes record one [harness.sweep] span
    (counters [harness.sweeps], [harness.sweep.experiments]) instead of
    n scattered measures.

    Like [Pmi_diag.Race], the library is {e off} by default and every entry
    point starts with a single [Atomic.get] on the enable flag: disabled
    instrumentation costs one predictable branch and allocates nothing (see
    the [ablation/obs-{off,on}-cegis] benches).  When enabled, each domain
    records into its own bounded ring (oldest events overwritten, drops
    counted), so instrumented code never contends on a shared buffer; the
    exporters merge the per-domain rings.  The internal state is guarded by
    plain mutexes/atomics invisible to the race detector, so traced
    workloads stay clean under [pmi_repro sanitize].

    Export while a parallel region is still writing is not supported:
    call {!events} / {!chrome_trace} / {!summary} after joining, from the
    thread that called {!enable}. *)

(* ------------------------------------------------------------------ *)
(** {1 Switching telemetry on and off} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Reset all telemetry state (rings, open spans, counters, gauges, drop
    counts) and start recording.  The trace clock starts at zero here. *)

val disable : unit -> unit
(** Stop recording.  Data accumulated so far remains readable. *)

val set_ring_capacity : int -> unit
(** Per-domain event-ring capacity (default 65536).  Takes effect at the
    next {!enable}. *)

(* ------------------------------------------------------------------ *)
(** {1 Spans and instants} *)

(** Values attachable to spans, instants and samples. *)
type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type frame
(** Handle for an open span.  A dummy is returned when disabled; closing a
    dummy (or a frame orphaned by a concurrent {!enable}) is a no-op. *)

val enter : ?args:(string * arg) list -> string -> frame
(** Open a span on the current domain, nested under the innermost open
    span of this domain. *)

val leave : ?args:(string * arg) list -> frame -> unit
(** Close the span; [?args] are appended to the ones given at {!enter}
    (use this for results only known at the end, e.g. solver conflict
    deltas).  Children left open by an exception are dropped. *)

val span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] = enter, run [f], leave (exception-safe; an escaping
    exception is recorded as an ["exn"] argument).  When disabled this is
    exactly one atomic load followed by [f ()]. *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration event at the current nesting depth. *)

(* ------------------------------------------------------------------ *)
(** {1 Counters and gauges} *)

type counter
(** A named monotone counter.  Creation interns by name, so modules can
    create their handles at initialisation time and share them. *)

val counter : string -> counter

val incr : counter -> unit
(** One atomic-load branch when disabled; an [Atomic.incr] when enabled. *)

val add : counter -> int -> unit
(** Counters are monotone: raises [Invalid_argument] on a negative
    increment (use a gauge for values that move both ways). *)

val value : counter -> int
val counters : unit -> (string * int) list
(** All counters with their current values, sorted by name.  Counters are
    zeroed by {!enable}. *)

val set_gauge : string -> float -> unit
(** Record the gauge's new value; each call also appends a counter-sample
    event to the ring, so gauges plot over time in Perfetto. *)

val gauges : unit -> (string * float) list
(** Latest value per gauge, sorted by name. *)

(* ------------------------------------------------------------------ *)
(** {1 Reading the recorded data} *)

type kind =
  | Span
  | Instant
  | Counter_sample

type event = {
  kind : kind;
  name : string;
  path : string;   (** ['/']-joined names of the enclosing spans + [name] *)
  tid : int;       (** numeric id of the recording domain *)
  ts_ns : int;     (** start, nanoseconds since {!enable} *)
  dur_ns : int;    (** duration; [0] for instants and samples *)
  depth : int;     (** nesting depth at recording time *)
  args : (string * arg) list;
}

val events : unit -> event list
(** Every retained event, merged across domains, sorted by [ts_ns].  Only
    {e closed} spans appear (a span is recorded when it leaves). *)

val dropped : unit -> int
(** Events lost to ring overwrite or span-stack overflow. *)

val clock_ns : unit -> int
(** The raw monotonic clock (nanoseconds from an arbitrary origin). *)

(* ------------------------------------------------------------------ *)
(** {1 Exporters} *)

val chrome_trace : unit -> string
(** The retained events as Chrome trace format JSON (an object with a
    [traceEvents] array): spans as ["ph":"X"] complete events with
    microsecond [ts]/[dur], instants as ["ph":"i"], counters and gauge
    samples as ["ph":"C"], and thread-name metadata per domain.  Loadable
    in [chrome://tracing] and Perfetto. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace} to the given file path. *)

val summary : unit -> string
(** Human-readable report: the span tree aggregated by path (calls, total,
    self time), then counters, gauges and the drop count. *)
