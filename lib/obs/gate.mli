(** The bench-regression gate.

    Compares one [bench --json] run against the newest entry of a
    [BENCH_sat.json]-style history file and flags any named bench whose
    wall-clock regressed by more than the threshold (25% by default).
    Only timing records gate; [count]-type solver statistics are carried
    along but never fail the gate.  Runs without a matching
    [schema_version] are {e incomparable}: the comparison returns [Error]
    rather than a verdict, so the gate can reject records produced by an
    older bench driver instead of misreading them. *)

val schema_version : int
(** The bench --json schema this build writes (and requires of both sides
    of a comparison). *)

type record = {
  name : string;
  ns_per_run : float option;
  count : int option;
}

type run = {
  version : int option;  (** [schema_version] of the record, if present *)
  records : record list;
}

val parse_run : string -> (run, string) result
(** Parse a [bench --json] file: either the current versioned object
    ([{schema_version; results; ...}]) or the legacy bare record array
    (which parses with [version = None] and is therefore incomparable). *)

val latest_history_entry : string -> (run, string) result
(** The newest entry of a [{"history": [...]}] file (newest last). *)

type verdict = {
  bench : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;       (** current / baseline *)
  regressed : bool;    (** [ratio > 1 + threshold] *)
}

val default_threshold : float

val compare_runs :
  ?threshold:float -> baseline:run -> current:run -> unit ->
  (verdict list, string) result
(** One verdict per bench named in both runs, in the current run's order.
    [Error] when either side lacks a schema version or the versions
    differ. *)

val regressions : verdict list -> verdict list

val report : verdict list -> string
(** Human-readable verdict table plus a one-line summary. *)
