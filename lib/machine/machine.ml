open Pmi_isa
module Rat = Pmi_numeric.Rat
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment

type config = {
  seed : int;
  noise_amplitude : float;
  unstable_amplitude : float;
  unreliable_amplitude : float;
}

let default_config =
  { seed = 42;
    noise_amplitude = 0.002;
    unstable_amplitude = 0.25;
    unreliable_amplitude = 0.50 }

let quiet_config =
  { seed = 0;
    noise_amplitude = 0.0;
    unstable_amplitude = 0.0;
    unreliable_amplitude = 0.0 }

type t = {
  catalog : Catalog.t;
  config : config;
  profile : Profile.t;
  ground_truth : Mapping.t;
  cache : Rat.t Experiment.Tbl.t;
  measurements : int Atomic.t; (* bumped from parallel sweeps *)
}

let create ?(config = default_config) ?(profile = Profile.zen_plus) catalog =
  Profile.validate profile;
  { catalog;
    config;
    profile;
    ground_truth = Ground_truth.mapping_for profile catalog;
    cache = Experiment.Tbl.create 4096;
    measurements = Atomic.make 0 }

let catalog t = t.catalog
let config t = t.config
let profile t = t.profile

(* Identity of the measurement context: two machines with the same
   fingerprint answer every experiment identically (same catalog, same
   hidden mapping, same noise stream), so a durable measurement keyed by
   it can be replayed into a later process.  Floats go through [%h] so
   the digest sees exact bits, not a rounded rendering. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let p = t.profile in
  Buffer.add_string buf p.Profile.name;
  Printf.bprintf buf "|%d|%d|%d|%d" p.Profile.num_ports p.Profile.r_max
    p.Profile.ms_ops_per_cycle p.Profile.div_occupancy;
  let add_ports ports =
    List.iter (Printf.bprintf buf ",%d") (Portset.to_list ports)
  in
  add_ports p.Profile.fma_shadow;
  List.iter
    (fun base -> Buffer.add_char buf ';'; add_ports (p.Profile.ports_of_base base))
    Profile.all_bases;
  Printf.bprintf buf "|%d|%h|%h|%h" t.config.seed t.config.noise_amplitude
    t.config.unstable_amplitude t.config.unreliable_amplitude;
  Printf.bprintf buf "|%d" (Catalog.size t.catalog);
  Array.iter
    (fun s -> Buffer.add_char buf '\n'; Buffer.add_string buf (Scheme.name s))
    (Catalog.schemes t.catalog);
  Digest.to_hex (Digest.string (Buffer.contents buf))
let ground_truth t = t.ground_truth
let r_max t = t.profile.Profile.r_max
let num_ports t = t.profile.Profile.num_ports
let measurement_count t = Atomic.get t.measurements

(* All µop masses are multiples of 1/scale, so the port-utilisation search
   runs on scaled integers.  The vpmuldq-style slowdown is the finest
   effect: 1/20 cycle of extra port pressure per instance. *)
let scale = 20

let quirk_of scheme = (Scheme.klass scheme).Iclass.quirk

(* Does the base usage of [scheme] touch any port in [ports]? *)
let touches profile ports scheme =
  let { Iclass.structure; _ } = Scheme.klass scheme in
  List.exists
    (fun (ps, _) -> not (Portset.is_empty (Portset.inter ps ports)))
    (Ground_truth.usage_for profile structure)

(* Quirk coupling sets, derived from the profile's layout so that the §4.2
   and §4.3 phenomena exist on every simulated microarchitecture. *)
let fma_trigger_ports profile =
  Portset.union profile.Profile.fma_shadow
    (profile.Profile.ports_of_base Iclass.Fp_add)

let gpr_cross_ports profile =
  Portset.union
    (profile.Profile.ports_of_base Iclass.Shuffle)
    (profile.Profile.ports_of_base Iclass.Vec_to_gpr)

(* Scaled-integer µop masses of one experiment iteration, including the
   phantom pressure of the quirks (see the .mli for the catalogue). *)
let scaled_masses profile experiment =
  let ports_of = profile.Profile.ports_of_base in
  let tbl = Hashtbl.create 16 in
  let bump ports mass =
    if mass <> 0 && not (Portset.is_empty ports) then begin
      let prev = try Hashtbl.find tbl ports with Not_found -> 0 in
      Hashtbl.replace tbl ports (prev + mass)
    end
  in
  let other_scheme_exists ~than pred =
    Experiment.exists
      (fun s _ -> (not (Scheme.equal s than)) && pred s)
      experiment
  in
  let fma_paired scheme =
    other_scheme_exists ~than:scheme (fun s ->
        quirk_of s <> Some Iclass.Fma_lines
        && touches profile (fma_trigger_ports profile) s)
  in
  let gpr_cross_paired scheme =
    other_scheme_exists ~than:scheme (fun s ->
        quirk_of s <> Some Iclass.Gpr_cross
        && touches profile (gpr_cross_ports profile) s)
  in
  Experiment.fold
    (fun scheme count () ->
       let { Iclass.structure; quirk } = Scheme.klass scheme in
       let usage = Ground_truth.usage_for profile structure in
       let vec_to_gpr_ports =
         (* The vmovd inconsistency: in the company of other FP-pipe users
            its µop occupies both data-line ports instead of one. *)
         match quirk with
         | Some Iclass.Gpr_cross when gpr_cross_paired scheme ->
           gpr_cross_ports profile
         | _ -> ports_of Iclass.Vec_to_gpr
       in
       List.iter
         (fun (ports, n) ->
            let ports =
              if Portset.equal ports (ports_of Iclass.Vec_to_gpr)
              && quirk = Some Iclass.Gpr_cross
              then vec_to_gpr_ports
              else ports
            in
            let per_uop =
              match quirk with
              | Some Iclass.Div_slow -> scale * profile.Profile.div_occupancy
              | _ -> scale
            in
            bump ports (per_uop * n * count))
         usage;
       (match quirk with
        | Some Iclass.Mul_anomaly ->
          (* The §4.3 anomaly: each imul also pressures the whole ALU
             cluster for a full cycle. *)
          bump (ports_of Iclass.Alu) (scale * count)
        | Some Iclass.Vec_mul_slow ->
          (* Runs slightly slower than its port usage implies. *)
          bump (ports_of Iclass.Vec_mul_hard) count
        | Some Iclass.Fma_lines when fma_paired scheme ->
          (* Data lines of a third port are occupied while the fma
             executes. *)
          let uops = List.fold_left (fun acc (_, n) -> acc + n) 0 usage in
          bump profile.Profile.fma_shadow (scale * uops * count)
        | Some
            ( Iclass.Fma_lines | Iclass.Imm64_unreliable | Iclass.High8
            | Iclass.Pair_unstable | Iclass.Gpr_cross | Iclass.Ms_microcode
            | Iclass.Tp_unstable | Iclass.Div_slow )
        | None -> ())
    )
    experiment ();
  Hashtbl.fold (fun ports mass acc -> (ports, mass) :: acc) tbl []

let port_inverse_scaled masses =
  match masses with
  | [] -> Rat.zero
  | _ ->
    let universe =
      List.fold_left (fun acc (ports, _) -> Portset.union acc ports)
        Portset.empty masses
    in
    let best_num = ref 0 and best_den = ref 1 in
    Portset.iter_subsets universe (fun q ->
        if not (Portset.is_empty q) then begin
          let mass =
            List.fold_left
              (fun acc (ports, m) ->
                 if Portset.subset ports q then acc + m else acc)
              0 masses
          in
          let card = Portset.cardinal q in
          if mass * !best_den > !best_num * card then begin
            best_num := mass;
            best_den := card
          end
        end);
    Rat.of_ints !best_num (!best_den * scale)

let ms_stall profile experiment =
  (* Microcoded schemes are emitted by the microcode sequencer at a fixed
     rate while the rest of the frontend stalls (§4.4); the sequencer hands
     back to the decoders only on a cycle boundary. *)
  let rate = profile.Profile.ms_ops_per_cycle in
  let cycles_for macro = (macro + rate - 1) / rate in
  let stall =
    Experiment.fold
      (fun scheme count acc ->
         match quirk_of scheme with
         | Some Iclass.Ms_microcode ->
           acc
           + (count
              * cycles_for (Iclass.macro_ops (Scheme.klass scheme).Iclass.structure))
         | Some _ | None -> acc)
      experiment 0
  in
  Rat.of_int stall

let true_inverse t experiment =
  let key = Experiment.key experiment in
  match Experiment.Tbl.find_opt t.cache key with
  | Some v -> v
  | None ->
    let ports = port_inverse_scaled (scaled_masses t.profile experiment) in
    let frontend =
      Rat.of_ints (Experiment.length experiment) t.profile.Profile.r_max
    in
    let v = Rat.add (Rat.max ports frontend) (ms_stall t.profile experiment) in
    Experiment.Tbl.replace t.cache key v;
    v

(* Noise tier of an experiment: inherently unreliable schemes dominate,
   then pairing instability (which only shows when at least two distinct
   schemes run together), then the baseline jitter. *)
let amplitude t experiment =
  let has q =
    Experiment.exists (fun s _ -> quirk_of s = Some q) experiment
  in
  if has Iclass.Imm64_unreliable || has Iclass.High8 then
    t.config.unreliable_amplitude
  else if
    Experiment.distinct experiment >= 2
    && (has Iclass.Pair_unstable || has Iclass.Tp_unstable)
  then t.config.unstable_amplitude
  else t.config.noise_amplitude

let c_measurements = Pmi_obs.Obs.counter "machine.measurements"

let measure_cycles t ~rep experiment =
  Atomic.incr t.measurements;
  Pmi_obs.Obs.incr c_measurements;
  let base = Rat.to_float (true_inverse t experiment) in
  let amp = amplitude t experiment in
  if amp = 0.0 then base
  else begin
    let key = Noise.hash_experiment experiment in
    base *. (1.0 +. Noise.jitter ~seed:t.config.seed ~key ~rep ~amplitude:amp)
  end

let true_uop_count t experiment =
  Experiment.fold
    (fun scheme count acc ->
       let usage = Mapping.usage t.ground_truth scheme in
       acc + (count * List.fold_left (fun a (_, n) -> a + n) 0 usage))
    experiment 0

(* Real schedulers assign each µop to the least-loaded admissible port, so
   observed per-port counts spread over the whole admissible set (which is
   what lets uops.info read port sets off the counters).  The simulation
   replays many iterations of the experiment, dispatching the most
   constrained µops first, and reports the per-iteration average. *)
let port_uops t experiment =
  let num_ports = t.profile.Profile.num_ports in
  let iterations = 120 in
  let load = Array.make num_ports 0 in
  let uops =
    Experiment.fold
      (fun scheme count acc ->
         let usage = Mapping.usage t.ground_truth scheme in
         List.concat_map
           (fun (ports, n) -> List.init (n * count) (fun _ -> ports))
           usage
         @ acc)
      experiment []
    |> List.sort (fun a b -> compare (Portset.cardinal a) (Portset.cardinal b))
  in
  for _ = 1 to iterations do
    List.iter
      (fun ports ->
         let best = ref (-1) in
         List.iter
           (fun k -> if !best < 0 || load.(k) < load.(!best) then best := k)
           (Portset.to_list ports);
         load.(!best) <- load.(!best) + 1)
      uops
  done;
  Array.map (fun l -> Rat.of_ints l iterations) load

let retired_ops _ experiment =
  Experiment.fold
    (fun scheme count acc ->
       acc + (count * Iclass.macro_ops (Scheme.klass scheme).Iclass.structure))
    experiment 0
