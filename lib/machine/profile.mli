(** Microarchitecture profiles (§3.5).

    The inference algorithm supports any design that (a) can measure
    cycles, (b) counts total retired ops, and (c) sustains a frontend
    throughput strictly above the widest µop's port count.  The paper lists
    AMD's Zen family, Intel's Golden Cove, Fujitsu's A64FX, ARM's
    Neoverse V2 and Apple's M1 as qualifying designs.  A profile captures
    the machine-level constants and the functional-unit port layout; the
    simulated machine and the pipeline are parametric in it.

    Besides the Zen+ profile of the case study, two synthetic profiles
    exercise the algorithm's portability: a Golden-Cove-like design (12
    ports, 6 IPC, µops up to 5 ports wide) and an A64FX-like design (7
    ports, 4 IPC, µops up to 3 ports). *)

type t = {
  name : string;
  num_ports : int;
  r_max : int;                  (** sustained instructions per cycle *)
  ms_ops_per_cycle : int;       (** microcode-sequencer emission rate *)
  div_occupancy : int;          (** cycles per non-pipelined divider µop *)
  ports_of_base : Pmi_isa.Iclass.base -> Pmi_portmap.Portset.t;
  fma_shadow : Pmi_portmap.Portset.t;
  (** data-line ports an fma-style µop occupies besides its own (§4.2) *)
}

val zen_plus : t
val zen3 : t
val golden_cove : t
val a64fx : t

val all : t list

val all_bases : Pmi_isa.Iclass.base list
(** Every functional-unit base class, in declaration order (the domain of
    [ports_of_base]). *)

val max_port_set : t -> int
(** Largest port-set cardinality over all base classes. *)

val validate : t -> unit
(** @raise Invalid_argument when a port set leaves the port range, is
    empty, or violates the §3.4 gap requirement ([r_max] must exceed
    {!max_port_set}). *)
