(** The simulated AMD Zen+ processor.

    This module stands in for the Ryzen 5 2600X testbed of the paper's case
    study (§4).  It exposes exactly the two observables the inference
    algorithm is allowed to use — steady-state cycle measurements and the
    "Retired Uops" (in truth: retired {e macro-ops}, §4.1.1) counter — and
    reproduces the documented deviations from the pure port-mapping model:

    - the 5-IPC frontend/retirement bottleneck (§3.4, §3.5),
    - macro-op fusion of memory µops (§4.1.1),
    - µop-less nops and eliminated movs (§4.1.2),
    - non-pipelined FP dividers (§4.1.2),
    - unreliable 64-bit-immediate movs and AH/DH operands (§4.1.2),
    - unstable pairing behaviour of cmov/AES/vcvt/mulpd (§4.2),
    - fma-style third-port data-line occupation (§4.2),
    - the imul throughput anomaly (§4.3),
    - vpmuldq-style sub-model slowdowns (§4.3),
    - vmovd-style inconsistent conflicts (§4.3),
    - microcode-sequencer stalls at 4 ops/cycle (§4.4), and
    - unstable variable vector shifts (§4.4). *)

type config = {
  seed : int;
  noise_amplitude : float;       (** relative jitter of stable measurements *)
  unstable_amplitude : float;    (** jitter of unstable-pairing schemes *)
  unreliable_amplitude : float;  (** jitter of inherently unreliable schemes *)
}

val default_config : config
val quiet_config : config
(** Zero noise everywhere; useful for algorithm unit tests. *)

type t

val create : ?config:config -> ?profile:Profile.t -> Pmi_isa.Catalog.t -> t
(** [profile] defaults to {!Profile.zen_plus}.
    @raise Invalid_argument when the profile fails {!Profile.validate}. *)

val catalog : t -> Pmi_isa.Catalog.t
val config : t -> config
val profile : t -> Profile.t

val fingerprint : t -> string
(** Hex digest of everything that determines this machine's answers: the
    profile constants and port layout, the noise configuration (seed and
    amplitudes, exact float bits) and the catalog contents.  Two machines
    with equal fingerprints return identical measurements for every
    experiment, so the digest keys durable measurement records
    ({!Pmi_store.Store}-backed harness tier) across processes. *)

val ground_truth : t -> Pmi_portmap.Mapping.t
(** The hidden mapping (base usage, no quirk effects) the inference tries to
    reconstruct.  Only tests and evaluation code may look at this. *)

val r_max : t -> int
val num_ports : t -> int

val true_inverse : t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t
(** Noise-free inverse throughput including all quirk effects (memoised). *)

val measure_cycles : t -> rep:int -> Pmi_portmap.Experiment.t -> float
(** One noisy steady-state measurement of cycles per experiment iteration. *)

val retired_ops : t -> Pmi_portmap.Experiment.t -> int
(** The PMCx0C1 "Retired Uops" counter reading for one iteration: it counts
    macro-ops, not µops (§4.1.1). *)

val measurement_count : t -> int
(** Number of [measure_cycles] calls so far (benchmarking statistics). *)

(** {2 Intel-style counters}

    AMD's Zen family lacks per-port µop counters — that is the paper's whole
    point — but Intel designs have them, and the uops.info reference
    algorithm needs them.  These accessors simulate such a design so that
    the counter-free algorithm can be validated against the original
    (test suites and the ablation benchmarks use them; the inference
    pipeline itself never does). *)

val true_uop_count : t -> Pmi_portmap.Experiment.t -> int
(** An exact µop counter (what Intel's UOPS_EXECUTED reports). *)

val port_uops : t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t array
(** µops executed per port and iteration in one optimal steady-state
    distribution — per-port counters à la Intel's UOPS_DISPATCHED.PORT_n
    (quirk-free, as on the microarchitectures where these counters exist). *)
