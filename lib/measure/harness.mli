(** nanoBench-style measurement harness (§4).

    Every experiment is run [reps] times on the simulated machine; the
    harness reports the median inverse throughput (quantised to the
    harness's precision, as a real measurement report would be), the
    observed CPI spread across repetitions, and the retired-ops counter.
    Results are memoised: repeated queries for the same experiment do not
    re-run the benchmark, mirroring the experiment cache of the paper's
    artifact.

    A harness is safe to share across domains: the probe/measure/insert
    sequence runs under a harness-wide lock (a {!Pmi_diag.Race.with_lock}
    mutex, so the concurrency sanitizer sees the edge) and the hit/miss
    counters are atomics.

    With [?store], the memory cache gains a durable tier
    ({!Pmi_store.Store}): a memory miss probes the store before running
    the benchmark, and fresh measurements are written through, keyed by
    the machine's {!Pmi_machine.Machine.fingerprint} plus the experiment
    key — so measurements survive the process and a later run warm-starts
    from them.  Both tiers run under the same lock.  Telemetry splits the
    tiers: [harness.cache.mem.{hit,miss}] and
    [harness.cache.store.{hit,miss}]. *)

type sample = {
  cycles : Pmi_numeric.Rat.t;   (** median inverse throughput, quantised *)
  spread_cpi : float;           (** (max - min) / |e| across repetitions *)
  retired_ops : int;            (** macro-op counter reading *)
}

type t

val create :
  ?reps:int -> ?precision:int -> ?store:Pmi_store.Store.t ->
  Pmi_machine.Machine.t -> t
(** [reps] defaults to 11 (the paper's median-of-11); [precision] is the
    denominator of the quantisation grid, default 1000 (millicycles).
    [store] attaches the durable measurement tier (off by default). *)

val machine : t -> Pmi_machine.Machine.t
val store : t -> Pmi_store.Store.t option
val run : t -> Pmi_portmap.Experiment.t -> sample
val cycles : t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t

val sweep :
  t -> Pmi_portmap.Experiment.t list -> Pmi_numeric.Rat.t list
(** Median cycles of every experiment, measured in one batched pass (one
    [harness.sweep] telemetry span carrying the batch size; the
    [harness.sweeps]/[harness.sweep.experiments] counters tally batches).
    Used by delta-mode CEGIS ({!Pmi_core.Cegis.Delta}) to amortise harness
    round-trips: all of a flush's pending schemes are measured before the
    solver episode starts.  The cache is primed as a side effect, so later
    per-experiment queries hit. *)

val cpi : t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t
(** Median cycles divided by experiment length.
    @raise Invalid_argument on an empty experiment. *)

val retired_ops : t -> Pmi_portmap.Experiment.t -> int
val benchmarks_run : t -> int
(** Distinct experiments measured so far. *)

val cache_hits : t -> int
(** Queries answered from the in-memory experiment cache. *)

val cache_misses : t -> int
(** Queries that missed the in-memory cache ([= benchmarks_run]; a store
    hit still counts here, since the memory tier was consulted first). *)

val store_hits : t -> int
(** Memory misses answered from the durable tier (0 without a store). *)

val store_misses : t -> int
(** Memory misses that also missed the durable tier and had to run the
    benchmark (0 without a store). *)

val stored_observations : t -> (Pmi_portmap.Experiment.t * Pmi_numeric.Rat.t) list
(** Every measurement stored for {e this} machine (matching fingerprint),
    decoded against the live catalog — the warm-start feed for
    {!Pmi_core.Cegis.infer}.  Records from other machines or with unknown
    scheme ids are skipped.  [[]] without a store. *)

(** ε-tolerant throughput comparisons (§3.3.4, §4). *)
module Compare : sig
  val default_epsilon : Pmi_numeric.Rat.t
  (** 0.02 cycles per instruction, the paper's choice for Zen+. *)

  val cpi_equal :
    ?epsilon:Pmi_numeric.Rat.t -> length:int ->
    Pmi_numeric.Rat.t -> Pmi_numeric.Rat.t -> bool
  (** [cpi_equal ~length t1 t2]: are two inverse-throughput values of an
      experiment with [length] instructions equal up to [ε·length]? *)

  val well_separated :
    ?epsilon:Pmi_numeric.Rat.t -> length:int ->
    Pmi_numeric.Rat.t -> Pmi_numeric.Rat.t -> bool
  (** The 2ε separation required of distinguishing experiments: no observed
      value can be ε-equal to both [t1] and [t2]. *)
end
