module Rat = Pmi_numeric.Rat
module Bigint = Pmi_numeric.Bigint
module Experiment = Pmi_portmap.Experiment
module Catalog = Pmi_isa.Catalog
module Machine = Pmi_machine.Machine
module Race = Pmi_diag.Race
module Obs = Pmi_obs.Obs
module Store = Pmi_store.Store

(* Telemetry counters (process-wide, not per-harness: a trace wants the
   aggregate question-asking cost of the whole run, and per-harness
   hit/miss stays available via the accessors).  The two cache tiers
   count separately so a warm-start ablation can attribute its savings:
   [mem] is the in-process table, [store] the durable tier. *)
let c_mem_hits = Obs.counter "harness.cache.mem.hit"
let c_mem_misses = Obs.counter "harness.cache.mem.miss"
let c_store_hits = Obs.counter "harness.cache.store.hit"
let c_store_misses = Obs.counter "harness.cache.store.miss"
let c_sweeps = Obs.counter "harness.sweeps"
let c_sweep_exps = Obs.counter "harness.sweep.experiments"

type sample = {
  cycles : Rat.t;
  spread_cpi : float;
  retired_ops : int;
}

(* The cache and the underlying machine are shared mutable state: parallel
   prediction sweeps (validation's [Pool.find_first_index], the
   [parallel/*] benches) hit [run] from several domains at once.  One
   harness-wide lock covers the probe/measure/insert sequence — the mutex
   is real even with the sanitizer off, and doubles as the happens-before
   edge the race detector checks.  The durable tier lives under the same
   lock, so the sanitizer sees store reads and write-throughs ordered with
   the table they fill.  Hit/miss counters are atomics so the accessors
   can read them without the lock. *)
type t = {
  machine : Machine.t;
  reps : int;
  precision : int;
  cache : ((int * int) list, sample) Race.tracked_table;
  lock : Race.lock;
  hits : int Atomic.t;
  misses : int Atomic.t;
  store : Store.t option;
  fingerprint : string; (* keys durable records; "" without a store *)
  store_hits : int Atomic.t;
  store_misses : int Atomic.t;
}

let create ?(reps = 11) ?(precision = 1000) ?store machine =
  if reps <= 0 || precision <= 0 then invalid_arg "Harness.create";
  { machine;
    reps;
    precision;
    cache = Race.tracked_table ~name:"harness.cache" 4096;
    lock = Race.create_lock "harness.lock";
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    store;
    fingerprint =
      (match store with
       | Some _ -> Machine.fingerprint machine
       | None -> "");
    store_hits = Atomic.make 0;
    store_misses = Atomic.make 0 }

let machine t = t.machine
let store t = t.store

let quantise t value =
  let p = float_of_int t.precision in
  Rat.of_ints (int_of_float (Float.round (value *. p))) t.precision

(* ------------------------------------------------------------------ *)
(* Durable-tier codec                                                  *)
(* ------------------------------------------------------------------ *)

(* Store key: machine fingerprint, '|', then the experiment key rendered
   as "id.count,id.count" (already sorted by [Experiment.key]).  Value:
   "num:den:spread-bits:retired-ops" — the quantised cycles as exact
   bigint numerator/denominator, the spread as IEEE-754 bits so the
   round-trip is lossless, and the retired-ops counter. *)
let store_key t k =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.fingerprint;
  Buffer.add_char buf '|';
  List.iteri
    (fun i (id, count) ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf "%d.%d" id count)
    k;
  Buffer.contents buf

let encode_sample s =
  Printf.sprintf "%s:%s:%Ld:%d"
    (Bigint.to_string (Rat.num s.cycles))
    (Bigint.to_string (Rat.den s.cycles))
    (Int64.bits_of_float s.spread_cpi)
    s.retired_ops

let decode_sample v =
  match String.split_on_char ':' v with
  | [ num; den; spread; retired ] ->
    (try
       Some
         { cycles = Rat.make (Bigint.of_string num) (Bigint.of_string den);
           spread_cpi = Int64.float_of_bits (Int64.of_string spread);
           retired_ops = int_of_string retired }
     with _ -> None)
  | _ -> None

let decode_experiment catalog part =
  let n = Catalog.size catalog in
  try
    let counts =
      List.map
        (fun pair ->
           match String.split_on_char '.' pair with
           | [ id; count ] ->
             let id = int_of_string id and count = int_of_string count in
             if id < 0 || id >= n || count <= 0 then raise Exit;
             (Catalog.find catalog id, count)
           | _ -> raise Exit)
        (String.split_on_char ',' part)
    in
    if counts = [] then None else Some (Experiment.of_counts counts)
  with Exit | Failure _ -> None

(* Durable-tier probe + write-through; both run under the harness lock.
   A record that fails to decode (foreign version, manual edit) is
   treated as a miss and overwritten by the write-through. *)
let store_find t k =
  match t.store with
  | None -> None
  | Some store ->
    (match Store.get store Store.Measurement ~key:(store_key t k) with
     | Some v ->
       (match decode_sample v with
        | Some sample ->
          Atomic.incr t.store_hits;
          Obs.incr c_store_hits;
          Some sample
        | None -> None)
     | None -> None)

let store_write t k sample =
  match t.store with
  | None -> ()
  | Some store ->
    Store.put store Store.Measurement ~key:(store_key t k)
      (encode_sample sample)

let run t experiment =
  let k = Experiment.key experiment in
  Race.with_lock t.lock (fun () ->
      match Race.tbl_find_opt t.cache k with
      | Some sample ->
        Atomic.incr t.hits;
        Obs.incr c_mem_hits;
        sample
      | None ->
        Atomic.incr t.misses;
        Obs.incr c_mem_misses;
        match store_find t k with
        | Some sample ->
          Race.tbl_replace t.cache k sample;
          sample
        | None ->
          if t.store <> None then begin
            Atomic.incr t.store_misses;
            Obs.incr c_store_misses
          end;
          Obs.span "harness.measure" (fun () ->
              let runs =
                List.init t.reps (fun rep ->
                    Machine.measure_cycles t.machine ~rep experiment)
              in
              let sorted = List.sort Float.compare runs in
              let median = List.nth sorted (t.reps / 2) in
              let low = List.nth sorted 0 in
              let high = List.nth sorted (t.reps - 1) in
              let len = Experiment.length experiment in
              let spread_cpi =
                if len = 0 then 0.0 else (high -. low) /. float_of_int len
              in
              let sample =
                { cycles = quantise t median;
                  spread_cpi;
                  retired_ops = Machine.retired_ops t.machine experiment }
              in
              Race.tbl_replace t.cache k sample;
              store_write t k sample;
              sample))

let cycles t experiment = (run t experiment).cycles

(* One batched measurement pass: a delta-mode CEGIS flush queues many
   pending schemes and sweeps all their experiments here before the solver
   episode starts, so harness round-trips amortise across the batch (and a
   trace shows one [harness.sweep] span instead of n scattered measures).
   Each experiment still goes through [run], so the cache is primed for
   every later per-experiment query. *)
let sweep t experiments =
  let n = List.length experiments in
  Obs.incr c_sweeps;
  Obs.add c_sweep_exps n;
  Obs.span
    ~args:[ ("experiments", Obs.Int n) ]
    "harness.sweep"
    (fun () -> List.map (fun e -> (run t e).cycles) experiments)

let cpi t experiment =
  let len = Experiment.length experiment in
  if len = 0 then invalid_arg "Harness.cpi: empty experiment";
  Rat.div (cycles t experiment) (Rat.of_int len)

let retired_ops t experiment = (run t experiment).retired_ops

let benchmarks_run t =
  Race.with_lock t.lock (fun () -> Race.tbl_length t.cache)

let cache_hits t = Atomic.get t.hits
let cache_misses t = Atomic.get t.misses
let store_hits t = Atomic.get t.store_hits
let store_misses t = Atomic.get t.store_misses

(* Every stored measurement of this machine, decoded back to experiments
   against the live catalog.  Records that do not parse, name unknown
   scheme ids, or belong to another machine fingerprint are skipped — the
   store may hold history from other configurations. *)
let stored_observations t =
  match t.store with
  | None -> []
  | Some store ->
    let catalog = Machine.catalog t.machine in
    let prefix = t.fingerprint ^ "|" in
    let plen = String.length prefix in
    Store.fold store Store.Measurement
      (fun ~key value acc ->
         if
           String.length key > plen
           && String.equal (String.sub key 0 plen) prefix
         then
           match decode_experiment catalog (String.sub key plen (String.length key - plen)) with
           | Some e ->
             (match decode_sample value with
              | Some sample -> (e, sample.cycles) :: acc
              | None -> acc)
           | None -> acc
         else acc)
      []

module Compare = struct
  let default_epsilon = Rat.of_ints 2 100

  let cpi_equal ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul epsilon (Rat.of_int length) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound <= 0

  let well_separated ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul (Rat.of_int 2) (Rat.mul epsilon (Rat.of_int length)) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound > 0
end
