module Rat = Pmi_numeric.Rat
module Experiment = Pmi_portmap.Experiment
module Machine = Pmi_machine.Machine
module Race = Pmi_diag.Race
module Obs = Pmi_obs.Obs

(* Telemetry counters (process-wide, not per-harness: a trace wants the
   aggregate question-asking cost of the whole run, and per-harness
   hit/miss stays available via [cache_hits]/[cache_misses]). *)
let c_cache_hits = Obs.counter "harness.cache.hits"
let c_cache_misses = Obs.counter "harness.cache.misses"
let c_sweeps = Obs.counter "harness.sweeps"
let c_sweep_exps = Obs.counter "harness.sweep.experiments"

type sample = {
  cycles : Rat.t;
  spread_cpi : float;
  retired_ops : int;
}

(* The cache and the underlying machine are shared mutable state: parallel
   prediction sweeps (validation's [Pool.find_first_index], the
   [parallel/*] benches) hit [run] from several domains at once.  One
   harness-wide lock covers the probe/measure/insert sequence — the mutex
   is real even with the sanitizer off, and doubles as the happens-before
   edge the race detector checks.  Hit/miss counters are atomics so the
   accessors can read them without the lock. *)
type t = {
  machine : Machine.t;
  reps : int;
  precision : int;
  cache : ((int * int) list, sample) Race.tracked_table;
  lock : Race.lock;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(reps = 11) ?(precision = 1000) machine =
  if reps <= 0 || precision <= 0 then invalid_arg "Harness.create";
  { machine;
    reps;
    precision;
    cache = Race.tracked_table ~name:"harness.cache" 4096;
    lock = Race.create_lock "harness.lock";
    hits = Atomic.make 0;
    misses = Atomic.make 0 }

let machine t = t.machine

let quantise t value =
  let p = float_of_int t.precision in
  Rat.of_ints (int_of_float (Float.round (value *. p))) t.precision

let run t experiment =
  let k = Experiment.key experiment in
  Race.with_lock t.lock (fun () ->
      match Race.tbl_find_opt t.cache k with
      | Some sample ->
        Atomic.incr t.hits;
        Obs.incr c_cache_hits;
        sample
      | None ->
        Atomic.incr t.misses;
        Obs.incr c_cache_misses;
        Obs.span "harness.measure" (fun () ->
            let runs =
              List.init t.reps (fun rep ->
                  Machine.measure_cycles t.machine ~rep experiment)
            in
            let sorted = List.sort Float.compare runs in
            let median = List.nth sorted (t.reps / 2) in
            let low = List.nth sorted 0 in
            let high = List.nth sorted (t.reps - 1) in
            let len = Experiment.length experiment in
            let spread_cpi =
              if len = 0 then 0.0 else (high -. low) /. float_of_int len
            in
            let sample =
              { cycles = quantise t median;
                spread_cpi;
                retired_ops = Machine.retired_ops t.machine experiment }
            in
            Race.tbl_replace t.cache k sample;
            sample))

let cycles t experiment = (run t experiment).cycles

(* One batched measurement pass: a delta-mode CEGIS flush queues many
   pending schemes and sweeps all their experiments here before the solver
   episode starts, so harness round-trips amortise across the batch (and a
   trace shows one [harness.sweep] span instead of n scattered measures).
   Each experiment still goes through [run], so the cache is primed for
   every later per-experiment query. *)
let sweep t experiments =
  let n = List.length experiments in
  Obs.incr c_sweeps;
  Obs.add c_sweep_exps n;
  Obs.span
    ~args:[ ("experiments", Obs.Int n) ]
    "harness.sweep"
    (fun () -> List.map (fun e -> (run t e).cycles) experiments)

let cpi t experiment =
  let len = Experiment.length experiment in
  if len = 0 then invalid_arg "Harness.cpi: empty experiment";
  Rat.div (cycles t experiment) (Rat.of_int len)

let retired_ops t experiment = (run t experiment).retired_ops

let benchmarks_run t =
  Race.with_lock t.lock (fun () -> Race.tbl_length t.cache)

let cache_hits t = Atomic.get t.hits
let cache_misses t = Atomic.get t.misses

module Compare = struct
  let default_epsilon = Rat.of_ints 2 100

  let cpi_equal ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul epsilon (Rat.of_int length) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound <= 0

  let well_separated ?(epsilon = default_epsilon) ~length t1 t2 =
    let bound = Rat.mul (Rat.of_int 2) (Rat.mul epsilon (Rat.of_int length)) in
    Rat.compare (Rat.abs (Rat.sub t1 t2)) bound > 0
end
