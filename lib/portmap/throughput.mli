(** The throughput oracle of the port-mapping model.

    For a mapping [M] and experiment [e], the inverse throughput is the
    optimum of the linear program (A)-(E) of §2.2.  This module computes it
    with the bottleneck-set characterisation (Ritter & Hack 2020, §4.5, the
    same fact behind the paper's constraints F-I):

    {v tp⁻¹(e) = max over non-empty Q ⊆ P of  mass(Q) / |Q| v}

    where [mass Q] is the total mass of µops whose admissible ports all lie
    inside [Q].  The computation is exact (integer masses, rational result)
    and is cross-checked against {!Lp_model} in the test suite. *)

exception Unsupported of Pmi_isa.Scheme.t
(** Raised when the experiment contains a scheme the mapping does not map. *)

val uop_masses : Mapping.t -> Experiment.t -> (Portset.t * int) list
(** Total µop mass per µop kind for one iteration of the experiment.
    @raise Unsupported *)

val of_masses : (Portset.t * int) list -> Pmi_numeric.Rat.t
(** Inverse throughput of a pre-aggregated mass profile. *)

val inverse : Mapping.t -> Experiment.t -> Pmi_numeric.Rat.t
(** [tp⁻¹_M(e)] in cycles per experiment iteration.  @raise Unsupported *)

val bottleneck_set : Mapping.t -> Experiment.t -> Portset.t
(** A set [Q] of ports attaining the maximum (the witness of optimality used
    by constraints F-I); empty for an empty experiment.  @raise Unsupported *)

val inverse_bounded : r_max:int -> Mapping.t -> Experiment.t -> Pmi_numeric.Rat.t
(** §3.4 adjustment: [max (tp⁻¹ e) (|e| / r_max)], modelling a frontend or
    retirement bottleneck of [r_max] instructions per cycle.
    @raise Unsupported *)

val inverse_interval :
  candidates:(Pmi_isa.Scheme.t -> Mapping.usage list) ->
  Experiment.t ->
  Pmi_numeric.Rat.t * Pmi_numeric.Rat.t
(** Naive reference for {!Oracle.Bounds}: a sound [(lo, hi)] bracket of
    [tp⁻¹(e)] over all completions of a partial mapping, computed by subset
    enumeration instead of dense tables.  [candidates] must return the
    non-empty candidate-usage list of every scheme in the experiment.
    Exponential in the union of candidate ports — test/reference use only.
    @raise Unsupported when [candidates] returns [[]] or raises
    [Not_found]. *)

val ipc : r_max:int -> Mapping.t -> Experiment.t -> Pmi_numeric.Rat.t
(** Instructions per cycle under the bounded model; 0 for empty experiments.
    @raise Unsupported *)
