(** Port mappings: the tripartite graph of the formal model (§2.2).

    Because a µop kind is fully described by its admissible port set, a
    mapping assigns every instruction scheme a multiset of port sets — the
    [F] edges carry the multiplicities, the [E] edges are the port sets
    themselves. *)

type usage = (Portset.t * int) list
(** µop kinds with multiplicities; canonical form merges equal port sets,
    keeps positive counts and sorts by port set. *)

type t

val create : num_ports:int -> t
val num_ports : t -> int

val set : t -> Pmi_isa.Scheme.t -> usage -> unit
(** Define (or replace) the port usage of a scheme.
    @raise Invalid_argument if a port set is empty, mentions a port
    [>= num_ports], or a multiplicity is non-positive. *)

val find_opt : t -> Pmi_isa.Scheme.t -> usage option
val usage : t -> Pmi_isa.Scheme.t -> usage
(** @raise Not_found if the scheme has no entry. *)

val supports : t -> Pmi_isa.Scheme.t -> bool
val schemes : t -> Pmi_isa.Scheme.t list
(** Schemes with an entry, ascending id. *)

val size : t -> int
val uop_count : t -> Pmi_isa.Scheme.t -> int
(** Total µops of the scheme, counting multiplicity; 0 if unmapped. *)

val copy : t -> t

val ports_used : t -> Portset.t
(** Union of every port set mentioned by any scheme; ports outside it are
    unreachable under this mapping. *)

val normalize_usage : usage -> usage

val usage_to_string : usage -> string
(** e.g. ["2 x [0,1] + 1 x [2]"], or ["(none)"] for an empty usage. *)

val equal_usage : usage -> usage -> bool

val pp : Format.formatter -> t -> unit
(** One line per scheme. *)
