(** Memoized subset-sum throughput oracle.

    Computes exactly the same value as {!Throughput.inverse} — the
    bottleneck-set optimum [max over ∅≠Q⊆P of mass(Q)/|Q|] — but against
    dense per-scheme mass tables over the 2^P bitmask lattice.  Each
    scheme's cumulative table ([tbl.(q)] = µop mass of one instance confined
    to port set [q]) is built once with a zeta/subset-sum transform and
    cached for the lifetime of the oracle, so a query is a pointwise table
    combination plus one O(2^P) scan instead of a hashtable rebuild and a
    submask enumeration per query.

    All results are exact rationals and agree with {!Throughput} up to
    {!Pmi_numeric.Rat.equal} (property-tested in [test/test_oracle.ml]).

    Thread safety: the per-scheme table cache is filled lazily.  Call
    {!prepare} with every scheme that will be queried before sharing one
    oracle across domains; after that, queries through {!Acc} values owned
    by distinct domains only read shared state. *)

type t

val create : Mapping.t -> t
(** Build an oracle for the mapping.  The mapping is captured by reference
    and must not be mutated afterwards.  @raise Invalid_argument for more
    than 20 ports (the dense tables would not fit). *)

val mapping : t -> Mapping.t
val num_ports : t -> int

val prepare : t -> Pmi_isa.Scheme.t list -> unit
(** Eagerly build the cumulative tables of the given schemes.
    @raise Throughput.Unsupported if the mapping does not map one of them. *)

val inverse : t -> Experiment.t -> Pmi_numeric.Rat.t
(** [tp⁻¹(e)], exactly as {!Throughput.inverse}.
    @raise Throughput.Unsupported *)

val inverse_bounded : r_max:int -> t -> Experiment.t -> Pmi_numeric.Rat.t
(** As {!Throughput.inverse_bounded}: the oracle value capped below by the
    §3.4 frontend bound [|e| / r_max].  @raise Throughput.Unsupported *)

val bottleneck_set : t -> Experiment.t -> Portset.t
(** A port set attaining the optimum; empty for an empty experiment. *)

(** Incremental experiment accumulator: the running cumulative mass table
    of a working experiment, updated by ±one scheme at a time.  This is the
    inner loop of the stratified distinguishing-experiment search: moving
    to a neighbouring multiset costs one table update, and each throughput
    query is a pure O(2^P) scan. *)
module Acc : sig
  type oracle := t
  type t

  val create : oracle -> t
  (** An empty accumulator (the empty experiment). *)

  val add : t -> Pmi_isa.Scheme.t -> int -> unit
  (** Add [count] copies of the scheme.  @raise Throughput.Unsupported *)

  val remove : t -> Pmi_isa.Scheme.t -> int -> unit
  (** Remove [count] copies previously added. *)

  val length : t -> int
  (** Instruction count of the current experiment. *)

  val reset : t -> unit

  val inverse : t -> Pmi_numeric.Rat.t
  val inverse_bounded : r_max:int -> t -> Pmi_numeric.Rat.t
end

(** Interval oracle over {e partial} mappings.

    A partial mapping assigns each scheme a non-empty set of {e candidate}
    usages — the shape of a live CEGIS search, where a row is only known up
    to the cardinality constraint and the refutations learned so far.  For
    each scheme the pointwise min and max of the per-candidate cumulative
    (zeta) mass tables are cached; a query combines them like the concrete
    oracle and scans each bound once, yielding an interval [lo, hi] that is
    {b sound}: for every completion (one candidate per scheme), the exact
    {!inverse} lies inside it.  When every queried scheme has exactly one
    candidate, the interval is the point equal to the concrete oracle value
    (property-tested in [test/test_mapcheck.ml]). *)
module Bounds : sig
  type interval = { lo : Pmi_numeric.Rat.t; hi : Pmi_numeric.Rat.t }

  val is_point : interval -> bool
  (** [lo = hi]: the value is statically determined over all completions. *)

  type t

  val create : num_ports:int -> t
  (** An empty partial mapping.  @raise Invalid_argument as {!create}. *)

  val num_ports : t -> int

  val set_candidates : t -> Pmi_isa.Scheme.t -> Mapping.usage list -> unit
  (** Define (or replace) the scheme's candidate usages.
      @raise Invalid_argument on an empty candidate list, an empty port set,
      an out-of-range port or a non-positive multiplicity. *)

  val candidates : t -> Pmi_isa.Scheme.t -> Mapping.usage list option

  val of_mapping : Mapping.t -> t
  (** The fully-determined partial mapping: one candidate per scheme. *)

  val pin : t -> Pmi_isa.Scheme.t -> Mapping.usage -> t
  (** A copy with the scheme fixed to a single candidate.  Cached tables of
      the other schemes are shared, so pinning is cheap; [t] is unchanged. *)

  val inverse : t -> Experiment.t -> interval
  (** Sound bracket of [tp⁻¹(e)] over all completions.
      @raise Throughput.Unsupported for a scheme without candidates. *)

  val inverse_bounded : r_max:int -> t -> Experiment.t -> interval
  (** As {!inverse} with the §3.4 frontend bound [|e|/r_max] lifted onto
      both ends.  @raise Throughput.Unsupported *)
end
