(** Serialisation of port mappings.

    The paper's artifact ships its inferred Zen+ mapping in both
    human-readable and machine-readable form; this module provides the
    same:  a line-oriented text format that survives round-trips and can be
    consumed by downstream tools (compiler schedulers, throughput
    predictors).

    Format (one record per scheme, [#] starts a comment):

    {v
    ports 10
    scheme "add <GPR[32]>, <GPR[32]>" 1x[6,7,8,9]
    scheme "mov <MEM[32]>, <GPR[32]>" 1x[5] + 1x[6,7,8,9]
    v} *)

val to_string : Mapping.t -> string
(** Schemes ascending by id, one per line. *)

val write : out_channel -> Mapping.t -> unit

type error = { line : int; message : string }

val of_string :
  resolve:(string -> Pmi_isa.Scheme.t option) -> string ->
  (Mapping.t, error) result
(** Parse a serialised mapping.  [resolve] maps the quoted scheme name back
    to a catalog scheme (see {!resolver}); unknown schemes are an error, as
    is any malformed line, a duplicate scheme row, or a port beyond the
    declared [ports] width — never an exception. *)

val resolver : Pmi_isa.Catalog.t -> string -> Pmi_isa.Scheme.t option
(** Name-based scheme lookup over a catalog. *)

val read :
  resolve:(string -> Pmi_isa.Scheme.t option) -> in_channel ->
  (Mapping.t, error) result
