module Scheme = Pmi_isa.Scheme

type error = { line : int; message : string }

let usage_to_string usage =
  String.concat " + "
    (List.map
       (fun (ports, n) -> Printf.sprintf "%dx%s" n (Portset.to_string ports))
       usage)

let to_string mapping =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# port mapping: %d schemes\nports %d\n"
       (Mapping.size mapping) (Mapping.num_ports mapping));
  List.iter
    (fun s ->
       Buffer.add_string buf
         (Printf.sprintf "scheme %S %s\n" (Scheme.name s)
            (usage_to_string (Mapping.usage mapping s))))
    (Mapping.schemes mapping);
  Buffer.contents buf

let write oc mapping = output_string oc (to_string mapping)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let parse_portset text =
  (* "[6,7,8,9]" *)
  let n = String.length text in
  if n < 2 || text.[0] <> '[' || text.[n - 1] <> ']' then
    raise (Parse ("malformed port set: " ^ text));
  let inner = String.sub text 1 (n - 2) in
  if inner = "" then raise (Parse "empty port set")
  else begin
    let ports =
      List.map
        (fun p ->
           match int_of_string_opt (String.trim p) with
           | Some v when v >= 0 -> v
           | Some _ | None -> raise (Parse ("malformed port: " ^ p)))
        (String.split_on_char ',' inner)
    in
    (* [Portset] is a machine-word bitmask; a port beyond its width is a
       parse error like any other, not an escaping [Invalid_argument]. *)
    match Portset.of_list ports with
    | ports -> ports
    | exception Invalid_argument _ ->
      raise (Parse ("port out of representable range: " ^ text))
  end

let parse_uop text =
  (* "2x[0,1]" *)
  match String.index_opt text 'x' with
  | None -> raise (Parse ("malformed µop: " ^ text))
  | Some i ->
    let count = String.sub text 0 i in
    let ports = String.sub text (i + 1) (String.length text - i - 1) in
    (match int_of_string_opt count with
     | Some n when n > 0 -> (parse_portset ports, n)
     | Some _ | None -> raise (Parse ("malformed µop count: " ^ count)))

let parse_usage text =
  (* "1x[5] + 1x[6,7,8,9]" *)
  String.split_on_char '+' text
  |> List.map (fun part -> parse_uop (String.trim part))

(* A line is: scheme "<name>" <usage>.  The name may contain any character
   except a double quote (scheme renderings never contain one). *)
let parse_scheme_line line =
  match String.index_opt line '"' with
  | None -> raise (Parse "missing opening quote")
  | Some start ->
    (match String.index_from_opt line (start + 1) '"' with
     | None -> raise (Parse "missing closing quote")
     | Some stop ->
       let name = String.sub line (start + 1) (stop - start - 1) in
       let rest = String.sub line (stop + 1) (String.length line - stop - 1) in
       (name, parse_usage (String.trim rest)))

let of_string ~resolve text =
  let lines = String.split_on_char '\n' text in
  let mapping = ref None in
  let result = ref (Ok ()) in
  (* Duplicate scheme rows would silently shadow each other through
     [Mapping.set]; reject them so a hand-edited file can't lose a row. *)
  let seen = Hashtbl.create 64 in
  List.iteri
    (fun idx raw ->
       match !result with
       | Error _ -> ()
       | Ok () ->
         let line = String.trim raw in
         let fail message = result := Error { line = idx + 1; message } in
         if line = "" || line.[0] = '#' then ()
         else if String.length line > 6 && String.sub line 0 6 = "ports " then begin
           match int_of_string_opt (String.trim (String.sub line 6 (String.length line - 6))) with
           | Some n when n > 0 -> mapping := Some (Mapping.create ~num_ports:n)
           | Some _ | None -> fail "malformed ports header"
         end
         else if String.length line > 7 && String.sub line 0 7 = "scheme " then begin
           match !mapping with
           | None -> fail "scheme record before the ports header"
           | Some m ->
             (match parse_scheme_line line with
              | name, usage ->
                (match resolve name with
                 | Some scheme ->
                   if Hashtbl.mem seen (Scheme.id scheme) then
                     fail ("duplicate scheme row: " ^ name)
                   else begin
                     Hashtbl.add seen (Scheme.id scheme) ();
                     try Mapping.set m scheme usage
                     with Invalid_argument msg -> fail msg
                   end
                 | None -> fail ("unknown scheme: " ^ name))
              | exception Parse msg -> fail msg)
         end
         else fail ("unrecognised line: " ^ line))
    lines;
  match (!result, !mapping) with
  | Error e, _ -> Error e
  | Ok (), Some m -> Ok m
  | Ok (), None -> Error { line = 0; message = "missing ports header" }

let resolver catalog =
  let tbl = Hashtbl.create 4096 in
  Array.iter
    (fun s -> Hashtbl.replace tbl (Scheme.name s) s)
    (Pmi_isa.Catalog.schemes catalog);
  fun name -> Hashtbl.find_opt tbl name

let read ~resolve ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string ~resolve (Buffer.contents buf)
