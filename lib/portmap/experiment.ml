module Scheme = Pmi_isa.Scheme

type t = (Scheme.t * int) list

let empty = []

let of_counts pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s, n) ->
       if n > 0 then begin
         let prev = try Hashtbl.find tbl (Scheme.id s) with Not_found -> (s, 0) in
         Hashtbl.replace tbl (Scheme.id s) (s, snd prev + n)
       end)
    pairs;
  Hashtbl.fold (fun _ pair acc -> pair :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Scheme.compare a b)

let of_list schemes = of_counts (List.map (fun s -> (s, 1)) schemes)
let singleton s = [ (s, 1) ]
let replicate n s = if n <= 0 then [] else [ (s, n) ]
let add ?(count = 1) s t = of_counts ((s, count) :: t)
let union a b = of_counts (a @ b)

let count t s =
  match List.find_opt (fun (s', _) -> Scheme.equal s s') t with
  | Some (_, n) -> n
  | None -> 0

let length t = List.fold_left (fun acc (_, n) -> acc + n) 0 t
let distinct t = List.length t
let is_empty t = t = []
let to_counts t = t
let schemes t = List.map fst t

let fold f t init = List.fold_left (fun acc (s, n) -> f s n acc) init t
let for_all f t = List.for_all (fun (s, n) -> f s n) t
let exists f t = List.exists (fun (s, n) -> f s n) t

let compare a b =
  List.compare (fun (s, n) (s', n') ->
      match Scheme.compare s s' with 0 -> Stdlib.compare n n' | c -> c)
    a b

let equal a b = compare a b = 0

let key t = List.map (fun (s, n) -> (Scheme.id s, n)) t

module Key = struct
  type t = (int * int) list

  let equal a b =
    List.equal (fun (i, n) (j, m) -> i = j && n = m) a b

  let hash k =
    List.fold_left (fun h (i, n) -> (((h * 31) + i) * 31) + n) 17 k
    land max_int
end

module Tbl = Hashtbl.Make (Key)

let to_string t =
  let item (s, n) = Printf.sprintf "%d x %s" n (Scheme.name s) in
  "[" ^ String.concat "; " (List.map item t) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
