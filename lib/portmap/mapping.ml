module Scheme = Pmi_isa.Scheme

type usage = (Portset.t * int) list

type t = {
  num_ports : int;
  table : (int, Scheme.t * usage) Hashtbl.t;
}

let create ~num_ports =
  if num_ports <= 0 then invalid_arg "Mapping.create";
  { num_ports; table = Hashtbl.create 64 }

let num_ports t = t.num_ports

let normalize_usage usage =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (ports, n) ->
       if n > 0 then begin
         let prev = try Hashtbl.find tbl ports with Not_found -> 0 in
         Hashtbl.replace tbl ports (prev + n)
       end)
    usage;
  Hashtbl.fold (fun ports n acc -> (ports, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Portset.compare a b)

let validate t usage =
  List.iter
    (fun ((ports : Portset.t), n) ->
       if n <= 0 then invalid_arg "Mapping.set: non-positive multiplicity";
       if Portset.is_empty ports then invalid_arg "Mapping.set: empty port set";
       if not (Portset.subset ports (Portset.full t.num_ports)) then
         invalid_arg "Mapping.set: port out of range")
    usage

let set t scheme usage =
  let usage = normalize_usage usage in
  validate t usage;
  Hashtbl.replace t.table (Scheme.id scheme) (scheme, usage)

let find_opt t scheme =
  match Hashtbl.find_opt t.table (Scheme.id scheme) with
  | Some (_, usage) -> Some usage
  | None -> None

let usage t scheme =
  match find_opt t scheme with
  | Some usage -> usage
  | None -> raise Not_found

let supports t scheme = Hashtbl.mem t.table (Scheme.id scheme)

let schemes t =
  Hashtbl.fold (fun _ (s, _) acc -> s :: acc) t.table []
  |> List.sort Scheme.compare

let size t = Hashtbl.length t.table

let uop_count t scheme =
  match find_opt t scheme with
  | None -> 0
  | Some usage -> List.fold_left (fun acc (_, n) -> acc + n) 0 usage

let copy t = { t with table = Hashtbl.copy t.table }

let ports_used t =
  Hashtbl.fold
    (fun _ (_, usage) acc ->
       List.fold_left (fun acc (ports, _) -> Portset.union acc ports) acc usage)
    t.table Portset.empty

let usage_to_string usage =
  match usage with
  | [] -> "(none)"
  | _ ->
    String.concat " + "
      (List.map
         (fun (ports, n) ->
            if n = 1 then Portset.to_string ports
            else Printf.sprintf "%d x %s" n (Portset.to_string ports))
         usage)

let equal_usage a b =
  List.equal
    (fun (p, n) (p', n') -> Portset.equal p p' && n = n')
    (normalize_usage a) (normalize_usage b)

let pp ppf t =
  List.iter
    (fun s ->
       Format.fprintf ppf "%-48s %s@." (Scheme.name s)
         (usage_to_string (usage t s)))
    (schemes t)
