(** Experiments: dependency-free instruction sequences, as multisets.

    The port-mapping model is insensitive to instruction order (§3.3.1), so
    an experiment is a multiset of instruction schemes.  The canonical form
    is a list of (scheme, count) pairs sorted by scheme id with positive
    counts, so structural traversal order is deterministic. *)

type t = private (Pmi_isa.Scheme.t * int) list

val empty : t
val singleton : Pmi_isa.Scheme.t -> t
val replicate : int -> Pmi_isa.Scheme.t -> t

val of_list : Pmi_isa.Scheme.t list -> t
val of_counts : (Pmi_isa.Scheme.t * int) list -> t
(** Merges duplicate schemes; drops non-positive counts. *)

val add : ?count:int -> Pmi_isa.Scheme.t -> t -> t
val union : t -> t -> t

val count : t -> Pmi_isa.Scheme.t -> int
val length : t -> int
(** Total number of instructions, counting multiplicity. *)

val distinct : t -> int
val is_empty : t -> bool
val to_counts : t -> (Pmi_isa.Scheme.t * int) list
val schemes : t -> Pmi_isa.Scheme.t list
(** Distinct schemes, ascending id. *)

val fold : (Pmi_isa.Scheme.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (Pmi_isa.Scheme.t -> int -> bool) -> t -> bool
val exists : (Pmi_isa.Scheme.t -> int -> bool) -> t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val key : t -> (int * int) list
(** Canonical structural cache key: [(scheme id, count)] pairs in the
    multiset's sorted order.  Equal experiments have equal keys; no string
    rendering or [Buffer] allocation involved. *)

(** Hashing over {!key} values, for memoisation tables keyed by
    experiment. *)
module Key : Hashtbl.HashedType with type t = (int * int) list

module Tbl : Hashtbl.S with type key = (int * int) list

val to_string : t -> string
(** e.g. ["[4 x add <GPR[32]>, <GPR[32]>; 1 x imul ...]"]. *)

val pp : Format.formatter -> t -> unit
