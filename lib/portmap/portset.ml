type t = int

let empty = 0

let singleton p =
  if p < 0 || p >= Sys.int_size - 1 then invalid_arg "Portset.singleton";
  1 lsl p

let add p s = s lor singleton p
let of_list ports = List.fold_left (fun s p -> add p s) empty ports

let to_list s =
  let rec go acc p s =
    if s = 0 then List.rev acc
    else if s land 1 = 1 then go (p :: acc) (p + 1) (s lsr 1)
    else go acc (p + 1) (s lsr 1)
  in
  go [] 0 s

let full n =
  if n < 0 || n >= Sys.int_size - 1 then invalid_arg "Portset.full";
  (1 lsl n) - 1

let mem p s = s land singleton p <> 0
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let proper_subset a b = subset a b && a <> b

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  go 0 s

let is_empty s = s = 0
let to_mask s = s

let of_mask m =
  if m < 0 || m > (1 lsl (Sys.int_size - 2)) - 1 then
    invalid_arg "Portset.of_mask";
  m

let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let hash s = s

let iter_subsets s f =
  (* Standard submask enumeration: visits submasks in decreasing order,
     finishing with the empty set. *)
  let sub = ref s in
  let continue = ref true in
  while !continue do
    f !sub;
    if !sub = 0 then continue := false else sub := (!sub - 1) land s
  done

let to_string s =
  "[" ^ String.concat "," (List.map string_of_int (to_list s)) ^ "]"

let pp ppf s = Format.pp_print_string ppf (to_string s)
