module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme

exception Unsupported of Scheme.t

let uop_masses mapping experiment =
  let tbl = Hashtbl.create 16 in
  Experiment.fold
    (fun scheme count () ->
       match Mapping.find_opt mapping scheme with
       | None -> raise (Unsupported scheme)
       | Some usage ->
         List.iter
           (fun (ports, n) ->
              let prev = try Hashtbl.find tbl ports with Not_found -> 0 in
              Hashtbl.replace tbl ports (prev + (n * count)))
           usage)
    experiment ();
  Hashtbl.fold (fun ports mass acc -> (ports, mass) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Portset.compare a b)

(* Maximise mass(Q)/|Q| over subsets Q of the union of the µops' port sets;
   a bottleneck outside that union has zero mass and can never win.  The
   fraction comparison is done on native ints: masses are µop counts and
   cardinalities are at most the port count, far from overflow. *)
let best_bottleneck masses =
  match masses with
  | [] -> (Portset.empty, 0, 1)
  | _ ->
    let universe =
      List.fold_left (fun acc (ports, _) -> Portset.union acc ports)
        Portset.empty masses
    in
    let best_q = ref Portset.empty in
    let best_num = ref 0 in
    let best_den = ref 1 in
    Portset.iter_subsets universe (fun q ->
        if not (Portset.is_empty q) then begin
          let mass =
            List.fold_left
              (fun acc (ports, m) ->
                 if Portset.subset ports q then acc + m else acc)
              0 masses
          in
          let card = Portset.cardinal q in
          (* mass/card > best_num/best_den ? *)
          if mass * !best_den > !best_num * card then begin
            best_q := q;
            best_num := mass;
            best_den := card
          end
        end);
    (!best_q, !best_num, !best_den)

let of_masses masses =
  let _, num, den = best_bottleneck masses in
  Rat.of_ints num den

let inverse mapping experiment = of_masses (uop_masses mapping experiment)

let bottleneck_set mapping experiment =
  let q, _, _ = best_bottleneck (uop_masses mapping experiment) in
  q

let inverse_bounded ~r_max mapping experiment =
  if r_max <= 0 then invalid_arg "Throughput.inverse_bounded";
  let t = inverse mapping experiment in
  let frontend = Rat.of_ints (Experiment.length experiment) r_max in
  Rat.max t frontend

(* Naive reference for the interval oracle (Oracle.Bounds): enumerate the
   subsets of the union of all candidate port sets and bound the mass of
   each subset by minimising/maximising every scheme's contribution over
   its candidates independently.  Monotonicity of cumulative masses means
   subsets outside the union can never improve either optimum. *)
let inverse_interval ~candidates experiment =
  let counts = Experiment.to_counts experiment in
  let rows =
    List.map
      (fun (scheme, count) ->
         match candidates scheme with
         | [] | (exception Not_found) -> raise (Unsupported scheme)
         | cands -> (count, cands))
      counts
  in
  let universe =
    List.fold_left
      (fun acc (_, cands) ->
         List.fold_left
           (fun acc usage ->
              List.fold_left
                (fun acc (ports, _) -> Portset.union acc ports)
                acc usage)
           acc cands)
      Portset.empty rows
  in
  let usage_mass q usage =
    List.fold_left
      (fun acc (ports, n) -> if Portset.subset ports q then acc + n else acc)
      0 usage
  in
  let best_lo = ref Rat.zero and best_hi = ref Rat.zero in
  Portset.iter_subsets universe (fun q ->
      if not (Portset.is_empty q) then begin
        let card = Portset.cardinal q in
        let lmass, umass =
          List.fold_left
            (fun (l, u) (count, cands) ->
               let masses = List.map (usage_mass q) cands in
               let mn = List.fold_left min max_int masses in
               let mx = List.fold_left max 0 masses in
               (l + (count * mn), u + (count * mx)))
            (0, 0) rows
        in
        let lo = Rat.of_ints lmass card and hi = Rat.of_ints umass card in
        if Rat.compare lo !best_lo > 0 then best_lo := lo;
        if Rat.compare hi !best_hi > 0 then best_hi := hi
      end);
  (!best_lo, !best_hi)

let ipc ~r_max mapping experiment =
  let n = Experiment.length experiment in
  if n = 0 then Rat.zero
  else Rat.div (Rat.of_int n) (inverse_bounded ~r_max mapping experiment)
