module Rat = Pmi_numeric.Rat
module Scheme = Pmi_isa.Scheme

(* Dense throughput oracle over the 2^P bitmask lattice.

   For a fixed mapping, each scheme contributes a *cumulative mass table*
   [tbl] with [tbl.(q) = Σ_{(ports, n) ∈ usage, ports ⊆ q} n]: the µop mass
   of one instance of the scheme that is confined to the port set [q].  The
   table is built once per scheme with a zeta (subset-sum) transform of the
   scheme's point masses and cached, so evaluating

     tp⁻¹(e) = max over ∅ ≠ q of mass_e(q) / |q|

   for an experiment [e] only needs a pointwise combination of the cached
   tables followed by a single O(2^P) scan — no hashtable rebuild, no
   submask enumeration.  [Acc] keeps the combined table standing so the
   stratified CEGIS search can move between neighbouring experiments with
   ±one-scheme deltas. *)

let max_ports = 20
(* 2^20 ints per scheme table; far above any simulated profile (≤ 13). *)

type t = {
  mapping : Mapping.t;
  num_ports : int;
  size : int;                          (* 2^num_ports *)
  card : int array;                    (* popcount per mask *)
  tables : (int, int array) Hashtbl.t; (* scheme id -> cumulative masses *)
}

let create mapping =
  let num_ports = Mapping.num_ports mapping in
  if num_ports < 1 || num_ports > max_ports then
    invalid_arg "Oracle.create: unsupported port count";
  let size = 1 lsl num_ports in
  let card = Array.make size 0 in
  for q = 1 to size - 1 do
    card.(q) <- card.(q lsr 1) + (q land 1)
  done;
  { mapping; num_ports; size; card; tables = Hashtbl.create 64 }

let mapping t = t.mapping
let num_ports t = t.num_ports

(* Zeta transform in place: tbl.(q) becomes Σ_{s ⊆ q} tbl.(s). *)
let zeta num_ports tbl =
  for k = 0 to num_ports - 1 do
    let bit = 1 lsl k in
    for q = 0 to Array.length tbl - 1 do
      if q land bit <> 0 then tbl.(q) <- tbl.(q) + tbl.(q lxor bit)
    done
  done

let table t scheme =
  let id = Scheme.id scheme in
  match Hashtbl.find_opt t.tables id with
  | Some tbl -> tbl
  | None ->
    let usage =
      match Mapping.find_opt t.mapping scheme with
      | Some usage -> usage
      | None -> raise (Throughput.Unsupported scheme)
    in
    let tbl = Array.make t.size 0 in
    List.iter
      (fun (ports, n) ->
         let q = Portset.to_mask ports in
         tbl.(q) <- tbl.(q) + n)
      usage;
    zeta t.num_ports tbl;
    Hashtbl.replace t.tables id tbl;
    tbl

let prepare t schemes = List.iter (fun s -> ignore (table t s)) schemes

(* Best non-empty bottleneck of a cumulative mass table, by exact
   cross-multiplied fraction comparison (masses and cardinalities are far
   from native-int overflow). *)
let best_scan ~size ~card cum =
  let best_q = ref 0 and best_num = ref 0 and best_den = ref 1 in
  for q = 1 to size - 1 do
    let mass = cum.(q) in
    if mass * !best_den > !best_num * card.(q) then begin
      best_q := q;
      best_num := mass;
      best_den := card.(q)
    end
  done;
  (!best_q, !best_num, !best_den)

let best_of t cum = best_scan ~size:t.size ~card:t.card cum

let accumulate t cum experiment =
  List.iter
    (fun (s, count) ->
       let tbl = table t s in
       for q = 0 to t.size - 1 do
         cum.(q) <- cum.(q) + (count * tbl.(q))
       done)
    (Experiment.to_counts experiment)

let inverse t experiment =
  let cum = Array.make t.size 0 in
  accumulate t cum experiment;
  let _, num, den = best_of t cum in
  Rat.of_ints num den

let bottleneck_set t experiment =
  let cum = Array.make t.size 0 in
  accumulate t cum experiment;
  let q, _, _ = best_of t cum in
  Portset.of_mask q

let bounded ~r_max len num den =
  if r_max <= 0 then invalid_arg "Oracle.inverse_bounded";
  (* max (num/den) (len/r_max) without building the loser. *)
  if num * r_max >= len * den then Rat.of_ints num den
  else Rat.of_ints len r_max

let inverse_bounded ~r_max t experiment =
  let cum = Array.make t.size 0 in
  accumulate t cum experiment;
  let _, num, den = best_of t cum in
  bounded ~r_max (Experiment.length experiment) num den

module Acc = struct
  type oracle = t

  type nonrec t = {
    oracle : oracle;
    cum : int array;
    mutable len : int;
  }

  let create oracle =
    { oracle; cum = Array.make oracle.size 0; len = 0 }

  let length acc = acc.len

  let update acc scheme count =
    let tbl = table acc.oracle scheme in
    let cum = acc.cum in
    for q = 0 to acc.oracle.size - 1 do
      cum.(q) <- cum.(q) + (count * tbl.(q))
    done;
    acc.len <- acc.len + count

  let add acc scheme count =
    if count < 0 then invalid_arg "Oracle.Acc.add";
    update acc scheme count

  let remove acc scheme count =
    if count < 0 then invalid_arg "Oracle.Acc.remove";
    update acc scheme (-count)

  let reset acc =
    Array.fill acc.cum 0 acc.oracle.size 0;
    acc.len <- 0

  let inverse acc =
    let _, num, den = best_of acc.oracle acc.cum in
    Rat.of_ints num den

  let inverse_bounded ~r_max acc =
    let _, num, den = best_of acc.oracle acc.cum in
    bounded ~r_max acc.len num den
end

module Bounds = struct
  (* Abstract domain for *partial* mappings: each scheme's row ranges over a
     non-empty set of candidate usages (as during a live CEGIS search).  Per
     scheme we keep two cumulative mass tables — the pointwise min and max of
     the per-candidate zeta tables — so a query costs the same pointwise
     combination + O(2^P) scan as the concrete oracle, once per bound.

     Soundness: for any completion σ (one candidate per scheme) and any mask
     Q, Σ count·mass_{σ(s)}(Q) lies between the combined lo and hi tables at
     Q; taking max_Q mass/|Q| of each bound therefore brackets tp⁻¹_σ. *)

  type interval = { lo : Rat.t; hi : Rat.t }

  let is_point { lo; hi } = Rat.equal lo hi

  type nonrec t = {
    num_ports : int;
    size : int;
    card : int array;
    cands : (int, Mapping.usage list) Hashtbl.t;
    tables : (int, int array * int array) Hashtbl.t;
        (* scheme id -> (cumulative min-mass, cumulative max-mass) *)
  }

  let create ~num_ports =
    if num_ports < 1 || num_ports > max_ports then
      invalid_arg "Oracle.Bounds.create: unsupported port count";
    let size = 1 lsl num_ports in
    let card = Array.make size 0 in
    for q = 1 to size - 1 do
      card.(q) <- card.(q lsr 1) + (q land 1)
    done;
    { num_ports; size; card;
      cands = Hashtbl.create 16; tables = Hashtbl.create 16 }

  let num_ports t = t.num_ports

  let check_usage t usage =
    List.iter
      (fun (ports, n) ->
         if Portset.is_empty ports then
           invalid_arg "Oracle.Bounds: empty port set in candidate usage";
         if Portset.to_mask ports >= t.size then
           invalid_arg "Oracle.Bounds: candidate port out of range";
         if n <= 0 then
           invalid_arg "Oracle.Bounds: non-positive µop multiplicity")
      usage

  let set_candidates t scheme candidates =
    if candidates = [] then
      invalid_arg "Oracle.Bounds.set_candidates: no candidates";
    List.iter (check_usage t) candidates;
    let id = Scheme.id scheme in
    Hashtbl.replace t.cands id candidates;
    Hashtbl.remove t.tables id

  let candidates t scheme = Hashtbl.find_opt t.cands (Scheme.id scheme)

  let of_mapping mapping =
    let t = create ~num_ports:(Mapping.num_ports mapping) in
    List.iter
      (fun scheme ->
         match Mapping.find_opt mapping scheme with
         | Some usage -> set_candidates t scheme [ usage ]
         | None -> ())
      (Mapping.schemes mapping);
    t

  let pin t scheme usage =
    check_usage t usage;
    let cands = Hashtbl.copy t.cands in
    let tables = Hashtbl.copy t.tables in
    let id = Scheme.id scheme in
    Hashtbl.replace cands id [ usage ];
    Hashtbl.remove tables id;
    (* The copies are shallow: the other schemes' table arrays are shared
       with [t], so pinning one row is cheap. *)
    { t with cands; tables }

  let scheme_tables t scheme =
    let id = Scheme.id scheme in
    match Hashtbl.find_opt t.tables id with
    | Some pair -> pair
    | None ->
      let cands =
        match Hashtbl.find_opt t.cands id with
        | Some cs -> cs
        | None -> raise (Throughput.Unsupported scheme)
      in
      let lo = Array.make t.size max_int in
      let hi = Array.make t.size 0 in
      List.iter
        (fun usage ->
           let tbl = Array.make t.size 0 in
           List.iter
             (fun (ports, n) ->
                let q = Portset.to_mask ports in
                tbl.(q) <- tbl.(q) + n)
             usage;
           zeta t.num_ports tbl;
           for q = 0 to t.size - 1 do
             if tbl.(q) < lo.(q) then lo.(q) <- tbl.(q);
             if tbl.(q) > hi.(q) then hi.(q) <- tbl.(q)
           done)
        cands;
      let pair = (lo, hi) in
      Hashtbl.replace t.tables id pair;
      pair

  let accumulate t lcum ucum experiment =
    List.iter
      (fun (s, count) ->
         let lo, hi = scheme_tables t s in
         for q = 0 to t.size - 1 do
           lcum.(q) <- lcum.(q) + (count * lo.(q));
           ucum.(q) <- ucum.(q) + (count * hi.(q))
         done)
      (Experiment.to_counts experiment)

  let inverse t experiment =
    let lcum = Array.make t.size 0 in
    let ucum = Array.make t.size 0 in
    accumulate t lcum ucum experiment;
    let _, lnum, lden = best_scan ~size:t.size ~card:t.card lcum in
    let _, unum, uden = best_scan ~size:t.size ~card:t.card ucum in
    { lo = Rat.of_ints lnum lden; hi = Rat.of_ints unum uden }

  let inverse_bounded ~r_max t experiment =
    let lcum = Array.make t.size 0 in
    let ucum = Array.make t.size 0 in
    accumulate t lcum ucum experiment;
    let len = Experiment.length experiment in
    let _, lnum, lden = best_scan ~size:t.size ~card:t.card lcum in
    let _, unum, uden = best_scan ~size:t.size ~card:t.card ucum in
    (* The frontend bound |e|/r_max holds for every completion, so it lifts
       onto both ends of the interval. *)
    { lo = bounded ~r_max len lnum lden; hi = bounded ~r_max len unum uden }
end
