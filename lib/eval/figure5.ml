module Rat = Pmi_numeric.Rat
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Throughput = Pmi_portmap.Throughput
module Oracle = Pmi_portmap.Oracle
module Pool = Pmi_parallel.Pool
module Harness = Pmi_measure.Harness
module Pmevo = Pmi_baselines.Pmevo
module Palmed = Pmi_baselines.Palmed

type options = {
  scheme_subset : int;
  block_count : int;
  block_size : int;
  seed : int;
  pmevo : Pmevo.config;
  palmed : Palmed.config;
}

let default_options =
  { scheme_subset = 577;
    block_count = 5000;
    block_size = 5;
    seed = 5;
    pmevo = Pmevo.default_config;
    palmed = Palmed.default_config }

let quick_options =
  { scheme_subset = 60;
    block_count = 300;
    block_size = 5;
    seed = 5;
    pmevo =
      { Pmevo.default_config with
        Pmevo.population = 24; generations = 30 };
    palmed = { Palmed.default_config with Palmed.throughput_classes = 32 } }

type model_result = {
  model : string;
  pairs : (float * float) list;
  summary : Metrics.summary;
}

type t = {
  schemes_used : int;
  blocks_used : int;
  ours : model_result;
  pmevo : model_result;
  palmed : model_result;
}

let result name pairs =
  { model = name; pairs; summary = Metrics.summarize pairs }

let run ?(options = default_options) ?(domains = 1) harness ~mapping =
  let machine = Harness.machine harness in
  let r_max = Pmi_machine.Machine.r_max machine in
  let covered =
    List.filter (Mapping.supports mapping)
      (Array.to_list (Pmi_isa.Catalog.schemes (Pmi_machine.Machine.catalog machine)))
  in
  let schemes =
    Blocks.spec_subset ~seed:options.seed ~size:options.scheme_subset covered
  in
  let blocks =
    Blocks.generate ~seed:(options.seed + 1) ~count:options.block_count
      ~block_size:options.block_size schemes
  in
  let measured_ipc =
    List.map
      (fun e ->
         let cycles = Rat.to_float (Harness.cycles harness e) in
         (e, float_of_int (Experiment.length e) /. cycles))
      blocks
  in
  (* Model predictions are pure once the oracle tables are warm, so the
     per-block sweep fans out over the domain pool; the harness itself is
     never touched past this point. *)
  let predict model_inverse =
    Pool.map_list ~domains
      (fun (e, ipc) ->
         let t = model_inverse e in
         (float_of_int (Experiment.length e) /. Float.max 1e-9 t, ipc))
      measured_ipc
  in
  let oracle_inverse m =
    (* Dense tables when the port count allows, naive throughput otherwise. *)
    match Oracle.create m with
    | oracle ->
      Oracle.prepare oracle schemes;
      fun bounded e ->
        Rat.to_float
          (if bounded then Oracle.inverse_bounded ~r_max oracle e
           else Oracle.inverse oracle e)
    | exception Invalid_argument _ ->
      fun bounded e ->
        Rat.to_float
          (if bounded then Throughput.inverse_bounded ~r_max m e
           else Throughput.inverse m e)
  in
  (* Our model: the §2.2 LP optimum capped at the frontend rate (§4.5). *)
  let ours = result "Ours" (predict (oracle_inverse mapping true)) in
  (* PMEvo: trained on its own benchmark suite; predictions not adjusted
     for the IPC bottleneck (the paper's footnote 10). *)
  let pmevo_mapping =
    let training =
      Pmevo.training_set ~seed:(options.seed + 2) harness schemes
    in
    Pmevo.infer ~config:options.pmevo training schemes
  in
  let pmevo = result "PMEvo" (predict (oracle_inverse pmevo_mapping false)) in
  (* Palmed: conjunctive resource model inferred on the same machine. *)
  let palmed_model = Palmed.infer ~config:options.palmed harness schemes in
  let palmed =
    result "Palmed"
      (List.map
         (fun (e, ipc) ->
            let t = Rat.to_float (Palmed.predict palmed_model e) in
            (float_of_int (Experiment.length e) /. Float.max 1e-9 t, ipc))
         measured_ipc)
  in
  { schemes_used = List.length schemes;
    blocks_used = List.length blocks;
    ours;
    pmevo;
    palmed }

let pp ppf t =
  Format.fprintf ppf
    "== Figure 5: IPC prediction accuracy (%d blocks over %d schemes) ==@.@."
    t.blocks_used t.schemes_used;
  Format.fprintf ppf "%-8s %-14s %-10s %s@." "" "MAPE (paper)" "PCC" "Kendall τ";
  let paper = [ ("PMEvo", "28.0%"); ("Palmed", "35.2%"); ("Ours", "6.6%") ] in
  List.iter
    (fun r ->
       let p = try List.assoc r.model paper with Not_found -> "-" in
       Format.fprintf ppf "%-8s %5.1f%% (%s)   %5.2f     %5.2f@." r.model
         r.summary.Metrics.mape p r.summary.Metrics.pearson
         r.summary.Metrics.kendall)
    [ t.pmevo; t.palmed; t.ours ];
  List.iter
    (fun r ->
       Format.fprintf ppf "@.-- %s --@.%a" r.model Heatmap.pp
         (Heatmap.make r.pairs))
    [ t.pmevo; t.palmed; t.ours ]
