(** The Figure 5 evaluation: IPC prediction accuracy of the inferred port
    mapping against the PMEvo and Palmed baselines.

    Following §4.5: random five-instruction dependency-free basic blocks
    over a SPEC-like subset of the schemes covered by the inferred mapping
    are benchmarked on the (simulated) hardware; each model predicts the
    blocks' IPC; accuracy is summarised as MAPE / Pearson / Kendall τ and
    as predicted-vs-measured heatmaps.

    Prediction conventions match the paper: our model solves the §2.2 LP
    and caps the result at the 5-IPC frontend; PMEvo's predictions are
    deliberately {e not} adjusted for the IPC bottleneck (footnote 10);
    Palmed's resource model contains a frontend resource natively. *)

type options = {
  scheme_subset : int;    (** paper: 577 *)
  block_count : int;      (** paper: 5,000 *)
  block_size : int;       (** paper: 5 *)
  seed : int;
  pmevo : Pmi_baselines.Pmevo.config;
  palmed : Pmi_baselines.Palmed.config;
}

val default_options : options
val quick_options : options
(** Reduced sizes for tests and smoke runs. *)

type model_result = {
  model : string;
  pairs : (float * float) list;   (** (predicted, measured) IPC per block *)
  summary : Metrics.summary;
}

type t = {
  schemes_used : int;
  blocks_used : int;
  ours : model_result;
  pmevo : model_result;
  palmed : model_result;
}

val run :
  ?options:options ->
  ?domains:int ->
  Pmi_measure.Harness.t ->
  mapping:Pmi_portmap.Mapping.t ->
  t
(** Evaluate against the harness's machine; [mapping] is the pipeline's
    final inferred mapping.  Model predictions go through the memoised
    {!Pmi_portmap.Oracle}; with [domains > 1] (default 1) the pure
    prediction sweeps fan out over that many domains — measurement stays
    sequential because the harness cache is not thread-safe. *)

val pp : Format.formatter -> t -> unit
(** The Figure 5(a) table plus the three heatmaps. *)
