module Rat = Pmi_numeric.Rat
module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Throughput = Pmi_portmap.Throughput
module Oracle = Pmi_portmap.Oracle
module Bounds = Pmi_portmap.Oracle.Bounds
module Lp_model = Pmi_portmap.Lp_model
module Scheme = Pmi_isa.Scheme
module Catalog = Pmi_isa.Catalog
module Profile = Pmi_machine.Profile
module Diag = Pmi_diag.Diag

type severity = Diag.severity =
  | Error
  | Warning

type diag = Diag.t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
}

let errors = Diag.errors
let diag = Diag.make

(* ------------------------------------------------------------------ *)
(* Abstract domain helpers                                             *)
(* ------------------------------------------------------------------ *)

type interval = Bounds.interval = {
  lo : Rat.t;
  hi : Rat.t;
}

(* [pmi_analysis] sits below [pmi_measure], so the harness tolerance
   (Harness.Compare.default_epsilon = 0.02) is mirrored here as an exact
   rational rather than imported. *)
let default_epsilon = Rat.of_ints 1 50

let excludes ~epsilon ~length { lo; hi } value =
  let slack = Rat.mul epsilon (Rat.of_int length) in
  Rat.compare value (Rat.sub lo slack) < 0
  || Rat.compare value (Rat.add hi slack) > 0

let portsets_of_cardinality ~num_ports c =
  if num_ports < 1 || num_ports > 20 then
    invalid_arg "Mapcheck.portsets_of_cardinality: unsupported port count";
  let out = ref [] in
  for mask = (1 lsl num_ports) - 1 downto 1 do
    let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
    if popcount mask = c then out := Portset.of_mask mask :: !out
  done;
  !out

let proper_candidates ~num_ports c =
  List.map (fun ports -> [ (ports, 1) ]) (portsets_of_cardinality ~num_ports c)

(* ------------------------------------------------------------------ *)
(* Static refutation                                                   *)
(* ------------------------------------------------------------------ *)

module Refuter = struct
  type t = {
    epsilon : Rat.t;
    r_max : int;
    bounds : Bounds.t;
    ids : (int, unit) Hashtbl.t; (* tracked scheme ids *)
    mutable refuted : int;
  }

  let create ?(epsilon = default_epsilon) ~num_ports ~r_max rows =
    let bounds = Bounds.create ~num_ports in
    let ids = Hashtbl.create 16 in
    List.iter
      (fun (scheme, cands) ->
         if cands <> [] then begin
           Bounds.set_candidates bounds scheme cands;
           Hashtbl.replace ids (Scheme.id scheme) ()
         end)
      rows;
    { epsilon; r_max; bounds; ids; refuted = 0 }

  let tracked t experiment =
    List.for_all
      (fun (s, _) -> Hashtbl.mem t.ids (Scheme.id s))
      (Experiment.to_counts experiment)

  let surviving t scheme = Bounds.candidates t.bounds scheme
  let refuted_count t = t.refuted

  let statically_determined t experiment =
    if not (tracked t experiment) then None
    else
      match Bounds.inverse_bounded ~r_max:t.r_max t.bounds experiment with
      | iv when Bounds.is_point iv -> Some iv.lo
      | _ ->
        (* The pointwise interval is loose exactly when it mixes tables of
           different candidates, so a non-point interval can still hide a
           statically determined value — the Proper-c singleton benchmark,
           where every c-port candidate gives the same 1/c.  When a single
           scheme of the experiment is undetermined, pin it to each
           candidate in turn: if every pinned interval collapses to the
           same point, no measurement outcome could distinguish or refute
           anything. *)
        let multi =
          List.filter
            (fun (s, _) ->
               match Bounds.candidates t.bounds s with
               | Some (_ :: _ :: _) -> true
               | Some _ | None -> false)
            (Experiment.to_counts experiment)
        in
        (match multi with
         | [ (scheme, _) ] ->
           let cands =
             Option.value ~default:[] (Bounds.candidates t.bounds scheme)
           in
           let pinned =
             List.map
               (fun u ->
                  Bounds.inverse_bounded ~r_max:t.r_max
                    (Bounds.pin t.bounds scheme u)
                    experiment)
               cands
           in
           (match pinned with
            | iv0 :: rest
              when Bounds.is_point iv0
                   && List.for_all
                        (fun iv ->
                           Bounds.is_point iv && Rat.equal iv.Bounds.lo iv0.lo)
                        rest -> Some iv0.lo
            | _ -> None)
         | _ -> None)
      | exception Throughput.Unsupported _ -> None

  let observe t experiment value =
    if not (tracked t experiment) then []
    else begin
      let length = Experiment.length experiment in
      let refuted = ref [] in
      let changed = ref true in
      (* Fixpoint over the experiment's schemes: shrinking one scheme's
         surviving set tightens the intervals of the others. *)
      while !changed do
        changed := false;
        List.iter
          (fun (scheme, _) ->
             match Bounds.candidates t.bounds scheme with
             | None -> ()
             | Some [ _ ] -> ()
             | Some cands ->
               let keep, drop =
                 List.partition
                   (fun usage ->
                      let pinned = Bounds.pin t.bounds scheme usage in
                      let iv =
                        Bounds.inverse_bounded ~r_max:t.r_max pinned experiment
                      in
                      not (excludes ~epsilon:t.epsilon ~length iv value))
                   cands
               in
               (* keep = [] would mean the observation contradicts the model
                  class; leave the scheme alone and let the SAT loop surface
                  the inconsistency. *)
               if drop <> [] && keep <> [] then begin
                 Bounds.set_candidates t.bounds scheme keep;
                 t.refuted <- t.refuted + List.length drop;
                 refuted := List.map (fun u -> (scheme, u)) drop @ !refuted;
                 changed := true
               end)
          (Experiment.to_counts experiment)
      done;
      List.rev !refuted
    end
end

(* ------------------------------------------------------------------ *)
(* Dominance analysis                                                  *)
(* ------------------------------------------------------------------ *)

let swap_port p q ports =
  let has_p = Portset.mem p ports and has_q = Portset.mem q ports in
  if has_p = has_q then ports
  else if has_p then Portset.add q (Portset.diff ports (Portset.singleton p))
  else Portset.add p (Portset.diff ports (Portset.singleton q))

let interchangeable_ports m =
  let num_ports = Mapping.num_ports m in
  let schemes = Mapping.schemes m in
  let invariant p q =
    List.for_all
      (fun s ->
         let usage = Mapping.usage m s in
         let swapped =
           List.map (fun (ports, n) -> (swap_port p q ports, n)) usage
         in
         Mapping.equal_usage
           (Mapping.normalize_usage usage)
           (Mapping.normalize_usage swapped))
      schemes
  in
  let out = ref [] in
  for p = 0 to num_ports - 1 do
    for q = p + 1 to num_ports - 1 do
      if invariant p q then out := (p, q) :: !out
    done
  done;
  List.rev !out

let dominated_ports m =
  let num_ports = Mapping.num_ports m in
  let used = Mapping.ports_used m in
  let schemes = Mapping.schemes m in
  (* dominates q p: every port set containing p also contains q. *)
  let dominates q p =
    List.for_all
      (fun s ->
         List.for_all
           (fun (ports, _) -> (not (Portset.mem p ports)) || Portset.mem q ports)
           (Mapping.usage m s))
      schemes
  in
  let out = ref [] in
  for p = 0 to num_ports - 1 do
    for q = 0 to num_ports - 1 do
      if p <> q && Portset.mem p used && Portset.mem q used
         && dominates q p
         && not (dominates p q)
      then out := (p, q) :: !out
    done
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Auditor                                                             *)
(* ------------------------------------------------------------------ *)

let audit_rows ~subject rows =
  List.filter_map
    (fun (scheme, cands) ->
       if cands = [] then
         Some
           (diag "empty-candidates" Error subject
              "scheme %s has no candidate rows left: no completion of the \
               partial mapping exists" (Scheme.name scheme))
       else None)
    rows

let pair_list_to_string pairs =
  let shown = List.filteri (fun i _ -> i < 8) pairs in
  let rendered =
    List.map (fun (p, q) -> Printf.sprintf "(%d,%d)" p q) shown
  in
  let suffix = if List.length pairs > 8 then ", …" else "" in
  String.concat ", " rendered ^ suffix

(* Experiments exercising the mapping: singletons plus (1,2)-weighted pairs
   of neighbouring schemes, capped so auditing the 2,980-scheme ground
   truth stays cheap. *)
let sample_experiments ~samples m =
  let schemes = Array.of_list (Mapping.schemes m) in
  let n = Array.length schemes in
  let singles =
    List.init (min n samples) (fun i -> Experiment.singleton schemes.(i))
  in
  let pairs =
    if n < 2 then []
    else
      List.init
        (min (n - 1) (samples / 2))
        (fun i ->
           Experiment.of_counts [ (schemes.(i), 1); (schemes.(i + 1), 2) ])
  in
  singles @ pairs

let audit_mapping ?(epsilon = default_epsilon) ?(samples = 12) ?(lp_samples = 3)
    ?(against = []) ~r_max ~subject m =
  let out = ref [] in
  let push d = out := d :: !out in
  if Mapping.size m > 0 then begin
    let bounds = Bounds.of_mapping m in
    let sampled = sample_experiments ~samples m in
    (* Interval machinery vs the exact oracles: on a concrete mapping every
       interval must be the point equal to the bottleneck-formula value. *)
    List.iter
      (fun e ->
         match
           ( Bounds.inverse_bounded ~r_max bounds e,
             Throughput.inverse_bounded ~r_max m e )
         with
         | iv, exact ->
           if Rat.compare iv.lo iv.hi > 0 then
             push
               (diag "interval-mismatch" Error subject
                  "experiment %s: interval has lo > hi (%s > %s)"
                  (Experiment.to_string e) (Rat.to_string iv.lo)
                  (Rat.to_string iv.hi));
           if not (Rat.equal iv.lo exact && Rat.equal iv.hi exact) then
             push
               (diag "interval-mismatch" Error subject
                  "experiment %s: interval [%s, %s] but the exact oracle \
                   gives %s"
                  (Experiment.to_string e) (Rat.to_string iv.lo)
                  (Rat.to_string iv.hi) (Rat.to_string exact))
         | exception Throughput.Unsupported s ->
           push
             (diag "interval-mismatch" Error subject
                "experiment %s: scheme %s unsupported by the interval oracle"
                (Experiment.to_string e) (Scheme.name s)))
      sampled;
    (* Exact-rational cross-check against the §2.2 linear program. *)
    List.iteri
      (fun i e ->
         if i < lp_samples then
           match (Lp_model.inverse m e, Throughput.inverse m e) with
           | lp, exact ->
             if not (Rat.equal lp exact) then
               push
                 (diag "lp-mismatch" Error subject
                    "experiment %s: LP optimum %s but bottleneck formula \
                     gives %s"
                    (Experiment.to_string e) (Rat.to_string lp)
                    (Rat.to_string exact))
           | exception Failure msg ->
             push
               (diag "lp-infeasible" Error subject
                  "experiment %s: LP solve failed: %s"
                  (Experiment.to_string e) msg)
           | exception Throughput.Unsupported s ->
             push
               (diag "lp-infeasible" Error subject
                  "experiment %s: scheme %s unsupported"
                  (Experiment.to_string e) (Scheme.name s)))
      sampled;
    (* Counter-consistency: replay recorded observations. *)
    List.iter
      (fun (e, observed) ->
         match Bounds.inverse_bounded ~r_max bounds e with
         | iv ->
           if excludes ~epsilon ~length:(Experiment.length e) iv observed then
             push
               (diag "counter-inconsistent" Error subject
                  "observation %s = %s cycles contradicts the mapping: \
                   interval [%s, %s] ± ε·|e|"
                  (Experiment.to_string e) (Rat.to_string observed)
                  (Rat.to_string iv.lo) (Rat.to_string iv.hi))
         | exception Throughput.Unsupported s ->
           push
             (diag "observation-unmapped-scheme" Error subject
                "observation %s mentions scheme %s, which the mapping does \
                 not map"
                (Experiment.to_string e) (Scheme.name s)))
      against;
    (* Schemes that can never bottleneck: their solo throughput is at or
       below the frontend rate, so pure experiments never constrain them. *)
    if r_max > 0 then
      List.iter
        (fun s ->
           let usage = Mapping.usage m s in
           if usage <> [] then begin
             let tp = Throughput.of_masses usage in
             if Rat.compare tp (Rat.of_ints 1 r_max) <= 0 then
               push
                 (diag "frontend-masked" Warning
                    (Printf.sprintf "%s, scheme %s" subject (Scheme.name s))
                    "usage %s never bottlenecks: solo throughput %s ≤ \
                     frontend 1/%d, so the row is under-determined by \
                     throughput measurements"
                    (Mapping.usage_to_string usage) (Rat.to_string tp) r_max)
           end)
        (Mapping.schemes m);
    (* Dominance analysis. *)
    (match interchangeable_ports m with
     | [] -> ()
     | pairs ->
       push
         (diag "interchangeable-ports" Warning subject
            "port pairs %s are interchangeable (swapping them leaves every \
             usage invariant); any inferred mapping is only unique up to \
             these swaps" (pair_list_to_string pairs)));
    (match dominated_ports m with
     | [] -> ()
     | pairs ->
       push
         (diag "dominated-port" Warning subject
            "dominated port pairs %s: the first port's µops always admit \
             the second, so blocking the second alone can never isolate \
             the first" (pair_list_to_string pairs)))
  end;
  List.rev !out

let audit_profile ?catalog (p : Profile.t) =
  let cat = match catalog with Some c -> c | None -> Catalog.zen_plus () in
  let subject = Printf.sprintf "ground truth (%s)" p.name in
  let gt = Pmi_machine.Ground_truth.mapping_for p cat in
  let arity =
    if Mapping.num_ports gt <> p.num_ports then
      [ diag "arity-drift" Error subject
          "mapping declares %d ports but profile %s has %d"
          (Mapping.num_ports gt) p.name p.num_ports ]
    else []
  in
  arity @ audit_mapping ~r_max:p.r_max ~subject gt

let builtin ?catalog () =
  let cat = match catalog with Some c -> c | None -> Catalog.zen_plus () in
  List.concat_map (fun p -> audit_profile ~catalog:cat p) Profile.all
