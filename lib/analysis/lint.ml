module Portset = Pmi_portmap.Portset
module Mapping = Pmi_portmap.Mapping
module Experiment = Pmi_portmap.Experiment
module Scheme = Pmi_isa.Scheme
module Catalog = Pmi_isa.Catalog
module Profile = Pmi_machine.Profile

(* The diagnostic type and its renderers live in the shared [Pmi_diag.Diag]
   module (one text/JSON schema across [lint] and [sanitize]); type
   equations below keep this module's historical API intact. *)

module Diag = Pmi_diag.Diag

type severity = Diag.severity =
  | Error
  | Warning

type diag = Diag.t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
}

let severity_to_string = Diag.severity_to_string
let to_string = Diag.to_string
let to_json = Diag.to_json
let errors = Diag.errors
let diag = Diag.make

(* ------------------------------------------------------------------ *)
(* Mappings                                                            *)
(* ------------------------------------------------------------------ *)

let lint_usage ~num_ports ~subject usage =
  let out = ref [] in
  let push d = out := d :: !out in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (ports, n) ->
       if Portset.is_empty ports then
         push
           (diag "empty-port-set" Error subject
              "µop kind with an empty admissible port set (no port can \
               execute it)");
       if not (Portset.subset ports (Portset.full (max 0 num_ports))) then
         push
           (diag "port-out-of-range" Error subject
              "port set %s mentions a port >= num_ports (%d)"
              (Portset.to_string ports) num_ports);
       if n <= 0 then
         push
           (diag "non-positive-multiplicity" Error subject
              "port set %s has multiplicity %d" (Portset.to_string ports) n);
       if Hashtbl.mem seen ports then
         push
           (diag "duplicate-port-set" Warning subject
              "port set %s appears twice; merge into one entry with a \
               multiplicity" (Portset.to_string ports))
       else Hashtbl.add seen ports ())
    usage;
  List.rev !out

let lint_mapping ?reference ~subject m =
  let num_ports = Mapping.num_ports m in
  let out = ref [] in
  let push d = out := d :: !out in
  List.iter
    (fun scheme ->
       let sub = Printf.sprintf "%s, scheme %s" subject (Scheme.name scheme) in
       let usage = Mapping.usage m scheme in
       List.iter push (lint_usage ~num_ports ~subject:sub usage);
       match reference with
       | Some r when Mapping.supports r scheme ->
         let got = Mapping.uop_count m scheme in
         let want = Mapping.uop_count r scheme in
         if got <> want then
           push
             (diag "uop-count-mismatch" Warning sub
                "%d µops, but the ground-truth reference has %d" got want)
       | _ -> ())
    (Mapping.schemes m);
  let used = Mapping.ports_used m in
  let unreachable = Portset.diff (Portset.full num_ports) used in
  if Mapping.size m > 0 && not (Portset.is_empty unreachable) then
    push
      (diag "unreachable-port" Warning subject
         "ports %s are not admissible for any µop of any scheme"
         (Portset.to_string unreachable));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)
(* ------------------------------------------------------------------ *)

let lint_profile (p : Profile.t) =
  let subject = Printf.sprintf "profile %s" p.name in
  let out = ref [] in
  let push d = out := d :: !out in
  if p.num_ports <= 0 then
    push (diag "profile-nonpositive-constant" Error subject
            "num_ports = %d" p.num_ports);
  if p.r_max <= 0 then
    push (diag "profile-nonpositive-constant" Error subject
            "r_max = %d" p.r_max);
  if p.ms_ops_per_cycle <= 0 then
    push (diag "profile-nonpositive-constant" Error subject
            "ms_ops_per_cycle = %d" p.ms_ops_per_cycle);
  if p.div_occupancy <= 0 then
    push (diag "profile-nonpositive-constant" Error subject
            "div_occupancy = %d" p.div_occupancy);
  let full = Portset.full (max 0 p.num_ports) in
  List.iter
    (fun base ->
       match p.ports_of_base base with
       | ports ->
         if Portset.is_empty ports then
           push
             (diag "profile-empty-base" Error subject
                "base class %s has an empty port set"
                (Pmi_isa.Iclass.base_to_string base));
         if not (Portset.subset ports full) then
           push
             (diag "profile-port-range" Error subject
                "base class %s uses ports %s outside 0..%d"
                (Pmi_isa.Iclass.base_to_string base)
                (Portset.to_string (Portset.diff ports full))
                (p.num_ports - 1))
       | exception exn ->
         push
           (diag "profile-base-failure" Error subject
              "ports_of_base %s raised %s"
              (Pmi_isa.Iclass.base_to_string base)
              (Printexc.to_string exn)))
    Profile.all_bases;
  if not (Portset.subset p.fma_shadow full) then
    push
      (diag "profile-port-range" Error subject
         "fma_shadow %s leaves the port range"
         (Portset.to_string p.fma_shadow));
  if p.r_max <= Profile.max_port_set p then
    push
      (diag "profile-throughput-gap" Error subject
         "r_max (%d) must exceed the widest µop port set (%d): §3.4 gap \
          requirement" p.r_max (Profile.max_port_set p));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Catalogs                                                            *)
(* ------------------------------------------------------------------ *)

let lint_catalog ?(pair_sample = 40) cat =
  let subject = "catalog" in
  let out = ref [] in
  let push d = out := d :: !out in
  let schemes = Catalog.schemes cat in
  (* Scheme ids must agree with catalog positions: the encoding rows, the
     oracle caches, and the experiment keys all index by id. *)
  Array.iteri
    (fun i s ->
       if Scheme.id s <> i then
         push
           (diag "scheme-id-mismatch" Error subject
              "scheme %s sits at index %d but has id %d" (Scheme.name s) i
              (Scheme.id s)))
    schemes;
  (* Duplicate renderings break the Mapping_io name resolver. *)
  let names = Hashtbl.create (Array.length schemes) in
  Array.iter
    (fun s ->
       let name = Scheme.name s in
       match Hashtbl.find_opt names name with
       | Some first ->
         push
           (diag "duplicate-scheme-name" Error subject
              "schemes %d and %d both render as %S" first (Scheme.id s) name)
       | None -> Hashtbl.add names name (Scheme.id s))
    schemes;
  List.iter
    (fun bucket ->
       if Catalog.bucket cat bucket = [] then
         push
           (diag "empty-bucket" Warning subject "bucket %S is empty" bucket))
    (Catalog.bucket_names cat);
  (* Structural cache keys must be injective: two different experiments
     sharing a key would silently alias harness measurements. *)
  let keys = Hashtbl.create 256 in
  let check_key exp =
    let key = Experiment.key exp in
    match Hashtbl.find_opt keys key with
    | Some other ->
      if not (Experiment.equal other exp) then
        push
          (diag "experiment-key-collision" Error subject
             "experiments %s and %s share the structural key"
             (Experiment.to_string other) (Experiment.to_string exp))
    | None -> Hashtbl.add keys key exp
  in
  Array.iter (fun s -> check_key (Experiment.singleton s)) schemes;
  let n = min pair_sample (Array.length schemes) in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      check_key
        (Experiment.of_counts [ (schemes.(i), 1); (schemes.(j), 2) ])
    done
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Everything the repo ships                                           *)
(* ------------------------------------------------------------------ *)

let builtin ?catalog () =
  let cat = match catalog with Some c -> c | None -> Catalog.zen_plus () in
  let profile_diags = List.concat_map lint_profile Profile.all in
  let catalog_diags = lint_catalog cat in
  let mapping_diags =
    List.concat_map
      (fun (p : Profile.t) ->
         let gt = Pmi_machine.Ground_truth.mapping_for p cat in
         lint_mapping ~reference:gt
           ~subject:(Printf.sprintf "ground truth (%s)" p.name)
           gt)
      Profile.all
  in
  profile_diags @ catalog_diags @ mapping_diags
