(** Domain lint pass over port mappings, machine profiles, and catalogs.

    Every check produces machine-readable diagnostics instead of raising:
    [Error] marks data that breaks the inference pipeline's assumptions
    (empty port sets, out-of-range ports, §3.4 throughput-gap violations,
    colliding experiment cache keys), [Warning] marks suspicious but legal
    data (unreachable ports, duplicate port sets that should carry a
    multiplicity, µop counts that disagree with the simulated ground
    truth).  The [lint] subcommand of [pmi_repro] and the [@lint] dune test
    are thin drivers over this module. *)

type severity = Pmi_diag.Diag.severity =
  | Error
  | Warning

type diag = Pmi_diag.Diag.t = {
  rule : string;      (** stable kebab-case rule name, e.g. ["empty-port-set"] *)
  severity : severity;
  subject : string;   (** what was linted, e.g. ["profile zen+"] *)
  message : string;
}
(** Equal to {!Pmi_diag.Diag.t}: the lint pass and the race sanitizer share
    one diagnostic type, renderer and JSON schema. *)

val severity_to_string : severity -> string

val to_string : diag -> string
(** Human-readable one-liner: [severity[rule] subject: message]. *)

val to_json : diag -> string
(** One-line JSON object with [rule], [severity], [subject], [message]. *)

val errors : diag list -> diag list
(** The [Error]-severity subset. *)

val lint_usage :
  num_ports:int ->
  subject:string ->
  (Pmi_portmap.Portset.t * int) list ->
  diag list
(** Lint a raw (un-normalized) usage entry: empty port sets, out-of-range
    ports, non-positive multiplicities, duplicate port sets. *)

val lint_mapping :
  ?reference:Pmi_portmap.Mapping.t ->
  subject:string ->
  Pmi_portmap.Mapping.t ->
  diag list
(** Lint a whole mapping: per-scheme usage checks, unreachable ports, and —
    when [reference] is given (typically [Ground_truth.mapping_for]) — µop
    counts that disagree with the reference. *)

val lint_profile : Pmi_machine.Profile.t -> diag list
(** The conditions of [Profile.validate] as diagnostics: non-positive
    machine constants, empty/out-of-range base port sets, fma-shadow range,
    and the §3.4 gap requirement ([r_max] must exceed the widest µop). *)

val lint_catalog : ?pair_sample:int -> Pmi_isa.Catalog.t -> diag list
(** Catalog structure: duplicate scheme names (they break the [Mapping_io]
    resolver), scheme ids inconsistent with catalog order, empty buckets,
    and structural [Experiment.key] collisions over all singleton
    experiments plus pairs of the first [pair_sample] schemes (default
    40). *)

val builtin : ?catalog:Pmi_isa.Catalog.t -> unit -> diag list
(** Lint everything the repo ships: all machine profiles, the given catalog
    (default: the full Zen+ catalog), and each profile's simulated ground
    truth mapping (checked against itself as reference, exercising the
    µop-count rule). *)
