(* Shared diagnostics renderer.

   Factored out of the PR-3 [Lint] module so that every analysis pass —
   static data lint and the dynamic race sanitizer alike — speaks one
   text format and one JSON schema.  Keep this module dependency-free:
   [Pmi_parallel.Pool] and [Pmi_smt.Solver] link against it, so anything
   heavier would create a cycle. *)

type severity =
  | Error
  | Warning

type t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"

let make rule severity subject fmt =
  Printf.ksprintf (fun message -> { rule; severity; subject; message }) fmt

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.rule
    d.subject d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"rule\": \"%s\", \"severity\": \"%s\", \"subject\": \"%s\", \
     \"message\": \"%s\"}"
    (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.subject)
    (json_escape d.message)

let errors diags = List.filter (fun d -> d.severity = Error) diags

let print_all ~json diags =
  List.iter
    (fun d -> print_endline (if json then to_json d else to_string d))
    diags

let summary ~pass diags =
  let errs = List.length (errors diags) in
  let warns = List.length diags - errs in
  Printf.sprintf "%s: %d error(s), %d warning(s)" pass errs warns
