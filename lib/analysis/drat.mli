(** Independent RUP/DRAT certificate checker.

    Verifies the proof traces emitted by [Pmi_smt.Sat] (see
    [Sat.set_proof_logging]) without sharing any propagation, clause
    storage, or search code with the solver: only the literal encoding
    ([2*v] positive, [2*v+1] negative) and the trace type are common, and
    those are the data format being checked, not the machinery under test.

    Checking is forward: the database starts empty, [Input] steps are
    axioms, each [Derive] step must have the reverse-unit-propagation (RUP)
    property — assuming the negation of every literal of the clause and
    unit-propagating over the current database must yield a conflict — and
    [Delete] steps remove one matching clause.  Following drat-trim's
    standard relaxation, a deletion is ignored when no clause matches or
    when the clause currently justifies a root-level unit; both only ever
    leave the database {e larger}, which keeps the check sound (RUP over a
    superset is required, never granted for free).

    An unconditional UNSAT verdict is certified by checking the trace with
    the empty [goal] clause; an UNSAT-under-assumptions verdict by the goal
    clause made of the negated assumptions (the derived clause [¬a1 ∨ … ∨
    ¬an]). *)

type error = {
  step : int;
  (** 0-based index of the offending step, or the number of steps when the
      final [goal] check failed. *)
  reason : string;
}

val check :
  ?goal:Pmi_smt.Lit.t list ->
  Pmi_smt.Sat.proof_step list ->
  (unit, error) result
(** [check ~goal steps] replays the trace and finally requires [goal] to be
    RUP with respect to the surviving database.  [goal] defaults to the
    empty clause (unconditional UNSAT). *)

val validate_model :
  model:bool array -> Pmi_smt.Sat.proof_step list -> (unit, error) result
(** [validate_model ~model steps] checks that the model satisfies every
    [Input] clause of the trace — the problem CNF, the compiled cardinality
    chains, and every theory lemma, since all enter the solver through
    [Sat.add_clause].  Variables outside the model are treated as false. *)

val pp_error : Format.formatter -> error -> unit

val goal_digest : goal:Pmi_smt.Lit.t list -> Pmi_smt.Sat.proof_step list -> string
(** Hex digest of the certified {e claim}: the goal clause plus every
    [Input] step (problem CNF, cardinality chains, theory lemmas) of the
    trace, ignoring derivations.  Two traces with equal goal digests
    assert the same theorem, so the digest keys checker-accepted
    certificates in the durable store. *)

val proof_digest : goal:Pmi_smt.Lit.t list -> Pmi_smt.Sat.proof_step list -> string
(** Hex digest of the goal plus the {e entire} trace, derivations and
    deletions included — the identity of one concrete proof.  The
    certificate store records it as the value under {!goal_digest}, so a
    re-check is skipped only when the exact previously-accepted proof
    reappears. *)
