(** MapCheck: abstract interpretation over (partial) port mappings, plus a
    semantic artifact auditor.

    Where {!Lint} checks the {e shape} of mappings, profiles and catalogs,
    MapCheck reasons about their {e semantics} through the bottleneck
    throughput formula [tp⁻¹(e) = max_Q mass(Q)/|Q|].  The abstract domain
    is the partial mapping of {!Pmi_portmap.Oracle.Bounds}: every scheme
    ranges over a non-empty set of candidate usages, and each experiment
    evaluates to a sound throughput {e interval} covering all completions.

    Three layers build on the domain:

    - {b Auditor} ({!audit_mapping}, {!audit_profile}, {!builtin}) — emits
      {!Pmi_diag.Diag} findings: counter-consistency replays of recorded
      observations against a mapping (CounterPoint-style, [Error] when an
      observation falls outside the interval ± ε·|e|), exact-rational
      cross-checks of the interval machinery against {!Pmi_portmap.Throughput}
      and {!Pmi_portmap.Lp_model}, dominance analysis (interchangeable and
      dominated ports), and well-formedness checks Lint cannot express
      (frontend-masked schemes that can never bottleneck, profile/mapping
      arity drift, empty candidate rows).

    - {b Static refutation} ({!Refuter}) — the CEGIS hook behind
      [config.mapcheck]/[--mapcheck]: maintains the surviving candidate row
      set of every scheme, refutes candidates whose interval excludes an
      already-observed value before any SAT episode is paid, and recognises
      experiments whose outcome is statically determined (a point interval)
      so their harness measurement can be skipped.

    - {b Symmetry facts} ({!interchangeable_ports}) — port pairs whose swap
      leaves a mapping invariant; [Cegis] feeds them to [Encoding] as
      symmetry-breaking facts for delta sessions (which run with global
      symmetry breaking off because frozen rows pin port identities). *)

type severity = Pmi_diag.Diag.severity =
  | Error
  | Warning

type diag = Pmi_diag.Diag.t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
}

val errors : diag list -> diag list

(** {1 The abstract domain} *)

type interval = Pmi_portmap.Oracle.Bounds.interval = {
  lo : Pmi_numeric.Rat.t;
  hi : Pmi_numeric.Rat.t;
}

val default_epsilon : Pmi_numeric.Rat.t
(** [1/50], mirroring the harness comparison tolerance
    ([Pmi_measure.Harness.Compare.default_epsilon]); kept here because
    [pmi_analysis] sits below the measurement layer. *)

val excludes :
  epsilon:Pmi_numeric.Rat.t -> length:int -> interval -> Pmi_numeric.Rat.t ->
  bool
(** [excludes ~epsilon ~length iv v]: [v] lies outside
    [[lo - ε·length, hi + ε·length]] — the interval-level analogue of the
    harness' [cpi_equal] tolerance, so no value the CEGIS loop would accept
    as consistent is ever refuted. *)

val portsets_of_cardinality : num_ports:int -> int -> Pmi_portmap.Portset.t list
(** All [C(num_ports, c)] port sets of cardinality [c], ascending by mask. *)

val proper_candidates :
  num_ports:int -> int -> Pmi_portmap.Mapping.usage list
(** The candidate rows of an unconstrained proper scheme with [c] ports:
    one single-µop usage per cardinality-[c] port set. *)

(** {1 Static refutation for CEGIS} *)

module Refuter : sig
  type t

  val create :
    ?epsilon:Pmi_numeric.Rat.t ->
    num_ports:int ->
    r_max:int ->
    (Pmi_isa.Scheme.t * Pmi_portmap.Mapping.usage list) list ->
    t
  (** Track the given schemes, each starting from its full candidate-row
      list.  Schemes with an empty candidate list are not tracked (report
      them via {!audit_rows}).  Experiments mentioning untracked schemes
      are ignored by {!observe} and {!statically_determined}. *)

  val tracked : t -> Pmi_portmap.Experiment.t -> bool
  (** Every scheme of the experiment is tracked. *)

  val surviving :
    t -> Pmi_isa.Scheme.t -> Pmi_portmap.Mapping.usage list option

  val refuted_count : t -> int
  (** Total candidate rows refuted so far. *)

  val statically_determined :
    t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t option
  (** [Some v] when every surviving completion yields the same exact
      throughput [v]: either the pointwise interval is already a point, or
      (when a single scheme of the experiment is undetermined) pinning
      that scheme to each candidate in turn collapses to the same point —
      the Proper-c singleton benchmark, where every c-port candidate gives
      1/c under the frontend bound.  Under the port-mapping model such a
      measurement cannot refute anything, so a CEGIS run may skip it.
      (The convergence-time validation sweep still exercises every scheme
      against the live machine, preserving the §4.3 anomaly check.) *)

  val observe :
    t -> Pmi_portmap.Experiment.t -> Pmi_numeric.Rat.t ->
    (Pmi_isa.Scheme.t * Pmi_portmap.Mapping.usage) list
  (** Record an observed inverse throughput and return the candidate rows
      it newly refutes: candidates whose pinned interval excludes the value
      (propagated to a fixpoint across the experiment's schemes).  Sound:
      a refuted row appears in no completion that explains the observation
      within ε, so asserting its negation preserves every mapping the CEGIS
      loop could accept.  If a scheme would lose {e all} its candidates the
      observation contradicts the model class; the scheme is left unchanged
      and the SAT loop is left to surface the inconsistency. *)
end

(** {1 Dominance analysis} *)

val interchangeable_ports : Pmi_portmap.Mapping.t -> (int * int) list
(** Pairs [p < q] whose swap maps every usage of the mapping onto itself.
    Such ports are observationally indistinguishable: any completion
    remains consistent under the swap, so the pairs are safe
    symmetry-breaking facts for encodings whose pinned rows are invariant
    under them. *)

val dominated_ports : Pmi_portmap.Mapping.t -> (int * int) list
(** Pairs [(p, q)] with [p ≠ q] where every port set containing [p] also
    contains [q] but not conversely — uops.info-style dominance: [q] can
    execute everything confined to [p].  Only used ports are reported. *)

(** {1 Auditor} *)

val audit_rows :
  subject:string ->
  (Pmi_isa.Scheme.t * Pmi_portmap.Mapping.usage list) list ->
  diag list
(** Well-formedness of a partial-mapping row set: [empty-candidates]
    (Error) for schemes with no candidate rows. *)

val audit_mapping :
  ?epsilon:Pmi_numeric.Rat.t ->
  ?samples:int ->
  ?lp_samples:int ->
  ?against:(Pmi_portmap.Experiment.t * Pmi_numeric.Rat.t) list ->
  r_max:int ->
  subject:string ->
  Pmi_portmap.Mapping.t ->
  diag list
(** Semantic audit of a concrete mapping:

    - [counter-inconsistent] (Error): a recorded observation in [against]
      falls outside the mapping's throughput interval ± ε·|e|;
      [observation-unmapped-scheme] (Error) when the mapping cannot
      evaluate it at all.
    - [interval-mismatch] (Error): the interval machinery disagrees with
      the exact oracles ({!Pmi_portmap.Throughput}/{!Pmi_portmap.Oracle})
      on sampled experiments, or produces [lo > hi].
    - [lp-mismatch]/[lp-infeasible] (Error): the bottleneck-formula value
      differs from the §2.2 linear program ({!Pmi_portmap.Lp_model}) on
      [lp_samples] sampled experiments.
    - [frontend-masked] (Warning): a scheme whose usage can never
      bottleneck — pure experiments of it are always frontend-bound, so
      its row is under-determined by throughput measurements.
    - [interchangeable-ports]/[dominated-port] (Warning): dominance
      analysis results, one finding per mapping. *)

val audit_profile :
  ?catalog:Pmi_isa.Catalog.t -> Pmi_machine.Profile.t -> diag list
(** Pair the profile with its ground-truth mapping: [arity-drift] (Error)
    on num_ports disagreement, then {!audit_mapping} under the profile's
    [r_max]. *)

val builtin : ?catalog:Pmi_isa.Catalog.t -> unit -> diag list
(** Audit everything the repo ships: every {!Pmi_machine.Profile.t} with
    its ground-truth mapping over the (default full Zen+) catalog.  Zero
    [Error]s expected — enforced by [test/test_mapcheck.ml] and the
    [pmi_repro mapcheck]/[pmi_repro lint] CLI gates. *)
