(* EncLint: solver-off static analysis of a constructed CEGIS encoding.

   The encoding layer hands us a [view] — rows with their activation
   literals and recorded cardinality networks, theory lemmas, frozen
   assumption literals, the cube-split hint — and the solver exposes its
   problem-clause database read-only.  Everything here runs without a
   single [Sat.solve] call:

   - structural checks walk the clause database and the guard layer
     (dead variables, duplicate/tautological clauses, networks missing
     their guard literal, retired-row literals still reachable, split
     hints over dead variables, frozen literals that no longer occur);
   - semantic checks re-verify every cardinality network against its
     declared bound by exhaustive enumeration of the input cone (a
     mini-DPLL decides each of the 2^n input assignments over the
     recorded clauses), and vet theory lemmas against an accepted
     assignment and against each other;
   - [simplify] is the certified rewrite mode: subsumption,
     self-subsuming resolution and blocked-clause elimination over the
     long problem clauses, with every rewrite emitted into the solver's
     DRAT trace (strengthened clauses as derivations, removals as
     deletions) and blocked-clause removals backed by the solver's model
     reconstruction, so both UNSAT certificates and SAT model replays
     still pass the independent checker afterwards. *)

module Diag = Pmi_diag.Diag
module Lit = Pmi_smt.Lit
module Sat = Pmi_smt.Sat
module Card = Pmi_smt.Card

type severity = Diag.severity =
  | Error
  | Warning

let diag = Diag.make

type row = {
  subject : string;
  vars : int list;
  act : int;                          (* -1 when unguarded *)
  live : bool;
  networks : (int * Card.network) list;  (* (declared bound, network) *)
}

type view = {
  rows : row list;
  lemmas : Lit.t list list;
  frozen : Lit.t list;
  accepted : (int * bool) list;
  hint : int list;
}

let empty_view =
  { rows = []; lemmas = []; frozen = []; accepted = []; hint = [] }

(* ------------------------------------------------------------------ *)
(* A mini-DPLL for tiny cones                                          *)
(* ------------------------------------------------------------------ *)

(* Complete satisfiability check over a small clause list with some
   variables pre-assigned: unit propagation plus chronological branching.
   Cardinality networks are mostly unit-decided once their inputs are
   fixed, so branching depth is negligible; completeness is what matters
   (an approximation here would turn encoding bugs into false passes). *)
let rec dpll clauses assign =
  let value l =
    match Hashtbl.find_opt assign (Lit.var l) with
    | None -> 0
    | Some b -> if b = Lit.is_pos l then 1 else -1
  in
  let conflict = ref false in
  let unit_lit = ref (-1) in
  let branch_lit = ref (-1) in
  List.iter
    (fun c ->
       if not !conflict && not (List.exists (fun l -> value l = 1) c) then
         match List.filter (fun l -> value l = 0) c with
         | [] -> conflict := true
         | [ l ] -> if !unit_lit < 0 then unit_lit := l
         | l :: _ -> if !branch_lit < 0 then branch_lit := l)
    clauses;
  if !conflict then false
  else if !unit_lit >= 0 then begin
    let l = !unit_lit in
    Hashtbl.add assign (Lit.var l) (Lit.is_pos l);
    let r = dpll clauses assign in
    Hashtbl.remove assign (Lit.var l);
    r
  end
  else if !branch_lit < 0 then true
  else begin
    let v = Lit.var !branch_lit in
    Hashtbl.add assign v false;
    let r = dpll clauses assign in
    Hashtbl.remove assign v;
    r
    ||
    begin
      Hashtbl.add assign v true;
      let r = dpll clauses assign in
      Hashtbl.remove assign v;
      r
    end
  end

(* ------------------------------------------------------------------ *)
(* Semantic verification of one cardinality network                    *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    c := !c + (!m land 1);
    m := !m lsr 1
  done;
  !c

let check_network ~max_cone ~cone_memo ~subject ~declared push
    (net : Card.network) =
  if net.bound <> declared then
    push
      (diag "bound-mismatch" Error subject
         "%s network declares bound %d but the encoding asked for %d"
         (Card.kind_to_string net.kind) net.bound declared);
  List.iter
    (fun c ->
       if List.exists (fun l -> List.mem (Lit.negate l) c) c then
         push
           (diag "tautology" Warning subject
              "%s network emitted a tautological clause"
              (Card.kind_to_string net.kind)))
    net.clauses;
  let n = List.length net.inputs in
  let input_vars = List.map Lit.var net.inputs in
  let distinct = List.length (List.sort_uniq compare input_vars) = n in
  (* The exhaustive 2^n enumeration is memoizable on the network's shape:
     the [Card] builder is deterministic, so two networks with the same
     kind, bound, declared bound, input count and guardedness are
     identical up to variable renaming, and the dpll verdicts are
     renaming-invariant.  Only clean results are cached — a network that
     produced findings is re-checked (and re-reported) every time. *)
  let memo_key () =
    Printf.sprintf "%s/%d/%d/%d/%b"
      (Card.kind_to_string net.kind) net.bound declared n (net.guard <> None)
  in
  let memoized =
    match cone_memo with
    | Some m -> n <= max_cone && distinct && Hashtbl.mem m (memo_key ())
    | None -> false
  in
  if n <= max_cone && distinct && not memoized then begin
    let clean = ref true in
    let push d =
      clean := false;
      push d
    in
    let expected count =
      match net.kind with
      | Card.At_most -> count <= net.bound
      | Card.At_least -> count >= net.bound
      | Card.Exactly -> count = net.bound
    in
    (* Vacuity: with the guard literal satisfied the whole network must be
       satisfiable regardless of the inputs — this is the semantic face of
       the dropped-guard mutation (a clause missing its guard can force
       registers even when the row is retired). *)
    (match net.guard with
     | None -> ()
     | Some g ->
       let vacuous = ref true in
       let m = ref 0 in
       while !vacuous && !m < 1 lsl n do
         let assign = Hashtbl.create 16 in
         Hashtbl.add assign (Lit.var g) (Lit.is_pos g);
         List.iteri
           (fun i l ->
              let bit = !m land (1 lsl i) <> 0 in
              Hashtbl.replace assign (Lit.var l)
                (if Lit.is_pos l then bit else not bit))
           net.inputs;
         if not (dpll net.clauses assign) then vacuous := false;
         incr m
       done;
       if not !vacuous then
         push
           (diag "card-guard" Error subject
              "%s-%d network stays binding with its guard satisfied: some \
               clause is missing the guard literal"
              (Card.kind_to_string net.kind) net.bound));
    (* Active semantics: with the guard falsified (constraint live), the
       network must be satisfiable exactly on the input assignments whose
       true-count meets the declared bound. *)
    let bad = ref None in
    let m = ref 0 in
    while !bad = None && !m < 1 lsl n do
      let assign = Hashtbl.create 16 in
      (match net.guard with
       | None -> ()
       | Some g -> Hashtbl.add assign (Lit.var g) (not (Lit.is_pos g)));
      List.iteri
        (fun i l ->
           let bit = !m land (1 lsl i) <> 0 in
           Hashtbl.replace assign (Lit.var l)
             (if Lit.is_pos l then bit else not bit))
        net.inputs;
      let count = popcount !m in
      if dpll net.clauses assign <> expected count then
        bad := Some count;
      incr m
    done;
    (match !bad with
     | None -> ()
     | Some count ->
       push
         (diag "card-bound" Error subject
            "%s-%d network over %d inputs %s an assignment with %d true \
             inputs: encoded bound disagrees with the declared one"
            (Card.kind_to_string net.kind) net.bound n
            (if expected count then "rejects" else "accepts")
            count));
    match cone_memo with
    | Some m when !clean -> Hashtbl.replace m (memo_key ()) ()
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Full analysis                                                       *)
(* ------------------------------------------------------------------ *)
let analyze ?(max_cone = 12) ?cone_memo ?(db = true) sat view =
  let out = ref [] in
  let push d = out := d :: !out in
  let nv = Sat.num_vars sat in
  let lit_root l =
    let v = Sat.root_value sat (Lit.var l) in
    if v = 0 then 0 else if (v = 1) = Lit.is_pos l then 1 else -1
  in
  let root_satisfied c = List.exists (fun l -> lit_root l = 1) c in
  (* Retired-row bookkeeping, shared by several passes below. *)
  let retired = Hashtbl.create 16 in
  let retired_owned = Hashtbl.create 16 in
  List.iter
    (fun r ->
       if not r.live then begin
         List.iter
           (fun v ->
              Hashtbl.replace retired v r.subject;
              Hashtbl.replace retired_owned v ())
           r.vars;
         if r.act >= 0 then begin
           Hashtbl.replace retired r.act r.subject;
           Hashtbl.replace retired_owned r.act ()
         end;
         List.iter
           (fun (_, (net : Card.network)) ->
              List.iter (fun v -> Hashtbl.replace retired_owned v ()) net.aux)
           r.networks
       end)
    view.rows;
  (* Database passes.  One fused walk over the problem clauses computes
     literal occurrence, the duplicate-detection fingerprint buckets and
     the materialized long-clause lists (reused by the retired-reachable
     scan) in a single traversal; [db = false] skips all of it — the CEGIS
     gate analyzes a solver's database once and re-checks only the view
     layer on later episodes of the same solver. *)
  if db then begin
    let occurs = Array.make (max 1 nv) false in
    let mark l =
      let v = Lit.var l in
      if v >= 0 && v < nv then occurs.(v) <- true
    in
    (* Duplicate clauses (binary + long): bucket by a cheap
       order-insensitive fingerprint mixed into one int; only clauses in a
       colliding bucket pay the canonical sort, so a database of thousands
       of distinct lemmas stays near-linear. *)
    let buckets : (int, Lit.t list list) Hashtbl.t = Hashtbl.create 64 in
    let visit c =
      let len = ref 0 and sum = ref 0 and x = ref 0 in
      List.iter
        (fun l ->
           mark l;
           incr len;
           sum := !sum + l;
           x := !x lxor l)
        c;
      let key = (!len * 0x9e3779b1) lxor !sum lxor (!x * 31) in
      Hashtbl.replace buckets key
        (c :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
    in
    (* The long-clause list is only re-read by the retired-reachable scan;
       without retired rows, visiting is enough. *)
    let keep_longs = Hashtbl.length retired > 0 in
    let longs = ref [] in
    Sat.iter_long_problem_clauses sat (fun _ lits ->
        if keep_longs then longs := lits :: !longs;
        visit lits);
    let bins = Sat.binary_problem_clauses sat in
    List.iter (fun (a, b) -> visit [ a; b ]) bins;
    List.iter mark (Sat.root_units sat);
    (* Dead variables: allocated, never constrained, never assigned.  The
       solver will branch on them and double the model count for nothing.
       Retired rows are exempt — once simplification strips their
       root-satisfied clauses, their variables are unconstrained by
       design. *)
    for v = 0 to nv - 1 do
      if
        (not occurs.(v))
        && Sat.root_value sat v = 0
        && not (Hashtbl.mem retired_owned v)
      then
        push
          (diag "dead-var" Warning
             (match Sat.var_name sat v with
              | Some n -> n
              | None -> Printf.sprintf "var %d" (v + 1))
             "variable occurs in no problem clause and is not root-assigned")
    done;
    Hashtbl.iter
      (fun _ cs ->
         match cs with
         | [] | [ _ ] -> ()
         | cs ->
           let canon_counts = Hashtbl.create 4 in
           List.iter
             (fun c ->
                let key = List.sort_uniq (fun (a : int) b -> compare a b) c in
                Hashtbl.replace canon_counts key
                  (1
                   + Option.value ~default:0
                       (Hashtbl.find_opt canon_counts key)))
             cs;
           Hashtbl.iter
             (fun key n ->
                if n > 1 then
                  push
                    (diag "duplicate-clause" Warning "clause database"
                       "a %d-literal clause appears %d times"
                       (List.length key) n))
             canon_counts)
      buckets;
    (* Retired rows: their literals must be unreachable from live clauses.
       Every clause that mentions one must be root-satisfied (by the ¬act
       retirement unit or otherwise) — anything else re-animates a dead
       delta row. *)
    if Hashtbl.length retired > 0 then begin
      let flagged = Hashtbl.create 8 in
      let scan c =
        if not (root_satisfied c) then
          List.iter
            (fun l ->
               match Hashtbl.find_opt retired (Lit.var l) with
               | Some subject when not (Hashtbl.mem flagged subject) ->
                 Hashtbl.replace flagged subject ();
                 push
                   (diag "retired-reachable" Error subject
                      "retired row literal occurs in a live clause that \
                       is not root-satisfied")
               | _ -> ())
            c
      in
      List.iter scan !longs;
      List.iter (fun (a, b) -> scan [ a; b ]) bins
    end;
    (* Frozen assumption literals must still occur somewhere, or the
       freeze pins a variable nothing reads. *)
    List.iter
      (fun l ->
         let v = Lit.var l in
         if v >= 0 && v < nv && not occurs.(v) then
           push
             (diag "frozen-unused" Warning
                (Printf.sprintf "frozen var %d" (v + 1))
                "frozen assumption literal occurs in no problem clause"))
      view.frozen
  end;
  (* Guard layer. *)
  let guarded = List.exists (fun r -> r.act >= 0) view.rows in
  List.iter
    (fun r ->
       if guarded && r.live && r.act < 0 then
         push
           (diag "unguarded-row" Error r.subject
              "row has no activation literal in an encoding where other \
               rows are guarded: it can never be retired");
       if r.act >= 0 then begin
         let g = Lit.neg_of_var r.act in
         List.iter
           (fun (_, (net : Card.network)) ->
              (match net.guard with
               | Some g' when g' = g -> ()
               | Some _ ->
                 push
                   (diag "missing-guard" Error r.subject
                      "%s network is guarded by a different literal than \
                       the row's activation"
                      (Card.kind_to_string net.kind))
               | None ->
                 push
                   (diag "missing-guard" Error r.subject
                      "%s network of a guarded row carries no guard literal"
                      (Card.kind_to_string net.kind)));
              List.iter
                (fun c ->
                   if not (List.mem g c) then
                     push
                       (diag "missing-guard" Error r.subject
                          "network clause is missing the row's ¬act guard \
                           literal"))
                net.clauses)
           r.networks
       end)
    view.rows;
  (* Retired activation literals must be false at the root regardless of
     [db] — this is the view-layer face of retirement. *)
  List.iter
    (fun r ->
       if (not r.live) && r.act >= 0 && Sat.root_value sat r.act <> -1 then
         push
           (diag "retired-reachable" Error r.subject
              "retired row's activation literal is not false at the \
               root: its constraints are still in force"))
    view.rows;
  (* Split hint: cube-and-conquer must never split on a decided or retired
     variable — each such cube halves the search space on paper only. *)
  List.iter
    (fun v ->
       if Sat.root_value sat v <> 0 then
         push
           (diag "split-dead" Error
              (Printf.sprintf "split_hint var %d" (v + 1))
              "cube-split hint proposes a root-assigned variable")
       else
         match Hashtbl.find_opt retired v with
         | Some subject ->
           push
             (diag "split-dead" Error subject
                "cube-split hint proposes a variable of a retired row")
         | None -> ())
    view.hint;
  (* Semantic cardinality verification. *)
  List.iter
    (fun r ->
       List.iter
         (fun (declared, net) ->
            check_network ~max_cone ~cone_memo ~subject:r.subject ~declared
              push net)
         r.networks)
    view.rows;
  (* Theory lemmas: consistency with the accepted assignment (under active
     guards) and mutual redundancy. *)
  let accepted = Hashtbl.create 16 in
  List.iter (fun (v, b) -> Hashtbl.replace accepted v b) view.accepted;
  let live_acts = Hashtbl.create 16 in
  List.iter
    (fun r -> if r.live && r.act >= 0 then Hashtbl.replace live_acts r.act ())
    view.rows;
  let lemma_lit_false l =
    let v = Lit.var l in
    if Hashtbl.mem live_acts v then
      (* Guard active: act true, so the ¬act disjunct is false. *)
      not (Lit.is_pos l)
    else
      match Hashtbl.find_opt accepted v with
      | Some b -> b <> Lit.is_pos l
      | None -> lit_root l = -1
  in
  if view.accepted <> [] then
    List.iteri
      (fun i lemma ->
         if lemma <> [] && List.for_all lemma_lit_false lemma then
           push
             (diag "lemma-conflict" Error
                (Printf.sprintf "lemma %d" i)
                "theory lemma contradicts the accepted assignment with \
                 every guard active"))
      view.lemmas;
  (* Pairwise lemma subsumption is quadratic, so it is capped: count with
     early exit BEFORE any per-lemma work, then compare sorted int arrays
     with a two-pointer subset walk. *)
  let rec length_at_most k = function
    | [] -> true
    | _ :: t -> k > 0 && length_at_most (k - 1) t
  in
  if view.lemmas <> [] && length_at_most 256 view.lemmas then begin
    let lemmas =
      Array.of_list
        (List.map
           (fun c ->
              let a = Array.of_list c in
              Array.sort (fun (a : int) b -> compare a b) a;
              a)
           view.lemmas)
    in
    let subset (d : int array) (c : int array) =
      (* Both sorted; duplicates within a lemma are harmless. *)
      let nd = Array.length d and nc = Array.length c in
      let i = ref 0 and j = ref 0 in
      while !i < nd && !j < nc do
        if d.(!i) = c.(!j) then incr i
        else if d.(!i) > c.(!j) then incr j
        else j := nc + 1 (* d.(i) missing from c *)
      done;
      !i = nd
    in
    Array.iteri
      (fun j c ->
         let lc = Array.length c in
         let subsumed = ref false in
         Array.iteri
           (fun i d ->
              if
                (not !subsumed)
                && i <> j
                && (Array.length d < lc || (Array.length d = lc && i < j))
                && subset d c
              then subsumed := true)
           lemmas;
         if !subsumed then
           push
             (diag "lemma-subsumed" Warning
                (Printf.sprintf "lemma %d" j)
                "theory lemma is subsumed by another lemma"))
      lemmas
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Certified simplification                                            *)
(* ------------------------------------------------------------------ *)

type simplify_stats = {
  satisfied_removed : int;
  subsumed_removed : int;
  strengthened : int;
  blocked_removed : int;
}

let total stats =
  stats.satisfied_removed + stats.subsumed_removed + stats.strengthened
  + stats.blocked_removed

let simplify ?(bce = true) ?(protect = []) sat =
  let protected_ = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace protected_ v ()) protect;
  let lit_root l =
    let v = Sat.root_value sat (Lit.var l) in
    if v = 0 then 0 else if (v = 1) = Lit.is_pos l then 1 else -1
  in
  let satisfied = ref 0 and subsumed = ref 0 in
  let strengthened = ref 0 and blocked = ref 0 in
  let longs = ref [] in
  Sat.iter_long_problem_clauses sat (fun cr lits ->
      longs := (cr, List.sort_uniq compare lits) :: !longs);
  let longs = Array.of_list (List.rev !longs) in
  let bins = Sat.binary_problem_clauses sat in
  let removed = Hashtbl.create 64 in
  let removals = ref [] in
  let remove cr blocker =
    Hashtbl.replace removed cr ();
    removals := (cr, blocker) :: !removals
  in
  let live cr = not (Hashtbl.mem removed cr) in
  (* Pass 1: clauses satisfied at the root.  The root trail persists, so
     every later model satisfies them; deletion is certificate-safe. *)
  Array.iter
    (fun (cr, lits) ->
       if List.exists (fun l -> lit_root l = 1) lits then begin
         remove cr None;
         incr satisfied
       end)
    longs;
  (* Pass 2: subsumption.  A binary or a (live) smaller long clause whose
     literals all occur in C makes C redundant; exact duplicates keep their
     first copy.  Removed clauses stay implied by the remaining database,
     so both proof checking and model replay are unaffected. *)
  Array.iter
    (fun (cr, lits) ->
       if
         live cr
         && List.exists
              (fun (a, b) -> List.mem a lits && List.mem b lits)
              bins
       then begin
         remove cr None;
         incr subsumed
       end)
    longs;
  Array.iteri
    (fun j (cr, lits) ->
       if live cr then begin
         let len = List.length lits in
         let found = ref false in
         Array.iteri
           (fun i (cr', lits') ->
              if
                (not !found)
                && i <> j
                && live cr'
                && (List.length lits' < len
                    || (List.length lits' = len && i < j))
                && List.for_all (fun l -> List.mem l lits) lits'
              then found := true)
           longs;
         if !found then begin
           remove cr None;
           incr subsumed
         end
       end)
    longs;
  (* Pass 3: self-subsuming resolution against binary clauses.  With
     D = (a ∨ b), ¬a ∈ C and b ∈ C, resolving on a strengthens C to
     C \ {¬a}; the strengthened clause is RUP by that one resolution, so
     it is logged as a derivation ([Sat.add_derived]) and the original is
     deleted. *)
  Array.iter
    (fun (cr, lits) ->
       if live cr then begin
         let current = ref lits in
         let changed = ref false in
         let progress = ref true in
         while !progress do
           progress := false;
           List.iter
             (fun (a, b) ->
                let drop l keep =
                  if
                    List.mem (Lit.negate l) !current
                    && List.mem keep !current
                  then begin
                    current :=
                      List.filter (fun x -> x <> Lit.negate l) !current;
                    changed := true;
                    progress := true
                  end
                in
                drop a b;
                drop b a)
             bins
         done;
         if !changed then begin
           Sat.add_derived sat !current;
           remove cr None;
           incr strengthened
         end
       end)
    longs;
  (* Pass 4: blocked-clause elimination.  Only unnamed, unprotected,
     non-guard, root-unassigned variables qualify as blocking literals —
     cardinality registers and symmetry auxiliaries, which no future
     CEGIS clause (lemma, blocking clause, retirement unit) ever
     mentions, keeping blockedness stable across episodes.  Blockedness
     is checked against the full pre-removal database, which is
     conservative (monotone under deletion), so batch removal is sound;
     each removal records its blocking literal and the solver patches
     later SAT models (newest elimination first). *)
  if bce then begin
    let eligible v =
      v >= 0
      && (not (Hashtbl.mem protected_ v))
      && (not (Sat.is_guard sat v))
      && Sat.var_name sat v = None
      && Sat.root_value sat v = 0
    in
    (* Occurrence lists over the original database (longs + binaries). *)
    let occ = Hashtbl.create 256 in
    let add_occ l c =
      Hashtbl.replace occ l
        (c :: Option.value ~default:[] (Hashtbl.find_opt occ l))
    in
    Array.iter (fun (_, lits) -> List.iter (fun l -> add_occ l lits) lits)
      longs;
    List.iter
      (fun (a, b) ->
         add_occ a [ a; b ];
         add_occ b [ a; b ])
      bins;
    Array.iter
      (fun (cr, lits) ->
         if live cr then begin
           let blocked_on l =
             eligible (Lit.var l)
             && List.for_all
                  (fun d ->
                     (* Resolvent of C and D on l must be a tautology. *)
                     List.exists
                       (fun x -> x <> l && List.mem (Lit.negate x) d)
                       lits)
                  (Option.value ~default:[]
                     (Hashtbl.find_opt occ (Lit.negate l)))
           in
           match List.find_opt blocked_on lits with
           | Some l ->
             remove cr (Some l);
             incr blocked
           | None -> ()
         end)
      longs
  end;
  Sat.remove_long_problem_clauses sat (List.rev !removals);
  { satisfied_removed = !satisfied;
    subsumed_removed = !subsumed;
    strengthened = !strengthened;
    blocked_removed = !blocked }
