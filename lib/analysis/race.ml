(* FastTrack-style dynamic race detector.

   Shadow state per tracked location:
     - the last write, as one epoch [(clock lsl tid_bits) lor tid];
     - the last reads, as an epoch while reads stay totally ordered, or a
       full read vector clock once two unordered reads have been seen
       (the "read-shared" state of the FastTrack paper).
   Per logical thread: a vector clock and the multiset of locks held.
   Per lock / atomic / fence: a vector clock carrying release edges.

   All bookkeeping runs under one global mutex ([guard]); correctness of
   the *detector* never depends on the scheduler.  The disabled fast path
   is a single [Atomic.get] branch per instrumentation point.

   Rather than registering every location so [enable] can reset it, each
   piece of shadow state is stamped with the generation counter of the
   [enable] call that last touched it and lazily reset when a newer
   generation first reaches it. *)

(* ------------------------------------------------------------------ *)
(* Epochs and vector clocks                                            *)

let tid_bits = 20 (* 2^20 logical threads per generation is plenty *)
let tid_mask = (1 lsl tid_bits) - 1
let epoch ~clock ~tid = (clock lsl tid_bits) lor tid
let epoch_tid e = e land tid_mask
let epoch_clock e = e lsr tid_bits

(* A vector clock is an int array indexed by logical-thread id; missing
   entries read as 0.  Clocks start at 1, so epoch 0 means "no access". *)

let vc_get vc t = if t < Array.length vc then Array.unsafe_get vc t else 0

let vc_grow vc n =
  if Array.length vc >= n then vc
  else begin
    let out = Array.make (max n (2 * Array.length vc)) 0 in
    Array.blit vc 0 out 0 (Array.length vc);
    out
  end

(* [dst |= src], mutating (a possibly grown copy of) [dst] in place.  The
   caller must own [dst] exclusively. *)
let vc_join dst src =
  let dst = vc_grow dst (Array.length src) in
  for i = 0 to Array.length src - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done;
  dst

let vc_copy vc = Array.copy vc

(* Does the access recorded as [e] happen before the thread whose clock is
   [vc]?  (The FastTrack "e <= C_t" test.) *)
let epoch_le e vc = epoch_clock e <= vc_get vc (epoch_tid e)

(* ------------------------------------------------------------------ *)
(* Global detector state                                               *)

type thread_state = {
  t_name : string;
  mutable t_vc : int array;
  mutable t_held : int list; (* ids of locks held, innermost first *)
}

let enabled_flag = Atomic.make false
let guard = Mutex.create ()
let generation = ref 0

let dummy_thread = { t_name = "?"; t_vc = [||]; t_held = [] }
let threads = ref (Array.make 0 dummy_thread)
let n_threads = ref 0
let fence_vc = ref [||]

type kind =
  | Write_write
  | Read_write
  | Write_read

type report = {
  location_name : string;
  kind : kind;
  first : string;
  second : string;
  lockset_saved : bool;
}

let report_acc = ref [] (* newest first *)
let report_seen : (string * kind, unit) Hashtbl.t = Hashtbl.create 64

(* The current logical thread of this domain.  Default 0 = main: a domain
   that was never given an identity via [with_thread] is attributed to
   the enabling thread, which is the right default for the caller-
   participates pool design. *)
let cur_tid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let enabled () = Atomic.get enabled_flag

(* All helpers below assume [guard] is held. *)

let current_state () =
  let tid = Domain.DLS.get cur_tid in
  let tid = if tid < !n_threads then tid else 0 in
  (tid, (!threads).(tid))

let thread_name tid =
  if tid < !n_threads then (!threads).(tid).t_name
  else Printf.sprintf "thread-%d" tid

let add_thread name vc =
  let tid = !n_threads in
  if tid >= Array.length !threads then begin
    let grown = Array.make (max 8 (2 * Array.length !threads)) dummy_thread in
    Array.blit !threads 0 grown 0 !n_threads;
    threads := grown
  end;
  (!threads).(tid) <- { t_name = name; t_vc = vc; t_held = [] };
  incr n_threads;
  tid

let bump_own_clock tid st =
  st.t_vc <- vc_grow st.t_vc (tid + 1);
  st.t_vc.(tid) <- st.t_vc.(tid) + 1

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)

let enable () =
  Mutex.lock guard;
  incr generation;
  Hashtbl.reset report_seen;
  report_acc := [];
  threads := Array.make 8 dummy_thread;
  n_threads := 0;
  let vc = Array.make 1 1 in
  ignore (add_thread "main" vc);
  fence_vc := [||];
  Domain.DLS.set cur_tid 0;
  Atomic.set enabled_flag true;
  Mutex.unlock guard

let disable () = Atomic.set enabled_flag false

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)

type thread = {
  h_tid : int;
  h_gen : int;
}

let dummy_handle = { h_tid = -1; h_gen = -1 }

let live h = h.h_tid >= 0 && h.h_gen = !generation

let fork ?(name = "task") () =
  if not (enabled ()) then dummy_handle
  else begin
    Mutex.lock guard;
    let ptid, parent = current_state () in
    let child_tid = !n_threads in
    let child_vc = vc_grow (vc_copy parent.t_vc) (child_tid + 1) in
    child_vc.(child_tid) <- 1;
    let tid =
      add_thread (Printf.sprintf "%s#%d" name child_tid) child_vc
    in
    assert (tid = child_tid);
    (* The parent's next actions must not look ordered with the child's. *)
    bump_own_clock ptid parent;
    Mutex.unlock guard;
    { h_tid = child_tid; h_gen = !generation }
  end

let join h =
  if enabled () then begin
    Mutex.lock guard;
    if live h then begin
      let _, me = current_state () in
      me.t_vc <- vc_join me.t_vc (!threads).(h.h_tid).t_vc
    end;
    Mutex.unlock guard
  end

let with_thread h f =
  if not (enabled ()) || not (h.h_tid >= 0 && h.h_gen = !generation) then f ()
  else begin
    let saved = Domain.DLS.get cur_tid in
    Domain.DLS.set cur_tid h.h_tid;
    Fun.protect f ~finally:(fun () -> Domain.DLS.set cur_tid saved)
  end

let fence () =
  if enabled () then begin
    Mutex.lock guard;
    let tid, me = current_state () in
    me.t_vc <- vc_join me.t_vc !fence_vc;
    fence_vc := vc_join !fence_vc me.t_vc;
    bump_own_clock tid me;
    Mutex.unlock guard
  end

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

type lock = {
  l_mu : Mutex.t;
  l_id : int;
  mutable l_gen : int;
  mutable l_vc : int array;
}

let next_lock_id = Atomic.make 0

let create_lock _name =
  { l_mu = Mutex.create ();
    l_id = Atomic.fetch_and_add next_lock_id 1;
    l_gen = -1;
    l_vc = [||] }

let with_lock l f =
  Mutex.lock l.l_mu;
  (* Decide once whether this critical section is tracked, so the release
     bookkeeping matches the acquire even if the flag flips mid-section. *)
  let tracked = enabled () in
  if tracked then begin
    Mutex.lock guard;
    if l.l_gen <> !generation then begin
      l.l_gen <- !generation;
      l.l_vc <- [||]
    end;
    let _, me = current_state () in
    me.t_vc <- vc_join me.t_vc l.l_vc; (* acquire *)
    me.t_held <- l.l_id :: me.t_held;
    Mutex.unlock guard
  end;
  Fun.protect f ~finally:(fun () ->
      if tracked && enabled () then begin
        Mutex.lock guard;
        let tid, me = current_state () in
        me.t_held <- List.filter (fun id -> id <> l.l_id) me.t_held;
        l.l_vc <- vc_copy me.t_vc; (* release: L := C_t *)
        bump_own_clock tid me;
        Mutex.unlock guard
      end;
      Mutex.unlock l.l_mu)

(* Lockset-only declaration: the caller synchronizes through something
   the detector cannot order (an external mutex, a coarser protocol).
   Conflicting accesses sharing a declared lock downgrade to a
   discipline warning rather than disappearing. *)
let holding l f =
  if not (enabled ()) then f ()
  else begin
    Mutex.lock guard;
    let _, me = current_state () in
    me.t_held <- l.l_id :: me.t_held;
    Mutex.unlock guard;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock guard;
        let _, me = current_state () in
        me.t_held <- List.filter (fun id -> id <> l.l_id) me.t_held;
        Mutex.unlock guard)
  end

(* ------------------------------------------------------------------ *)
(* Shadow words                                                        *)

type location = {
  loc_name : string;
  mutable g : int;
  mutable w_ep : int;          (* 0 = no write yet *)
  mutable w_locks : int list;
  mutable r_ep : int;          (* 0 = no read; -1 = read-shared (use r_vc) *)
  mutable r_vc : int array;
  mutable r_locks : int list;
}

let location name =
  { loc_name = name; g = -1;
    w_ep = 0; w_locks = []; r_ep = 0; r_vc = [||]; r_locks = [] }

let refresh loc =
  if loc.g <> !generation then begin
    loc.g <- !generation;
    loc.w_ep <- 0;
    loc.w_locks <- [];
    loc.r_ep <- 0;
    loc.r_vc <- [||];
    loc.r_locks <- []
  end

let locks_inter a b = List.exists (fun id -> List.mem id b) a

let record_race loc kind ~other_tid ~cur_tid:tid ~saved =
  let key = (loc.loc_name, kind) in
  if not (Hashtbl.mem report_seen key) then begin
    Hashtbl.add report_seen key ();
    report_acc :=
      { location_name = loc.loc_name;
        kind;
        first = thread_name other_tid;
        second = thread_name tid;
        lockset_saved = saved }
      :: !report_acc
  end

(* The earliest reader in [r_vc] that the current thread's clock has not
   caught up with, if any. *)
let shared_read_race r_vc vc =
  let n = Array.length r_vc in
  let rec go i =
    if i >= n then None
    else if r_vc.(i) > vc_get vc i then Some i
    else go (i + 1)
  in
  go 0

let touch_write_locked loc =
  refresh loc;
  let tid, me = current_state () in
  let e = epoch ~clock:(vc_get me.t_vc tid) ~tid in
  if loc.w_ep <> e then begin
    (* write-write *)
    if loc.w_ep <> 0 && not (epoch_le loc.w_ep me.t_vc) then
      record_race loc Write_write ~other_tid:(epoch_tid loc.w_ep)
        ~cur_tid:tid ~saved:(locks_inter loc.w_locks me.t_held);
    (* read-write *)
    if loc.r_ep = -1 then begin
      (match shared_read_race loc.r_vc me.t_vc with
       | Some rtid ->
         record_race loc Read_write ~other_tid:rtid ~cur_tid:tid
           ~saved:(locks_inter loc.r_locks me.t_held)
       | None -> ());
      (* FastTrack: a write that survives the shared-read check re-orders
         everything; drop back to the compact epoch representation. *)
      loc.r_ep <- 0;
      loc.r_vc <- [||];
      loc.r_locks <- []
    end
    else if loc.r_ep <> 0 && not (epoch_le loc.r_ep me.t_vc) then
      record_race loc Read_write ~other_tid:(epoch_tid loc.r_ep)
        ~cur_tid:tid ~saved:(locks_inter loc.r_locks me.t_held);
    loc.w_ep <- e;
    loc.w_locks <- me.t_held
  end

let touch_read_locked loc =
  refresh loc;
  let tid, me = current_state () in
  let clock = vc_get me.t_vc tid in
  let e = epoch ~clock ~tid in
  if loc.r_ep <> e then begin
    (* write-read *)
    if loc.w_ep <> 0 && not (epoch_le loc.w_ep me.t_vc) then
      record_race loc Write_read ~other_tid:(epoch_tid loc.w_ep)
        ~cur_tid:tid ~saved:(locks_inter loc.w_locks me.t_held);
    (* update the read shadow *)
    if loc.r_ep = -1 then begin
      loc.r_vc <- vc_grow loc.r_vc (tid + 1);
      loc.r_vc.(tid) <- clock;
      loc.r_locks <-
        List.filter (fun id -> List.mem id me.t_held) loc.r_locks
    end
    else if loc.r_ep = 0 || epoch_le loc.r_ep me.t_vc then begin
      loc.r_ep <- e;
      loc.r_locks <- me.t_held
    end
    else begin
      (* Two unordered readers: promote to the read-shared vector. *)
      let prev = loc.r_ep in
      let n = max (epoch_tid prev + 1) (tid + 1) in
      let r_vc = Array.make n 0 in
      r_vc.(epoch_tid prev) <- epoch_clock prev;
      r_vc.(tid) <- clock;
      loc.r_ep <- -1;
      loc.r_vc <- r_vc;
      loc.r_locks <-
        List.filter (fun id -> List.mem id me.t_held) loc.r_locks
    end
  end

let touch_write loc =
  if enabled () then begin
    Mutex.lock guard;
    touch_write_locked loc;
    Mutex.unlock guard
  end

let touch_read loc =
  if enabled () then begin
    Mutex.lock guard;
    touch_read_locked loc;
    Mutex.unlock guard
  end

(* ------------------------------------------------------------------ *)
(* Tracked cells                                                       *)

type 'a tracked_ref = {
  mutable v : 'a;
  ref_loc : location;
}

let tracked_ref ~name v = { v; ref_loc = location name }

let read r =
  touch_read r.ref_loc;
  r.v

let write r v =
  touch_write r.ref_loc;
  r.v <- v

(* Tracked atomics carry their own vector clock: operations on them are
   synchronization edges (like SC atomics in the memory model), not
   plain accesses, so they never *report* races — they *order* things. *)

type 'a tracked_atomic = {
  at : 'a Atomic.t;
  mutable a_gen : int;
  mutable a_vc : int array;
}

let tracked_atomic ~name:_ v = { at = Atomic.make v; a_gen = -1; a_vc = [||] }

let a_refresh a =
  if a.a_gen <> !generation then begin
    a.a_gen <- !generation;
    a.a_vc <- [||]
  end

let aget a =
  if not (enabled ()) then Atomic.get a.at
  else begin
    Mutex.lock guard;
    a_refresh a;
    let v = Atomic.get a.at in
    let _, me = current_state () in
    me.t_vc <- vc_join me.t_vc a.a_vc; (* acquire *)
    Mutex.unlock guard;
    v
  end

let a_release a tid me =
  a.a_vc <- vc_join a.a_vc me.t_vc;
  bump_own_clock tid me

let aset a v =
  if not (enabled ()) then Atomic.set a.at v
  else begin
    Mutex.lock guard;
    a_refresh a;
    Atomic.set a.at v;
    let tid, me = current_state () in
    a_release a tid me;
    Mutex.unlock guard
  end

let acas a old nu =
  if not (enabled ()) then Atomic.compare_and_set a.at old nu
  else begin
    Mutex.lock guard;
    a_refresh a;
    let ok = Atomic.compare_and_set a.at old nu in
    let tid, me = current_state () in
    me.t_vc <- vc_join me.t_vc a.a_vc; (* every RMW acquires *)
    if ok then a_release a tid me;     (* a successful one also releases *)
    Mutex.unlock guard;
    ok
  end

let afetch_add a d =
  if not (enabled ()) then Atomic.fetch_and_add a.at d
  else begin
    Mutex.lock guard;
    a_refresh a;
    let v = Atomic.fetch_and_add a.at d in
    let tid, me = current_state () in
    me.t_vc <- vc_join me.t_vc a.a_vc;
    a_release a tid me;
    Mutex.unlock guard;
    v
  end

(* ------------------------------------------------------------------ *)
(* Tracked hash tables                                                 *)

type ('k, 'v) tracked_table = {
  tbl : ('k, 'v) Hashtbl.t;
  tbl_loc : location;
}

let tracked_table ~name n = { tbl = Hashtbl.create n; tbl_loc = location name }

let tbl_find_opt t k =
  touch_read t.tbl_loc;
  Hashtbl.find_opt t.tbl k

let tbl_mem t k =
  touch_read t.tbl_loc;
  Hashtbl.mem t.tbl k

let tbl_replace t k v =
  touch_write t.tbl_loc;
  Hashtbl.replace t.tbl k v

let tbl_remove t k =
  touch_write t.tbl_loc;
  Hashtbl.remove t.tbl k

let tbl_length t =
  touch_read t.tbl_loc;
  Hashtbl.length t.tbl

let tbl_reset t =
  touch_write t.tbl_loc;
  Hashtbl.reset t.tbl

let tbl_fold f t init =
  touch_read t.tbl_loc;
  Hashtbl.fold f t.tbl init

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"
  | Write_read -> "write-read"

let reports () =
  Mutex.lock guard;
  let rs = List.rev !report_acc in
  Mutex.unlock guard;
  rs

let clear_reports () =
  Mutex.lock guard;
  report_acc := [];
  Hashtbl.reset report_seen;
  Mutex.unlock guard

let to_diags rs =
  List.map
    (fun r ->
       if r.lockset_saved then
         Diag.make "lock-discipline" Diag.Warning r.location_name
           "%s access pair (%s, then %s) is unordered by happens-before \
            but shares a lock the detector cannot see; route it through \
            Race.with_lock"
           (kind_to_string r.kind) r.first r.second
       else
         Diag.make "data-race" Diag.Error r.location_name
           "%s race: %s is unordered with %s"
           (kind_to_string r.kind) r.first r.second)
    rs
