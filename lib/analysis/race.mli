(** Dynamic data-race detection for the parallel CEGIS/SAT stack.

    A FastTrack-style happens-before detector (Flanagan & Freund, PLDI
    2009): every logical thread carries a vector clock; every tracked
    location carries an epoch-compressed shadow word (last write as a
    single [(clock, thread)] epoch, last reads as an epoch or — once reads
    race ahead concurrently — a full read vector clock).  An access that is
    not ordered after the conflicting shadow entry is a race.  As a
    fallback discipline check, each access also records the set of locks
    held: a happens-before race whose accesses share a common lock is
    downgraded to a [Warning] ("lock-discipline": the program is probably
    safe, but the synchronization is invisible to the detector and should
    be routed through {!with_lock}).

    The detector is {e off} by default.  Every entry point starts with a
    single [Atomic.get] on the enable flag and returns immediately when
    disabled, so instrumented hot paths (pool cursors, solver portfolios,
    harness caches) pay one predictable branch — see the
    [ablation/sanitize-off-portfolio] bench.  When enabled, all shadow
    bookkeeping runs under one global mutex: sanitizing serializes the
    program, which is fine because races are found by {e logical}
    interleavings (vector clocks + schedule replay in
    {!Pmi_parallel.Pool}), not by physical timing.

    Threads here are {e logical} threads, not domains: the pool forks one
    per task even when replay mode runs them serially on a single domain,
    which is exactly what lets a deterministic schedule expose a race. *)

(* ------------------------------------------------------------------ *)
(** {1 Switching the detector on and off} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Reset all detector state (threads, shadow words, reports) and start
    tracking.  The calling thread becomes logical thread 0 ("main"). *)

val disable : unit -> unit
(** Stop tracking.  Reports accumulated so far remain readable. *)

(* ------------------------------------------------------------------ *)
(** {1 Logical threads and happens-before edges} *)

type thread
(** A logical-thread handle, created by {!fork} and consumed by {!join}. *)

val fork : ?name:string -> unit -> thread
(** A fork edge: the new thread's clock starts after everything the
    current thread has done.  Returns a dummy handle when disabled. *)

val join : thread -> unit
(** A join edge: the current thread's clock absorbs everything the joined
    thread did.  No-op when disabled or on a stale/dummy handle. *)

val with_thread : thread -> (unit -> 'a) -> 'a
(** Run [f] with the current domain acting as the given logical thread
    (saved and restored on exit).  Used by the pool to run tasks under
    their own thread identity — including serially in replay mode. *)

val fence : unit -> unit
(** A global sequentially-consistent barrier: orders this call after every
    earlier {!fence} and before every later one (fence-to-fence edges
    only — it does not order plain accesses that skip the fence). *)

(* ------------------------------------------------------------------ *)
(** {1 Locks} *)

type lock

val create_lock : string -> lock
(** A real (non-reentrant) mutex whose acquire/release also carry
    happens-before edges when the detector is on. *)

val with_lock : lock -> (unit -> 'a) -> 'a
(** Acquire, run, release (exception-safe).  The mutex is taken even when
    the detector is off: instrumented components rely on it for actual
    thread safety (e.g. the harness cache), not only for bookkeeping. *)

val holding : lock -> (unit -> 'a) -> 'a
(** The discipline-checker escape hatch: declare that [f] runs while the
    given lock is held by synchronization outside the detector's view (an
    external mutex, a coarser protocol).  Unlike {!with_lock}, no mutex is
    taken and no happens-before edge is recorded — only the lockset — so a
    conflicting access pair that shares a declared lock is downgraded from
    a [data-race] Error to a [lock-discipline] Warning instead of
    vanishing. *)

(* ------------------------------------------------------------------ *)
(** {1 Tracked locations} *)

type location
(** A shadow word for one logical memory location (or one coarse region,
    e.g. "this hash table" or "this solver's clause arena"). *)

val location : string -> location

val touch_read : location -> unit
(** Record a read of the location by the current logical thread. *)

val touch_write : location -> unit
(** Record a write.  Checks against the previous write {e and} all
    unordered previous reads. *)

(** {2 Tracked cells} *)

type 'a tracked_ref

val tracked_ref : name:string -> 'a -> 'a tracked_ref
val read : 'a tracked_ref -> 'a
val write : 'a tracked_ref -> 'a -> unit

(** {2 Tracked atomics}

    Backed by a real [Atomic.t].  When the detector is on, each operation
    additionally carries release/acquire happens-before edges through the
    atomic's own vector clock: [aget] acquires, [aset] / successful [acas]
    / [afetch_add] release (and RMWs also acquire) — the same edges the
    memory model gives SC atomics. *)

type 'a tracked_atomic

val tracked_atomic : name:string -> 'a -> 'a tracked_atomic
val aget : 'a tracked_atomic -> 'a
val aset : 'a tracked_atomic -> 'a -> unit
val acas : 'a tracked_atomic -> 'a -> 'a -> bool
val afetch_add : int tracked_atomic -> int -> int

(** {2 Tracked hash tables}

    A polymorphic [Hashtbl] whose every operation touches one shadow
    location (the table is tracked as a single coarse region: any
    unordered lookup/insert pair is a race).  Mirrors the handful of
    operations the experiment caches actually use. *)

type ('k, 'v) tracked_table

val tracked_table : name:string -> int -> ('k, 'v) tracked_table
val tbl_find_opt : ('k, 'v) tracked_table -> 'k -> 'v option
val tbl_mem : ('k, 'v) tracked_table -> 'k -> bool
val tbl_replace : ('k, 'v) tracked_table -> 'k -> 'v -> unit
val tbl_remove : ('k, 'v) tracked_table -> 'k -> unit
val tbl_length : ('k, 'v) tracked_table -> int
val tbl_reset : ('k, 'v) tracked_table -> unit
val tbl_fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) tracked_table -> 'acc -> 'acc

(* ------------------------------------------------------------------ *)
(** {1 Reports} *)

type kind =
  | Write_write
  | Read_write   (** earlier read, unordered later write *)
  | Write_read   (** earlier write, unordered later read *)

type report = {
  location_name : string;
  kind : kind;
  first : string;           (** logical thread of the earlier access *)
  second : string;          (** logical thread of the later access *)
  lockset_saved : bool;
    (** The two accesses held a common lock the detector could not see as
        a happens-before edge: downgraded to a discipline warning. *)
}

val kind_to_string : kind -> string

val reports : unit -> report list
(** All distinct races found since {!enable}, in discovery order.
    De-duplicated per (location, kind): a racy counter bumped a thousand
    times reports once. *)

val clear_reports : unit -> unit

val to_diags : report list -> Diag.t list
(** Races as [data-race] errors; lockset-saved ones as [lock-discipline]
    warnings. *)
