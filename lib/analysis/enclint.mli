(** EncLint: solver-free static analysis of a constructed CEGIS encoding,
    plus DRAT-certified simplification.

    The encoding layer ([Pmi_core.Encoding]) describes itself through a
    {!view} — rows, activation literals, recorded cardinality networks,
    theory lemmas, frozen assumptions, the cube-split hint — and
    {!analyze} cross-checks that description against the solver's
    problem-clause database without ever calling [solve]:

    {b Structural} — [dead-var] (allocated but unconstrained variables),
    [duplicate-clause], [tautology], [missing-guard] (a guarded row's
    network clause without its [¬act] literal), [unguarded-row] (a live
    row with no activation in a guarded encoding), [retired-reachable]
    (retired-row literals in live, non-root-satisfied clauses, or a
    retirement that never forced [¬act]), [split-dead] (cube-split hints
    over root-assigned or retired variables), [frozen-unused].

    {b Semantic} — [card-bound]/[card-guard]/[bound-mismatch]: every
    recorded [Card] network with at most [max_cone] inputs is verified
    against its declared bound by exhaustive enumeration of the input
    cone (a complete mini-DPLL decides each assignment over the recorded
    clauses, both with the guard active and, for vacuity, satisfied);
    [lemma-conflict] (a theory lemma that rules out the accepted
    assignment with every guard active) and [lemma-subsumed].

    Diagnostics use the shared {!Pmi_diag.Diag} schema: [Error] means the
    encoding is wrong (a solver verdict on it cannot be trusted),
    [Warning] means waste. *)

type severity = Pmi_diag.Diag.severity =
  | Error
  | Warning

type row = {
  subject : string;            (** e.g. the scheme name *)
  vars : int list;             (** the row's own/shared/selector variables *)
  act : int;                   (** activation variable, [-1] if unguarded *)
  live : bool;                 (** [false] once retired *)
  networks : (int * Pmi_smt.Card.network) list;
      (** recorded cardinality networks with the bound the encoding
          declared when it built each *)
}

type view = {
  rows : row list;
  lemmas : Pmi_smt.Lit.t list list;    (** theory lemmas asserted so far *)
  frozen : Pmi_smt.Lit.t list;         (** frozen assumption literals *)
  accepted : (int * bool) list;        (** accepted (pinned) assignment *)
  hint : int list;                     (** cube-split candidate variables *)
}

val empty_view : view
(** No rows, lemmas, frozen literals, accepted assignment, or hint —
    [analyze] then runs the pure CNF-level checks only. *)

val analyze :
  ?max_cone:int ->
  ?cone_memo:(string, unit) Hashtbl.t ->
  ?db:bool ->
  Pmi_smt.Sat.t ->
  view ->
  Pmi_diag.Diag.t list
(** Run every check; the solver is only read (problem clauses, root
    assignment, names, guard marks).  Networks with more than [max_cone]
    inputs (default [12], covering every port-set row) skip the
    exhaustive semantic check but keep the structural ones.

    [cone_memo], when supplied, caches clean exhaustive-enumeration
    verdicts keyed by network {e shape} (kind, bounds, input count,
    guardedness) across calls: the [Card] builder is deterministic, so
    shape-equal networks are identical up to variable renaming and one
    enumeration vets them all.  Networks that produced findings are never
    cached.  Pass a fresh table per logical session (e.g. one per CEGIS
    run).

    [db] (default [true]) controls the clause-database passes (dead
    variables, duplicate clauses, retired-literal reachability over the
    clauses, frozen-unused).  With [~db:false] only the view-layer checks
    run — guards, retirement root-values, split hints, cardinality cones,
    lemmas — which is what the CEGIS gate uses on repeat episodes of a
    solver whose database it has already vetted.  Must be called at
    decision level 0. *)

(** {1 Certified simplification} *)

type simplify_stats = {
  satisfied_removed : int;   (** clauses satisfied by the root trail *)
  subsumed_removed : int;    (** subsumed by a binary or smaller clause *)
  strengthened : int;        (** self-subsuming resolution rewrites *)
  blocked_removed : int;     (** blocked-clause eliminations *)
}

val total : simplify_stats -> int

val simplify :
  ?bce:bool -> ?protect:int list -> Pmi_smt.Sat.t -> simplify_stats
(** Simplify the long problem clauses in place, emitting every rewrite
    into the solver's DRAT trace: strengthened clauses are logged as
    derivations ({!Pmi_smt.Sat.add_derived}), removals as deletions, so
    [--certify] verdicts on the simplified encoding still pass the
    independent {!Drat} checker.  Blocked-clause elimination ([?bce],
    default on) only blocks on unnamed, unmarked, root-unassigned
    variables outside [protect] (cardinality registers and symmetry
    auxiliaries); each elimination records a model-reconstruction entry
    in the solver, so SAT models keep satisfying every input clause.
    Must be called at decision level 0, before the episode's solve. *)
