(** Shared diagnostics: one severity scale, one text format, one JSON
    schema for every analysis pass in the repo.

    [Lint] (static data checks) and [Race] (the dynamic concurrency
    sanitizer) both report through this module, so [pmi_repro lint] and
    [pmi_repro sanitize] render identically and a single [--json] consumer
    handles both.  The library sits below every other [lib/] component
    (it depends only on the stdlib), which is what lets even
    [Pmi_parallel.Pool] emit diagnostics without a dependency cycle. *)

type severity =
  | Error
  | Warning

type t = {
  rule : string;      (** stable kebab-case rule name, e.g. ["data-race"] *)
  severity : severity;
  subject : string;   (** what was analysed, e.g. ["harness.cache"] *)
  message : string;
}

val severity_to_string : severity -> string

val make :
  string -> severity -> string -> ('a, unit, string, t) format4 -> 'a
(** [make rule severity subject fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val to_string : t -> string
(** Human-readable one-liner: [severity[rule] subject: message]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
(** One-line JSON object with [rule], [severity], [subject], [message]. *)

val errors : t list -> t list
(** The [Error]-severity subset. *)

val print_all : json:bool -> t list -> unit
(** Render each diagnostic to stdout, one per line, as text or JSON. *)

val summary : pass:string -> t list -> string
(** ["<pass>: <e> error(s), <w> warning(s)"] — the one-line tally both CLI
    drivers print to stderr. *)
