(* Forward RUP/DRAT checking over [Pmi_smt.Sat.proof_step] traces.

   This is a from-scratch unit propagator: clauses live in their own store,
   watches are per-literal lists of clause indices, and the root-level
   assignment is maintained persistently so each RUP query only pays for its
   own assumptions.  Literals use the shared int encoding ([2*v] positive,
   [2*v + 1] negative) and are manipulated directly.

   Deletion bookkeeping follows drat-trim: clauses are located by their
   canonical literal set; unmatched deletions and deletions of clauses that
   currently justify a root-level unit are ignored.  Both relaxations only
   enlarge the database the RUP queries run against, so they never let an
   invalid derivation through. *)

type error = {
  step : int;
  reason : string;
}

let pp_error ppf e = Format.fprintf ppf "step %d: %s" e.step e.reason

type clause = {
  lits : int array;          (* watched literals kept in slots 0 and 1 *)
  mutable alive : bool;
}

type state = {
  mutable nvars : int;
  mutable assign : int array;      (* per literal: 1 true, -1 false, 0 unset *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable reason_of : int array;   (* per var: clause index or -1 *)
  mutable watches : int list array;  (* per literal: clauses watching it *)
  mutable clauses : clause array;
  mutable n_clauses : int;
  index : (int list, int list) Hashtbl.t;  (* canonical lits -> indices *)
  mutable root_unsat : bool;
}

let create () =
  { nvars = 0;
    assign = Array.make 16 0;
    trail = Array.make 8 0;
    trail_size = 0;
    reason_of = Array.make 8 (-1);
    watches = Array.make 16 [];
    clauses = Array.make 64 { lits = [||]; alive = false };
    n_clauses = 0;
    index = Hashtbl.create 256;
    root_unsat = false }

let grow arr len fill =
  if Array.length arr >= len then arr
  else begin
    let out = Array.make (max len (2 * Array.length arr)) fill in
    Array.blit arr 0 out 0 (Array.length arr);
    out
  end

let ensure_var st v =
  if v >= st.nvars then begin
    st.nvars <- v + 1;
    st.assign <- grow st.assign (2 * st.nvars) 0;
    st.trail <- grow st.trail st.nvars 0;
    st.reason_of <- grow st.reason_of st.nvars (-1);
    st.watches <- grow st.watches (2 * st.nvars) []
  end

let ensure_lits st lits = List.iter (fun l -> ensure_var st (l lsr 1)) lits

let canonical lits = List.sort_uniq compare lits

let tautology canon =
  let rec go = function
    | a :: (b :: _ as rest) -> (a lxor b = 1 && a lsr 1 = b lsr 1) || go rest
    | _ -> false
  in
  go canon

let value st l = st.assign.(l)

let assign_true st l reason =
  st.assign.(l) <- 1;
  st.assign.(l lxor 1) <- -1;
  st.reason_of.(l lsr 1) <- reason;
  st.trail.(st.trail_size) <- l;
  st.trail_size <- st.trail_size + 1

(* Unit propagation from trail position [from]; true on conflict.  Watch
   moves are never undone — a stale watch is only ever re-examined, which is
   the usual two-watched-literal discipline. *)
let propagate st from =
  let conflict = ref false in
  let qhead = ref from in
  while (not !conflict) && !qhead < st.trail_size do
    let p = st.trail.(!qhead) in
    incr qhead;
    let fl = p lxor 1 in
    let pending = st.watches.(fl) in
    st.watches.(fl) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
        let c = st.clauses.(ci) in
        if not c.alive then go rest
        else begin
          let lits = c.lits in
          if lits.(0) = fl then begin
            lits.(0) <- lits.(1);
            lits.(1) <- fl
          end;
          if value st lits.(0) = 1 then begin
            st.watches.(fl) <- ci :: st.watches.(fl);
            go rest
          end
          else begin
            let n = Array.length lits in
            let k = ref 2 in
            while !k < n && value st lits.(!k) = -1 do incr k done;
            if !k < n then begin
              lits.(1) <- lits.(!k);
              lits.(!k) <- fl;
              st.watches.(lits.(1)) <- ci :: st.watches.(lits.(1));
              go rest
            end
            else begin
              st.watches.(fl) <- ci :: st.watches.(fl);
              if value st lits.(0) = -1 then begin
                conflict := true;
                List.iter
                  (fun cj -> st.watches.(fl) <- cj :: st.watches.(fl))
                  rest
              end
              else begin
                assign_true st lits.(0) ci;
                go rest
              end
            end
          end
        end
    in
    go pending
  done;
  !conflict

let backtrack st mark =
  for i = st.trail_size - 1 downto mark do
    let l = st.trail.(i) in
    st.assign.(l) <- 0;
    st.assign.(l lxor 1) <- 0;
    st.reason_of.(l lsr 1) <- -1
  done;
  st.trail_size <- mark

(* Does assuming the negation of every literal of [lits] propagate to a
   conflict?  Leaves the root state untouched. *)
let rup st lits =
  st.root_unsat
  || begin
    let mark = st.trail_size in
    let conflict = ref false in
    (try
       List.iter
         (fun l ->
            match value st l with
            | 1 ->
              (* The root already asserts [l]; assuming [¬l] is an
                 immediate conflict. *)
              conflict := true;
              raise_notrace Exit
            | -1 -> ()
            | _ -> assign_true st (l lxor 1) (-1))
         lits
     with Exit -> ());
    let result = !conflict || propagate st mark in
    backtrack st mark;
    result
  end

let push_clause st c =
  let ci = st.n_clauses in
  if ci >= Array.length st.clauses then begin
    let out = Array.make (2 * Array.length st.clauses) c in
    Array.blit st.clauses 0 out 0 ci;
    st.clauses <- out
  end;
  st.clauses.(ci) <- c;
  st.n_clauses <- ci + 1;
  ci

(* Install a clause permanently: register it for deletion lookup, attach
   watches on two non-false literals when possible, and propagate any root
   consequence to the fixpoint. *)
let add_clause st lits =
  ensure_lits st lits;
  let canon = canonical lits in
  let arr = Array.of_list canon in
  let ci = push_clause st { lits = arr; alive = true } in
  Hashtbl.replace st.index canon
    (ci :: (try Hashtbl.find st.index canon with Not_found -> []));
  if not (st.root_unsat || tautology canon) then begin
    let n = Array.length arr in
    (* Move up to two non-false literals into the watch slots. *)
    let found = ref 0 in
    (try
       for k = 0 to n - 1 do
         if value st arr.(k) >= 0 then begin
           let tmp = arr.(!found) in
           arr.(!found) <- arr.(k);
           arr.(k) <- tmp;
           incr found;
           if !found = 2 then raise_notrace Exit
         end
       done
     with Exit -> ());
    if n >= 2 then begin
      st.watches.(arr.(0)) <- ci :: st.watches.(arr.(0));
      st.watches.(arr.(1)) <- ci :: st.watches.(arr.(1))
    end;
    match !found with
    | 0 -> st.root_unsat <- true  (* empty or root-falsified *)
    | 1 ->
      if value st arr.(0) = 0 then begin
        let mark = st.trail_size in
        assign_true st arr.(0) ci;
        if propagate st mark then st.root_unsat <- true
      end
    | _ -> ()
  end

(* A clause justifying a root-level unit must survive deletion (drat-trim's
   unit-deletion relaxation); the root trail is small, so a scan is fine. *)
let is_root_reason st ci =
  let found = ref false in
  for i = 0 to st.trail_size - 1 do
    if st.reason_of.(st.trail.(i) lsr 1) = ci then found := true
  done;
  !found

let delete_clause st lits =
  let canon = canonical lits in
  match Hashtbl.find_opt st.index canon with
  | None | Some [] -> ()
  | Some indices ->
    let rec pick acc = function
      | [] -> ()
      | ci :: rest ->
        if st.clauses.(ci).alive && not (is_root_reason st ci) then begin
          st.clauses.(ci).alive <- false;
          Hashtbl.replace st.index canon (List.rev_append acc rest)
        end
        else pick (ci :: acc) rest
    in
    pick [] indices

let lits_to_string lits =
  "{"
  ^ String.concat ", " (List.map Pmi_smt.Lit.to_string lits)
  ^ "}"

let check ?(goal = []) steps =
  let st = create () in
  ensure_lits st goal;
  let rec go i = function
    | [] ->
      if rup st goal then Ok ()
      else
        Error
          { step = i;
            reason =
              Printf.sprintf "goal clause %s is not RUP over the final \
                              database" (lits_to_string goal) }
    | step :: rest ->
      (match step with
       | Pmi_smt.Sat.Input lits ->
         add_clause st lits;
         go (i + 1) rest
       | Pmi_smt.Sat.Derive lits ->
         ensure_lits st lits;
         if rup st lits then begin
           add_clause st lits;
           go (i + 1) rest
         end
         else
           Error
             { step = i;
               reason =
                 Printf.sprintf "derived clause %s is not RUP"
                   (lits_to_string lits) }
       | Pmi_smt.Sat.Delete lits ->
         delete_clause st lits;
         go (i + 1) rest)
  in
  go 0 steps

let validate_model ~model steps =
  let sat_lit l =
    let v = l lsr 1 in
    v < Array.length model && (if l land 1 = 0 then model.(v) else not model.(v))
  in
  let rec go i = function
    | [] -> Ok ()
    | Pmi_smt.Sat.Input lits :: rest ->
      if List.exists sat_lit lits then go (i + 1) rest
      else
        Error
          { step = i;
            reason =
              Printf.sprintf "model falsifies input clause %s"
                (lits_to_string lits) }
    | _ :: rest -> go (i + 1) rest
  in
  go 0 steps

(* ------------------------------------------------------------------ *)
(* Certificate identity (durable certificate store)                    *)
(* ------------------------------------------------------------------ *)

let add_lits buf lits =
  List.iter (fun l -> Buffer.add_string buf (string_of_int l); Buffer.add_char buf ' ') lits;
  Buffer.add_char buf '\n'

let goal_digest ~goal steps =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "goal ";
  add_lits buf goal;
  List.iter
    (function
      | Pmi_smt.Sat.Input lits -> Buffer.add_char buf 'i'; add_lits buf lits
      | Pmi_smt.Sat.Derive _ | Pmi_smt.Sat.Delete _ -> ())
    steps;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let proof_digest ~goal steps =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "goal ";
  add_lits buf goal;
  List.iter
    (fun step ->
       let tag, lits =
         match step with
         | Pmi_smt.Sat.Input lits -> ('i', lits)
         | Pmi_smt.Sat.Derive lits -> ('d', lits)
         | Pmi_smt.Sat.Delete lits -> ('x', lits)
       in
       Buffer.add_char buf tag;
       add_lits buf lits)
    steps;
  Digest.to_hex (Digest.string (Buffer.contents buf))
