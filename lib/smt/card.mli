(** Cardinality constraints over literals, via the sequential-counter
    (Sinz 2005) encoding.  Auxiliary variables are allocated from the given
    solver.  The port-mapping encoding uses these to pin each µop's number
    of admissible ports to the value measured from its throughput.

    With [?guard] every emitted clause is prepended with the guard literal,
    making the constraint conditional: pass the negation of an activation
    variable and the chain only binds while that variable is assumed true.
    Delta-mode encodings ({!Pmi_core.Encoding}) use this to retire a row's
    cardinality constraints with a single unit clause.

    Each constructor returns a {!network} record describing exactly what
    was emitted, so static analysis ({!Pmi_analysis.Enclint}) can re-verify
    the declared bound exhaustively without running the solver.  Callers
    that only want the side effect can [ignore] the result. *)

type kind =
  | At_most
  | At_least
  | Exactly

type network = {
  kind : kind;                 (** declared constraint species *)
  bound : int;                 (** declared bound [k] *)
  inputs : Lit.t list;         (** the constrained literals, in order *)
  guard : Lit.t option;        (** guard literal prepended to every clause *)
  aux : int list;              (** register variables, allocation order *)
  clauses : Lit.t list list;   (** emitted clauses, guard included *)
}

val kind_to_string : kind -> string

val at_most : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> network
(** [at_most s lits k] asserts that at most [k] of [lits] are true. *)

val at_least : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> network
(** [at_least s lits k] asserts that at least [k] of [lits] are true. *)

val exactly : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> network
(** [exactly s lits k] asserts that exactly [k] of [lits] are true. *)
