(** Cardinality constraints over literals, via the sequential-counter
    (Sinz 2005) encoding.  Auxiliary variables are allocated from the given
    solver.  The port-mapping encoding uses these to pin each µop's number
    of admissible ports to the value measured from its throughput.

    With [?guard] every emitted clause is prepended with the guard literal,
    making the constraint conditional: pass the negation of an activation
    variable and the chain only binds while that variable is assumed true.
    Delta-mode encodings ({!Pmi_core.Encoding}) use this to retire a row's
    cardinality constraints with a single unit clause. *)

val at_most : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> unit
(** [at_most s lits k] asserts that at most [k] of [lits] are true. *)

val at_least : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> unit
(** [at_least s lits k] asserts that at least [k] of [lits] are true. *)

val exactly : ?guard:Lit.t -> Sat.t -> Lit.t list -> int -> unit
(** [exactly s lits k] asserts that exactly [k] of [lits] are true. *)
