(* Sequential-counter encoding: registers s_{i,j} mean "at least j of the
   first i+1 literals are true".  Linear in n*k clauses and variables.

   The optional [?guard] literal is prepended to every emitted clause, so
   the whole constraint is conditional on the guard: pass [guard = ¬act]
   and the cardinality chain only binds while [act] is assumed true.  The
   delta-mode encoding uses this to make a row's constraints retirable
   with one unit clause instead of a rebuild.

   Every constructor returns a [network] record describing exactly what was
   emitted — declared kind/bound, input literals, guard, auxiliary register
   variables, and the clause list (guard included).  The static encoding
   analyzer ({!Pmi_analysis.Enclint}) replays these records with the solver
   off: structural checks (is the guard on every clause?) and semantic
   checks (does exhaustive unit propagation over the input cone enforce the
   declared bound?) both run against this metadata, so a constructor bug
   surfaces at analysis time instead of as a wrong certified mapping. *)

type kind =
  | At_most
  | At_least
  | Exactly

type network = {
  kind : kind;
  bound : int;
  inputs : Lit.t list;
  guard : Lit.t option;
  aux : int list;
  clauses : Lit.t list list;
}

let kind_to_string = function
  | At_most -> "at-most"
  | At_least -> "at-least"
  | Exactly -> "exactly"

(* Recorder threading the solver, the guard, and the emitted metadata
   through the constructor bodies. *)
type recorder = {
  solver : Sat.t;
  rguard : Lit.t option;
  mutable raux : int list;       (* newest first *)
  mutable rclauses : Lit.t list list;  (* newest first *)
}

let recorder ?guard solver = { solver; rguard = guard; raux = []; rclauses = [] }

let emit r c =
  let c = match r.rguard with None -> c | Some g -> g :: c in
  r.rclauses <- c :: r.rclauses;
  Sat.add_clause r.solver c

let fresh r =
  let v = Sat.fresh_var r.solver in
  r.raux <- v :: r.raux;
  v

let finish r ~kind ~bound ~inputs =
  (* Mark the guard variable in the solver so DIMACS dumps annotate it
     next to the caller-supplied name (see [Sat.to_dimacs]). *)
  (match r.rguard with
   | Some g -> Sat.mark_guard r.solver (Lit.var g)
   | None -> ());
  { kind; bound; inputs; guard = r.rguard; aux = List.rev r.raux;
    clauses = List.rev r.rclauses }

let at_most_body r lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 then emit r []
  else if k = 0 then Array.iter (fun l -> emit r [ Lit.negate l ]) lits
  else if n > k then begin
    (* regs.(i).(j) = s_{i+1, j+1} of the classical presentation. *)
    let regs =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> fresh r))
    in
    let s i j = Lit.pos regs.(i).(j) in
    let not_s i j = Lit.neg_of_var regs.(i).(j) in
    emit r [ Lit.negate lits.(0); s 0 0 ];
    for j = 1 to k - 1 do
      emit r [ not_s 0 j ]
    done;
    for i = 1 to n - 2 do
      emit r [ Lit.negate lits.(i); s i 0 ];
      emit r [ not_s (i - 1) 0; s i 0 ];
      for j = 1 to k - 1 do
        emit r [ Lit.negate lits.(i); not_s (i - 1) (j - 1); s i j ];
        emit r [ not_s (i - 1) j; s i j ]
      done;
      emit r [ Lit.negate lits.(i); not_s (i - 1) (k - 1) ]
    done;
    emit r [ Lit.negate lits.(n - 1); not_s (n - 2) (k - 1) ]
  end

let at_most ?guard solver lits k =
  let r = recorder ?guard solver in
  at_most_body r lits k;
  finish r ~kind:At_most ~bound:k ~inputs:lits

let at_least ?guard solver lits k =
  let r = recorder ?guard solver in
  let n = List.length lits in
  if k > n then emit r []
  else if k = n then List.iter (fun l -> emit r [ l ]) lits
  else if k = 1 then emit r lits
  else if k > 0 then at_most_body r (List.map Lit.negate lits) (n - k);
  finish r ~kind:At_least ~bound:k ~inputs:lits

(* One register bank carrying both bounds.  The naive [at_most] + [at_least]
   pairing builds two independent counters ((n-1)*n aux variables for the
   usual k << n); sharing the chain needs only (n-1)*k.  The register
   semantics is two-sided: the U clauses force s_{i,j} once > j of the first
   i+1 literals are true (counting direction), and the L clauses only allow
   s_{i,j} when that is the case (so the final register row can assert the
   lower bound). *)
let exactly ?guard solver lits k =
  let r = recorder ?guard solver in
  let arr = Array.of_list lits in
  let n = Array.length arr in
  (if k < 0 || k > n then emit r []
   else if k = 0 then Array.iter (fun l -> emit r [ Lit.negate l ]) arr
   else if k = n then Array.iter (fun l -> emit r [ l ]) arr
   else begin
     (* 1 <= k < n, hence n >= 2. *)
     let regs =
       Array.init (n - 1) (fun _ -> Array.init k (fun _ -> fresh r))
     in
     let s i j = Lit.pos regs.(i).(j) in
     let not_s i j = Lit.neg_of_var regs.(i).(j) in
     (* Row 0: s_{0,0} <-> x_0, higher registers off. *)
     emit r [ Lit.negate arr.(0); s 0 0 ];
     emit r [ not_s 0 0; arr.(0) ];
     for j = 1 to k - 1 do
       emit r [ not_s 0 j ]
     done;
     for i = 1 to n - 2 do
       (* Counting direction (upper bound): the register row is at least the
          previous row, plus one if x_i is true. *)
       emit r [ Lit.negate arr.(i); s i 0 ];
       emit r [ not_s (i - 1) 0; s i 0 ];
       (* Support direction (lower bound): a register only holds when the
          previous row or the current literal accounts for it. *)
       emit r [ not_s i 0; s (i - 1) 0; arr.(i) ];
       for j = 1 to k - 1 do
         emit r [ Lit.negate arr.(i); not_s (i - 1) (j - 1); s i j ];
         emit r [ not_s (i - 1) j; s i j ];
         emit r [ not_s i j; s (i - 1) j; arr.(i) ];
         emit r [ not_s i j; s (i - 1) j; s (i - 1) (j - 1) ]
       done;
       (* Overflow: a true literal on a saturated row would exceed k. *)
       emit r [ Lit.negate arr.(i); not_s (i - 1) (k - 1) ]
     done;
     (* Last literal: cannot overflow, and must close the k-th register. *)
     emit r [ Lit.negate arr.(n - 1); not_s (n - 2) (k - 1) ];
     emit r [ s (n - 2) (k - 1); arr.(n - 1) ];
     if k >= 2 then
       emit r [ s (n - 2) (k - 1); s (n - 2) (k - 2) ]
   end);
  finish r ~kind:Exactly ~bound:k ~inputs:lits
