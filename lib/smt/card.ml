(* Sequential-counter encoding: registers s_{i,j} mean "at least j of the
   first i+1 literals are true".  Linear in n*k clauses and variables.

   The optional [?guard] literal is prepended to every emitted clause, so
   the whole constraint is conditional on the guard: pass [guard = ¬act]
   and the cardinality chain only binds while [act] is assumed true.  The
   delta-mode encoding uses this to make a row's constraints retirable
   with one unit clause instead of a rebuild. *)

let add ?guard solver c =
  match guard with
  | None -> Sat.add_clause solver c
  | Some g -> Sat.add_clause solver (g :: c)

let at_most ?guard solver lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 then add ?guard solver []
  else if k = 0 then
    Array.iter (fun l -> add ?guard solver [ Lit.negate l ]) lits
  else if n > k then begin
    (* regs.(i).(j) = s_{i+1, j+1} of the classical presentation. *)
    let regs =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Sat.fresh_var solver))
    in
    let s i j = Lit.pos regs.(i).(j) in
    let not_s i j = Lit.neg_of_var regs.(i).(j) in
    add ?guard solver [ Lit.negate lits.(0); s 0 0 ];
    for j = 1 to k - 1 do
      add ?guard solver [ not_s 0 j ]
    done;
    for i = 1 to n - 2 do
      add ?guard solver [ Lit.negate lits.(i); s i 0 ];
      add ?guard solver [ not_s (i - 1) 0; s i 0 ];
      for j = 1 to k - 1 do
        add ?guard solver [ Lit.negate lits.(i); not_s (i - 1) (j - 1); s i j ];
        add ?guard solver [ not_s (i - 1) j; s i j ]
      done;
      add ?guard solver [ Lit.negate lits.(i); not_s (i - 1) (k - 1) ]
    done;
    add ?guard solver [ Lit.negate lits.(n - 1); not_s (n - 2) (k - 1) ]
  end

let at_least ?guard solver lits k =
  let n = List.length lits in
  if k > n then add ?guard solver []
  else if k = n then List.iter (fun l -> add ?guard solver [ l ]) lits
  else if k = 1 then add ?guard solver lits
  else if k > 0 then at_most ?guard solver (List.map Lit.negate lits) (n - k)

(* One register bank carrying both bounds.  The naive [at_most] + [at_least]
   pairing builds two independent counters ((n-1)*n aux variables for the
   usual k << n); sharing the chain needs only (n-1)*k.  The register
   semantics is two-sided: the U clauses force s_{i,j} once > j of the first
   i+1 literals are true (counting direction), and the L clauses only allow
   s_{i,j} when that is the case (so the final register row can assert the
   lower bound). *)
let exactly ?guard solver lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 || k > n then add ?guard solver []
  else if k = 0 then
    Array.iter (fun l -> add ?guard solver [ Lit.negate l ]) lits
  else if k = n then Array.iter (fun l -> add ?guard solver [ l ]) lits
  else begin
    (* 1 <= k < n, hence n >= 2. *)
    let regs =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Sat.fresh_var solver))
    in
    let s i j = Lit.pos regs.(i).(j) in
    let not_s i j = Lit.neg_of_var regs.(i).(j) in
    (* Row 0: s_{0,0} <-> x_0, higher registers off. *)
    add ?guard solver [ Lit.negate lits.(0); s 0 0 ];
    add ?guard solver [ not_s 0 0; lits.(0) ];
    for j = 1 to k - 1 do
      add ?guard solver [ not_s 0 j ]
    done;
    for i = 1 to n - 2 do
      (* Counting direction (upper bound): the register row is at least the
         previous row, plus one if x_i is true. *)
      add ?guard solver [ Lit.negate lits.(i); s i 0 ];
      add ?guard solver [ not_s (i - 1) 0; s i 0 ];
      (* Support direction (lower bound): a register only holds when the
         previous row or the current literal accounts for it. *)
      add ?guard solver [ not_s i 0; s (i - 1) 0; lits.(i) ];
      for j = 1 to k - 1 do
        add ?guard solver
          [ Lit.negate lits.(i); not_s (i - 1) (j - 1); s i j ];
        add ?guard solver [ not_s (i - 1) j; s i j ];
        add ?guard solver [ not_s i j; s (i - 1) j; lits.(i) ];
        add ?guard solver [ not_s i j; s (i - 1) j; s (i - 1) (j - 1) ]
      done;
      (* Overflow: a true literal on a saturated row would exceed k. *)
      add ?guard solver [ Lit.negate lits.(i); not_s (i - 1) (k - 1) ]
    done;
    (* Last literal: cannot overflow, and must close the k-th register. *)
    add ?guard solver [ Lit.negate lits.(n - 1); not_s (n - 2) (k - 1) ];
    add ?guard solver [ s (n - 2) (k - 1); lits.(n - 1) ];
    if k >= 2 then
      add ?guard solver [ s (n - 2) (k - 1); s (n - 2) (k - 2) ]
  end
