module Race = Pmi_diag.Race
module Obs = Pmi_obs.Obs

type result =
  | Sat of bool array
  | Unsat

(* Span args summarizing what a solver did between two [Sat.stats]
   snapshots — the "what did this call cost" payload on every sat.solve
   span in a trace. *)
let stats_args ?(extra = []) (before : Sat.stats) (after : Sat.stats) =
  [ ("decisions", Obs.Int (after.Sat.decisions - before.Sat.decisions));
    ("propagations",
     Obs.Int (after.Sat.propagations - before.Sat.propagations));
    ("conflicts", Obs.Int (after.Sat.conflicts - before.Sat.conflicts));
    ("restarts", Obs.Int (after.Sat.restarts - before.Sat.restarts));
    ("learned", Obs.Int (after.Sat.learned - before.Sat.learned)) ]
  @ extra

(* [sat_span name sat f]: a span around one CDCL call whose closing args
   carry the stats delta on [sat].  One atomic-load branch when tracing is
   off. *)
let sat_span ?args name sat f =
  if not (Obs.enabled ()) then f ()
  else begin
    let before = Sat.stats sat in
    let frame = Obs.enter ?args name in
    match f () with
    | r ->
      Obs.leave ~args:(stats_args before (Sat.stats sat)) frame;
      r
    | exception e ->
      Obs.leave ~args:[ ("exn", Obs.Str (Printexc.to_string e)) ] frame;
      raise e
  end

(* A span around one theory-check callback, closing with the number of
   lemmas the theory pushed back. *)
let theory_span check model =
  if not (Obs.enabled ()) then check model
  else begin
    let frame = Obs.enter "theory.check" in
    match check model with
    | lemmas ->
      Obs.leave ~args:[ ("lemmas", Obs.Int (List.length lemmas)) ] frame;
      lemmas
    | exception e ->
      Obs.leave ~args:[ ("exn", Obs.Str (Printexc.to_string e)) ] frame;
      raise e
  end

let falsified_by model lits =
  List.for_all
    (fun l ->
       let v = Lit.var l in
       v < Array.length model && (if Lit.is_pos l then not model.(v) else model.(v)))
    lits

let solve ?(assumptions = []) ?(max_rounds = 100_000) ~check sat =
  let rec loop round =
    if round > max_rounds then failwith "Smt.Solver.solve: theory loop diverges"
    else begin
      match sat_span "sat.solve" sat (fun () -> Sat.solve ~assumptions sat) with
      | Sat.Unsat -> Unsat
      | Sat.Sat model ->
        (match theory_span check model with
         | [] -> Sat model
         | lemmas ->
           (* Progress guard: the rejected model must violate some lemma.
              Lemmas may mention variables allocated after the model was
              produced (e.g. fresh cardinality registers), which
              [falsified_by] treats as unassigned-false. *)
           assert (List.exists (falsified_by model) lemmas);
           List.iter (Sat.add_clause sat) lemmas;
           loop (round + 1))
    end
  in
  loop 1

(* Diversification table for portfolio members.  Member 0 keeps the
   reference configuration so a one-member portfolio behaves exactly like
   [solve]; the others vary seed, polarity, random-decision rate, and
   restart policy, the classic axes along which CDCL runtimes diverge. *)
let diversify i member =
  if i > 0 then begin
    Sat.set_seed member (0x9E3779B9 * i);
    match i mod 4 with
    | 1 ->
      Sat.invert_phases member;
      Sat.set_restart member (`Luby 64)
    | 2 ->
      Sat.set_random_var_freq member 0.02;
      Sat.set_restart member (`Geometric 100)
    | 3 ->
      Sat.randomize_phases member;
      Sat.set_random_var_freq member 0.05
    | _ ->
      Sat.set_random_var_freq member 0.01;
      Sat.set_restart member (`Luby 1024)
  end

(* Glue bound for importing a portfolio winner's learnt clauses back into
   the persistent solver.  Low-LBD clauses are the ones worth keeping across
   solves (Audemard & Simon 2009); importing everything would bloat the
   clause database faster than reduction can prune it. *)
let import_lbd_limit = 8

let solve_portfolio ?(assumptions = []) ?(max_rounds = 100_000) ?domains
    ~check sat =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Pmi_parallel.Pool.default_domains ()
  in
  if domains <= 1 then solve ~assumptions ~max_rounds ~check sat
  else begin
    let members = min domains 8 in
    (* Sanitizer shadow locations: the parent solver (read by every clone
       at copy time, written by the winner import below) and each clone's
       private state.  The import must stay ordered after the race's join
       edge — a loser writing the parent, or anything touching a clone
       concurrently with its owner, is a race. *)
    let parent_loc = Race.location "portfolio.parent-solver" in
    let clone_locs =
      Array.init members (fun i ->
          Race.location (Printf.sprintf "portfolio.clone-%d" i))
    in
    (* One portfolio round; [None] means the theory rejected the model and
       added lemmas, so the caller should go around again.  Keeping the
       round in its own function lets the "sat.portfolio" span close
       before the next round opens — rounds are siblings in the trace,
       not a nest of max_rounds frames. *)
    let solve_round round =
      let round_frame =
        if not (Obs.enabled ()) then None
        else
          Some
            (Obs.enter
               ~args:[ ("round", Obs.Int round); ("members", Obs.Int members) ]
               "sat.portfolio")
      in
      let close_round args =
        match round_frame with
        | None -> ()
        | Some frame -> Obs.leave ~args frame
      in
      (* Common verdict continuation: UNSAT concludes the call, a
         theory-consistent model concludes it, and theory lemmas send the
         caller around for another round. *)
      let conclude ~round_args verdict =
        match verdict with
        | Sat.Unsat ->
          close_round (round_args 0);
          Some Unsat
        | Sat.Sat model ->
          (match theory_span check model with
           | [] ->
             close_round (round_args 0);
             Some (Sat model)
           | lemmas ->
             assert (List.exists (falsified_by model) lemmas);
             List.iter (Sat.add_clause sat) lemmas;
             close_round (round_args (List.length lemmas));
             None)
      in
      match
        Race.touch_read parent_loc;
        let clones =
          Array.init members (fun i ->
              let c = Sat.copy sat in
              diversify i c;
              Race.touch_write clone_locs.(i);
              c)
        in
        let tasks =
          Array.mapi
            (fun i c ->
               fun stop ->
                 (* A member that starts after some other member has won
                    exits before touching its clone at all. *)
                 if stop () then None
                 else begin
                   Race.touch_write clone_locs.(i);
                   let r =
                     sat_span
                       ~args:[ ("member", Obs.Int i) ]
                       "sat.portfolio.member" c
                       (fun () -> Sat.solve_opt ~assumptions ~stop c)
                   in
                   Race.touch_write clone_locs.(i);
                   match r with
                   | Some verdict -> Some (i, c, verdict)
                   | None -> None
                 end)
            clones
        in
        match Pmi_parallel.Pool.race ~domains:members tasks with
        | None ->
          (* Should be unreachable — a member only returns [None] once some
             other member has already published a verdict — but a scheduling
             anomaly here must not abort a whole inference run.  Degrade
             gracefully: solve the round sequentially on the parent, whose
             proof trace and learnt clauses accrue natively. *)
          Race.touch_write parent_loc;
          let verdict =
            sat_span "sat.solve" sat (fun () -> Sat.solve ~assumptions sat)
          in
          conclude
            ~round_args:(fun lemmas ->
              [ ("winner", Obs.Int (-1));
                ("learnt_imported", Obs.Int 0);
                ("lemmas", Obs.Int lemmas) ])
            verdict
        | Some (wi, winner, verdict) ->
          Race.touch_read clone_locs.(wi);
          Race.touch_write parent_loc;
          (* Certification: clones never log their own trace, so replay the
             winner's *entire* learnt sequence into the parent's proof
             first, in learning order.  Each clause is RUP w.r.t. the shared
             clause database plus the winner's earlier learnts, so the
             sequence is a valid DRAT suffix — and it must precede the
             selective imports below, whose RUP certificates depend on
             winner learnts that fall outside the LBD bound. *)
          let winner_learnts = Sat.new_learnts winner in
          if Sat.proof_logging sat then
            List.iter (fun (_, lits) -> Sat.proof_derive sat lits)
              winner_learnts;
          (* Fold the winner's work back into the persistent encoding: its
             low-glue learnt clauses (all implied by the clause database
             alone, so safe to keep) and its search counters. *)
          let imported = ref 0 in
          List.iter
            (fun (lbd, lits) ->
               if lbd <= import_lbd_limit then begin
                 incr imported;
                 Sat.add_learnt sat ~lbd lits
               end)
            winner_learnts;
          Sat.absorb_stats sat winner;
          conclude
            ~round_args:(fun lemmas ->
              [ ("winner", Obs.Int wi);
                ("learnt_imported", Obs.Int !imported);
                ("lemmas", Obs.Int lemmas) ])
            verdict
      with
      | outcome -> outcome
      | exception e ->
        close_round [ ("exn", Obs.Str (Printexc.to_string e)) ];
        raise e
    in
    let rec loop round =
      if round > max_rounds then
        failwith "Smt.Solver.solve_portfolio: theory loop diverges"
      else
        match solve_round round with
        | Some verdict -> verdict
        | None -> loop (round + 1)
    in
    loop 1
  end

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer                                                    *)
(* ------------------------------------------------------------------ *)

(* Shared-clause-pool telemetry: clauses continuously exported by live
   workers (glue <= [import_lbd_limit]) and clauses pulled in by peers at
   their restart points. *)
let c_cube_export = Obs.counter "sat.cube.pool.exported"
let c_cube_import = Obs.counter "sat.cube.pool.imported"
let c_cube_solved = Obs.counter "sat.cube.solved"
let c_cube_resplit = Obs.counter "sat.cube.resplit"
let c_cube_requeue = Obs.counter "sat.cube.requeued"

(* Adaptive re-split policy: exhausting a conflict budget no longer forces
   a split.  A cube is deepened only when its conflict spend marks the
   subspace as hard — at least [cube_hard_factor] times the average spend
   of the cubes already resolved this round (the budget itself while none
   has resolved yet); an easy-but-unlucky cube is requeued whole with a
   doubled budget instead, so the split tree only grows where the
   conflicts are.  [cube_split_cap] bounds the depth as a safety net. *)
let cube_split_cap = 16
let cube_hard_factor = 2

let cube_cover ?(hint = []) ?(assumptions = []) ~k sat =
  let k = max 0 k in
  let seen = Hashtbl.create 16 in
  (* Assumption variables are pinned for the whole call — in delta-mode
     CEGIS these are the frozen µop pins and the rows' activation
     literals — so splitting on one would produce a dead half-cube.
     Pre-seeding [seen] excludes them from hint and ranking alike. *)
  List.iter (fun l -> Hashtbl.replace seen (Lit.var l) ()) assumptions;
  let picked = ref [] in
  let n = ref 0 in
  let consider v =
    if
      !n < k && v >= 0 && (not (Hashtbl.mem seen v))
      && Sat.root_value sat v = 0
    then begin
      Hashtbl.add seen v ();
      picked := v :: !picked;
      incr n
    end
  in
  (* Caller-supplied split hint first (for CEGIS: port-set variables of the
     most-constrained instruction classes), then the solver's own
     activity/occurrence ranking tops the selection up to [k]. *)
  List.iter consider hint;
  if !n < k then
    List.iter consider
      (Sat.most_constrained_vars sat (k + !n + List.length assumptions));
  let vars = List.rev !picked in
  List.map List.rev
    (List.fold_left
       (fun cubes v ->
          List.concat_map
            (fun c -> [ Lit.pos v :: c; Lit.neg_of_var v :: c ])
            cubes)
       [ [] ] vars)

(* Certificate stitching for an all-cubes-refuted round: each leaf's clause
   [goal ∨ ¬cube] is already derived; walk the split tree bottom-up and
   derive every internal node's clause by resolving its two children on the
   node's split literal.  Each step is RUP — asserting the negation of the
   node clause reduces both children to opposite units of the split
   variable — and the root step derives [goal] itself (the empty clause
   when there are no assumptions). *)
let stitch_cube_tree sat goal leaves =
  let ragged () = invalid_arg "Smt.Solver.solve_cubes: ragged cube tree" in
  let rec go prefix_rev suffixes =
    match suffixes with
    | [ [] ] -> () (* leaf: already derived *)
    | (l :: _) :: _ ->
      let v = Lit.var l in
      let pos, neg =
        List.partition
          (fun c ->
             match c with
             | l :: _ when Lit.var l = v -> Lit.is_pos l
             | _ -> ragged ())
          suffixes
      in
      if pos = [] || neg = [] then ragged ();
      go (Lit.pos v :: prefix_rev) (List.map List.tl pos);
      go (Lit.neg_of_var v :: prefix_rev) (List.map List.tl neg);
      Sat.proof_derive sat (goal @ List.rev_map Lit.negate prefix_rev)
    | _ -> ragged ()
  in
  go [] leaves

let solve_cubes ?(assumptions = []) ?(max_rounds = 100_000) ?domains
    ?(cubes = 3) ?(conflict_budget = 4_000) ?(hint = fun () -> []) ~check sat
  =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Pmi_parallel.Pool.default_domains ()
  in
  if domains <= 1 then solve ~assumptions ~max_rounds ~check sat
  else begin
    let members = min domains 8 in
    let certify = Sat.proof_logging sat in
    (* Sanitizer shadow state: the parent solver, each worker's private
       clone, and the two lock-protected shared structures (cube queue and
       clause pool).  Queue and pool are only ever touched inside their
       [Race.lock] regions, so [@sanitize] sees every access ordered. *)
    let parent_loc = Race.location "cubes.parent-solver" in
    let clone_locs =
      Array.init members (fun i ->
          Race.location (Printf.sprintf "cubes.clone-%d" i))
    in
    let queue_loc = Race.location "cubes.queue" in
    let pool_loc = Race.location "cubes.clause-pool" in
    let queue_lock = Race.create_lock "cubes.queue" in
    let pool_lock = Race.create_lock "cubes.clause-pool" in
    let solve_round round =
      let round_frame =
        if not (Obs.enabled ()) then None
        else
          Some
            (Obs.enter
               ~args:
                 [ ("round", Obs.Int round); ("members", Obs.Int members) ]
               "sat.cubes")
      in
      let close_round args =
        match round_frame with
        | None -> ()
        | Some frame -> Obs.leave ~args frame
      in
      match
        let conclude ~round_args verdict =
          match verdict with
          | Sat.Unsat ->
            close_round (round_args 0);
            Some Unsat
          | Sat.Sat model ->
            (match theory_span check model with
             | [] ->
               close_round (round_args 0);
               Some (Sat model)
             | lemmas ->
               assert (List.exists (falsified_by model) lemmas);
               List.iter (Sat.add_clause sat) lemmas;
               close_round (round_args (List.length lemmas));
               None)
        in
        Race.touch_read parent_loc;
        let cover = cube_cover ~hint:(hint ()) ~assumptions ~k:cubes sat in
        let n_cubes = List.length cover in
        if n_cubes <= 1 then begin
          (* No free split variable (tiny or root-decided instance): the
             round degenerates to a sequential solve on the parent. *)
          Race.touch_write parent_loc;
          let verdict =
            sat_span "sat.solve" sat (fun () -> Sat.solve ~assumptions sat)
          in
          conclude
            ~round_args:(fun lemmas ->
              [ ("cubes", Obs.Int n_cubes);
                ("learnt_imported", Obs.Int 0);
                ("lemmas", Obs.Int lemmas) ])
            verdict
        end
        else begin
          (* Shared cube queue (work stealing: any worker may claim or
             re-split any cube) and shared clause pool (continuous low-glue
             export/import between live workers). *)
          let queue = Queue.create () in
          List.iter (fun c -> Queue.add (0, conflict_budget, c) queue) cover;
          let outstanding = ref n_cubes in
          let unsat_leaves = ref [] in
          (* Running spend of resolved cubes, the baseline the adaptive
             re-split policy compares an exhausted cube against. *)
          let solved_spend = ref 0 in
          let solved_count = ref 0 in
          let pool = ref [] in (* (owner, lbd, lits), newest first *)
          let pool_len = ref 0 in
          let stamp = Race.tracked_atomic ~name:"cubes.stamp" 0 in
          let logs = Array.make members [] in (* (stamp, lits), newest first *)
          let watermarks = Array.make members 0 in
          let clones =
            Array.init members (fun i ->
                let c = Sat.copy sat in
                diversify i c;
                Race.touch_write clone_locs.(i);
                c)
          in
          let importers =
            Array.mapi
              (fun w c ->
                 (* Export: every clause worker [w] learns is stamped with a
                    global sequence number (certification: the stamps give
                    the one total order in which all workers' learnt logs
                    can be replayed as a valid DRAT suffix, since a clause
                    is always stamped before it becomes visible to any
                    importer), and low-glue clauses are published to the
                    pool while the worker keeps searching. *)
                 let on_learnt lbd lits =
                   if certify then begin
                     let t = Race.afetch_add stamp 1 in
                     logs.(w) <- (t, lits) :: logs.(w)
                   end;
                   if lbd <= import_lbd_limit then begin
                     Race.with_lock pool_lock (fun () ->
                         Race.touch_write pool_loc;
                         pool := (w, lbd, lits) :: !pool;
                         incr pool_len);
                     if Obs.enabled () then Obs.incr c_cube_export
                   end
                 in
                 (* Import: pull every pool clause published since this
                    worker's last look (skipping its own), called at each
                    restart (level-0 boundary) and before each cube. *)
                 let import () =
                   let fresh =
                     Race.with_lock pool_lock (fun () ->
                         Race.touch_read pool_loc;
                         let n = !pool_len in
                         if n = watermarks.(w) then []
                         else begin
                           let take = n - watermarks.(w) in
                           watermarks.(w) <- n;
                           List.filteri (fun i _ -> i < take) !pool
                         end)
                   in
                   List.iter
                     (fun (owner, lbd, lits) ->
                        if owner <> w then begin
                          Sat.add_learnt c ~lbd lits;
                          if Obs.enabled () then Obs.incr c_cube_import
                        end)
                     (List.rev fresh)
                 in
                 Sat.set_on_learnt c (Some on_learnt);
                 Sat.set_on_restart c (Some import);
                 import)
              clones
          in
          let tasks =
            Array.init members (fun w ->
                fun stop ->
                  if stop () then None
                  else begin
                    let c = clones.(w) in
                    Race.touch_write clone_locs.(w);
                    let pop () =
                      Race.with_lock queue_lock (fun () ->
                          Race.touch_write queue_loc;
                          if Queue.is_empty queue then
                            if !outstanding = 0 then `Done else `Wait
                          else `Cube (Queue.pop queue))
                    in
                    let resolve_unsat spent cube =
                      Race.with_lock queue_lock (fun () ->
                          Race.touch_write queue_loc;
                          unsat_leaves := cube :: !unsat_leaves;
                          solved_spend := !solved_spend + spent;
                          incr solved_count;
                          decr outstanding)
                    in
                    (* Adaptive deepening: an exhausted cube is split only
                       when its spend says the subspace is hard relative to
                       the cubes already resolved; otherwise (or at the
                       split cap) the same cube is requeued whole with a
                       doubled budget. *)
                    let resplit_or_requeue splits budget spent cube =
                      let hard =
                        Race.with_lock queue_lock (fun () ->
                            Race.touch_read queue_loc;
                            let avg =
                              if !solved_count = 0 then conflict_budget
                              else !solved_spend / !solved_count
                            in
                            spent >= cube_hard_factor * max 1 avg)
                      in
                      if hard && splits < cube_split_cap then begin
                        if Obs.enabled () then Obs.incr c_cube_resplit;
                        let used = List.map Lit.var (assumptions @ cube) in
                        let fresh =
                          List.find_opt
                            (fun v -> not (List.mem v used))
                            (Sat.most_constrained_vars c
                               (List.length used + 1))
                        in
                        Race.with_lock queue_lock (fun () ->
                            Race.touch_write queue_loc;
                            match fresh with
                            | Some v ->
                              Queue.add
                                (splits + 1, conflict_budget,
                                 cube @ [ Lit.pos v ])
                                queue;
                              Queue.add
                                (splits + 1, conflict_budget,
                                 cube @ [ Lit.neg_of_var v ])
                                queue;
                              incr outstanding
                            | None ->
                              (* No unassigned variable outside the cube:
                                 requeue for an unbudgeted solve. *)
                              Queue.add (splits, max_int, cube) queue)
                      end
                      else begin
                        if Obs.enabled () then Obs.incr c_cube_requeue;
                        let budget' =
                          if budget >= max_int / 2 then max_int
                          else 2 * budget
                        in
                        Race.with_lock queue_lock (fun () ->
                            Race.touch_write queue_loc;
                            Queue.add (splits, budget', cube) queue)
                      end
                    in
                    let rec work () =
                      if stop () then None
                      else
                        match pop () with
                        | `Done -> None
                        | `Wait ->
                          Domain.cpu_relax ();
                          work ()
                        | `Cube (splits, budget, cube) ->
                          importers.(w) ();
                          let budgeted = budget < max_int in
                          let start = Sat.num_conflicts c in
                          let exceeded = ref false in
                          let stop' () =
                            stop ()
                            || budgeted
                               && Sat.num_conflicts c - start >= budget
                               && begin
                                 exceeded := true;
                                 true
                               end
                          in
                          let verdict =
                            sat_span
                              ~args:
                                [ ("member", Obs.Int w);
                                  ("splits", Obs.Int splits) ]
                              "sat.cube" c
                              (fun () ->
                                 Sat.solve_opt
                                   ~assumptions:(assumptions @ cube)
                                   ~stop:stop' c)
                          in
                          let spent = Sat.num_conflicts c - start in
                          (match verdict with
                           | Some (Sat.Sat model) ->
                             if Obs.enabled () then Obs.incr c_cube_solved;
                             Some (w, model)
                           | Some Sat.Unsat ->
                             if Obs.enabled () then Obs.incr c_cube_solved;
                             resolve_unsat spent cube;
                             work ()
                           | None ->
                             if !exceeded && not (stop ()) then begin
                               resplit_or_requeue splits budget spent cube;
                               work ()
                             end
                             else None)
                    in
                    let r = work () in
                    Race.touch_write clone_locs.(w);
                    r
                  end)
          in
          let outcome = Pmi_parallel.Pool.race ~domains:members tasks in
          (* Join edge established: fold every worker's counters back (all
             of them did real work on their cubes, not just a winner). *)
          Race.touch_write parent_loc;
          Array.iteri
            (fun i c ->
               Race.touch_read clone_locs.(i);
               Sat.absorb_stats sat c)
            clones;
          (* Certification: replay all workers' learnt logs into the parent
             trace in global stamp order.  Every clause is then RUP w.r.t.
             the shared database plus the earlier-stamped clauses — a
             worker's own earlier learnts and its imports are always
             earlier-stamped — so the merged sequence is a valid DRAT
             suffix. *)
          let replay_logs () =
            if certify then begin
              let merged =
                Array.to_list logs |> List.concat
                |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
              in
              List.iter (fun (_, lits) -> Sat.proof_derive sat lits) merged
            end
          in
          (* Fold the pool back into the persistent encoding: every entry
             is low-glue and implied by the clause database alone. *)
          let import_pool () =
            let imported = ref 0 in
            List.iter
              (fun (_, lbd, lits) ->
                 incr imported;
                 Sat.add_learnt sat ~lbd lits)
              (List.rev !pool);
            !imported
          in
          let cube_args ~winner ~imported lemmas =
            [ ("winner", Obs.Int winner);
              ("cubes", Obs.Int n_cubes);
              ("learnt_imported", Obs.Int imported);
              ("lemmas", Obs.Int lemmas) ]
          in
          match outcome with
          | Some (wi, model) ->
            (* SAT short-circuited the race; the cube literals were mere
               assumptions, so the model is a model of the full problem. *)
            replay_logs ();
            let imported = import_pool () in
            conclude
              ~round_args:(cube_args ~winner:wi ~imported)
              (Sat.Sat model)
          | None ->
            let remaining =
              Race.with_lock queue_lock (fun () ->
                  Race.touch_read queue_loc;
                  !outstanding)
            in
            if remaining = 0 then begin
              (* Every cube refuted: the round is UNSAT.  Stitch the
                 certificate — merged learnt logs, one [goal ∨ ¬cube]
                 clause per refuted leaf, then the split tautology up the
                 tree, ending at [goal] itself. *)
              replay_logs ();
              if certify then begin
                let goal = List.map Lit.negate assumptions in
                List.iter
                  (fun cube ->
                     Sat.proof_derive sat
                       (goal @ List.map Lit.negate cube))
                  !unsat_leaves;
                stitch_cube_tree sat goal !unsat_leaves
              end;
              let imported = import_pool () in
              conclude
                ~round_args:(cube_args ~winner:(-1) ~imported)
                Sat.Unsat
            end
            else begin
              (* Defensive fallback, mirroring [solve_portfolio]: a worker
                 anomaly left cubes unresolved — finish the round
                 sequentially on the parent rather than aborting. *)
              Race.touch_write parent_loc;
              let verdict =
                sat_span "sat.solve" sat (fun () ->
                    Sat.solve ~assumptions sat)
              in
              conclude
                ~round_args:(cube_args ~winner:(-1) ~imported:0)
                verdict
            end
        end
      with
      | outcome -> outcome
      | exception e ->
        close_round [ ("exn", Obs.Str (Printexc.to_string e)) ];
        raise e
    in
    let rec loop round =
      if round > max_rounds then
        failwith "Smt.Solver.solve_cubes: theory loop diverges"
      else
        match solve_round round with
        | Some verdict -> verdict
        | None -> loop (round + 1)
    in
    loop 1
  end
